//! # u-relations
//!
//! Umbrella crate for the reproduction of *"Fast and Simple Relational
//! Processing of Uncertain Data"* (Antova, Jansen, Koch, Olteanu; ICDE
//! 2008) — the U-relations representation system behind MayBMS.
//!
//! Re-exports the workspace crates under stable paths:
//!
//! * [`relalg`] — the in-memory relational algebra engine (the "RDBMS").
//! * [`core`] — U-relations: world tables, ws-descriptors, the `[[·]]`
//!   query translation, merge, reduction, normalization, certain answers,
//!   and the probabilistic extension.
//! * [`wsd`] — world-set decompositions (succinctness baseline).
//! * [`uldb`] — Trio-style ULDBs (lineage baseline).
//! * [`tpch`] — the uncertainty-extended TPC-H generator and the paper's
//!   queries Q1–Q3.
//! * [`ql`] — the textual pipeline-query frontend (parse + lower to the
//!   core algebra).
//! * [`server`] — the newline-delimited-JSON-over-TCP session server
//!   (see README "Serving").
//!
//! ## Quickstart
//!
//! The paper's vehicle-reconnaissance scenario (Figure 1), queried for
//! enemy tanks (Example 3.6):
//!
//! ```
//! use u_relations::core::{figure1_database, possible, table};
//! use u_relations::relalg::{col, lit_str, Expr};
//!
//! let db = figure1_database();
//! assert_eq!(db.world.world_count_exact(), Some(8));
//!
//! let enemy_tanks = table("r")
//!     .select(Expr::and([
//!         col("type").eq(lit_str("Tank")),
//!         col("faction").eq(lit_str("Enemy")),
//!     ]))
//!     .project(["id"]);
//!
//! // Translated to plain relational algebra, optimized, executed:
//! let answers = possible(&db, &enemy_tanks)?;
//! assert_eq!(answers.len(), 3); // vehicles 2, 3 and 4 are possible
//! # Ok::<(), u_relations::core::Error>(())
//! ```
//!
//! See `examples/quickstart.rs` for the full walkthrough (self-joins,
//! certain answers, confidence).

pub use urel_core as core;
pub use urel_ql as ql;
pub use urel_relalg as relalg;
pub use urel_server as server;
pub use urel_tpch as tpch;
pub use urel_uldb as uldb;
pub use urel_wsd as wsd;
