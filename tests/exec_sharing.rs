//! Zero-copy guarantees of the executor (the PR 1 refactor):
//!
//! * `Scan` hands back the catalog's own `Arc<Relation>` — pointer-equal,
//!   no deep copy;
//! * `Rename` aliases the input's row storage;
//! * the fused σ/π pipeline produces results identical to executing the
//!   same operators one materialization at a time, on the paper's
//!   Figure 1 database.

use std::sync::Arc;
use u_relations::core::figure1_database;
use u_relations::relalg::{col, exec, lit_i64, lit_str, Expr, Plan};

#[test]
fn scan_returns_the_catalog_arc_pointer_equal() {
    let db = figure1_database();
    let cat = db.to_catalog();
    for name in ["u1", "u2", "u3", "w"] {
        let out = exec::execute(&Plan::scan(name), &cat).unwrap();
        assert!(
            Arc::ptr_eq(&out, cat.get(name).unwrap()),
            "Scan({name}) deep-copied the base relation"
        );
    }
    // Two scans of the same relation share one storage.
    let a = exec::execute(&Plan::scan("u1"), &cat).unwrap();
    let b = exec::execute(&Plan::scan("u1"), &cat).unwrap();
    assert!(Arc::ptr_eq(&a, &b));
}

#[test]
fn values_returns_the_inline_arc_pointer_equal() {
    let db = figure1_database();
    let cat = db.to_catalog();
    let rel = exec::execute(&Plan::scan("u2"), &cat).unwrap();
    let plan = Plan::Values(Arc::clone(&rel));
    let out = exec::execute(&plan, &cat).unwrap();
    assert!(Arc::ptr_eq(&out, &rel));
}

#[test]
fn rename_aliases_the_catalog_row_storage() {
    let db = figure1_database();
    let cat = db.to_catalog();
    let out = exec::execute(&Plan::scan("u1").rename("x"), &cat).unwrap();
    assert!(
        out.shares_rows_with(cat.get("u1").unwrap()),
        "Rename copied the rows instead of re-qualifying the schema"
    );
}

#[test]
fn pipelined_select_chain_matches_stepwise_materialization() {
    let db = figure1_database();
    let cat = db.to_catalog();

    // Fused: both selections run in one pass over the scan.
    let fused = Plan::scan("u2")
        .select(col("type").eq(lit_str("Tank")))
        .select(col("tid").gt(lit_i64(1)));
    let fused_out = exec::execute(&fused, &cat).unwrap();

    // Stepwise: materialize after every operator, like the old engine.
    let step1 = exec::execute(&Plan::scan("u2"), &cat).unwrap();
    let step2 = exec::execute(
        &Plan::Values(step1).select(col("type").eq(lit_str("Tank"))),
        &cat,
    )
    .unwrap();
    let step3 =
        exec::execute(&Plan::Values(step2).select(col("tid").gt(lit_i64(1))), &cat).unwrap();

    // Identical, including row order (both paths preserve input order).
    assert_eq!(*fused_out, *step3);
    assert!(!fused_out.is_empty());
}

#[test]
fn pipelined_select_project_matches_stepwise_materialization() {
    let db = figure1_database();
    let cat = db.to_catalog();

    let pred = Expr::and([
        col("faction").eq(lit_str("Enemy")),
        col("tid").gt(lit_i64(0)),
    ]);
    let fused = Plan::scan("u3")
        .select(pred.clone())
        .project_names(["tid", "faction"]);
    let fused_out = exec::execute(&fused, &cat).unwrap();

    let step1 = exec::execute(&Plan::scan("u3"), &cat).unwrap();
    let step2 = exec::execute(&Plan::Values(step1).select(pred), &cat).unwrap();
    let step3 =
        exec::execute(&Plan::Values(step2).project_names(["tid", "faction"]), &cat).unwrap();

    assert_eq!(*fused_out, *step3);
    assert!(!fused_out.is_empty());
}

#[test]
fn full_figure1_query_agrees_through_both_engines() {
    // End-to-end sanity: the paper's Example 3.6 query through the shared
    // engine still yields the three possible enemy tanks.
    use u_relations::core::{possible, table};
    let db = figure1_database();
    let q = table("r")
        .select(Expr::and([
            col("type").eq(lit_str("Tank")),
            col("faction").eq(lit_str("Enemy")),
        ]))
        .project(["id"]);
    let answers = possible(&db, &q).unwrap();
    assert_eq!(answers.len(), 3);
}
