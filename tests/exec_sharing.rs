//! Zero-copy and zero-materialization guarantees of the executor:
//!
//! * `Scan` hands back the catalog's own `Arc<Relation>` — pointer-equal,
//!   no deep copy;
//! * `Rename` aliases the input's row storage;
//! * the streaming σ/π pipeline produces results identical to executing
//!   the same operators one materialization at a time, on the paper's
//!   Figure 1 database;
//! * σ/π/ρ/join-probe chains allocate **no** intermediate `Vec<Row>`:
//!   the `ExecStats` buffer counter stays at zero and the same counter
//!   is exposed in `EXPLAIN` output (PR 2's streaming refactor).

use std::sync::Arc;
use u_relations::core::figure1_database;
use u_relations::relalg::{col, exec, explain, lit_i64, lit_str, Expr, Plan};

#[test]
fn scan_returns_the_catalog_arc_pointer_equal() {
    let db = figure1_database();
    let cat = db.to_catalog();
    for name in ["u1", "u2", "u3", "w"] {
        let out = exec::execute(&Plan::scan(name), &cat).unwrap();
        assert!(
            Arc::ptr_eq(&out, cat.get(name).unwrap()),
            "Scan({name}) deep-copied the base relation"
        );
    }
    // Two scans of the same relation share one storage.
    let a = exec::execute(&Plan::scan("u1"), &cat).unwrap();
    let b = exec::execute(&Plan::scan("u1"), &cat).unwrap();
    assert!(Arc::ptr_eq(&a, &b));
}

#[test]
fn values_returns_the_inline_arc_pointer_equal() {
    let db = figure1_database();
    let cat = db.to_catalog();
    let rel = exec::execute(&Plan::scan("u2"), &cat).unwrap();
    let plan = Plan::Values(Arc::clone(&rel));
    let out = exec::execute(&plan, &cat).unwrap();
    assert!(Arc::ptr_eq(&out, &rel));
}

#[test]
fn rename_aliases_the_catalog_row_storage() {
    let db = figure1_database();
    let cat = db.to_catalog();
    let out = exec::execute(&Plan::scan("u1").rename("x"), &cat).unwrap();
    assert!(
        out.shares_rows_with(cat.get("u1").unwrap()),
        "Rename copied the rows instead of re-qualifying the schema"
    );
}

#[test]
fn pipelined_select_chain_matches_stepwise_materialization() {
    let db = figure1_database();
    let cat = db.to_catalog();

    // Fused: both selections run in one pass over the scan.
    let fused = Plan::scan("u2")
        .select(col("type").eq(lit_str("Tank")))
        .select(col("tid").gt(lit_i64(1)));
    let fused_out = exec::execute(&fused, &cat).unwrap();

    // Stepwise: materialize after every operator, like the old engine.
    let step1 = exec::execute(&Plan::scan("u2"), &cat).unwrap();
    let step2 = exec::execute(
        &Plan::Values(step1).select(col("type").eq(lit_str("Tank"))),
        &cat,
    )
    .unwrap();
    let step3 =
        exec::execute(&Plan::Values(step2).select(col("tid").gt(lit_i64(1))), &cat).unwrap();

    // Identical, including row order (both paths preserve input order).
    assert_eq!(*fused_out, *step3);
    assert!(!fused_out.is_empty());
}

#[test]
fn pipelined_select_project_matches_stepwise_materialization() {
    let db = figure1_database();
    let cat = db.to_catalog();

    let pred = Expr::and([
        col("faction").eq(lit_str("Enemy")),
        col("tid").gt(lit_i64(0)),
    ]);
    let fused = Plan::scan("u3")
        .select(pred.clone())
        .project_names(["tid", "faction"]);
    let fused_out = exec::execute(&fused, &cat).unwrap();

    let step1 = exec::execute(&Plan::scan("u3"), &cat).unwrap();
    let step2 = exec::execute(&Plan::Values(step1).select(pred), &cat).unwrap();
    let step3 =
        exec::execute(&Plan::Values(step2).project_names(["tid", "faction"]), &cat).unwrap();

    assert_eq!(*fused_out, *step3);
    assert!(!fused_out.is_empty());
}

#[test]
fn select_project_rename_probe_chain_allocates_no_intermediates() {
    // The acceptance property of the streaming refactor: a chain of
    // σ/π/ρ and a hash-join probe over catalog scans moves every tuple
    // from base storage to the final result without one intermediate
    // Vec<Row>. Both join inputs here bottom out in scans, so even the
    // build side indexes shared storage zero-copy.
    let db = figure1_database();
    let cat = db.to_catalog();
    let p = Plan::scan("u2")
        .rename("t")
        .select(col("t.type").eq(lit_str("Tank")))
        .join(Plan::scan("u3").rename("f"), col("t.tid").eq(col("f.tid")))
        .select(col("f.faction").eq(lit_str("Enemy")))
        .project_names(["t.tid", "f.faction"]);
    let (out, stats) = exec::execute_with_stats(&p, &cat).unwrap();
    assert!(!out.is_empty());
    assert_eq!(
        stats.buffers, 0,
        "σ/π/ρ/join-probe chain materialized an intermediate: {stats:?}"
    );
    assert_eq!(stats.buffered_rows, 0);
    // The same counter is visible in EXPLAIN output.
    let text = explain::explain(&p, &cat);
    assert!(
        text.contains("0 intermediate row buffer(s)"),
        "EXPLAIN should report the zero-buffer pipeline:\n{text}"
    );
    // And the static prediction matches the runtime count.
    assert_eq!(exec::predicted_buffers(&p, &cat), stats.buffers);
}

#[test]
fn breakers_are_counted_and_reported() {
    let db = figure1_database();
    let cat = db.to_catalog();
    // Distinct is a pipeline breaker: one seen-set buffer.
    let p = Plan::scan("u1").project_names(["tid"]).distinct();
    let (out, stats) = exec::execute_with_stats(&p, &cat).unwrap();
    assert_eq!(stats.buffers, 1);
    assert_eq!(stats.buffered_rows, out.len());
    let text = explain::explain(&p, &cat);
    assert!(text.contains("1 intermediate row buffer(s)"), "{text}");
    assert_eq!(exec::predicted_buffers(&p, &cat), 1);
}

#[test]
fn streaming_and_reference_engines_agree_on_figure1_translation() {
    use u_relations::core::{possible, table};
    // Pin the two engines against each other on a real translated plan.
    let db = figure1_database();
    let cat = db.to_catalog();
    let q = table("r")
        .select(col("faction").eq(lit_str("Enemy")))
        .project(["id"]);
    let t = u_relations::core::translate(&db, &q).unwrap();
    let streamed = exec::execute(&t.plan, &cat).unwrap();
    let reference = exec::execute_reference(&t.plan, &cat).unwrap();
    let mut a = streamed.rows().to_vec();
    let mut b = reference.rows().to_vec();
    a.sort();
    b.sort();
    assert_eq!(a, b, "engines disagree on the translated plan");
    // End to end, the answer is still right.
    let ans = possible(&db, &q).unwrap();
    assert_eq!(ans.len(), 3);
}

#[test]
fn full_figure1_query_agrees_through_both_engines() {
    // End-to-end sanity: the paper's Example 3.6 query through the shared
    // engine still yields the three possible enemy tanks.
    use u_relations::core::{possible, table};
    let db = figure1_database();
    let q = table("r")
        .select(Expr::and([
            col("type").eq(lit_str("Tank")),
            col("faction").eq(lit_str("Enemy")),
        ]))
        .project(["id"]);
    let answers = possible(&db, &q).unwrap();
    assert_eq!(answers.len(), 3);
}
