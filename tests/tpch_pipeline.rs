//! End-to-end tests of the Section 6 pipeline at tiny scales: generator
//! invariants, the three queries across all three representations
//! (attribute-level, tuple-level, ULDB), the Figure 9 trends, and the
//! optimizer's plan shape on the translated queries.

use u_relations::core::{evaluate, possible, table, table_as, translate};
use u_relations::relalg::{col, exec, explain, lit_str, optimizer};
use u_relations::tpch::tuple_level::{expand_tuple_level, to_uldb};
use u_relations::tpch::{generate, q1, q2, q3, GenParams};

fn tiny(x: f64, z: f64, seed: u64) -> GenParams {
    let mut p = GenParams::paper(0.002, x, z);
    p.seed = seed;
    p
}

#[test]
fn attribute_and_tuple_level_agree_on_all_queries() {
    let out = generate(&tiny(0.06, 0.25, 21)).unwrap();
    let tl = expand_tuple_level(&out.db, 1 << 16, 1 << 22).unwrap();
    for (name, q) in [("q1", q1()), ("q2", q2()), ("q3", q3())] {
        let a = possible(&out.db, &q).unwrap();
        let b = possible(&tl, &q).unwrap();
        assert!(a.set_eq(&b), "{name}: attribute vs tuple level disagree");
    }
}

#[test]
fn uldb_agrees_on_a_single_relation_query() {
    // Tuple-level → ULDB mapping preserves query answers (modulo
    // erroneous tuples, which a selection cannot introduce).
    let out = generate(&tiny(0.05, 0.1, 5)).unwrap();
    let tl = expand_tuple_level(&out.db, 1 << 16, 1 << 22).unwrap();
    let mut uldb = to_uldb(&tl).unwrap();

    let pred = col("c_mktsegment").eq(lit_str("BUILDING"));
    let a = possible(
        &tl,
        &table("customer")
            .select(pred.clone())
            .project(["c_custkey", "c_mktsegment"]),
    )
    .unwrap();

    uldb.select("customer", "building", &pred).unwrap();
    let mut got: Vec<i64> = uldb
        .relation("building")
        .unwrap()
        .xtuples
        .iter()
        .flat_map(|t| &t.alts)
        .map(|alt| alt.values[0].as_int().unwrap())
        .collect();
    got.sort_unstable();
    got.dedup();
    let mut want: Vec<i64> = a.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
    want.sort_unstable();
    want.dedup();
    assert_eq!(got, want);
}

#[test]
fn q3_self_join_on_nation_is_well_formed() {
    // nation appears twice; the translation must not confuse the copies.
    let out = generate(&tiny(0.05, 0.25, 8)).unwrap();
    let q = table_as("nation", "n1")
        .join(
            table_as("nation", "n2"),
            col("n1.n_regionkey").eq(col("n2.n_regionkey")),
        )
        .project(["n1.n_name", "n2.n_name"]);
    let ans = possible(&out.db, &q).unwrap();
    // Every nation pairs at least with itself within its region.
    assert!(ans.len() >= 25, "{}", ans.len());
}

#[test]
fn q3_plan_shape_survives_correlation_aware_estimates() {
    // The correlation-aware ψ estimates (joint Var/Rng pair NDV, PR 4)
    // must leave the optimized Q3 plan shape unchanged or better:
    // every ψ-merge join stays a hash join (no nested-loop demotions),
    // optimization still reduces the rows flowing through the executor,
    // and the answers are untouched.
    let out = generate(&tiny(0.05, 0.25, 8)).unwrap();
    let prepared = out.db.prepare();
    let t = translate(&out.db, &q3()).unwrap();
    let optimized = optimizer::optimize(&t.plan, prepared.catalog()).unwrap();
    // Every equi-keyed join must remain a hash join; ψ-only joins (no
    // equi conjunct exists between their groups) may nested-loop, but
    // only between tiny inputs — the reorderer must not schedule a
    // ψ-only cross over large sides.
    fn check_joins(p: &u_relations::relalg::Plan, c: &u_relations::relalg::Catalog) {
        use u_relations::relalg::Plan;
        match p {
            Plan::Join { left, right, pred } => {
                let (ls, rs) = (left.schema(c).unwrap(), right.schema(c).unwrap());
                let cond = exec::JoinCondition::analyze(pred, &ls, &rs);
                if cond.equi.is_empty() {
                    let pairs = optimizer::est_rows(left, c) * optimizer::est_rows(right, c);
                    assert!(
                        pairs < 100_000.0,
                        "ψ-only nested loop over large inputs ({pairs} est pairs)"
                    );
                }
                check_joins(left, c);
                check_joins(right, c);
            }
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::Distinct(input)
            | Plan::Rename { input, .. } => check_joins(input, c),
            Plan::SemiJoin { left, right, .. }
            | Plan::AntiJoin { left, right, .. }
            | Plan::Union { left, right }
            | Plan::Difference { left, right } => {
                check_joins(left, c);
                check_joins(right, c);
            }
            _ => {}
        }
    }
    check_joins(&optimized, prepared.catalog());
    let text = explain::explain(&optimized, prepared.catalog());
    assert!(text.contains("Hash Join"), "{text}");
    // One physical join per logical merge survives optimization.
    assert_eq!(optimized.join_count(), t.plan.join_count());
    // Optimization must not inflate executed work: compare the rows
    // carried by batches through both plans.
    let (raw_out, raw) = exec::execute_with_stats(&t.plan, prepared.catalog()).unwrap();
    let (opt_out, opt) = exec::execute_with_stats(&optimized, prepared.catalog()).unwrap();
    assert!(raw_out.set_eq(&opt_out), "optimization changed Q3 answers");
    assert!(
        opt.batch_rows <= raw.batch_rows,
        "optimized Q3 moves more rows than the raw translation: {opt:?} vs {raw:?}"
    );
}

#[test]
fn figure9_trends_hold_at_tiny_scale() {
    // Worlds exponential in x; size linear; lworlds grows with z.
    let w_small = generate(&tiny(0.01, 0.25, 3)).unwrap();
    let w_large = generate(&tiny(0.1, 0.25, 3)).unwrap();
    assert!(w_large.stats.worlds_log10 > 5.0 * w_small.stats.worlds_log10.max(0.1));
    assert!(
        (w_large.stats.size_bytes as f64) < 3.0 * w_small.stats.size_bytes as f64,
        "size must grow mildly: {} vs {}",
        w_large.stats.size_bytes,
        w_small.stats.size_bytes
    );

    let z_low = generate(&tiny(0.1, 0.1, 3)).unwrap();
    let z_high = generate(&tiny(0.1, 0.5, 3)).unwrap();
    let hi_dfc = |s: &u_relations::tpch::GenStats| {
        s.dfc_histogram
            .iter()
            .filter(|(d, _)| *d > 1)
            .map(|(_, c)| c)
            .sum::<usize>()
    };
    assert!(hi_dfc(&z_high.stats) > hi_dfc(&z_low.stats));
}

#[test]
fn query_results_decode_per_world_on_tpch() {
    // Exhaustive world check on an ultra-tiny instance: restrict the
    // uncertainty so the world count stays enumerable.
    let mut p = GenParams::paper(0.002, 0.004, 0.25);
    p.seed = 77;
    let out = generate(&p).unwrap();
    if out.db.world.world_count_exact().unwrap_or(u128::MAX) > 512 {
        // Seed-dependent; skip silently if the pool came out too big.
        return;
    }
    let q = q2();
    let u = evaluate(&out.db, &q).unwrap();
    for f in out.db.world.worlds(512).unwrap() {
        let got = u.tuples_in_world(&out.db.world, &f);
        let want = u_relations::core::oracle_eval(&q, &out.db, &f, 512).unwrap();
        assert!(got.set_eq(&want.sorted_set()));
    }
}

#[test]
fn generation_scales_preserve_query_answerability() {
    for s in [0.002, 0.01] {
        let mut p = GenParams::paper(s, 0.02, 0.25);
        p.seed = 13;
        let out = generate(&p).unwrap();
        out.db.validate().unwrap();
        for q in [q1(), q2(), q3()] {
            possible(&out.db, &q).unwrap();
        }
    }
}
