//! Cross-crate tests of certain answers and confidence computation on
//! realistic (generated) data — Lemma 4.3 and the Section 7 extension
//! working together on TPC-H query results, plus Hoeffding error-bound
//! coverage for the Monte-Carlo confidence estimator and its wiring
//! into the `possible` entry point.

use u_relations::core::certain::{
    certain_exact, certain_lemma43, certain_lemma43_relational, certain_with_coverage,
};
use u_relations::core::normalize::normalize_urelations;
use u_relations::core::prob::{
    confidence, confidence_monte_carlo, coverage_probability, tuple_confidences, ConfidenceMethod,
};
use u_relations::core::worldops::{condition_domain, repair_key};
use u_relations::core::{
    certain_with_confidence, evaluate, possible, possible_with_confidence, table, WsDescriptor,
};
use u_relations::relalg::{col, lit_i64, Relation, Value};
use u_relations::tpch::{generate, GenParams};

fn tiny() -> u_relations::core::UDatabase {
    let mut p = GenParams::paper(0.002, 0.05, 0.25);
    p.seed = 31;
    generate(&p).unwrap().db
}

#[test]
fn certain_pipeline_on_tpch_results() {
    let db = tiny();
    // Certain (o_orderkey) pairs of cheap orders: compare the three
    // implementations on the query result.
    let q = table("orders")
        .select(col("o_totalprice").lt(lit_i64(25_000_000)))
        .project(["o_orderkey"]);
    let u = evaluate(&db, &q).unwrap();
    let exact = certain_exact(&u, &db.world).unwrap();
    let n = normalize_urelations(&[&u], &db.world).unwrap();
    let direct = certain_lemma43(&n.relations[0], &n.world).unwrap();
    let relational = certain_lemma43_relational(&n.relations[0], &n.world).unwrap();
    assert!(direct.set_eq(&exact), "lemma vs exact");
    assert!(relational.set_eq(&exact), "relational lemma vs exact");
    // Certain answers are a subset of possible ones.
    let possible = u.possible_tuples();
    for row in exact.rows() {
        assert!(possible.rows().contains(row));
    }
}

#[test]
fn confidences_bound_certainty() {
    let db = tiny();
    let q = table("customer").project(["c_mktsegment"]);
    let u = evaluate(&db, &q).unwrap();
    let confs = tuple_confidences(&u, &db.world).unwrap();
    let certain = certain_exact(&u, &db.world).unwrap();
    for (vals, conf) in &confs {
        assert!((0.0..=1.0 + 1e-9).contains(conf));
        let is_certain = certain.rows().iter().any(|r| r.to_vec() == *vals);
        if is_certain {
            assert!((conf - 1.0).abs() < 1e-9, "certain tuple with conf {conf}");
        }
    }
    // Monte Carlo agrees with exact for one representative group.
    if let Some((vals, conf)) = confs.iter().find(|(_, c)| *c < 0.999) {
        let descs: Vec<_> = u
            .rows()
            .iter()
            .filter(|r| r.vals.to_vec() == *vals)
            .map(|r| r.desc.clone())
            .collect();
        let est = confidence_monte_carlo(&descs, &db.world, 20_000, 3).unwrap();
        assert!((est - conf).abs() < 0.03, "{est} vs {conf}");
    }
}

#[test]
fn monte_carlo_respects_hoeffding_bounds() {
    // By Hoeffding's inequality, n i.i.d. world samples estimate a
    // tuple confidence within ε = sqrt(ln(2/δ) / 2n) of the exact value
    // with probability ≥ 1 − δ. With n = 20 000 and δ = 10⁻⁶,
    // ε ≈ 0.019; the seeds are fixed, so a pass here is permanent and a
    // failure would mean the estimator (not the luck) is broken.
    use u_relations::core::{Var, WorldTable};
    let mut w = WorldTable::new();
    w.add_var(Var(1), vec![0, 1]).unwrap();
    w.add_var(Var(2), vec![0, 1, 2]).unwrap();
    w.add_var(Var(3), vec![0, 1]).unwrap();
    w.set_probabilities(Var(1), vec![0.9, 0.1]).unwrap();
    w.set_probabilities(Var(2), vec![0.5, 0.3, 0.2]).unwrap();

    let d = |pairs: &[(u32, u64)]| {
        WsDescriptor::from_pairs(pairs.iter().map(|&(v, x)| (Var(v), x))).unwrap()
    };
    let cases: Vec<Vec<WsDescriptor>> = vec![
        vec![d(&[(1, 0)])],
        vec![d(&[(1, 0)]), d(&[(2, 1)])],
        vec![d(&[(1, 1), (2, 0)]), d(&[(2, 2)]), d(&[(3, 1)])],
        vec![d(&[(1, 0), (2, 0), (3, 0)])],
    ];

    let samples = 20_000;
    let delta = 1e-6;
    let method = ConfidenceMethod::MonteCarlo { samples, seed: 0 };
    let eps = method.error_bound(delta);
    assert!((0.015..0.025).contains(&eps), "ε = {eps}");
    for descs in &cases {
        let exact = confidence(descs, &w).unwrap();
        for seed in [1u64, 42, 31337] {
            let est = confidence_monte_carlo(descs, &w, samples, seed).unwrap();
            assert!(
                (est - exact).abs() <= eps,
                "seed {seed}: |{est} − {exact}| > ε = {eps} for {descs:?}"
            );
        }
    }
    // Exact method reports a zero bound.
    assert_eq!(ConfidenceMethod::Exact.error_bound(delta), 0.0);
}

#[test]
fn possible_entry_point_supports_the_estimator() {
    // The estimator option is wired into `possible`: the answer set is
    // identical, and each tuple's Monte-Carlo confidence is within the
    // Hoeffding bound of the exact one.
    let db = tiny();
    let q = table("customer").project(["c_mktsegment"]);
    let answers = possible(&db, &q).unwrap();

    let exact = possible_with_confidence(&db, &q, ConfidenceMethod::Exact).unwrap();
    let method = ConfidenceMethod::MonteCarlo {
        samples: 20_000,
        seed: 7,
    };
    let estimated = possible_with_confidence(&db, &q, method).unwrap();
    let eps = method.error_bound(1e-6);

    // Same tuples in the same grouping order, confidences within ε.
    assert_eq!(exact.len(), estimated.len());
    assert_eq!(exact.len(), answers.len());
    for ((vals_e, conf_e), (vals_m, conf_m)) in exact.iter().zip(&estimated) {
        assert_eq!(vals_e, vals_m);
        assert!(
            (conf_e - conf_m).abs() <= eps,
            "{vals_e:?}: exact {conf_e} vs estimate {conf_m} (ε = {eps})"
        );
        assert!(answers.rows().iter().any(|r| r.to_vec() == *vals_e));
    }
    // Determinism: same seed, same estimates.
    let again = possible_with_confidence(&db, &q, method).unwrap();
    assert_eq!(estimated, again);
}

#[test]
fn certain_entry_point_supports_the_estimator() {
    // The certain twin of `possible_with_confidence`: exact coverage
    // checking reproduces the exact certain set, and the Monte-Carlo
    // coverage estimator reports the same tuples (within its Hoeffding
    // guarantee) with estimates within ε of 1.
    let db = tiny();
    let q = table("customer").project(["c_mktsegment"]);
    let u = evaluate(&db, &q).unwrap();
    let exact_set = certain_exact(&u, &db.world).unwrap();

    let via_exact = certain_with_confidence(&db, &q, ConfidenceMethod::Exact).unwrap();
    assert_eq!(via_exact.len(), exact_set.len());
    for (vals, coverage) in &via_exact {
        assert_eq!(*coverage, 1.0);
        assert!(exact_set.rows().iter().any(|r| r.to_vec() == *vals));
    }

    let method = ConfidenceMethod::MonteCarlo {
        samples: 20_000,
        seed: 11,
    };
    let eps = method.error_bound(1e-6);
    let via_mc = certain_with_confidence(&db, &q, method).unwrap();
    // Every truly certain tuple passes the 1 − ε threshold (fixed seed:
    // a pass here is permanent), with its estimate within ε of 1.
    for row in exact_set.rows() {
        let got = via_mc.iter().find(|(vals, _)| *vals == row.to_vec());
        let (_, coverage) = got.expect("certain tuple dropped by the estimator");
        assert!(*coverage >= 1.0 - eps);
    }
    // And no clearly-uncertain tuple (true coverage < 1 − 2ε) sneaks in.
    for (vals, coverage) in &via_mc {
        let descs: Vec<_> = u
            .rows()
            .iter()
            .filter(|r| r.vals.to_vec() == *vals)
            .map(|r| r.desc.clone())
            .collect();
        let true_cov = coverage_probability(&descs, &db.world, ConfidenceMethod::Exact).unwrap();
        assert!(
            true_cov >= 1.0 - 2.0 * eps,
            "{vals:?}: true coverage {true_cov} reported as certain ({coverage})"
        );
    }
    // Determinism: same seed, same report.
    assert_eq!(via_mc, certain_with_confidence(&db, &q, method).unwrap());
}

#[test]
fn coverage_estimates_respect_hoeffding_bounds() {
    // Coverage probability is the certain-side quantity: compare the
    // Monte-Carlo estimate against the exact Shannon expansion under
    // the same ε bound used for `possible` confidences.
    use u_relations::core::{Var, WorldTable};
    let mut w = WorldTable::new();
    w.add_var(Var(1), vec![0, 1]).unwrap();
    w.add_var(Var(2), vec![0, 1, 2]).unwrap();

    let d = |pairs: &[(u32, u64)]| {
        WsDescriptor::from_pairs(pairs.iter().map(|&(v, x)| (Var(v), x))).unwrap()
    };
    let full_cover = vec![d(&[(1, 0)]), d(&[(1, 1)])]; // coverage 1
    let partial = vec![d(&[(1, 0)]), d(&[(2, 1)])]; // coverage 2/3 + 1/3·1/2...
    let samples = 20_000;
    let method = ConfidenceMethod::MonteCarlo { samples, seed: 0 };
    let eps = method.error_bound(1e-6);
    for descs in [&full_cover, &partial] {
        let exact = coverage_probability(descs, &w, ConfidenceMethod::Exact).unwrap();
        for seed in [2u64, 77, 4096] {
            let est =
                coverage_probability(descs, &w, ConfidenceMethod::MonteCarlo { samples, seed })
                    .unwrap();
            assert!(
                (est - exact).abs() <= eps,
                "seed {seed}: |{est} − {exact}| > ε = {eps}"
            );
        }
    }
    // certain_with_coverage on a hand-built U-relation: the covered
    // tuple is reported, the partial one is not.
    let mut u = u_relations::core::URelation::partition("u", ["a"]);
    u.push_simple(full_cover[0].clone(), 1, vec![Value::Int(7)])
        .unwrap();
    u.push_simple(full_cover[1].clone(), 2, vec![Value::Int(7)])
        .unwrap();
    u.push_simple(partial[0].clone(), 3, vec![Value::Int(8)])
        .unwrap();
    u.push_simple(partial[1].clone(), 4, vec![Value::Int(8)])
        .unwrap();
    let got = certain_with_coverage(&u, &w, method, 1e-6).unwrap();
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].0, vec![Value::Int(7)]);
    let exact_side = certain_with_coverage(&u, &w, ConfidenceMethod::Exact, 1e-6).unwrap();
    assert_eq!(exact_side, vec![(vec![Value::Int(7)], 1.0)]);
}

#[test]
fn repair_key_then_query_then_condition() {
    // The full world-ops lifecycle on a small relation: create
    // uncertainty with REPAIR KEY, query it, then condition it away.
    let input = Relation::from_rows(
        ["city", "population", "w"],
        vec![
            vec![Value::str("berlin"), Value::Int(3_500_000), Value::Int(2)],
            vec![Value::str("berlin"), Value::Int(3_700_000), Value::Int(6)],
            vec![Value::str("paris"), Value::Int(2_100_000), Value::Int(1)],
        ],
    )
    .unwrap();
    let db = repair_key("cities", &input, &["city"], Some("w")).unwrap();
    assert_eq!(db.world.world_count_exact(), Some(2));

    let pops = evaluate(&db, &table("cities").project(["population"])).unwrap();
    let confs = tuple_confidences(&pops, &db.world).unwrap();
    let p37 = confs
        .iter()
        .find(|(v, _)| v[0] == Value::Int(3_700_000))
        .unwrap()
        .1;
    assert!((p37 - 0.75).abs() < 1e-9);

    // Conditioning on the higher reading leaves one world.
    let var = db.world.vars().next().unwrap();
    let confirmed = condition_domain(&db, var, &[1]).unwrap();
    assert_eq!(confirmed.world.world_count_exact(), Some(1));
    let pops = evaluate(&confirmed, &table("cities").project(["population"])).unwrap();
    let cert = certain_exact(&pops, &confirmed.world).unwrap();
    assert!(cert.rows().iter().any(|r| r[0] == Value::Int(3_700_000)));
}

#[test]
fn repair_key_on_generated_duplicates() {
    // Derive a key-violating relation from generated TPC-H data: project
    // customer onto (c_nationkey, c_mktsegment) and repair the nation key
    // — every nation ends up with exactly one possible segment.
    let db = tiny();
    let q = table("customer").project(["c_nationkey", "c_mktsegment"]);
    let u = evaluate(&db, &q).unwrap();
    let dirty = u.possible_tuples();
    let repaired = repair_key("pref", &dirty, &["c_nationkey"], None).unwrap();
    for (_, inst) in repaired
        .possible_worlds(1 << 12)
        .unwrap_or_default()
        .into_iter()
        .take(3)
    {
        let r = &inst["pref"];
        let mut keys: Vec<i64> = r.rows().iter().map(|x| x[0].as_int().unwrap()).collect();
        keys.sort_unstable();
        let n = keys.len();
        keys.dedup();
        assert_eq!(n, keys.len(), "key must be unique per world");
    }
}
