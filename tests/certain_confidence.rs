//! Cross-crate tests of certain answers and confidence computation on
//! realistic (generated) data — Lemma 4.3 and the Section 7 extension
//! working together on TPC-H query results.

use u_relations::core::certain::{certain_exact, certain_lemma43, certain_lemma43_relational};
use u_relations::core::normalize::normalize_urelations;
use u_relations::core::prob::{confidence_monte_carlo, tuple_confidences};
use u_relations::core::worldops::{condition_domain, repair_key};
use u_relations::core::{evaluate, table};
use u_relations::relalg::{col, lit_i64, Relation, Value};
use u_relations::tpch::{generate, GenParams};

fn tiny() -> u_relations::core::UDatabase {
    let mut p = GenParams::paper(0.002, 0.05, 0.25);
    p.seed = 31;
    generate(&p).unwrap().db
}

#[test]
fn certain_pipeline_on_tpch_results() {
    let db = tiny();
    // Certain (o_orderkey) pairs of cheap orders: compare the three
    // implementations on the query result.
    let q = table("orders")
        .select(col("o_totalprice").lt(lit_i64(25_000_000)))
        .project(["o_orderkey"]);
    let u = evaluate(&db, &q).unwrap();
    let exact = certain_exact(&u, &db.world).unwrap();
    let n = normalize_urelations(&[&u], &db.world).unwrap();
    let direct = certain_lemma43(&n.relations[0], &n.world).unwrap();
    let relational = certain_lemma43_relational(&n.relations[0], &n.world).unwrap();
    assert!(direct.set_eq(&exact), "lemma vs exact");
    assert!(relational.set_eq(&exact), "relational lemma vs exact");
    // Certain answers are a subset of possible ones.
    let possible = u.possible_tuples();
    for row in exact.rows() {
        assert!(possible.rows().contains(row));
    }
}

#[test]
fn confidences_bound_certainty() {
    let db = tiny();
    let q = table("customer").project(["c_mktsegment"]);
    let u = evaluate(&db, &q).unwrap();
    let confs = tuple_confidences(&u, &db.world).unwrap();
    let certain = certain_exact(&u, &db.world).unwrap();
    for (vals, conf) in &confs {
        assert!((0.0..=1.0 + 1e-9).contains(conf));
        let is_certain = certain.rows().iter().any(|r| r.to_vec() == *vals);
        if is_certain {
            assert!((conf - 1.0).abs() < 1e-9, "certain tuple with conf {conf}");
        }
    }
    // Monte Carlo agrees with exact for one representative group.
    if let Some((vals, conf)) = confs.iter().find(|(_, c)| *c < 0.999) {
        let descs: Vec<_> = u
            .rows()
            .iter()
            .filter(|r| r.vals.to_vec() == *vals)
            .map(|r| r.desc.clone())
            .collect();
        let est = confidence_monte_carlo(&descs, &db.world, 20_000, 3).unwrap();
        assert!((est - conf).abs() < 0.03, "{est} vs {conf}");
    }
}

#[test]
fn repair_key_then_query_then_condition() {
    // The full world-ops lifecycle on a small relation: create
    // uncertainty with REPAIR KEY, query it, then condition it away.
    let input = Relation::from_rows(
        ["city", "population", "w"],
        vec![
            vec![Value::str("berlin"), Value::Int(3_500_000), Value::Int(2)],
            vec![Value::str("berlin"), Value::Int(3_700_000), Value::Int(6)],
            vec![Value::str("paris"), Value::Int(2_100_000), Value::Int(1)],
        ],
    )
    .unwrap();
    let db = repair_key("cities", &input, &["city"], Some("w")).unwrap();
    assert_eq!(db.world.world_count_exact(), Some(2));

    let pops = evaluate(&db, &table("cities").project(["population"])).unwrap();
    let confs = tuple_confidences(&pops, &db.world).unwrap();
    let p37 = confs
        .iter()
        .find(|(v, _)| v[0] == Value::Int(3_700_000))
        .unwrap()
        .1;
    assert!((p37 - 0.75).abs() < 1e-9);

    // Conditioning on the higher reading leaves one world.
    let var = db.world.vars().next().unwrap();
    let confirmed = condition_domain(&db, var, &[1]).unwrap();
    assert_eq!(confirmed.world.world_count_exact(), Some(1));
    let pops = evaluate(&confirmed, &table("cities").project(["population"])).unwrap();
    let cert = certain_exact(&pops, &confirmed.world).unwrap();
    assert!(cert.rows().iter().any(|r| r[0] == Value::Int(3_700_000)));
}

#[test]
fn repair_key_on_generated_duplicates() {
    // Derive a key-violating relation from generated TPC-H data: project
    // customer onto (c_nationkey, c_mktsegment) and repair the nation key
    // — every nation ends up with exactly one possible segment.
    let db = tiny();
    let q = table("customer").project(["c_nationkey", "c_mktsegment"]);
    let u = evaluate(&db, &q).unwrap();
    let dirty = u.possible_tuples();
    let repaired = repair_key("pref", &dirty, &["c_nationkey"], None).unwrap();
    for (_, inst) in repaired
        .possible_worlds(1 << 12)
        .unwrap_or_default()
        .into_iter()
        .take(3)
    {
        let r = &inst["pref"];
        let mut keys: Vec<i64> = r.rows().iter().map(|x| x[0].as_int().unwrap()).collect();
        keys.sort_unstable();
        let n = keys.len();
        keys.dedup();
        assert_eq!(n, keys.len(), "key must be unique per world");
    }
}
