//! Differential tests of the streaming executor.
//!
//! Three oracles pin the streaming (PR 2) and batched (PR 3) executors
//! down:
//!
//! 1. **World expansion** — for randomly generated (valid, reduced)
//!    or-set U-relational databases and random logical queries, the
//!    translated streaming path's `possible` / `certain` answers must
//!    equal the naive expand-all-worlds oracle
//!    (`worldops::expand_answers`), which materializes every world and
//!    queries it through the retained reference engine. Any bug in the
//!    translation, the optimizer, or the streaming operators shows up
//!    as a divergence.
//! 2. **Reference engine** — for random plain relational plans, the
//!    streaming executor and the retained materializing engine
//!    (`exec::execute_reference`) must produce identical *multisets* of
//!    rows (row order may differ: the engines pick hash-join build
//!    sides differently), and the `EXPLAIN` buffer counter must match
//!    the runtime `ExecStats`.
//!
//! 3. **Batched vs reference** — the streaming executor's *vectorized*
//!    batch pipelines (PR 3) are differentially pinned twice: random
//!    plain plans run through `exec::execute` (which batches whenever
//!    the pipeline supports it) against `execute_reference`, and random
//!    *translated* queries over random reduced or-set databases compare
//!    the batched plan output row-for-row against the reference engine,
//!    with an `ExecStats` assertion that batched σ/π/probe pipelines
//!    allocated zero per-row intermediate buffers.
//!
//! 4. **Parallel vs serial** — the morsel-driven parallel engine (PR 4)
//!    must be *byte-identical* to serial execution: for random reduced
//!    or-set databases with translated+optimized queries, and for random
//!    plain relational plans, running with `RELALG_THREADS ∈ {2, 4}`
//!    (tiny morsels so small inputs still fan out) must produce exactly
//!    the serial row vector — same rows, same order — while `ExecStats`
//!    reports the planned worker count.
//!
//! 5. **Storage modes** — compressed column segments with zone-map
//!    skipping (PR 6) must be invisible to query output: the same plan
//!    under {segmented, paged with a 2-slot cache, disk with a 2-slot
//!    buffer pool} × {1, 4} workers, with 3-row segments so even tiny
//!    databases cross segment boundaries and evict, must emit exactly
//!    the plain-image serial row vector.
//!
//! Case counts scale with `PROPTEST_CASES` (the CI differential job
//! raises it well above the local default); generation is deterministic
//! per test name, so failures reproduce exactly.

use proptest::prelude::*;
use u_relations::core::certain::certain_answers;
use u_relations::core::reduce::reduce;
use u_relations::core::{
    expand_answers, possible, table, table_as, translate, UDatabase, UQuery, URelation, Var,
    WorldTable, WsDescriptor,
};
use u_relations::relalg::{
    col, exec, lit_i64, optimizer, Catalog, Expr, Plan, Relation, Row, StorageMode, Value,
};

fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

// ---------------------------------------------------------------------------
// Random U-relational databases (valid by construction, then reduced)
// ---------------------------------------------------------------------------

/// How one `(tuple, attribute)` field is filled.
///
/// Full or-sets cover their variable's entire domain — the shape the
/// paper's or-set construction (Theorem 2.4) produces, and the shape
/// Proposition 3.3's reduction guarantee assumes: a tuple present in a
/// world has *all* its fields defined there. `Partial` or-sets
/// deliberately break that guarantee (the field is defined in only some
/// worlds, so the tuple silently drops out of the rest). `possible`
/// stays correct on them — every surviving row completes somewhere —
/// but the Lemma 4.3 `certain` path would over-approximate, which this
/// very harness demonstrated; `certain_answers` now detects partial
/// fields and answers by exact world expansion, and the generator
/// produces them so the oracle keeps that route honest. `Absent` fields
/// make whole tuples uncompletable and exercise the reduction cascade.
#[derive(Clone, Debug)]
enum Cell {
    /// No row: the field is undefined everywhere (the reduction step
    /// must then remove the tuple's other rows).
    Absent,
    /// One unconditional row.
    Certain(i64),
    /// One row per domain value of a variable (a full or-set).
    OrSet { second_var: bool, vals: [i64; 3] },
    /// Rows for only the first `keep` domain values (clamped to a strict
    /// subset): a partial or-set, outside the reduction guarantee.
    Partial {
        second_var: bool,
        keep: u64,
        vals: [i64; 3],
    },
}

fn arb_cell() -> impl Strategy<Value = Cell> {
    prop_oneof![
        1 => Just(Cell::Absent),
        3 => (0i64..4).prop_map(Cell::Certain),
        4 => (any::<bool>(), (0i64..4, 0i64..4, 0i64..4)).prop_map(
            |(second_var, (v0, v1, v2))| Cell::OrSet {
                second_var,
                vals: [v0, v1, v2],
            }
        ),
        2 => (any::<bool>(), 1u64..3, (0i64..4, 0i64..4, 0i64..4)).prop_map(
            |(second_var, keep, (v0, v1, v2))| Cell::Partial {
                second_var,
                keep,
                vals: [v0, v1, v2],
            }
        ),
    ]
}

/// A database over two independent variables and one logical relation
/// `r[a, b]` stored as two vertical partitions (one per attribute).
/// Each `(tid, attr)` field is certain, a full or partial or-set, or
/// absent. The
/// database is valid by construction (or-set rows of one field are
/// pairwise inconsistent; partitions share no value columns) and is
/// reduced before use, as the paper's translation assumes.
fn arb_udb() -> impl Strategy<Value = UDatabase> {
    (
        2u64..4,
        2u64..4,
        prop::collection::vec(arb_cell(), 6), // 3 tids × 2 attrs
    )
        .prop_map(|(d1, d2, cells)| {
            let mut w = WorldTable::new();
            w.add_var(Var(1), (0..d1).collect()).unwrap();
            w.add_var(Var(2), (0..d2).collect()).unwrap();
            let doms = [d1, d2];
            let mut db = UDatabase::new(w);
            db.add_relation("r", ["a", "b"]).unwrap();
            for (ai, attr) in ["a", "b"].into_iter().enumerate() {
                let mut part = URelation::partition(format!("u_{attr}"), [attr]);
                for tid in 0..3i64 {
                    let cell = &cells[ai * 3 + tid as usize];
                    match cell {
                        Cell::Absent => {}
                        Cell::Certain(v) => part
                            .push_simple(WsDescriptor::empty(), tid + 1, vec![Value::Int(*v)])
                            .unwrap(),
                        Cell::OrSet { second_var, vals } => {
                            let var = if *second_var { Var(2) } else { Var(1) };
                            let dom = doms[usize::from(*second_var)];
                            for l in 0..dom {
                                part.push_simple(
                                    WsDescriptor::singleton(var, l),
                                    tid + 1,
                                    vec![Value::Int(vals[l as usize % 3])],
                                )
                                .unwrap();
                            }
                        }
                        Cell::Partial {
                            second_var,
                            keep,
                            vals,
                        } => {
                            let var = if *second_var { Var(2) } else { Var(1) };
                            let dom = doms[usize::from(*second_var)];
                            // Clamp to a *strict* non-empty subset of the
                            // domain so the field really is partial.
                            for l in 0..(*keep).clamp(1, dom - 1) {
                                part.push_simple(
                                    WsDescriptor::singleton(var, l),
                                    tid + 1,
                                    vec![Value::Int(vals[l as usize % 3])],
                                )
                                .unwrap();
                            }
                        }
                    }
                }
                db.add_partition("r", part).unwrap();
            }
            db.validate().expect("generated database is valid");
            // The translation assumes a reduced database (Prop. 3.3).
            reduce(&mut db).expect("reduction succeeds");
            db
        })
}

/// Random logical queries over `r[a, b]`: selections, projections,
/// unions, a self-join, and `poss` both at the top and mid-query.
fn arb_query() -> impl Strategy<Value = UQuery> {
    let base = prop_oneof![
        Just(table("r")),
        (0i64..4).prop_map(|k| table("r").select(col("a").eq(lit_i64(k)))),
        (0i64..4).prop_map(|k| table("r").select(col("b").gt(lit_i64(k)))),
        Just(table("r").select(col("a").le(col("b")))),
        Just(table("r").project(["a"])),
        Just(table("r").project(["b", "a"])),
        (0i64..4, 0i64..4).prop_map(|(k1, k2)| {
            table("r")
                .select(col("a").eq(lit_i64(k1)))
                .project(["a"])
                .union(table("r").select(col("b").eq(lit_i64(k2))).project(["a"]))
        }),
        Just(
            table_as("r", "s1")
                .join(table_as("r", "s2"), col("s1.a").eq(col("s2.a")))
                .project(["s1.a", "s2.b"])
        ),
        (0i64..4).prop_map(|k| {
            table("r")
                .project(["a"])
                .poss()
                .select(col("a").lt(lit_i64(k)))
        }),
    ];
    (base, any::<bool>()).prop_map(|(q, wrap)| if wrap { q.poss() } else { q })
}

// ---------------------------------------------------------------------------
// Random plain relational plans (streaming vs reference engine)
// ---------------------------------------------------------------------------

/// Random base tables r(a, b) / s(c, d) with small integer domains so
/// joins actually match.
fn arb_catalog() -> impl Strategy<Value = Catalog> {
    let row = || (0i64..6, 0i64..6);
    (
        prop::collection::vec(row(), 0..12),
        prop::collection::vec(row(), 0..12),
    )
        .prop_map(|(r_rows, s_rows)| {
            let to_rel = |names: [&str; 2], rows: Vec<(i64, i64)>| {
                Relation::from_rows(
                    names,
                    rows.into_iter()
                        .map(|(x, y)| vec![Value::Int(x), Value::Int(y)])
                        .collect::<Vec<_>>(),
                )
                .unwrap()
            };
            let mut c = Catalog::new();
            c.insert("r", to_rel(["a", "b"], r_rows));
            c.insert("s", to_rel(["c", "d"], s_rows));
            c
        })
}

fn arb_pred() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0i64..6).prop_map(|k| col("a").eq(lit_i64(k))),
        (0i64..6).prop_map(|k| col("b").lt(lit_i64(k))),
        (0i64..6, 0i64..6)
            .prop_map(|(k1, k2)| Expr::or([col("a").eq(lit_i64(k1)), col("b").gt(lit_i64(k2))])),
        Just(col("a").le(col("b"))),
    ]
}

/// Random plans mixing every operator: hash joins (equi preds), nested
/// loops (theta/cross), semi/antijoins, set ops, distinct, rename.
fn arb_plan() -> impl Strategy<Value = Plan> {
    let leaf = prop_oneof![Just(Plan::scan("r")), Just(Plan::scan("s"))];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), arb_pred()).prop_map(|(p, e)| p.select(e)),
            inner.clone().prop_map(|p| p.distinct()),
            // Hash join r ⋈ s on b = c (schemas permitting).
            inner
                .clone()
                .prop_map(|p| Plan::scan("r").join(p.rename("x"), col("b").eq(col("x.c")))),
            // Theta join (nested loop) and cross product.
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.join(r, Expr::and([]))),
            inner
                .clone()
                .prop_map(|p| Plan::scan("r").join(p.rename("y"), col("b").lt(col("y.c")))),
            // Semi/antijoin against the other table.
            inner
                .clone()
                .prop_map(|p| p.semijoin(Plan::scan("s"), col("b").eq(col("c")))),
            inner
                .clone()
                .prop_map(|p| p.antijoin(Plan::scan("s"), col("b").eq(col("c")))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.union(r)),
            (inner.clone(), inner).prop_map(|(l, r)| l.difference(r)),
        ]
    })
}

fn sorted_rows(rel: &Relation) -> Vec<Row> {
    let mut rows = rel.rows().to_vec();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(48)))]

    /// The tentpole differential: translated + optimized + streamed
    /// query answers equal the expand-all-worlds ground truth.
    #[test]
    fn streaming_possible_and_certain_match_world_expansion(
        db in arb_udb(),
        q in arb_query(),
    ) {
        let (want_poss, want_cert) = expand_answers(&db, &q, 64).unwrap();
        let got_poss = possible(&db, &q).unwrap();
        prop_assert!(
            got_poss.set_eq(&want_poss),
            "possible answers diverge for {q:?}\nstreaming: {got_poss}\noracle: {want_poss}"
        );
        let got_cert = certain_answers(&db, &q).unwrap();
        prop_assert!(
            got_cert.set_eq(&want_cert),
            "certain answers diverge for {q:?}\nstreaming: {got_cert}\noracle: {want_cert}"
        );
        // Certain answers are possible answers.
        for row in got_cert.rows() {
            prop_assert!(want_poss.rows().contains(row));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(64)))]

    /// Batched execution vs the reference engine on *translated* plans:
    /// for random reduced or-set databases and random logical queries,
    /// the optimized plan runs through the vectorized batch pipelines
    /// and must produce exactly the reference engine's multiset of rows.
    /// Batched σ/π/probe pipelines must additionally report zero
    /// per-row intermediate buffers — the zero-materialization guarantee
    /// survives vectorization.
    #[test]
    fn batched_translated_plans_match_reference(
        db in arb_udb(),
        q in arb_query(),
    ) {
        let prepared = db.prepare();
        let t = translate(&db, &q).unwrap();
        let plan = optimizer::optimize(&t.plan, prepared.catalog()).unwrap();
        let streamed = exec::stream(&plan, prepared.catalog()).unwrap();
        let batched_rows = {
            let mut rows = streamed.collect_rows(None).unwrap();
            rows.sort();
            rows
        };
        let stats = streamed.stats();
        let reference = exec::execute_reference(&plan, prepared.catalog()).unwrap();
        prop_assert!(
            batched_rows == sorted_rows(&reference),
            "batched vs reference diverge for {q:?}\nplan: {plan:?}"
        );
        if streamed.batched() && stats.buffers == 0 {
            prop_assert!(
                stats.buffered_rows == 0,
                "bufferless batched pipeline copied rows: {stats:?}"
            );
        }
        // Every batched pipeline accounts for the rows it emitted.
        if streamed.batched() {
            prop_assert!(
                stats.batch_rows >= batched_rows.len(),
                "batch accounting lost rows: {stats:?} vs {}",
                batched_rows.len()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(48)))]

    /// The parallel-vs-serial oracle on *translated* plans: random
    /// reduced or-set databases, random logical queries, optimized
    /// plans — the morsel-driven engine at 2 and 4 workers must emit
    /// exactly the serial row vector (order included), and `ExecStats`
    /// must report the worker fan-out the prepare planned (which the
    /// static `predicted_workers` mirror agrees with).
    #[test]
    fn parallel_translated_plans_match_serial_byte_for_byte(
        db in arb_udb(),
        q in arb_query(),
    ) {
        let prepared = db.prepare();
        let t = translate(&db, &q).unwrap();
        let plan = optimizer::optimize(&t.plan, prepared.catalog()).unwrap();
        let serial_rows = {
            let mut cat = prepared.catalog().clone();
            cat.set_threads(1);
            exec::stream(&plan, &cat).unwrap().collect_rows(None).unwrap()
        };
        for threads in [2usize, 4] {
            let mut cat = prepared.catalog().clone();
            cat.set_threads(threads);
            // Tiny morsels + zero threshold: even 3-tuple databases
            // genuinely exercise the exchange and the ordered gather.
            cat.set_parallel_granularity(4, 0);
            let streamed = exec::stream(&plan, &cat).unwrap();
            let rows = streamed.collect_rows(None).unwrap();
            prop_assert!(
                rows == serial_rows,
                "parallel x{threads} differs from serial for {q:?}\nplan: {plan:?}"
            );
            let workers = streamed.planned_workers();
            prop_assert!(
                streamed.stats().workers == workers,
                "ExecStats workers {} != planned {workers}",
                streamed.stats().workers
            );
            // The static mirror cannot model runtime spill decisions: a
            // hash-join build that spills under a memory budget forces
            // the pull serial. Other spill kinds (dedup, sort,
            // aggregation) must NOT change the worker count, so the
            // assertion stays live for them.
            if !streamed.spilled_build() {
                prop_assert!(
                    exec::predicted_workers(&plan, &cat) == workers,
                    "static mirror disagrees with prepare for {plan:?}"
                );
            }
            prop_assert!(workers <= threads);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(64)))]

    /// The parallel-vs-serial oracle on random *plain* relational plans
    /// (hash joins, nested loops, semi/antijoins, set operations):
    /// byte-identical output at 2 and 4 workers.
    #[test]
    fn parallel_plain_plans_match_serial_byte_for_byte(
        catalog in arb_catalog(),
        plan in arb_plan(),
    ) {
        if plan.schema(&catalog).is_ok() {
            let serial_rows = {
                let mut cat = catalog.clone();
                cat.set_threads(1);
                exec::stream(&plan, &cat).unwrap().collect_rows(None).unwrap()
            };
            for threads in [2usize, 4] {
                let mut cat = catalog.clone();
                cat.set_threads(threads);
                cat.set_parallel_granularity(3, 0);
                let streamed = exec::stream(&plan, &cat).unwrap();
                let rows = streamed.collect_rows(None).unwrap();
                prop_assert!(
                    rows == serial_rows,
                    "parallel x{threads} differs from serial for {plan:?}"
                );
                prop_assert!(streamed.stats().workers == streamed.planned_workers());
            }
        }
    }
}

/// Deterministic pin of the batched zero-materialization guarantee: a
/// translated σ/π pipeline over the Figure 1 database runs vectorized,
/// emits batches, and allocates no per-row intermediate buffers.
#[test]
fn batched_translated_pipeline_reports_zero_row_buffers() {
    let db = u_relations::core::figure1_database();
    let cat = db.to_catalog();
    // A single-attribute query: late materialization merges exactly one
    // vertical partition, so the translated plan is a pure σ/π chain
    // with no join build side to buffer.
    let q = table("r")
        .select(col("type").eq(u_relations::relalg::lit_str("Tank")))
        .project(["type"]);
    let t = translate(&db, &q).unwrap();
    let plan = optimizer::optimize(&t.plan, &cat).unwrap();
    let streamed = exec::stream(&plan, &cat).unwrap();
    let n = streamed.collect_rows(None).unwrap().len();
    let stats = streamed.stats();
    assert!(streamed.batched(), "translated σ/π chain should vectorize");
    assert!(stats.batches > 0, "{stats:?}");
    assert!(stats.batch_rows >= n, "{stats:?}");
    assert_eq!(
        stats.buffers, 0,
        "batched pipeline must not allocate per-row intermediate buffers: {stats:?}"
    );
    assert_eq!(stats.buffered_rows, 0, "{stats:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(48)))]

    /// The spill-vs-in-memory oracle on *translated* plans: random
    /// reduced or-set databases and random logical queries run
    /// unbounded and under a memory budget tiny enough that every
    /// breaker buffer spills, at 1 and 4 workers — the budgeted output
    /// must be **byte-identical** (rows and order) to the unbounded
    /// serial pull.
    #[test]
    fn spilled_translated_plans_match_unbounded_byte_for_byte(
        db in arb_udb(),
        q in arb_query(),
    ) {
        let prepared = db.prepare();
        let t = translate(&db, &q).unwrap();
        let plan = optimizer::optimize(&t.plan, prepared.catalog()).unwrap();
        let unbounded_rows = {
            let mut cat = prepared.catalog().clone();
            cat.set_threads(1);
            exec::stream(&plan, &cat).unwrap().collect_rows(None).unwrap()
        };
        for threads in [1usize, 4] {
            let mut cat = prepared.catalog().clone();
            cat.set_threads(threads);
            cat.set_parallel_granularity(4, 0);
            // A few hundred bytes: every breaker that buffers at all
            // crosses its share and takes the spill path.
            cat.set_mem_budget(256);
            let streamed = exec::stream(&plan, &cat).unwrap();
            let rows = streamed.collect_rows(None).unwrap();
            prop_assert!(
                rows == unbounded_rows,
                "budgeted x{threads} differs from unbounded for {q:?}\nplan: {plan:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(64)))]

    /// The spill-vs-in-memory oracle on random *plain* relational plans
    /// (hash joins, nested loops, semi/antijoins, set operations,
    /// distinct): byte-identical output under a tiny budget at 1 and 4
    /// workers, and limited pulls (the row-cursor path, including the
    /// spilled-join bridge) agree with prefixes of the full pull.
    #[test]
    fn spilled_plain_plans_match_in_memory_byte_for_byte(
        catalog in arb_catalog(),
        plan in arb_plan(),
    ) {
        if plan.schema(&catalog).is_ok() {
            let unbounded_rows = {
                let mut cat = catalog.clone();
                cat.set_threads(1);
                exec::stream(&plan, &cat).unwrap().collect_rows(None).unwrap()
            };
            for threads in [1usize, 4] {
                let mut cat = catalog.clone();
                cat.set_threads(threads);
                cat.set_parallel_granularity(3, 0);
                cat.set_mem_budget(256);
                let streamed = exec::stream(&plan, &cat).unwrap();
                let rows = streamed.collect_rows(None).unwrap();
                prop_assert!(
                    rows == unbounded_rows,
                    "budgeted x{threads} differs from unbounded for {plan:?}"
                );
                // Limited pulls ride the row cursors over the same
                // prepared tree (spilled builds bridge batch-wise).
                let prefix = streamed.collect_rows(Some(3)).unwrap();
                prop_assert!(
                    prefix == unbounded_rows[..unbounded_rows.len().min(3)].to_vec(),
                    "limited budgeted pull diverges for {plan:?}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(48)))]

    /// The storage oracle on *translated* plans: random reduced or-set
    /// databases and random logical queries run against the plain
    /// columnar image and against compressed segments — decoded eagerly
    /// (segmented), through a 2-slot paged cache, and from on-disk
    /// segment files through a 2-slot buffer pool — at 1 and 4 workers.
    /// Segments are 3 rows so tiny databases still span several and the
    /// paged provider / buffer pool actually evict; output must be
    /// **byte-identical** (rows and order) to the plain serial pull,
    /// and the cold disk run must actually miss the undersized pool.
    #[test]
    fn segmented_translated_plans_match_plain_byte_for_byte(
        db in arb_udb(),
        q in arb_query(),
    ) {
        let prepared = db.prepare();
        let t = translate(&db, &q).unwrap();
        let plan = optimizer::optimize(&t.plan, prepared.catalog()).unwrap();
        let plain_rows = {
            let mut cat = prepared.catalog().clone();
            cat.set_threads(1);
            exec::stream(&plan, &cat).unwrap().collect_rows(None).unwrap()
        };
        for mode in [StorageMode::Segmented, StorageMode::Paged, StorageMode::Disk] {
            for threads in [1usize, 4] {
                let mut cat = prepared.catalog().clone();
                cat.set_storage(mode);
                cat.set_segment_layout(3, 2);
                cat.set_buffer_pool(2);
                cat.set_threads(threads);
                cat.set_parallel_granularity(4, 0);
                let streamed = exec::stream(&plan, &cat).unwrap();
                let rows = streamed.collect_rows(None).unwrap();
                prop_assert!(
                    rows == plain_rows,
                    "{mode:?} x{threads} differs from plain for {q:?}\nplan: {plan:?}"
                );
                // The first disk pull is cold: every produced row came
                // through a segment fetch, so the 2-slot pool must miss.
                if mode == StorageMode::Disk && threads == 1 && !plain_rows.is_empty() {
                    let stats = streamed.stats();
                    prop_assert!(
                        stats.pool_misses > 0,
                        "cold disk run never missed the 2-slot buffer pool for {q:?}"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(64)))]

    /// The storage oracle on random *plain* relational plans (hash
    /// joins, nested loops, semi/antijoins, set operations, distinct):
    /// byte-identical output across storage modes at 1 and 4 workers,
    /// and limited pulls agree with prefixes of the full pull.
    #[test]
    fn segmented_plain_plans_match_plain_image_byte_for_byte(
        catalog in arb_catalog(),
        plan in arb_plan(),
    ) {
        if plan.schema(&catalog).is_ok() {
            let plain_rows = {
                let mut cat = catalog.clone();
                cat.set_threads(1);
                exec::stream(&plan, &cat).unwrap().collect_rows(None).unwrap()
            };
            for mode in [StorageMode::Segmented, StorageMode::Paged, StorageMode::Disk] {
                for threads in [1usize, 4] {
                    let mut cat = catalog.clone();
                    cat.set_storage(mode);
                    cat.set_segment_layout(3, 2);
                    cat.set_buffer_pool(2);
                    cat.set_threads(threads);
                    cat.set_parallel_granularity(3, 0);
                    let streamed = exec::stream(&plan, &cat).unwrap();
                    let rows = streamed.collect_rows(None).unwrap();
                    prop_assert!(
                        rows == plain_rows,
                        "{mode:?} x{threads} differs from plain for {plan:?}"
                    );
                    if mode == StorageMode::Disk && threads == 1 && !plain_rows.is_empty() {
                        prop_assert!(
                            streamed.stats().pool_misses > 0,
                            "cold disk run never missed the pool for {plan:?}"
                        );
                    }
                    let prefix = streamed.collect_rows(Some(3)).unwrap();
                    prop_assert!(
                        prefix == plain_rows[..plain_rows.len().min(3)].to_vec(),
                        "limited {mode:?} pull diverges for {plan:?}"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(96)))]

    /// The streaming executor and the retained materializing reference
    /// path produce identical multisets of rows for every generated
    /// plan (catches buffering/ordering bugs in pipeline breakers).
    #[test]
    fn streaming_matches_materializing_reference(
        catalog in arb_catalog(),
        plan in arb_plan(),
    ) {
        match plan.schema(&catalog) {
            Err(_) => {
                // Ill-typed plans must fail cleanly in both engines.
                prop_assert!(
                    exec::execute(&plan, &catalog).is_err(),
                    "streaming accepted an ill-typed plan: {plan:?}"
                );
                prop_assert!(
                    exec::execute_reference(&plan, &catalog).is_err(),
                    "reference accepted an ill-typed plan: {plan:?}"
                );
            }
            Ok(_) => {
                let (streamed, stats) = exec::execute_with_stats(&plan, &catalog).unwrap();
                let reference = exec::execute_reference(&plan, &catalog).unwrap();
                let (a, b) = (sorted_rows(&streamed), sorted_rows(&reference));
                prop_assert!(a == b, "multisets diverge for {plan:?}");
                // The EXPLAIN counter agrees with the runtime stats.
                let predicted = exec::predicted_buffers(&plan, &catalog);
                prop_assert!(
                    predicted == stats.buffers,
                    "predicted ({predicted}) vs actual ({}) buffers for {plan:?}",
                    stats.buffers
                );
            }
        }
    }
}
