//! Deterministic tests of the segmented-storage subsystem (PR 6).
//!
//! The differential suites in `exec_differential.rs` prove byte-identity
//! on random plans across storage modes; these tests pin the individual
//! mechanisms on workloads *shaped to exercise them*:
//!
//! * zone-map skipping on clustered integer and dictionary-string
//!   columns, visible through `ExecStats::segments_skipped` (the
//!   anti-no-op guard: a full scan must skip nothing);
//! * byte-identical output across {plain, segmented, paged, disk} ×
//!   {1, 4} workers on a multi-operator plan over null-bearing data;
//! * paged-provider eviction churn with a 2-segment cache, and disk
//!   scans faulting through an undersized shared buffer pool;
//! * the CI `storage` leg's no-op guard: when `RELALG_STORAGE` is set,
//!   the engine default must reflect it and a scan must actually move
//!   segments — so the matrix leg cannot silently degrade into a plain
//!   re-run of the suite.

use u_relations::relalg::{
    col, exec, lit_i64, lit_str, Catalog, EngineConfig, Expr, Plan, Relation, StorageMode, Value,
};

/// Rows clustered so zone maps have something to prune: `k` is
/// sequential, `w` steps through a 4-word dictionary every 64 rows, and
/// `v` is a scrambled integer with a null every 7th row.
fn seg_rel(n: i64) -> Relation {
    const WORDS: [&str; 4] = ["AFRICA", "AMERICA", "ASIA", "EUROPE"];
    Relation::from_rows(
        ["k", "w", "v"],
        (0..n)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::interned(WORDS[(i / 64) as usize % WORDS.len()]),
                    if i % 7 == 0 {
                        Value::Null
                    } else {
                        Value::Int(i * 3 % 101)
                    },
                ]
            })
            .collect::<Vec<_>>(),
    )
    .unwrap()
}

/// A catalog configured *before* inserts, so registration derives table
/// statistics from the segmented image when the mode asks for one.
fn storage_catalog(mode: StorageMode, seg_rows: usize, cache: usize, threads: usize) -> Catalog {
    let mut c = Catalog::new();
    c.set_storage(mode);
    c.set_segment_layout(seg_rows, cache);
    // Disk mode routes fetches through the shared buffer pool instead of
    // the per-provider clock cache; give it the same (tiny) capacity.
    c.set_buffer_pool(cache);
    c.set_threads(threads);
    c.set_parallel_granularity(64, 0);
    c
}

#[test]
fn selective_scan_skips_segments_and_full_scan_skips_none() {
    let mut cat = storage_catalog(StorageMode::Segmented, 16, 8, 1);
    cat.insert("t", seg_rel(256)); // 16 segments of 16 rows
    let selective = Plan::scan("t").select(col("k").lt(lit_i64(16)));
    let (out, stats) = exec::execute_with_stats(&selective, &cat).unwrap();
    assert_eq!(out.len(), 16);
    assert_eq!(stats.segments_scanned, 1, "{stats:?}");
    assert_eq!(stats.segments_skipped, 15, "{stats:?}");
    // Anti-no-op guard: an unfiltered scan must touch every segment.
    let full = Plan::scan("t").project_names(["k"]);
    let (out, stats) = exec::execute_with_stats(&full, &cat).unwrap();
    assert_eq!(out.len(), 256);
    assert_eq!(stats.segments_scanned, 16, "{stats:?}");
    assert_eq!(stats.segments_skipped, 0, "{stats:?}");
    assert!(stats.decoded_bytes > 0, "{stats:?}");
}

#[test]
fn string_zone_maps_prune_dictionary_segments() {
    // Each 64-row word run spans four 16-row segments, so an equality
    // on one word keeps 1/4 of the segments (min == max == word there).
    let mut cat = storage_catalog(StorageMode::Segmented, 16, 8, 1);
    cat.insert("t", seg_rel(256));
    let p = Plan::scan("t").select(col("w").eq(lit_str("ASIA")));
    let (out, stats) = exec::execute_with_stats(&p, &cat).unwrap();
    assert_eq!(out.len(), 64);
    assert_eq!(stats.segments_scanned, 4, "{stats:?}");
    assert_eq!(stats.segments_skipped, 12, "{stats:?}");
}

#[test]
fn null_bearing_segments_survive_range_predicates() {
    // `v < 10` must not prune segments whose zone min is Null — nulls
    // make min() = Null < Int, keeping the segment alive; the row-level
    // filter then drops the nulls (three-valued comparison is false).
    let mut cat = storage_catalog(StorageMode::Segmented, 16, 8, 1);
    cat.insert("t", seg_rel(256));
    let p = Plan::scan("t").select(col("v").lt(lit_i64(10)));
    let plain = {
        let mut c = storage_catalog(StorageMode::Plain, 16, 8, 1);
        c.insert("t", seg_rel(256));
        exec::stream(&p, &c).unwrap().collect_rows(None).unwrap()
    };
    let seg = exec::stream(&p, &cat).unwrap().collect_rows(None).unwrap();
    assert!(!seg.is_empty());
    assert_eq!(seg, plain);
}

#[test]
fn storage_modes_are_byte_identical_on_a_multi_operator_plan() {
    // σ + join + project + distinct over null-bearing, dictionary-coded
    // data: the shapes that cross every decoded-column code path.
    let plan = Plan::scan("t")
        .select(col("k").ge(lit_i64(32)))
        .join(
            Plan::scan("u"),
            Expr::and([col("w").eq(col("region")), col("v").gt(lit_i64(50))]),
        )
        .project_names(["k", "region", "v"])
        .distinct();
    let build = |mode, cache, threads| {
        let mut c = storage_catalog(mode, 16, cache, threads);
        c.insert("t", seg_rel(300));
        c.insert(
            "u",
            Relation::from_rows(
                ["region"],
                vec![
                    vec![Value::interned("ASIA")],
                    vec![Value::interned("EUROPE")],
                ],
            )
            .unwrap(),
        );
        c
    };
    let baseline = exec::stream(&plan, &build(StorageMode::Plain, 8, 1))
        .unwrap()
        .collect_rows(None)
        .unwrap();
    assert!(!baseline.is_empty());
    for mode in [
        StorageMode::Segmented,
        StorageMode::Paged,
        StorageMode::Disk,
    ] {
        for threads in [1, 4] {
            let cat = build(mode, 2, threads);
            let rows = exec::stream(&plan, &cat)
                .unwrap()
                .collect_rows(None)
                .unwrap();
            assert_eq!(rows, baseline, "{mode:?} x{threads} diverged");
        }
    }
}

#[test]
fn disk_scans_miss_an_undersized_pool_and_hit_a_warm_one() {
    // 20 segments through a 2-slot buffer pool: the cold scan faults
    // every segment in (and evicts most of them again), stays
    // byte-identical to plain, and reports page/pool traffic. A second
    // catalog with a pool larger than the working set hits on re-scan.
    let p = Plan::scan("t").select(col("v").ge(lit_i64(0)));
    let baseline = {
        let mut c = storage_catalog(StorageMode::Plain, 16, 2, 1);
        c.insert("t", seg_rel(320));
        exec::stream(&p, &c).unwrap().collect_rows(None).unwrap()
    };
    let mut small = storage_catalog(StorageMode::Disk, 16, 2, 1);
    small.insert("t", seg_rel(320));
    let streamed = exec::stream(&p, &small).unwrap();
    assert_eq!(streamed.collect_rows(None).unwrap(), baseline);
    let stats = streamed.stats();
    assert!(stats.pages_read > 0, "{stats:?}");
    assert!(
        stats.pool_misses >= 20,
        "20 cold segments through 2 slots must all miss: {stats:?}"
    );
    // A pool bigger than the working set: scan twice, second pass hits.
    let mut large = storage_catalog(StorageMode::Disk, 16, 64, 1);
    large.insert("t", seg_rel(320));
    let warm = exec::stream(&p, &large).unwrap();
    assert_eq!(warm.collect_rows(None).unwrap(), baseline);
    assert_eq!(warm.collect_rows(None).unwrap(), baseline);
    let stats = warm.stats();
    assert!(
        stats.pool_hits >= 20,
        "re-scan under a roomy pool must hit: {stats:?}"
    );
}

#[test]
fn paged_provider_evicts_under_a_tiny_cache_and_stays_correct() {
    // 20 segments stream through a 2-slot clock cache: every decode
    // past the second evicts a resident segment, and batches handed
    // downstream keep their `Arc`ed columns alive past the eviction.
    let mut paged = storage_catalog(StorageMode::Paged, 16, 2, 1);
    paged.insert("t", seg_rel(320));
    let mut plain = storage_catalog(StorageMode::Plain, 16, 2, 1);
    plain.insert("t", seg_rel(320));
    // Self-join forces two full scans of the same provider.
    let p = Plan::scan("t")
        .rename("a")
        .join(Plan::scan("t").rename("s"), col("a.k").eq(col("s.k")));
    let baseline = exec::stream(&p, &plain)
        .unwrap()
        .collect_rows(None)
        .unwrap();
    let streamed = exec::stream(&p, &paged).unwrap();
    let rows = streamed.collect_rows(None).unwrap();
    assert_eq!(rows, baseline);
    let stats = streamed.stats();
    // The probe side streams all 20 segments; the build side
    // materializes from the relation's row store, not the provider.
    assert_eq!(stats.segments_scanned, 20, "{stats:?}");
    assert!(stats.decoded_bytes > 0, "{stats:?}");
}

/// The CI `storage` matrix leg's anti-no-op guard. When `RELALG_STORAGE`
/// is set (as that leg sets it), the engine default must reflect it and
/// a plain scan must actually move segments — if the env plumbing ever
/// breaks, this fails rather than letting the leg silently test nothing.
/// Without the env var the test exercises the same workload under an
/// explicit paged catalog.
#[test]
fn ci_storage_leg_actually_moves_segments() {
    let env_mode = match std::env::var("RELALG_STORAGE").as_deref() {
        Ok("segmented") => Some(StorageMode::Segmented),
        Ok("paged") => Some(StorageMode::Paged),
        Ok("disk") => Some(StorageMode::Disk),
        _ => None,
    };
    let mut cat;
    if let Some(mode) = env_mode {
        assert_eq!(
            EngineConfig::default().storage,
            mode,
            "RELALG_STORAGE is set but the engine default ignores it"
        );
        cat = Catalog::new();
    } else {
        cat = storage_catalog(StorageMode::Paged, 256, 2, 1);
    }
    cat.insert("t", seg_rel(2048));
    let p = Plan::scan("t").select(col("v").ge(lit_i64(0)));
    let (out, stats) = exec::execute_with_stats(&p, &cat).unwrap();
    assert!(!out.is_empty());
    assert!(
        stats.segments_scanned > 0,
        "segmented storage configured but no segment traffic: {stats:?}"
    );
    // The disk leg must additionally move pages through the buffer pool
    // (the CI leg shrinks RELALG_BUFFER_POOL below the working set).
    if env_mode == Some(StorageMode::Disk) {
        assert!(
            stats.pages_read > 0,
            "disk storage configured but no page traffic: {stats:?}"
        );
        assert!(
            stats.pool_misses > 0,
            "disk storage configured but the buffer pool never missed: {stats:?}"
        );
    }
}
