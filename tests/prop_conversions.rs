//! Property-based tests of the Section 5 conversions: normalized
//! U-relational databases round-trip through WSDs, and ULDBs translate
//! into U-relational databases (Lemma 5.5) — always preserving the
//! world-set.

use proptest::prelude::*;
use std::collections::BTreeMap;
use u_relations::core::normalize::normalize;
use u_relations::core::{UDatabase, URelation, Var, WorldTable, WsDescriptor};
use u_relations::relalg::{Relation, Value};
use u_relations::uldb::convert::uldb_to_udb;
use u_relations::uldb::{Alternative, Uldb};
use u_relations::wsd::convert::{udb_to_wsd, wsd_to_udb};

const LIMIT: usize = 1024;

/// Random normalized single-relation database: binary variables, each
/// field either certain or covering a variable's domain (fully or
/// partially).
fn arb_normalized() -> impl Strategy<Value = UDatabase> {
    let field = prop_oneof![
        (0i64..6).prop_map(|v| (None, vec![(0u64, v)])),
        (
            0usize..3,
            prop::collection::btree_map(0u64..2, 0i64..6, 1..=2)
        )
            .prop_map(|(i, m)| (Some(i), m.into_iter().collect::<Vec<_>>())),
    ];
    prop::collection::vec((field.clone(), field), 1..=3).prop_map(|tuples| {
        let mut w = WorldTable::new();
        let vars: Vec<Var> = (1..=3).map(Var).collect();
        for &v in &vars {
            w.add_var(v, vec![0, 1]).unwrap();
        }
        let mut db = UDatabase::new(w);
        db.add_relation("r", ["a", "b"]).unwrap();
        let mut ua = URelation::partition("ua", ["a"]);
        let mut ub = URelation::partition("ub", ["b"]);
        for (t, (fa, fb)) in tuples.iter().enumerate() {
            let tid = t as i64 + 1;
            for ((vi, pairs), u) in [(fa, &mut ua), (fb, &mut ub)] {
                match vi {
                    None => u
                        .push_simple(WsDescriptor::empty(), tid, vec![Value::Int(pairs[0].1)])
                        .unwrap(),
                    Some(i) => {
                        for &(l, v) in pairs {
                            u.push_simple(
                                WsDescriptor::singleton(vars[*i], l),
                                tid,
                                vec![Value::Int(v)],
                            )
                            .unwrap();
                        }
                    }
                }
            }
        }
        db.add_partition("r", ua).unwrap();
        db.add_partition("r", ub).unwrap();
        db
    })
}

/// Random base ULDB over one relation (no lineage — independent
/// x-tuples; lineage cases are covered by the Example 5.4 tests).
fn arb_uldb() -> impl Strategy<Value = Uldb> {
    let alt = prop::collection::vec(0i64..5, 2);
    let xtuple = (prop::collection::vec(alt, 1..=3), any::<bool>());
    prop::collection::vec(xtuple, 1..=4).prop_map(|xts| {
        let mut db = Uldb::new();
        db.add_relation("r", ["a", "b"]).unwrap();
        for (alts, optional) in xts {
            db.add_xtuple(
                "r",
                optional,
                alts.into_iter()
                    .map(|vs| Alternative::new(vs.into_iter().map(Value::Int).collect()))
                    .collect(),
            )
            .unwrap();
        }
        db
    })
}

fn udb_sigs(db: &UDatabase) -> Vec<String> {
    let mut v: Vec<String> = db
        .possible_worlds(LIMIT)
        .unwrap()
        .iter()
        .map(|(_, i)| format!("{}", i["r"].sorted_set()))
        .collect();
    v.sort();
    v.dedup();
    v
}

fn uldb_sigs(worlds: &[BTreeMap<String, Relation>]) -> Vec<String> {
    let mut v: Vec<String> = worlds
        .iter()
        .map(|i| format!("{}", i["r"].sorted_set()))
        .collect();
    v.sort();
    v.dedup();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wsd_roundtrip_preserves_worlds(db in arb_normalized()) {
        db.validate().unwrap();
        let wsd = udb_to_wsd(&db).unwrap();
        let back = wsd_to_udb(&wsd).unwrap();
        prop_assert_eq!(udb_sigs(&db), udb_sigs(&back));
        // The WSD's own enumeration agrees too.
        let direct = uldb_sigs(&wsd.worlds(LIMIT).unwrap());
        prop_assert_eq!(udb_sigs(&db), direct);
    }

    #[test]
    fn wsd_conversion_requires_normal_form(db in arb_normalized()) {
        // Joining two variables into one descriptor breaks normal form;
        // normalize() must repair it for conversion.
        let mut denorm = db.clone();
        let parts = denorm.partitions_of_mut("r").unwrap();
        let extra = URow_with_two_vars();
        parts[0].push(extra).unwrap();
        if udb_to_wsd(&denorm).is_err() {
            let renorm = normalize(&denorm).unwrap();
            prop_assert!(udb_to_wsd(&renorm).is_ok());
        }
    }

    #[test]
    fn lemma_5_5_on_random_base_uldbs(db in arb_uldb()) {
        let udb = uldb_to_udb(&db, "r").unwrap();
        udb.validate().unwrap();
        // One row per alternative (linearity).
        prop_assert_eq!(udb.total_rows(), db.relation("r").unwrap().alt_count());
        // Same set of world instances.
        let a = uldb_sigs(&db.worlds(LIMIT).unwrap());
        let b = udb_sigs(&udb);
        prop_assert_eq!(a, b);
    }
}

#[allow(non_snake_case)]
fn URow_with_two_vars() -> u_relations::core::URow {
    u_relations::core::URow::new(
        WsDescriptor::from_pairs([(Var(1), 0), (Var(2), 0)]).unwrap(),
        vec![99],
        vec![Value::Int(0)],
    )
}
