//! Deterministic fault-injection and cancellation suite (PR 8).
//!
//! The engine's failure contract: under any injected fault schedule a
//! query either returns **byte-identical** results (transient faults
//! absorbed by bounded retries) or a **clean error** — never a panic,
//! never a wrong answer — and afterwards no spill files, buffer-pool
//! leases or poisoned locks remain. These tests drive that contract:
//!
//! * 256 seeded schedules (64 seeds × {disk, paged} storage × {1, 4}
//!   workers) over a spilling join + distinct plan, with a per-schedule
//!   result/error check and a per-schedule leak check;
//! * an anti-no-op guard: across the whole sweep the injector must have
//!   actually fired, so the suite cannot silently degrade into a plain
//!   differential re-run;
//! * query deadlines: an expired deadline surfaces as
//!   [`Error::Cancelled`], the `cancelled` stat is set, and every
//!   resource is released;
//! * cooperative cancellation from another thread via
//!   [`exec::Streamed::cancel_token`];
//! * the CI `faults` leg's no-op guard: when `RELALG_FAULTS` is set the
//!   engine default must pick it up and a workload must observe
//!   injected faults.

use std::time::Duration;
use u_relations::relalg::store::pool_for;
use u_relations::relalg::{
    col, exec, fault, lit_i64, Catalog, EngineConfig, Error, FaultConfig, Plan, Relation,
    StorageMode, Value,
};

/// `t(k, g, v)`: enough rows for several segments per storage mode and
/// for the distinct seen-set to cross a few-KiB budget share.
fn t_rel(n: i64) -> Relation {
    Relation::from_rows(
        ["k", "g", "v"],
        (0..n)
            .map(|i| vec![Value::Int(i), Value::Int(i % 8), Value::Int(i * 7 % 13)])
            .collect::<Vec<_>>(),
    )
    .unwrap()
}

/// The 8-row join partner `u(r)`.
fn u_rel() -> Relation {
    Relation::from_rows(
        ["r"],
        (0..8i64).map(|i| vec![Value::Int(i)]).collect::<Vec<_>>(),
    )
    .unwrap()
}

/// σ + equi-join + project + distinct: crosses the segment-read, lease
/// and spill edges in one plan.
fn plan() -> Plan {
    Plan::scan("t")
        .select(col("k").ge(lit_i64(0)))
        .join(Plan::scan("u"), col("g").eq(col("r")))
        .project_names(["g", "v"])
        .distinct()
}

/// A catalog pinned against the process environment: every knob the CI
/// matrix can set (`RELALG_FAULTS`, `RELALG_DEADLINE_MS`,
/// `RELALG_STORAGE`, `RELALG_MEM_BUDGET`) is overridden explicitly so
/// each test controls its own schedule.
fn catalog(mode: StorageMode, threads: usize, pool_cap: usize) -> Catalog {
    let mut c = Catalog::new().with_config(EngineConfig::serial());
    c.set_storage(mode);
    c.set_segment_layout(16, 2);
    c.set_buffer_pool(pool_cap);
    c.set_threads(threads);
    c.set_parallel_granularity(64, 0);
    c.set_mem_budget(4 << 10);
    c.set_faults(None);
    c.set_deadline(None);
    c.insert("t", t_rel(400));
    c.insert("u", u_rel());
    c
}

/// Run `plan()` under one fault schedule; return `(result, injected,
/// retried)` and leak-check the execution's spill directory and buffer
/// pool on the way out.
fn run_schedule(
    mode: StorageMode,
    threads: usize,
    pool_cap: usize,
    faults: Option<FaultConfig>,
) -> (Result<Vec<u_relations::relalg::Row>, Error>, usize, usize) {
    let mut cat = catalog(mode, threads, pool_cap);
    cat.set_faults(faults);
    let (res, injected, retries, spill_dir) = match exec::stream(&plan(), &cat) {
        Ok(streamed) => {
            let res = streamed.collect_rows(None);
            let stats = streamed.stats();
            let dir = streamed.spill_dir();
            drop(streamed);
            (res, stats.faults_injected, stats.retries, dir)
        }
        // Faults during prepare (build sides, storage setup) surface as
        // clean errors too; the per-execution injector died with the
        // failed stream, so its counters are gone — count 0.
        Err(e) => (Err(e), 0, 0, None),
    };
    fault::assert_no_leaks(spill_dir.as_deref(), pool_for(pool_cap).in_flight_len());
    (res, injected, retries)
}

#[test]
fn fault_schedules_are_byte_identical_or_clean_errors() {
    // 64 seeds × {disk, paged} × {1, 4} workers = 256 schedules.
    let mut injected_total = 0usize;
    let mut retried_total = 0usize;
    let mut failed = 0usize;
    let mut ran = 0usize;
    for (mode, threads, pool_cap) in [
        (StorageMode::Disk, 1, 17),
        (StorageMode::Disk, 4, 19),
        (StorageMode::Paged, 1, 21),
        (StorageMode::Paged, 4, 23),
    ] {
        let (baseline, _, _) = run_schedule(mode, threads, pool_cap, None);
        let baseline = baseline.unwrap_or_else(|e| panic!("{mode:?} x{threads} baseline: {e}"));
        assert!(!baseline.is_empty());
        for seed in 0..64u64 {
            let (res, injected, retries) =
                run_schedule(mode, threads, pool_cap, Some(FaultConfig::new(seed, 0.001)));
            injected_total += injected;
            retried_total += retries;
            ran += 1;
            match res {
                Ok(rows) => assert_eq!(
                    rows, baseline,
                    "{mode:?} x{threads} seed {seed}: survived faults but diverged"
                ),
                Err(e) => {
                    // A clean, displayable error — any variant; the
                    // absence of panics and leaks is the contract.
                    assert!(!e.to_string().is_empty());
                    failed += 1;
                }
            }
        }
    }
    assert_eq!(ran, 256);
    // Anti-no-op guards: the schedules must actually have fired, some
    // runs must have died (fatal faults exist), some survived (the
    // engine absorbs transients rather than failing every run).
    assert!(
        injected_total > 0,
        "no faults injected across 256 schedules"
    );
    assert!(retried_total > 0, "no transient fault was ever retried");
    assert!(failed > 0, "no schedule produced an error — rate too low");
    assert!(
        failed < ran,
        "every schedule failed — retries are not absorbing transients"
    );
}

#[test]
fn expired_deadline_cancels_cleanly_and_releases_resources() {
    let mut cat = catalog(StorageMode::Disk, 1, 25);
    cat.set_deadline(Some(Duration::from_millis(0)));
    match exec::stream(&plan(), &cat) {
        Ok(streamed) => {
            let err = streamed.collect_rows(None).unwrap_err();
            assert!(matches!(err, Error::Cancelled(_)), "{err}");
            assert!(err.to_string().contains("deadline"), "{err}");
            let stats = streamed.stats();
            assert!(stats.cancelled, "{stats:?}");
            let dir = streamed.spill_dir();
            drop(streamed);
            fault::assert_no_leaks(dir.as_deref(), pool_for(25).in_flight_len());
        }
        // Prepare itself may observe the deadline first.
        Err(e) => assert!(matches!(e, Error::Cancelled(_)), "{e}"),
    }
    // The same catalog without the deadline still answers (the token is
    // per-execution, not process state).
    cat.set_deadline(None);
    let rows = exec::stream(&plan(), &cat)
        .unwrap()
        .collect_rows(None)
        .unwrap();
    assert!(!rows.is_empty());
}

#[test]
fn cancel_token_stops_a_query_from_another_thread() {
    for threads in [1, 4] {
        let cat = catalog(StorageMode::Disk, threads, 27);
        let streamed = exec::stream(&plan(), &cat).unwrap();
        let token = streamed.cancel_token();
        std::thread::spawn(move || token.cancel()).join().unwrap();
        let err = streamed.collect_rows(None).unwrap_err();
        assert!(matches!(err, Error::Cancelled(_)), "x{threads}: {err}");
        let stats = streamed.stats();
        assert!(stats.cancelled, "x{threads}: {stats:?}");
        let dir = streamed.spill_dir();
        drop(streamed);
        fault::assert_no_leaks(dir.as_deref(), pool_for(27).in_flight_len());
    }
}

#[test]
fn faults_env_leg_actually_injects() {
    // The CI `faults` matrix leg runs this test binary under
    // `RELALG_FAULTS=<seed>:<rate>`; outside the leg there is nothing
    // to guard.
    if std::env::var("RELALG_FAULTS").is_err() {
        return;
    }
    let default = EngineConfig::default();
    assert!(
        default.faults.is_some(),
        "RELALG_FAULTS is set but the engine default ignored it"
    );
    // An env-configured catalog (storage from RELALG_STORAGE, faults
    // from RELALG_FAULTS): across a handful of executions the schedule
    // must observably fire — injected faults, retries, or failed runs.
    let mut injected = 0usize;
    let mut retried = 0usize;
    let mut failed = 0usize;
    for _ in 0..8 {
        let mut cat = Catalog::new();
        cat.set_segment_layout(16, 2);
        cat.set_buffer_pool(29);
        cat.set_mem_budget(4 << 10);
        cat.set_deadline(None);
        cat.insert("t", t_rel(400));
        cat.insert("u", u_rel());
        match exec::stream(&plan(), &cat) {
            Ok(streamed) => {
                let res = streamed.collect_rows(None);
                let stats = streamed.stats();
                injected += stats.faults_injected;
                retried += stats.retries;
                failed += usize::from(res.is_err());
            }
            Err(_) => failed += 1,
        }
    }
    assert!(
        injected + retried + failed > 0,
        "fault leg ran 8 executions without a single observable fault"
    );
}
