//! Property-based tests of the relational engine itself: the optimizer
//! must never change query results, EXPLAIN must never panic, and the
//! set operators must satisfy their algebraic laws. This is the substrate
//! the whole reproduction rests on, so it gets its own adversarial suite.

use proptest::prelude::*;
use u_relations::relalg::{
    col, exec, explain, lit_i64, optimizer, Catalog, Expr, Plan, Relation, Value,
};

/// Random base tables: r(a, b), s(c, d) with small integer domains so
/// joins actually match.
fn arb_catalog() -> impl Strategy<Value = Catalog> {
    let row = || (0i64..6, 0i64..6);
    (
        prop::collection::vec(row(), 0..12),
        prop::collection::vec(row(), 0..12),
    )
        .prop_map(|(r_rows, s_rows)| {
            let mut c = Catalog::new();
            c.insert(
                "r",
                Relation::from_rows(
                    ["a", "b"],
                    r_rows
                        .into_iter()
                        .map(|(x, y)| vec![Value::Int(x), Value::Int(y)])
                        .collect::<Vec<_>>(),
                )
                .unwrap(),
            );
            c.insert(
                "s",
                Relation::from_rows(
                    ["c", "d"],
                    s_rows
                        .into_iter()
                        .map(|(x, y)| vec![Value::Int(x), Value::Int(y)])
                        .collect::<Vec<_>>(),
                )
                .unwrap(),
            );
            c
        })
}

fn arb_pred_r() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0i64..6).prop_map(|k| col("a").eq(lit_i64(k))),
        (0i64..6).prop_map(|k| col("b").lt(lit_i64(k))),
        (0i64..6, 0i64..6)
            .prop_map(|(k1, k2)| Expr::or([col("a").eq(lit_i64(k1)), col("b").gt(lit_i64(k2)),])),
        Just(col("a").le(col("b"))),
    ]
}

/// Random plans over the two tables, mixing all operators.
fn arb_plan() -> impl Strategy<Value = Plan> {
    let leaf = prop_oneof![Just(Plan::scan("r")), Just(Plan::scan("s"))];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            // σ over r-shaped inputs (guarded at runtime by schema()).
            (inner.clone(), arb_pred_r()).prop_map(|(p, e)| p.select(e)),
            inner.clone().prop_map(|p| p.distinct()),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| {
                // Equi-join r ⋈ s when schemas allow; cross otherwise.
                l.join(r, Expr::and([]))
            }),
            inner
                .clone()
                .prop_map(|p| Plan::scan("r").join(p.rename("x"), Expr::and([]))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.union(r)),
            (inner.clone(), inner).prop_map(|(l, r)| l.difference(r)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn optimizer_preserves_results(catalog in arb_catalog(), plan in arb_plan()) {
        // Many random plans are ill-typed (predicates over the wrong
        // side, arity-mismatched unions): those must fail *cleanly* in
        // schema(), and the optimizer must reject them too.
        match plan.schema(&catalog) {
            Err(_) => {
                prop_assert!(optimizer::optimize(&plan, &catalog).is_err());
            }
            Ok(_) => {
                let before = exec::execute(&plan, &catalog).unwrap();
                let opt = optimizer::optimize(&plan, &catalog).unwrap();
                let after = exec::execute(&opt, &catalog).unwrap();
                prop_assert!(
                    before.set_eq(&after),
                    "optimizer changed results\nplan: {plan:?}\nopt: {opt:?}\nbefore: {before}\nafter: {after}"
                );
                // EXPLAIN never panics and mentions every scan.
                let text = explain::explain(&opt, &catalog);
                prop_assert!(text.contains("Scan"));
            }
        }
    }

    #[test]
    fn join_is_commutative_up_to_column_order(
        catalog in arb_catalog(),
        k in 0i64..6,
    ) {
        let pred = col("b").eq(col("c"));
        let lr = Plan::scan("r").select(col("a").ge(lit_i64(k))).join(Plan::scan("s"), pred.clone());
        let rl = Plan::scan("s").join(Plan::scan("r").select(col("a").ge(lit_i64(k))), pred);
        let a = exec::execute(&lr, &catalog).unwrap();
        let b = exec::execute(&rl, &catalog).unwrap();
        // Reorder b's columns to a's layout (c,d,a,b → a,b,c,d).
        let reordered = exec::execute(
            &rl.project_names(["a", "b", "c", "d"]),
            &catalog,
        )
        .unwrap();
        prop_assert_eq!(a.len(), b.len());
        prop_assert!(a.set_eq(&reordered));
    }

    #[test]
    fn set_operator_laws(catalog in arb_catalog()) {
        let r = Plan::scan("r");
        // r − r = ∅
        let empty = exec::execute(&r.clone().difference(r.clone()), &catalog).unwrap();
        prop_assert_eq!(empty.len(), 0);
        // δ(r ∪ r) = δ(r)
        let dd = exec::execute(&r.clone().union(r.clone()).distinct(), &catalog).unwrap();
        let d = exec::execute(&r.clone().distinct(), &catalog).unwrap();
        prop_assert!(dd.set_eq(&d));
        // (r − s') ∪ (r ∩ s') = δ(r) where s' = r filtered.
        let s2 = r.clone().select(col("a").lt(lit_i64(3)));
        let minus = r.clone().difference(s2.clone());
        let inter = r.clone().difference(r.clone().difference(s2));
        let lhs = exec::execute(&minus.union(inter).distinct(), &catalog).unwrap();
        prop_assert!(lhs.set_eq(&d));
    }

    #[test]
    fn semijoin_antijoin_partition_the_input(
        catalog in arb_catalog(),
    ) {
        let pred = col("b").eq(col("c"));
        let semi = Plan::scan("r").semijoin(Plan::scan("s"), pred.clone());
        let anti = Plan::scan("r").antijoin(Plan::scan("s"), pred);
        let semi_r = exec::execute(&semi, &catalog).unwrap();
        let anti_r = exec::execute(&anti, &catalog).unwrap();
        let all = exec::execute(&Plan::scan("r"), &catalog).unwrap();
        prop_assert_eq!(semi_r.len() + anti_r.len(), all.len());
        let union = exec::execute(&semi.union(anti), &catalog).unwrap();
        prop_assert!(union.set_eq(&all));
    }
}
