//! Crash-safety and cold-start tests for the on-disk segment store
//! (PR 7).
//!
//! The writer is careful (`DiskTableWriter::finish` reopens the store
//! through the validating reader before handing it out), but files on
//! disk outlive the process that wrote them: a crash mid-write, a torn
//! final page, silent media corruption or a manifest left behind by an
//! older run must all surface as [`Error::Invalid`] from
//! [`DiskImage::open`] — never a panic, and never a wrong answer. The
//! cold-start test proves the other direction: a manifest written by a
//! *previous process* reopens cleanly and answers the paper's Q1
//! (Figure 8, from TPC-H Q3) byte-identically to the in-memory store.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;
use u_relations::relalg::value::date_to_days;
use u_relations::relalg::{
    col, exec, lit_i64, lit_str, Catalog, DiskImage, DiskTableWriter, Error, Plan, Relation, Value,
};
use u_relations::tpch::generate_certain;

/// A fresh per-test scratch directory (removed and recreated each run).
fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("urel-disk-test-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    fs::create_dir_all(&d).unwrap();
    d
}

/// Write a small two-column table (several segments, both codecs) and
/// drop the returned image so only the files remain.
fn write_table(dir: &Path) {
    let mut w = DiskTableWriter::create(dir, "t", vec!["k".into(), "w".into()], 16).unwrap();
    for i in 0..100i64 {
        w.push(&[
            Value::Int(i),
            Value::interned(["ASIA", "EUROPE"][i as usize % 2]),
        ])
        .unwrap();
    }
    w.finish().unwrap();
}

fn assert_open_fails(dir: &Path, why: &str) {
    match DiskImage::open(dir, "t") {
        Err(Error::Invalid(msg)) => {
            assert!(!msg.is_empty(), "{why}: empty error message")
        }
        Err(e) => panic!("{why}: wrong error kind: {e}"),
        Ok(_) => panic!("{why}: corrupt store opened successfully"),
    }
}

#[test]
fn truncated_page_file_is_rejected() {
    let dir = tmpdir("truncated");
    write_table(&dir);
    let seg = dir.join("t.seg");
    let len = fs::metadata(&seg).unwrap().len();
    // A crash halfway through the page file: blocks point past the end.
    let f = fs::OpenOptions::new().write(true).open(&seg).unwrap();
    f.set_len(len / 2).unwrap();
    assert_open_fails(&dir, "half page file");
}

#[test]
fn torn_final_page_is_rejected() {
    let dir = tmpdir("torn");
    write_table(&dir);
    let seg = dir.join("t.seg");
    let len = fs::metadata(&seg).unwrap().len();
    // A torn write: the tail of the last page never hit the disk.
    let f = fs::OpenOptions::new().write(true).open(&seg).unwrap();
    f.set_len(len - 100).unwrap();
    assert_open_fails(&dir, "torn final page");
}

#[test]
fn bit_flipped_block_fails_its_checksum() {
    let dir = tmpdir("bitflip");
    write_table(&dir);
    let seg = dir.join("t.seg");
    // Flip one byte inside the first block's payload (offset 10 is well
    // within the first encoded column, not page padding).
    let mut bytes = fs::read(&seg).unwrap();
    bytes[10] ^= 0xFF;
    fs::write(&seg, bytes).unwrap();
    assert_open_fails(&dir, "bit-flipped block");
}

#[test]
fn corrupt_manifest_fails_its_self_checksum() {
    let dir = tmpdir("badmanifest");
    write_table(&dir);
    let manifest = dir.join("t.manifest");
    let mut bytes = fs::read(&manifest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    fs::write(&manifest, bytes).unwrap();
    assert_open_fails(&dir, "bit-flipped manifest");

    // And a truncated manifest (crash between the two file writes).
    let dir = tmpdir("shortmanifest");
    write_table(&dir);
    let manifest = dir.join("t.manifest");
    let bytes = fs::read(&manifest).unwrap();
    fs::write(&manifest, &bytes[..bytes.len() / 3]).unwrap();
    assert_open_fails(&dir, "truncated manifest");
}

#[test]
fn stale_manifest_over_foreign_pages_is_rejected() {
    // A manifest left behind by an older run, paired with a page file it
    // does not describe: every block checksum disagrees.
    let dir = tmpdir("stale");
    write_table(&dir);
    let other = tmpdir("stale-other");
    let mut w = DiskTableWriter::create(&other, "u", vec!["k".into(), "w".into()], 8).unwrap();
    for i in 0..40i64 {
        w.push(&[Value::Int(i * 7), Value::interned("AFRICA")])
            .unwrap();
    }
    w.finish().unwrap();
    fs::copy(other.join("u.manifest"), dir.join("t.manifest")).unwrap();
    assert_open_fails(&dir, "stale manifest");
}

#[test]
fn empty_and_missing_files_are_rejected() {
    let dir = tmpdir("missing");
    assert!(matches!(DiskImage::open(&dir, "t"), Err(Error::Invalid(_))));
    fs::write(dir.join("t.manifest"), b"").unwrap();
    fs::write(dir.join("t.seg"), b"").unwrap();
    assert_open_fails(&dir, "empty files");
}

const COLD_DIR_ENV: &str = "UREL_COLD_START_DIR";
const COLD_SCALE: f64 = 0.02;
const COLD_SEED: u64 = 42;
const COLD_TABLES: [&str; 3] = ["customer", "orders", "lineitem"];

/// Writer half of the cold-start pair. A no-op unless [`COLD_DIR_ENV`]
/// is set: the reader test below re-runs this binary with `--exact` on
/// this test so the manifests are written by a genuinely different
/// process, then opens them cold.
#[test]
fn cold_start_writer() {
    let Ok(dir) = std::env::var(COLD_DIR_ENV) else {
        return;
    };
    let gen = generate_certain(COLD_SCALE, COLD_SEED);
    for name in COLD_TABLES {
        let spec = &gen.tables[name];
        let cols: Vec<String> = spec.columns.iter().map(|(n, _)| n.clone()).collect();
        let mut w = DiskTableWriter::create(Path::new(&dir), name, cols, 64).unwrap();
        for row in &spec.rows {
            w.push(row).unwrap();
        }
        w.finish().unwrap();
    }
}

/// The paper's Q1 (Figure 8, from TPC-H Q3) as a physical plan over the
/// certain base tables.
fn q1_plan() -> Plan {
    Plan::scan("customer")
        .select(col("c_mktsegment").eq(lit_str("BUILDING")))
        .join(
            Plan::scan("orders").select(col("o_orderdate").gt(lit_i64(date_to_days(1995, 3, 15)))),
            col("c_custkey").eq(col("o_custkey")),
        )
        .join(
            Plan::scan("lineitem").select(col("l_shipdate").lt(lit_i64(date_to_days(1995, 3, 17)))),
            col("o_orderkey").eq(col("l_orderkey")),
        )
        .project_names(["o_orderkey", "o_orderdate", "o_shippriority"])
        .distinct()
}

#[test]
fn cold_start_answers_q1_byte_identically_to_memory() {
    let dir = tmpdir("coldstart");
    // Write the manifests from a separate process.
    let status = Command::new(std::env::current_exe().unwrap())
        .args(["cold_start_writer", "--exact"])
        .env(COLD_DIR_ENV, &dir)
        .status()
        .unwrap();
    assert!(status.success(), "writer process failed");

    // In-memory baseline: same deterministic generator, plain storage.
    let gen = generate_certain(COLD_SCALE, COLD_SEED);
    let mut plain = Catalog::new();
    plain.set_threads(1);
    for name in COLD_TABLES {
        let spec = &gen.tables[name];
        let cols: Vec<String> = spec.columns.iter().map(|(n, _)| n.clone()).collect();
        plain.insert(name, Relation::from_rows(cols, spec.rows.clone()).unwrap());
    }
    let plan = q1_plan();
    let baseline = exec::stream(&plan, &plain)
        .unwrap()
        .collect_rows(None)
        .unwrap();
    assert!(!baseline.is_empty(), "Q1 answers nothing at this scale");

    // Cold side: reopen the previous process's manifests and scan them
    // through the buffer pool.
    let mut disk = Catalog::new();
    disk.set_storage(u_relations::relalg::StorageMode::Disk);
    disk.set_buffer_pool(4);
    disk.set_threads(1);
    for name in COLD_TABLES {
        let image = DiskImage::open(&dir, name).unwrap();
        disk.insert(name, Relation::from_disk_image(image));
    }
    let streamed = exec::stream(&plan, &disk).unwrap();
    let rows = streamed.collect_rows(None).unwrap();
    assert_eq!(rows, baseline, "cold disk answers diverge from memory");
    let stats = streamed.stats();
    assert!(stats.pages_read > 0, "{stats:?}");
}
