//! Deterministic tests of the memory-budget spill subsystem (PR 5).
//!
//! The differential suites in `exec_differential.rs` prove byte-identity
//! on random plans; these tests pin the individual spill mechanisms on
//! workloads *sized to spill*:
//!
//! * distinct / difference seen-set spill (candidate runs resolved at
//!   end of input, first-occurrence order preserved);
//! * hybrid-hash join build spill, including the recursive
//!   re-partitioning path (skewed keys that refuse to split) and the
//!   split path (diverse keys);
//! * external-merge sort and aggregation partial-state spill, serial
//!   and at 4 workers;
//! * scoped spill-directory cleanup after completed *and* aborted
//!   (panicking) executions;
//! * the CI `mem-budget` leg's no-op guard: when `RELALG_MEM_BUDGET` is
//!   set, the engine must actually pick it up and a modest workload
//!   must actually spill — so the matrix leg cannot silently degrade
//!   into a plain re-run of the suite.

use u_relations::relalg::{
    aggregate_plan_with_stats, col, exec, lit_i64, sort, AggFunc, Aggregate, Catalog, EngineConfig,
    Plan, Relation, Value,
};

/// A relation big enough that a few-KiB budget forces every breaker to
/// spill: `n` rows of `(i, i % m, tag)`.
fn big_rel(n: i64, m: i64) -> Relation {
    Relation::from_rows(
        ["k", "g", "v"],
        (0..n)
            .map(|i| vec![Value::Int(i), Value::Int(i % m), Value::Int(i * 7 % 13)])
            .collect::<Vec<_>>(),
    )
    .unwrap()
}

/// A serial catalog with the budget explicitly *disabled*, so baseline
/// ("unbounded") runs stay unbounded even when the test process itself
/// runs under `RELALG_MEM_BUDGET` (as the CI mem-budget leg does).
fn unbounded_catalog() -> Catalog {
    let mut c = Catalog::new().with_config(EngineConfig::serial());
    c.set_mem_budget(0);
    c
}

fn budgeted(catalog: &Catalog, bytes: usize, threads: usize) -> Catalog {
    let mut c = catalog.clone();
    c.set_threads(threads);
    c.set_parallel_granularity(64, 0);
    c.set_mem_budget(bytes);
    c
}

#[test]
fn distinct_seen_set_spill_is_byte_identical() {
    let mut cat = unbounded_catalog();
    cat.insert("t", big_rel(4000, 300));
    // Distinct over a projection: ~300 distinct (g, v) pairs seen over
    // 4000 input rows, revisited in a skewed order.
    let plan = Plan::scan("t").project_names(["g", "v"]).distinct();
    let unbounded = exec::stream(&plan, &cat).unwrap();
    let want = unbounded.collect_rows(None).unwrap();
    assert_eq!(unbounded.stats().spill_events, 0);
    for threads in [1usize, 4] {
        let c = budgeted(&cat, 2048, threads);
        let streamed = exec::stream(&plan, &c).unwrap();
        let rows = streamed.collect_rows(None).unwrap();
        assert_eq!(rows, want, "distinct spill diverges at {threads} threads");
        let stats = streamed.stats();
        assert!(stats.spill_events > 0, "expected spills: {stats:?}");
        assert!(stats.spilled_bytes > 0, "{stats:?}");
        assert!(stats.peak_tracked_bytes > 0, "{stats:?}");
    }
}

#[test]
fn difference_seen_set_spill_is_byte_identical() {
    let mut cat = unbounded_catalog();
    cat.insert("t", big_rel(3000, 200));
    cat.insert("u", big_rel(600, 200));
    let plan = Plan::scan("t").project_names(["g"]).difference(
        Plan::scan("u")
            .select(col("k").lt(lit_i64(100)))
            .project_names(["g"]),
    );
    let want = exec::stream(&plan, &cat)
        .unwrap()
        .collect_rows(None)
        .unwrap();
    let c = budgeted(&cat, 1024, 1);
    let streamed = exec::stream(&plan, &c).unwrap();
    assert_eq!(streamed.collect_rows(None).unwrap(), want);
    assert!(streamed.stats().spill_events > 0, "{:?}", streamed.stats());
}

/// Hybrid-hash spill where the build side's keys are *diverse*: the
/// first-level partitions are each over the share and recursion splits
/// them further, yet output order must survive the partition shuffle.
#[test]
fn join_build_spill_with_recursion_is_byte_identical() {
    let mut cat = unbounded_catalog();
    cat.insert("probe", big_rel(2000, 97));
    cat.insert("build", big_rel(1000, 97));
    // Both sides are *computed* (σ over a scan) so the executor's
    // source-build bias cannot pick a zero-copy side; the smaller right
    // side buffers, and only buffered builds spill. Joining g = g'
    // with ~97 key values leaves every digest partition far over a
    // 1 KiB share, forcing recursive re-partitioning.
    let plan = Plan::scan("probe")
        .select(col("k").ge(lit_i64(0)))
        .rename("p")
        .join(
            Plan::scan("build")
                .select(col("k").lt(lit_i64(990)))
                .rename("b"),
            col("p.g").eq(col("b.g")),
        );
    let want = exec::stream(&plan, &cat)
        .unwrap()
        .collect_rows(None)
        .unwrap();
    assert!(!want.is_empty());
    let c = budgeted(&cat, 1024, 1);
    let streamed = exec::stream(&plan, &c).unwrap();
    assert_eq!(streamed.collect_rows(None).unwrap(), want);
    let stats = streamed.stats();
    // The build spill itself plus recursive re-partitioning events.
    assert!(stats.spill_events > 1, "{stats:?}");
    // Re-pulling the same prepared execution re-probes the same spilled
    // build and must reproduce the result.
    assert_eq!(streamed.collect_rows(None).unwrap(), want);
}

/// Hybrid-hash spill under *key skew*: one key dominates, so its
/// partition can never shrink below the share — recursion must stop at
/// the depth cap and build the partition in memory regardless.
#[test]
fn join_build_spill_with_skewed_keys_hits_depth_cap_and_stays_correct() {
    let mut cat = unbounded_catalog();
    let skewed = Relation::from_rows(
        ["k", "g", "v"],
        (0..800i64)
            .map(|i| vec![Value::Int(i), Value::Int(i % 2), Value::Int(i)])
            .collect::<Vec<_>>(),
    )
    .unwrap();
    cat.insert("probe", big_rel(400, 2));
    cat.insert("build", skewed);
    let plan = Plan::scan("probe")
        .select(col("k").ge(lit_i64(0)))
        .rename("p")
        .join(
            Plan::scan("build")
                .select(col("k").ge(lit_i64(0)))
                .rename("b"),
            col("p.g").eq(col("b.g")),
        );
    let want = exec::stream(&plan, &cat)
        .unwrap()
        .collect_rows(None)
        .unwrap();
    assert!(!want.is_empty());
    let c = budgeted(&cat, 512, 1);
    let streamed = exec::stream(&plan, &c).unwrap();
    assert_eq!(streamed.collect_rows(None).unwrap(), want);
    assert!(streamed.stats().spill_events > 0, "{:?}", streamed.stats());
}

#[test]
fn external_sort_matches_in_memory_stable_sort() {
    let mut cat = unbounded_catalog();
    cat.insert("t", big_rel(5000, 23));
    let plan = Plan::scan("t");
    // Sort by a low-cardinality key: stability across run boundaries is
    // load-bearing (equal keys must keep input order).
    let keys = [(col("g"), sort::Order::Asc)];
    let want = sort::sort_plan(&plan, &cat, &keys).unwrap();
    let c = budgeted(&cat, 4096, 1);
    let (got, stats) = sort::sort_plan_with_stats(&plan, &c, &keys).unwrap();
    assert_eq!(got, want, "external sort diverges from in-memory sort");
    assert!(stats.spill_events > 1, "expected several runs: {stats:?}");
}

#[test]
fn aggregation_spill_matches_unbounded_at_one_and_four_workers() {
    let mut cat = unbounded_catalog();
    cat.insert("t", big_rel(6000, 500));
    let plan = Plan::scan("t");
    let group = [(col("g"), "g".into())];
    let aggs = [
        Aggregate::new(AggFunc::CountStar, "n"),
        Aggregate::new(AggFunc::Sum(col("v")), "s"),
        Aggregate::new(AggFunc::Min(col("k")), "lo"),
        Aggregate::new(AggFunc::Max(col("k")), "hi"),
    ];
    let (want, base) = aggregate_plan_with_stats(&plan, &cat, &group, &aggs).unwrap();
    assert_eq!(base.spill_events, 0);
    for threads in [1usize, 4] {
        let c = budgeted(&cat, 2048, threads);
        let (got, stats) = aggregate_plan_with_stats(&plan, &c, &group, &aggs).unwrap();
        assert_eq!(got, want, "aggregation spill diverges at {threads} threads");
        assert!(stats.spill_events > 0, "{stats:?}");
    }
}

#[test]
fn spill_directory_is_removed_after_a_completed_run() {
    let mut cat = unbounded_catalog();
    cat.insert("t", big_rel(4000, 300));
    let plan = Plan::scan("t").project_names(["g", "v"]).distinct();
    let c = budgeted(&cat, 1024, 1);
    let streamed = exec::stream(&plan, &c).unwrap();
    let rows = streamed.collect_rows(None).unwrap();
    assert!(!rows.is_empty());
    let dir = streamed
        .spill_dir()
        .expect("a spilling run has a directory");
    assert!(dir.exists(), "spill dir should exist while streamed lives");
    drop(streamed);
    assert!(!dir.exists(), "spill dir must be removed on drop: {dir:?}");
}

#[test]
fn spill_directory_is_removed_after_an_aborted_run() {
    use std::sync::{Arc, Mutex};
    let dir_slot: Arc<Mutex<Option<std::path::PathBuf>>> = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&dir_slot);
    let result = std::panic::catch_unwind(move || {
        let mut cat = unbounded_catalog();
        cat.insert("probe", big_rel(400, 7));
        cat.insert("build", big_rel(900, 7));
        let mut c = cat;
        c.set_mem_budget(512);
        // The computed build side (both sides computed: no source-build
        // bias) spills at *prepare* time, so the directory exists
        // before the panic mid-pull.
        let plan = Plan::scan("probe")
            .select(col("k").ge(lit_i64(0)))
            .rename("p")
            .join(
                Plan::scan("build")
                    .select(col("k").ge(lit_i64(0)))
                    .rename("b"),
                col("p.g").eq(col("b.g")),
            );
        let streamed = exec::stream(&plan, &c).unwrap();
        *slot.lock().unwrap() = Some(streamed.spill_dir().expect("build spilled at prepare"));
        let mut n = 0usize;
        streamed
            .for_each_row(|_| {
                n += 1;
                if n > 10 {
                    panic!("aborting mid-pull");
                }
                Ok(())
            })
            .unwrap();
    });
    assert!(result.is_err(), "the run must have aborted");
    let dir = dir_slot.lock().unwrap().clone().expect("dir was recorded");
    assert!(
        !dir.exists(),
        "spill dir must be removed when the run unwinds: {dir:?}"
    );
}

/// The CI `mem-budget` matrix leg's anti-no-op guard. When
/// `RELALG_MEM_BUDGET` is set (as that leg sets it), the engine default
/// must reflect it and a workload modestly larger than the budget must
/// actually spill — if the env plumbing ever breaks, this fails rather
/// than letting the leg silently test nothing. Without the env var the
/// test exercises the same workload under an explicit catalog budget.
#[test]
fn ci_budget_leg_actually_spills() {
    let env_budget = std::env::var("RELALG_MEM_BUDGET")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0);
    let mut cat = Catalog::new();
    if let Some(bytes) = env_budget {
        assert_eq!(
            EngineConfig::default().mem_budget,
            bytes,
            "RELALG_MEM_BUDGET is set but the engine default ignores it"
        );
        // Size the workload to ~4x the configured budget (breaker
        // footprint ≈ 100 bytes per buffered row).
        let rows = (bytes / 25).max(4000) as i64;
        cat.insert("t", big_rel(rows, rows / 2));
    } else {
        cat.set_mem_budget(64 * 1024);
        cat.insert("t", big_rel(8000, 4000));
    }
    cat.set_threads(1);
    let plan = Plan::scan("t").project_names(["k", "g"]).distinct();
    let streamed = exec::stream(&plan, &cat).unwrap();
    let n = streamed.collect_rows(None).unwrap().len();
    assert!(n > 0);
    let stats = streamed.stats();
    assert!(
        stats.spill_events > 0,
        "budget {:?} configured but nothing spilled: {stats:?}",
        env_budget
    );
}
