//! Property-based tests of the core data-structure invariants:
//! descriptor algebra, reduction (Prop. 3.3), normalization (Thm 4.2),
//! confidence (Section 7), and the Figure 2 merge equivalences as
//! observable behaviour (partition pruning does not change semantics).

use proptest::prelude::*;
use u_relations::core::normalize::normalize;
use u_relations::core::prob::{confidence, confidence_monte_carlo, covers_all_worlds};
use u_relations::core::reduce::reduce;
use u_relations::core::{
    evaluate_with, oracle_possible, possible, table, TranslateOptions, UDatabase, URelation, Var,
    WorldTable, WsDescriptor,
};
use u_relations::relalg::{col, lit_i64, Value};

const LIMIT: usize = 1024;

fn arb_desc(nvars: u32, dom: u64) -> impl Strategy<Value = WsDescriptor> {
    prop::collection::btree_map(1..=nvars, 0..dom, 0..=3).prop_map(|m| {
        WsDescriptor::from_pairs(m.into_iter().map(|(v, val)| (Var(v), val))).unwrap()
    })
}

fn world(nvars: u32, dom: u64) -> WorldTable {
    let mut w = WorldTable::new();
    for i in 1..=nvars {
        w.add_var(Var(i), (0..dom).collect()).unwrap();
    }
    w
}

/// One tuple field: absent (→ non-reduced rows elsewhere), certain, or
/// dependent on one of three binary variables with a (possibly partial)
/// domain coverage — partial coverage is what makes sibling rows
/// un-completable in some worlds.
type Field = Option<(Option<usize>, Vec<(u64, i64)>)>;

fn arb_field() -> impl Strategy<Value = Field> {
    prop_oneof![
        1 => Just(None),
        3 => (0i64..5).prop_map(|v| Some((None, vec![(0, v)]))),
        4 => (0usize..3, prop::collection::btree_map(0u64..2, 0i64..5, 1..=2))
            .prop_map(|(i, m)| Some((Some(i), m.into_iter().collect()))),
    ]
}

/// A single-relation database, valid by construction (each tuple field is
/// written by rows of a single variable, whose descriptors are pairwise
/// inconsistent), but often *non-reduced*.
fn arb_nonreduced() -> impl Strategy<Value = UDatabase> {
    prop::collection::vec((arb_field(), arb_field()), 1..=3).prop_map(|tuples| {
        let w = world(3, 2);
        let vars: Vec<Var> = w.vars().collect();
        let mut db = UDatabase::new(w);
        db.add_relation("r", ["a", "b"]).unwrap();
        let mut ua = URelation::partition("ua", ["a"]);
        let mut ub = URelation::partition("ub", ["b"]);
        for (tid0, (fa, fb)) in tuples.iter().enumerate() {
            let tid = tid0 as i64 + 1;
            for (field, u) in [(fa, &mut ua), (fb, &mut ub)] {
                let Some((var_idx, pairs)) = field else {
                    continue;
                };
                match var_idx {
                    None => u
                        .push_simple(WsDescriptor::empty(), tid, vec![Value::Int(pairs[0].1)])
                        .unwrap(),
                    Some(i) => {
                        for &(l, v) in pairs {
                            u.push_simple(
                                WsDescriptor::singleton(vars[*i], l),
                                tid,
                                vec![Value::Int(v)],
                            )
                            .unwrap();
                        }
                    }
                }
            }
        }
        db.add_partition("r", ua).unwrap();
        db.add_partition("r", ub).unwrap();
        db
    })
}

fn world_signatures(db: &UDatabase) -> Vec<String> {
    db.possible_worlds(LIMIT)
        .unwrap()
        .iter()
        .map(|(_, i)| format!("{}", i["r"].sorted_set()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn descriptor_union_is_commutative_and_consistent(
        a in arb_desc(4, 3),
        b in arb_desc(4, 3),
    ) {
        prop_assert_eq!(a.consistent_with(&b), b.consistent_with(&a));
        prop_assert_eq!(a.union(&b), b.union(&a));
        if let Some(u) = a.union(&b) {
            // The union subsumes nothing less than both inputs, and is
            // absorbing under repeated union.
            prop_assert!(a.subsumes(&u));
            prop_assert!(b.subsumes(&u));
            let again = u.union(&a);
            prop_assert_eq!(again, Some(u));
        }
    }

    #[test]
    fn descriptor_padding_roundtrips(d in arb_desc(4, 3), extra in 0usize..3) {
        let arity = d.len() + extra;
        let padded = d.encode_padded(arity);
        prop_assert_eq!(padded.len(), arity);
        prop_assert_eq!(WsDescriptor::decode(padded).unwrap(), d);
    }

    #[test]
    fn reduction_preserves_every_world(db in arb_nonreduced()) {
        // Validity can fail for random data (shared-attribute clashes are
        // impossible here, so validate must pass).
        db.validate().unwrap();
        let before = world_signatures(&db);
        let mut reduced = db.clone();
        reduce(&mut reduced).unwrap();
        let after = world_signatures(&reduced);
        prop_assert_eq!(before, after);
        prop_assert!(reduced.total_rows() <= db.total_rows());
    }

    #[test]
    fn normalization_preserves_the_world_set(db in arb_nonreduced()) {
        let mut reduced = db.clone();
        reduce(&mut reduced).unwrap();
        let norm = normalize(&reduced).unwrap();
        // Every descriptor has size ≤ 1 (Definition 4.1).
        for rel in norm.relations().map(str::to_string).collect::<Vec<_>>() {
            for p in norm.partitions_of(&rel).unwrap() {
                prop_assert!(p.is_normalized());
            }
        }
        // Same set of world instances (the valuations differ, the
        // instances must not).
        let mut a = world_signatures(&reduced);
        let mut b = world_signatures(&norm);
        a.sort();
        a.dedup();
        b.sort();
        b.dedup();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn confidence_equals_world_mass(
        descs in prop::collection::vec(arb_desc(3, 2), 0..4),
    ) {
        let w = world(3, 2);
        let exact = confidence(&descs, &w).unwrap();
        // Brute force over all 8 worlds.
        let mut mass = 0.0;
        for f in w.worlds(64).unwrap() {
            if descs.iter().any(|d| w.extends(&f, d)) {
                mass += w.world_prob(&f).unwrap();
            }
        }
        prop_assert!((exact - mass).abs() < 1e-9, "{exact} vs {mass}");
        prop_assert!((0.0..=1.0 + 1e-12).contains(&exact));
        // Coverage agrees with certainty of the union.
        prop_assert_eq!(
            covers_all_worlds(&descs, &w).unwrap(),
            (exact - 1.0).abs() < 1e-9
        );
        // Monte Carlo is within loose bounds.
        let mc = confidence_monte_carlo(&descs, &w, 4000, 11).unwrap();
        prop_assert!((mc - exact).abs() < 0.08, "{mc} vs {exact}");
    }

    #[test]
    fn partition_pruning_is_semantically_invisible(
        db in arb_nonreduced(),
        k in 0i64..5,
    ) {
        // Figure 2 equivalences, observable form: translating with full
        // merges (P1 style) and with pruned merges gives the same answers.
        // Note: partition pruning assumes a *reduced* database (Section 3).
        let mut db = db;
        reduce(&mut db).unwrap();
        let q = table("r").select(col("a").eq(lit_i64(k))).project(["a"]);
        let naive = evaluate_with(
            &db,
            &q,
            TranslateOptions { prune_partitions: false },
            false,
        )
        .unwrap();
        let pruned = evaluate_with(
            &db,
            &q,
            TranslateOptions { prune_partitions: true },
            true,
        )
        .unwrap();
        prop_assert!(
            naive.possible_tuples().set_eq(&pruned.possible_tuples()),
        );
        // And both agree with the oracle.
        let want = oracle_possible(&q, &db, LIMIT).unwrap();
        prop_assert!(pruned.possible_tuples().set_eq(&want));
        let _ = possible(&db, &q).unwrap();
    }
}
