//! Frontend lowering coverage: a differential oracle proving that
//! pipeline text lowers to exactly the plans the hand-built core
//! algebra produces, plus golden tests pinning the spanned parse
//! errors.

use u_relations::core::{figure1_database, table, table_as, UQuery};
use u_relations::ql::{self, QueryMode};
use u_relations::relalg::{col, lit_i64, lit_str, Expr};

/// Hand-built counterparts for a set of pipelines covering every stage
/// kind, aliasing, subqueries, unions, precedence, and literals.
fn handbuilt_cases() -> Vec<(&'static str, UQuery)> {
    vec![
        ("from r", table("r")),
        ("FROM R", table("R")),
        (
            "from r | where id = 2 | select type",
            table("r")
                .select(col("id").eq(lit_i64(2)))
                .project(["type"]),
        ),
        (
            "from r as a | join r as b on a.id = b.id | select a.type, b.faction",
            table_as("r", "a")
                .join(table_as("r", "b"), col("a.id").eq(col("b.id")))
                .project(["a.type", "b.faction"]),
        ),
        (
            "from r | where type = 'Tank' and faction = 'Enemy' | select id",
            table("r")
                .select(Expr::and([
                    col("type").eq(lit_str("Tank")),
                    col("faction").eq(lit_str("Enemy")),
                ]))
                .project(["id"]),
        ),
        (
            "from r | where id = 1 or id = 2 or not faction = 'Enemy'",
            table("r").select(Expr::or([
                col("id").eq(lit_i64(1)),
                col("id").eq(lit_i64(2)),
                Expr::Not(Box::new(col("faction").eq(lit_str("Enemy")))),
            ])),
        ),
        (
            "from r | where id + 1 * 2 <= 5",
            table("r").select(col("id").add(lit_i64(1).mul(lit_i64(2))).le(lit_i64(5))),
        ),
        (
            "from (from r | where id = 1) | union (from r | where id = 2)",
            table("r")
                .select(col("id").eq(lit_i64(1)))
                .union(table("r").select(col("id").eq(lit_i64(2)))),
        ),
        (
            "from r | select id | union (from r | select id)",
            table("r").project(["id"]).union(table("r").project(["id"])),
        ),
    ]
}

#[test]
fn handbuilt_queries_lower_identically() {
    for (src, want) in handbuilt_cases() {
        let lowered = ql::compile(src).unwrap_or_else(|e| panic!("{src}: {e}"));
        assert_eq!(lowered.query, want, "lowering mismatch for `{src}`");
    }
}

#[test]
fn lowered_plans_are_byte_identical_to_handbuilt() {
    let udb = figure1_database();
    let prepared = udb.prepare();
    for (src, want) in handbuilt_cases() {
        if src.contains('R') {
            continue; // `R` is not a catalog relation; lowering-only case.
        }
        let lowered = ql::compile(src).unwrap();
        let plan_lowered = prepared.explain(&lowered.query).unwrap();
        let plan_handbuilt = prepared.explain(&want).unwrap();
        assert_eq!(
            plan_lowered, plan_handbuilt,
            "plan text mismatch for `{src}`"
        );
        // And the answers, through the same PreparedDb path.
        assert_eq!(
            prepared.possible(&lowered.query).unwrap(),
            prepared.possible(&want).unwrap(),
            "answer mismatch for `{src}`"
        );
    }
}

// --- generated differential oracle ----------------------------------

/// Tiny deterministic LCG so the generator needs no RNG dependency.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Generate pipeline text and the equivalent hand-built query at the
/// same time; the oracle then checks `compile(text).query == built`.
fn gen_pipeline(rng: &mut Lcg, alias: &str) -> (String, UQuery) {
    let mut text = format!("from r as {alias}");
    let mut q = table_as("r", alias);
    let stages = 1 + rng.below(3);
    for _ in 0..stages {
        match rng.below(3) {
            0 => {
                let (ptext, pred) = gen_pred(rng, alias);
                text.push_str(&format!(" | where {ptext}"));
                q = q.select(pred);
            }
            1 => {
                // Projection must keep attrs resolvable; project all
                // three so later stages still see their columns.
                text.push_str(&format!(
                    " | select {alias}.id, {alias}.type, {alias}.faction"
                ));
                q = q.project([
                    format!("{alias}.id"),
                    format!("{alias}.type"),
                    format!("{alias}.faction"),
                ]);
            }
            _ => {
                let (ptext, pred) = gen_pred(rng, alias);
                text.push_str(&format!(" | where not ({ptext})"));
                q = q.select(Expr::Not(Box::new(pred)));
            }
        }
    }
    (text, q)
}

fn gen_pred(rng: &mut Lcg, alias: &str) -> (String, Expr) {
    let atom = |rng: &mut Lcg| -> (String, Expr) {
        match rng.below(3) {
            0 => {
                let v = rng.below(5) as i64;
                (
                    format!("{alias}.id = {v}"),
                    col(&format!("{alias}.id")).eq(lit_i64(v)),
                )
            }
            1 => (
                format!("{alias}.type = 'Tank'"),
                col(&format!("{alias}.type")).eq(lit_str("Tank")),
            ),
            _ => {
                let v = rng.below(5) as i64;
                (
                    format!("{alias}.id <= {v}"),
                    col(&format!("{alias}.id")).le(lit_i64(v)),
                )
            }
        }
    };
    let (t1, e1) = atom(rng);
    match rng.below(3) {
        0 => (t1, e1),
        1 => {
            let (t2, e2) = atom(rng);
            (format!("{t1} and {t2}"), Expr::and([e1, e2]))
        }
        _ => {
            let (t2, e2) = atom(rng);
            (format!("{t1} or {t2}"), Expr::or([e1, e2]))
        }
    }
}

#[test]
fn generated_pipelines_lower_to_identical_plans() {
    let udb = figure1_database();
    let prepared = udb.prepare();
    let mut rng = Lcg(0x1CDE_2008);
    for i in 0..200 {
        let (text, want) = gen_pipeline(&mut rng, "v");
        let lowered = ql::compile(&text).unwrap_or_else(|e| panic!("case {i} `{text}`: {e}"));
        assert_eq!(
            lowered.query, want,
            "case {i}: lowering mismatch for `{text}`"
        );
        assert_eq!(lowered.mode, QueryMode::Possible { confidence: None });
        // Byte-identical plans and answers through the same engine.
        assert_eq!(
            prepared.explain(&lowered.query).unwrap(),
            prepared.explain(&want).unwrap(),
            "case {i}: plan mismatch for `{text}`"
        );
    }
}

// --- spanned parse-error goldens -------------------------------------

#[test]
fn parse_errors_are_golden() {
    // (input, exact Display of the error) — spans are part of the
    // contract: the server protocol forwards them to clients.
    let cases = [
        (
            "fro r",
            "parse error at 0..3: expected `from`, found identifier `fro`",
        ),
        (
            "from r | wear id = 1",
            "parse error at 9..13: expected a stage (`where`, `select`, `join`, \
             `union`, `possible` or `certain`), found identifier `wear`",
        ),
        (
            "from r | select ",
            "parse error at 16..16: expected an attribute name, found end of input",
        ),
        (
            "from r | where id = ",
            "parse error at 20..20: expected an expression, found end of input",
        ),
        (
            "from r | where id = 0.5",
            "parse error at 20..23: float literals are only valid after `confidence`",
        ),
        (
            "from r | join s on",
            "parse error at 18..18: expected an expression, found end of input",
        ),
        (
            "from r | union from s",
            "parse error at 15..19: expected `(` after `union`, found keyword `from`",
        ),
        (
            "from r | where id = 'oops",
            "parse error at 20..25: unterminated string literal",
        ),
        (
            "from r ; oops",
            "parse error at 7..8: unexpected character `;`",
        ),
        (
            "from r | possible trailing",
            "parse error at 18..26: expected `|` or end of input, found identifier `trailing`",
        ),
    ];
    for (src, want) in cases {
        let got = ql::parse(src).map(|s| format!("unexpected parse success: {s:?}"));
        let got = match got {
            Err(e) => e.to_string(),
            Ok(msg) => msg,
        };
        assert_eq!(got, want, "golden mismatch for `{src}`");
    }
}

#[test]
fn lowering_errors_are_golden() {
    let cases = [
        (
            "from r | certain | select id",
            "lowering error at 19..28: `possible`/`certain` must be the last stage of the pipeline",
        ),
        (
            "from r | union (from r | possible)",
            "lowering error at 25..33: `possible`/`certain` is only allowed on the \
             top-level pipeline, not in a subquery",
        ),
        (
            "from r | possible confidence 1",
            "lowering error at 9..30: confidence half-width must satisfy 0 < \u{3b5} < 1, got 1",
        ),
    ];
    for (src, want) in cases {
        let e = ql::compile(src).unwrap_err();
        assert_eq!(e.to_string(), want, "golden mismatch for `{src}`");
    }
}
