//! Integration tests replicating the paper's worked examples literally,
//! across all crates: Figure 1 (vehicles), Examples 3.6/3.7 (queries),
//! Figure 5 (normalization ↔ WSD), Example 5.4 (ULDB), Figures 6/7
//! (succinctness witnesses).

use u_relations::core::normalize::normalize;
use u_relations::core::{evaluate, figure1_database, oracle_possible, possible, table, table_as};
use u_relations::relalg::{col, lit_str, Expr, Relation, Value};
use u_relations::uldb::convert::uldb_to_udb;
use u_relations::uldb::example_5_4;
use u_relations::wsd::convert::{udb_to_wsd, wsd_to_udb};
use u_relations::wsd::ring;

#[test]
fn figure1_partition_sizes_match_the_paper() {
    let db = figure1_database();
    let parts = db.partitions_of("r").unwrap();
    // U1 has 6 rows, U2 and U3 have 5 each — exactly Figure 1b.
    assert_eq!(parts[0].len(), 6);
    assert_eq!(parts[1].len(), 5);
    assert_eq!(parts[2].len(), 5);
    assert_eq!(db.world.world_count_exact(), Some(8));
}

#[test]
fn example_3_6_u4_rows() {
    // The paper prints U4 with exactly three rows:
    // (x↦1 | c | 3), (x↦2 | c | 2), (y↦1, z↦2 | d | 4).
    let db = figure1_database();
    let q = table("r")
        .select(Expr::and([
            col("type").eq(lit_str("Tank")),
            col("faction").eq(lit_str("Enemy")),
        ]))
        .project(["id"]);
    let u4 = evaluate(&db, &q).unwrap();
    assert_eq!(u4.len(), 3);
    let mut ids: Vec<i64> = u4
        .rows()
        .iter()
        .map(|r| r.vals[0].as_int().unwrap())
        .collect();
    ids.sort_unstable();
    assert_eq!(ids, vec![2, 3, 4]);
    // The id-4 row must carry the two-variable descriptor {y↦1, z↦2}.
    let d4 = u4
        .rows()
        .iter()
        .find(|r| r.vals[0] == Value::Int(4))
        .unwrap();
    assert_eq!(d4.desc.len(), 2);
}

#[test]
fn example_3_7_u5_has_four_rows() {
    // U5: four consistent pairs; the combinations of U4's first two rows
    // are ψ-filtered out.
    let db = figure1_database();
    let s = |alias: &str| {
        table_as("r", alias).select(Expr::and([
            col(&format!("{alias}.type")).eq(lit_str("Tank")),
            col(&format!("{alias}.faction")).eq(lit_str("Enemy")),
        ]))
    };
    let q = s("s1")
        .join(s("s2"), col("s1.id").ne(col("s2.id")))
        .project(["s1.id", "s2.id"]);
    let u5 = evaluate(&db, &q).unwrap();
    assert_eq!(u5.len(), 4, "{u5}");
    let expected = Relation::from_rows(
        ["s1.id", "s2.id"],
        vec![
            vec![Value::Int(3), Value::Int(4)],
            vec![Value::Int(2), Value::Int(4)],
            vec![Value::Int(4), Value::Int(3)],
            vec![Value::Int(4), Value::Int(2)],
        ],
    )
    .unwrap();
    assert!(u5.possible_tuples().set_eq(&expected));
}

#[test]
fn figure5_roundtrip_through_normalization_and_wsd() {
    // Figure 5: (a) U-relational database → (b) normalized → (c) WSD.
    use u_relations::core::{UDatabase, URelation, Var, WorldTable, WsDescriptor};
    let mut w = WorldTable::new();
    w.add_var(Var(1), vec![1, 2]).unwrap();
    w.add_var(Var(2), vec![1, 2]).unwrap();
    w.add_var(Var(3), vec![1, 2]).unwrap();
    let d = |pairs: &[(u32, u64)]| {
        WsDescriptor::from_pairs(pairs.iter().map(|&(v, x)| (Var(v), x))).unwrap()
    };
    let mut u = URelation::partition("u", ["a"]);
    u.push_simple(d(&[(1, 1)]), 1, vec![Value::str("a1")])
        .unwrap();
    u.push_simple(d(&[(1, 1), (2, 2)]), 2, vec![Value::str("a2")])
        .unwrap();
    u.push_simple(d(&[(1, 2)]), 2, vec![Value::str("a3")])
        .unwrap();
    u.push_simple(d(&[(3, 1)]), 3, vec![Value::str("a4")])
        .unwrap();
    u.push_simple(d(&[(3, 2)]), 3, vec![Value::str("a5")])
        .unwrap();
    let mut db = UDatabase::new(w);
    db.add_relation("r", ["a"]).unwrap();
    db.add_partition("r", u).unwrap();

    let norm = normalize(&db).unwrap();
    // Figure 5(b): U' has 7 rows, W' has 4 + 2 rows.
    assert_eq!(norm.total_rows(), 7);
    let mut dom_sizes: Vec<usize> = norm
        .world
        .vars()
        .map(|v| norm.world.domain(v).unwrap().len())
        .collect();
    dom_sizes.sort_unstable();
    assert_eq!(dom_sizes, vec![2, 4]);

    // Figure 5(c): the corresponding WSD is c12 (4 local worlds) × c3 (2).
    let wsd = udb_to_wsd(&norm).unwrap();
    assert_eq!(wsd.world_count(), Some(8));
    let back = wsd_to_udb(&wsd).unwrap();
    let sig = |db: &UDatabase| {
        let mut v: Vec<String> = db
            .possible_worlds(64)
            .unwrap()
            .iter()
            .map(|(_, i)| format!("{}", i["r"].sorted_set()))
            .collect();
        v.sort();
        v.dedup();
        v
    };
    assert_eq!(sig(&db), sig(&back));
}

#[test]
fn example_5_4_uldb_equals_figure1_and_translates_linearly() {
    let (uldb, _) = example_5_4();
    // Same worlds as Figure 1's U-relational database.
    let udb = figure1_database();
    let mut a: Vec<String> = uldb
        .worlds(64)
        .unwrap()
        .iter()
        .map(|i| format!("{}", i["r"].sorted_set()))
        .collect();
    a.sort();
    a.dedup();
    let mut b: Vec<String> = udb
        .possible_worlds(64)
        .unwrap()
        .iter()
        .map(|(_, i)| format!("{}", i["r"].sorted_set()))
        .collect();
    b.sort();
    b.dedup();
    assert_eq!(a, b);

    // Lemma 5.5: linear translation, same worlds.
    let translated = uldb_to_udb(&uldb, "r").unwrap();
    assert_eq!(
        translated.total_rows(),
        uldb.relation("r").unwrap().alt_count()
    );
    let mut c: Vec<String> = translated
        .possible_worlds(64)
        .unwrap()
        .iter()
        .map(|(_, i)| format!("{}", i["r"].sorted_set()))
        .collect();
    c.sort();
    c.dedup();
    assert_eq!(a, c);
}

#[test]
fn figures_6_and_7_witness_theorem_5_2() {
    // Inputs linear in both formalisms…
    let n = 6;
    let udb = ring::ring_udb(n).unwrap();
    let wsd = ring::ring_wsd(n).unwrap();
    assert_eq!(udb.total_rows(), 4 * n); // 2n rows per partition
    assert_eq!(wsd.total_cells(), 4 * n); // n components × 2 × 2
                                          // …answers exponentially apart.
    let answer = ring::ring_answer_urel(n);
    assert_eq!(answer.len(), 2 * n);
    assert_eq!(ring::ring_answer_wsd_cells(n), (1 << n) * 2 * n as u128);
    // The translated selection equals the hand-built Figure 7(b) answer.
    let q = table("r").select(col("a").eq(col("b")));
    let got = possible(&udb, &q).unwrap();
    assert!(got.set_eq(&answer.possible_tuples()));
    let _ = oracle_possible(&q, &udb, 1 << n).unwrap();
}
