//! The session server's protocol, concurrency, and shedding contracts.
//!
//! - The end-to-end acceptance: a TCP client receives **byte-identical**
//!   answers to the in-process `PreparedDb` path, confidence clause
//!   included.
//! - `ci_server_leg_actually_sheds` is the admission-backed no-op guard
//!   for the CI server leg: under a deliberately tiny admission limit,
//!   queries must demonstrably queue AND shed — the leg cannot silently
//!   become a plain re-run of the suite.
//! - The deadline regression: a request whose deadline expires while
//!   queued for admission sheds with `Error::Cancelled` *without* ever
//!   acquiring task-pool workers or buffer-pool leases
//!   (`fault::assert_no_leaks`).

use std::sync::Arc;
use std::time::Duration;
use u_relations::core::{figure1_database, translate::PreparedDb};
use u_relations::relalg::store::pool_for;
use u_relations::relalg::{fault, EngineConfig};
use u_relations::server::{render_answers, serve, Client, Json, ServerConfig};
use u_relations::{ql, server::render_explain};

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        max_concurrent: 4,
        max_queue: 16,
        deadline: None,
    }
}

/// The fixed statements of the acceptance test; the last one carries
/// the confidence clause the issue's acceptance criterion names.
const STATEMENTS: &[&str] = &[
    "from r | where id = 1 | select type | possible",
    "from r as a | join r as b on a.id = b.id | select a.type, b.faction | possible",
    "from r | select type | certain",
    "from r | where type = 'Tank' | select id",
    "from r | select id, type | possible confidence 0.1",
    "from r | select type | certain confidence 0.2",
];

#[test]
fn tcp_answers_are_byte_identical_to_library() {
    let udb = Arc::new(figure1_database());
    let server = serve(Arc::clone(&udb), test_config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // The library path a session is specified to equal: a PreparedDb
    // over the same shared catalog.
    let prepared = PreparedDb::with_catalog(&udb, udb.to_catalog());

    for src in STATEMENTS {
        let (id, raw) = client.query_raw(src).unwrap();
        let lowered = ql::compile(src).unwrap();
        let answers = ql::execute(&prepared, &lowered).unwrap();
        let expected = render_answers(Some(id), &answers).render();
        assert_eq!(raw, expected, "byte mismatch for `{src}`");
    }
    server.shutdown();
}

#[test]
fn explain_over_tcp_matches_library() {
    let udb = Arc::new(figure1_database());
    let server = serve(Arc::clone(&udb), test_config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let prepared = PreparedDb::with_catalog(&udb, udb.to_catalog());
    let src = "explain from r as a | join r as b on a.id = b.id | select a.type";
    let (id, raw) = client.query_raw(src).unwrap();
    let lowered = ql::compile(src).unwrap();
    assert!(lowered.explain);
    let expected = render_explain(Some(id), &prepared.explain(&lowered.query).unwrap()).render();
    assert_eq!(raw, expected);
    server.shutdown();
}

#[test]
fn protocol_session_basics() {
    let udb = Arc::new(figure1_database());
    let server = serve(udb, test_config()).unwrap();
    let mut a = Client::connect(server.local_addr()).unwrap();

    // Ping.
    let resp = a.round_trip(r#"{"op":"ping","id":9}"#).unwrap();
    assert_eq!(resp, r#"{"id":9,"ok":true,"pong":true}"#);

    // A protocol error answers kind "proto" and keeps the session.
    let resp = a.round_trip("this is not json").unwrap();
    assert!(resp.contains(r#""kind":"proto""#), "{resp}");
    let resp = a.round_trip(r#"{"op":"frobnicate"}"#).unwrap();
    assert!(resp.contains(r#""kind":"proto""#), "{resp}");

    // A parse error carries its span — still the same session.
    let parsed = a.query("from r | wear id = 1").unwrap();
    assert_eq!(parsed.get("kind").and_then(Json::as_str), Some("parse"));
    assert!(parsed.get("span").is_some());

    // Per-session plan caches: session A warms its cache...
    for src in ["from r | select id", "from r | select type"] {
        let resp = a.query(src).unwrap();
        assert!(resp.get("ok").unwrap().is_true(), "{src}");
    }
    let stats_a = a.stats().unwrap();
    let plans_a = stats_a.get("cached_plans").and_then(Json::as_i64).unwrap();
    assert!(plans_a >= 2, "expected >= 2 cached plans, got {plans_a}");

    // ...while a fresh session B starts cold (caches are private).
    let mut b = Client::connect(server.local_addr()).unwrap();
    let stats_b = b.stats().unwrap();
    assert_eq!(stats_b.get("cached_plans").and_then(Json::as_i64), Some(0));
    // But admission stats are shared server-wide.
    assert!(
        stats_b
            .get("admission")
            .and_then(|a| a.get("admitted"))
            .and_then(Json::as_i64)
            .unwrap()
            >= 2
    );
    server.shutdown();
}

#[test]
fn concurrent_sessions_all_answer_correctly() {
    let udb = Arc::new(figure1_database());
    let server = serve(Arc::clone(&udb), test_config()).unwrap();
    let addr = server.local_addr();

    let prepared = PreparedDb::with_catalog(&udb, udb.to_catalog());
    let src = "from r | where id = 2 | select type, faction | possible";
    let lowered = ql::compile(src).unwrap();
    let answers = ql::execute(&prepared, &lowered).unwrap();

    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                let mut client = Client::connect(addr).unwrap();
                for _ in 0..25 {
                    let (id, raw) = client.query_raw(src).unwrap();
                    let expected = render_answers(Some(id), &answers).render();
                    assert_eq!(raw, expected);
                }
            });
        }
    });
    let stats = server.gate().stats();
    assert_eq!(stats.admitted, 100);
    assert_eq!(stats.in_flight, 0);
    server.shutdown();
}

/// The CI server leg's no-op guard: under a one-slot, one-waiter
/// admission limit with a slot deliberately held, concurrent requests
/// must observably queue AND shed. If the admission gate stopped being
/// wired between the protocol and execution, `queued`/`shed` would stay
/// zero and this test — run explicitly by the leg — would fail.
#[test]
fn ci_server_leg_actually_sheds() {
    let udb = Arc::new(figure1_database());
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        max_concurrent: 1,
        max_queue: 1,
        deadline: None,
    };
    let server = serve(udb, config).unwrap();
    let addr = server.local_addr();

    // Occupy the single execution slot so the storm below cannot race
    // past the gate before contention builds.
    let holder = server.gate().acquire(None).unwrap();

    let handles: Vec<_> = (0..6)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let resp = client.query("from r | select id").unwrap();
                let ok = resp.get("ok").unwrap().is_true();
                let kind = resp
                    .get("kind")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string();
                (ok, kind)
            })
        })
        .collect();

    // Give every request time to hit the gate: 1 queues, the rest shed.
    std::thread::sleep(Duration::from_millis(300));
    drop(holder);

    let outcomes: Vec<(bool, String)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let completed = outcomes.iter().filter(|(ok, _)| *ok).count();
    let shed = outcomes.iter().filter(|(_, k)| k == "shed").count();
    assert!(completed >= 1, "at least the queued request must complete");
    assert!(
        shed >= 1,
        "requests beyond the queue must shed: {outcomes:?}"
    );
    assert!(
        outcomes.iter().all(|(ok, k)| *ok || k == "shed"),
        "only ok/shed outcomes expected: {outcomes:?}"
    );

    let stats = server.gate().stats();
    assert!(stats.queued >= 1, "admission queue never used: {stats:?}");
    assert!(
        stats.shed_queue_full >= 1,
        "queue-full shedding never happened: {stats:?}"
    );
    assert!(
        stats.peak_in_flight <= 1,
        "admission bound violated: {stats:?}"
    );
    server.shutdown();
}

/// Regression (issue satellite): a request whose deadline expires while
/// it waits for admission must shed with `Error::Cancelled` WITHOUT
/// having acquired task-pool workers or buffer-pool leases. The gate
/// sits strictly before execution resources; `assert_no_leaks` checks
/// the shared buffer pool holds no in-flight leases the moment the
/// shed response arrives (the execution slot is still occupied by the
/// holder, so any lease would have to belong to the shed request).
#[test]
fn queued_deadline_expiry_sheds_without_touching_resources() {
    let udb = Arc::new(figure1_database());
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        max_concurrent: 1,
        max_queue: 4,
        deadline: Some(Duration::from_millis(120)),
    };
    let server = serve(udb, config).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Occupy the only execution slot for longer than the deadline.
    let holder = server.gate().acquire(None).unwrap();
    let resp = client.query("from r | select id | possible").unwrap();

    assert_eq!(resp.get("ok").map(Json::is_true), Some(false), "{resp:?}");
    assert_eq!(resp.get("kind").and_then(Json::as_str), Some("shed"));
    let msg = resp.get("error").and_then(Json::as_str).unwrap();
    assert!(msg.contains("deadline expired while queued"), "{msg}");

    let stats = server.gate().stats();
    assert_eq!(stats.shed_deadline, 1, "{stats:?}");
    // No execution resources were ever touched: no spill directory was
    // created (queries here run unbounded) and the process-wide buffer
    // pool holds zero in-flight leases.
    fault::assert_no_leaks(
        None,
        pool_for(EngineConfig::default().buffer_pool).in_flight_len(),
    );

    // The session survives the shed and completes once the slot frees.
    drop(holder);
    let resp = client.query("from r | select id | possible").unwrap();
    assert_eq!(resp.get("ok").map(Json::is_true), Some(true), "{resp:?}");
    server.shutdown();
}

/// ExecStats flow through the protocol: a successful possible-answer
/// response reports the execution's buffer traffic.
#[test]
fn responses_carry_exec_stats() {
    let udb = Arc::new(figure1_database());
    let server = serve(udb, test_config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let resp = client
        .query("from r as a | join r as b on a.id = b.id | select a.type | possible")
        .unwrap();
    assert!(resp.get("ok").unwrap().is_true());
    let stats = resp.get("stats").expect("stats field");
    assert!(stats.get("buffers").and_then(Json::as_i64).is_some());
    server.shutdown();
}
