//! Property-based tests of the central correctness claim (Section 3):
//! for any U-relational database and any positive relational algebra
//! query, the translated plan's result — decoded per world — equals
//! evaluating the query in each world.

use proptest::prelude::*;
use u_relations::core::certain::certain_exact;
use u_relations::core::{
    evaluate, oracle_certain, oracle_eval, oracle_possible, possible, table, table_as, UDatabase,
    UQuery, URelation, Var, WorldTable, WsDescriptor,
};
use u_relations::relalg::{col, lit_i64, Expr, Value};

const WORLD_LIMIT: usize = 512;

/// A random small U-database over r(a, b) and s(b2, c): up to three
/// variables with domains of size 2–3, up to four tuples per relation,
/// each field either certain or variable-dependent.
fn arb_udb() -> impl Strategy<Value = UDatabase> {
    let var_domains = prop::collection::vec(2u64..=3, 1..=3);
    let field = |nvars: usize| {
        // (Some(var index), values) = uncertain field; (None, [v]) = certain.
        prop_oneof![
            (0..10i64).prop_map(|v| (None, vec![v])),
            (0..nvars, prop::collection::vec(0i64..10, 3)).prop_map(|(i, vs)| (Some(i), vs)),
        ]
    };
    var_domains.prop_flat_map(move |doms| {
        let nvars = doms.len();
        let r_rows = prop::collection::vec((field(nvars), field(nvars)), 1..=4);
        let s_rows = prop::collection::vec((field(nvars), field(nvars)), 1..=3);
        (Just(doms), r_rows, s_rows).prop_map(|(doms, r_rows, s_rows)| {
            let mut w = WorldTable::new();
            let mut vars = Vec::new();
            for (i, d) in doms.iter().enumerate() {
                let v = Var(i as u32 + 1);
                w.add_var(v, (0..*d).collect()).unwrap();
                vars.push((v, *d));
            }
            let mut db = UDatabase::new(w);
            db.add_relation("r", ["a", "b"]).unwrap();
            db.add_relation("s", ["b2", "c"]).unwrap();
            // (Some(var index), values) = uncertain field; (None, [v]) =
            // certain — see `field` above.
            type Field = (Option<usize>, Vec<i64>);
            let fill = |u: &mut URelation,
                        rows: &[(Field, Field)],
                        pick: fn(&(Field, Field)) -> &Field| {
                for (tid, row) in rows.iter().enumerate() {
                    let (var_idx, vals) = pick(row);
                    match var_idx {
                        None => u
                            .push_simple(
                                WsDescriptor::empty(),
                                tid as i64 + 1,
                                vec![Value::Int(vals[0])],
                            )
                            .unwrap(),
                        Some(i) => {
                            let (v, d) = vars[*i];
                            for l in 0..d {
                                u.push_simple(
                                    WsDescriptor::singleton(v, l),
                                    tid as i64 + 1,
                                    vec![Value::Int(vals[l as usize % vals.len()])],
                                )
                                .unwrap();
                            }
                        }
                    }
                }
            };
            let mut ra = URelation::partition("u_r_a", ["a"]);
            fill(&mut ra, &r_rows, |r| &r.0);
            let mut rb = URelation::partition("u_r_b", ["b"]);
            fill(&mut rb, &r_rows, |r| &r.1);
            db.add_partition("r", ra).unwrap();
            db.add_partition("r", rb).unwrap();
            let mut sb = URelation::partition("u_s_b2", ["b2"]);
            fill(&mut sb, &s_rows, |r| &r.0);
            let mut sc = URelation::partition("u_s_c", ["c"]);
            fill(&mut sc, &s_rows, |r| &r.1);
            db.add_partition("s", sb).unwrap();
            db.add_partition("s", sc).unwrap();
            db
        })
    })
}

/// A random query over the r/s schema.
fn arb_query() -> impl Strategy<Value = UQuery> {
    prop_oneof![
        Just(table("r")),
        (0..10i64).prop_map(|k| table("r").select(col("a").eq(lit_i64(k)))),
        (0..10i64).prop_map(|k| table("r").select(col("b").lt(lit_i64(k))).project(["a"])),
        Just(table("r").project(["b"])),
        (0..10i64).prop_map(|k| {
            table("r")
                .select(col("a").ge(lit_i64(k)))
                .join(table("s"), col("b").eq(col("b2")))
                .project(["a", "c"])
        }),
        Just(table("r").join(table("s"), col("b").eq(col("b2")))),
        (0..10i64, 0..10i64).prop_map(|(k1, k2)| {
            table("r")
                .select(col("a").eq(lit_i64(k1)))
                .project(["a"])
                .union(table("r").select(col("b").eq(lit_i64(k2))).project(["a"]))
        }),
        Just(
            table_as("r", "r1")
                .join(
                    table_as("r", "r2"),
                    Expr::and([col("r1.b").eq(col("r2.b")), col("r1.a").lt(col("r2.a"))]),
                )
                .project(["r1.a", "r2.a"])
        ),
        (0..10i64).prop_map(|k| {
            table("s")
                .select(col("c").gt(lit_i64(k)))
                .project(["b2"])
                .poss()
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn translation_equals_possible_worlds_semantics(
        db in arb_udb(),
        q in arb_query(),
    ) {
        db.validate().unwrap();
        // poss agreement.
        let got = possible(&db, &q).unwrap();
        let want = oracle_possible(&q, &db, WORLD_LIMIT).unwrap();
        prop_assert!(got.set_eq(&want), "poss mismatch:\ngot {got}\nwant {want}");
        // Per-world agreement of the result U-relation.
        let u = evaluate(&db, &q).unwrap();
        for f in db.world.worlds(WORLD_LIMIT).unwrap() {
            let got_w = u.tuples_in_world(&db.world, &f);
            let want_w = oracle_eval(&q, &db, &f, WORLD_LIMIT).unwrap();
            prop_assert!(
                got_w.set_eq(&want_w.sorted_set()),
                "world {f:?}:\ngot {got_w}\nwant {want_w}"
            );
        }
    }

    #[test]
    fn certain_answers_agree_with_oracle(
        db in arb_udb(),
        q in arb_query(),
    ) {
        let u = evaluate(&db, &q).unwrap();
        let got = certain_exact(&u, &db.world).unwrap();
        let want = oracle_certain(&q, &db, WORLD_LIMIT).unwrap();
        prop_assert!(got.set_eq(&want), "certain mismatch:\ngot {got}\nwant {want}");
    }

    #[test]
    fn translation_is_parsimonious(
        db in arb_udb(),
        q in arb_query(),
    ) {
        // Physical joins = logical joins + merges; with two partitions per
        // relation, each Table leaf contributes at most one merge.
        let t = u_relations::core::translate(&db, &q).unwrap();
        let leaves_upper_bound = 2 * (q.op_count() + 1);
        prop_assert!(t.plan.join_count() <= q.join_ops() + leaves_upper_bound);
    }
}
