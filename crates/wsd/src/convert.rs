//! Conversions between normalized U-relational databases and WSDs
//! (Figure 5): each variable becomes a component, each domain value a
//! local world; certain fields (empty descriptors) form a one-local-world
//! component.

use crate::wsdb::{Component, FieldId, Wsd};
use std::collections::BTreeMap;
use urel_core::error::{Error, Result};
use urel_core::{UDatabase, URelation, Var, WorldTable, WsDescriptor};
use urel_relalg::Value;

/// Convert a *normalized* U-relational database into the equivalent WSD.
pub fn udb_to_wsd(db: &UDatabase) -> Result<Wsd> {
    // Collect, per variable, the fields it decides and their values per
    // domain value; `None` collects the certain fields.
    type FieldVals = BTreeMap<FieldId, BTreeMap<u64, Value>>;
    let mut by_var: BTreeMap<Option<Var>, FieldVals> = BTreeMap::new();
    let mut schema: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for rel in db.relations() {
        schema.insert(rel.to_string(), db.attrs(rel)?.to_vec());
        for p in db.partitions_of(rel)? {
            for row in p.rows() {
                if row.desc.len() > 1 {
                    return Err(Error::InvalidQuery(
                        "WSD conversion requires a normalized database".into(),
                    ));
                }
                let key = row.desc.iter().next().map(|&(v, _)| v);
                let val_key = row.desc.iter().next().map(|&(_, l)| l).unwrap_or(0);
                for (attr, v) in p.value_cols().iter().zip(row.vals.iter()) {
                    by_var
                        .entry(key)
                        .or_default()
                        .entry(FieldId::new(rel, row.tids[0], attr))
                        .or_default()
                        .insert(val_key, v.clone());
                }
            }
        }
    }

    let mut wsd = Wsd::new(schema);
    for (var, fields) in by_var {
        match var {
            None => {
                // Certain fields: a single-local-world component.
                let (ids, vals): (Vec<FieldId>, Vec<Option<Value>>) = fields
                    .into_iter()
                    .map(|(f, mut m)| (f, m.remove(&0)))
                    .unzip();
                wsd.add_component(Component::new(ids, vec![vals])?)?;
            }
            Some(v) => {
                let dom = db.world.domain(v)?.to_vec();
                let ids: Vec<FieldId> = fields.keys().cloned().collect();
                let mut locals = Vec::with_capacity(dom.len());
                for l in dom {
                    locals.push(
                        ids.iter()
                            .map(|f| fields[f].get(&l).cloned())
                            .collect::<Vec<_>>(),
                    );
                }
                wsd.add_component(Component::new(ids, locals)?)?;
            }
        }
    }
    Ok(wsd)
}

/// Convert a WSD back into a (normalized, tuple-level per attribute)
/// U-relational database: one fresh variable per multi-local-world
/// component.
pub fn wsd_to_udb(wsd: &Wsd) -> Result<UDatabase> {
    let mut wt = WorldTable::new();
    let mut comp_vars: Vec<Option<Var>> = Vec::with_capacity(wsd.components.len());
    for c in &wsd.components {
        if c.local_worlds.len() == 1 {
            comp_vars.push(None);
        } else {
            comp_vars.push(Some(wt.fresh_var(c.local_worlds.len() as u64)?));
        }
    }
    let mut db = UDatabase::new(wt);
    // One partition per (relation, attribute).
    let mut partitions: BTreeMap<(String, String), URelation> = BTreeMap::new();
    for (rel, attrs) in &wsd.schema {
        db.add_relation(rel, attrs.iter().cloned())?;
        for a in attrs {
            partitions.insert(
                (rel.clone(), a.clone()),
                URelation::partition(format!("u_{rel}_{a}"), [a.clone()]),
            );
        }
    }
    for (c, var) in wsd.components.iter().zip(&comp_vars) {
        for (l, world) in c.local_worlds.iter().enumerate() {
            let desc = match var {
                None => WsDescriptor::empty(),
                Some(v) => WsDescriptor::singleton(*v, l as u64),
            };
            for (f, v) in c.fields.iter().zip(world) {
                if let Some(v) = v {
                    partitions
                        .get_mut(&(f.rel.clone(), f.attr.clone()))
                        .ok_or_else(|| Error::InvalidDatabase(format!("unknown field {f}")))?
                        .push_simple(desc.clone(), f.tid, vec![v.clone()])?;
                }
            }
        }
    }
    for ((rel, _), p) in partitions {
        if !p.is_empty() {
            db.add_partition(&rel, p)?;
        }
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use urel_core::figure1_database;
    use urel_core::normalize::normalize;

    fn canon(worlds: Vec<BTreeMap<String, urel_relalg::Relation>>) -> Vec<String> {
        let mut v: Vec<String> = worlds
            .iter()
            .map(|inst| {
                inst.iter()
                    .map(|(r, rel)| format!("{r}:{}", rel.sorted_set()))
                    .collect::<Vec<_>>()
                    .join(";")
            })
            .collect();
        v.sort();
        v.dedup();
        v
    }

    #[test]
    fn figure1_roundtrips_through_wsd() {
        let db = figure1_database();
        let wsd = udb_to_wsd(&db).unwrap();
        assert_eq!(wsd.world_count(), Some(8));

        let udb_worlds = canon(
            db.possible_worlds(16)
                .unwrap()
                .into_iter()
                .map(|(_, inst)| inst)
                .collect(),
        );
        let wsd_worlds = canon(wsd.worlds(16).unwrap());
        assert_eq!(udb_worlds, wsd_worlds);

        // And back again.
        let back = wsd_to_udb(&wsd).unwrap();
        let back_worlds = canon(
            back.possible_worlds(16)
                .unwrap()
                .into_iter()
                .map(|(_, inst)| inst)
                .collect(),
        );
        assert_eq!(udb_worlds, back_worlds);
    }

    #[test]
    fn conversion_requires_normalized_input() {
        use urel_core::{URelation, WsDescriptor};
        let mut wt = WorldTable::new();
        wt.add_var(Var(1), vec![0, 1]).unwrap();
        wt.add_var(Var(2), vec![0, 1]).unwrap();
        let mut db = UDatabase::new(wt);
        db.add_relation("r", ["a"]).unwrap();
        let mut u = URelation::partition("u", ["a"]);
        u.push_simple(
            WsDescriptor::from_pairs([(Var(1), 0), (Var(2), 0)]).unwrap(),
            1,
            vec![Value::Int(1)],
        )
        .unwrap();
        db.add_partition("r", u).unwrap();
        assert!(udb_to_wsd(&db).is_err());
        // But normalizing first makes it convertible.
        let norm = normalize(&db).unwrap();
        assert!(udb_to_wsd(&norm).is_ok());
    }

    #[test]
    fn figure5c_shape() {
        // Normalizing the Figure 5(a) database and converting produces the
        // WSD of Figure 5(c): one component with 4 local worlds (c12),
        // one with 2 (c3).
        use urel_core::{URelation, WsDescriptor};
        let mut wt = WorldTable::new();
        wt.add_var(Var(1), vec![1, 2]).unwrap();
        wt.add_var(Var(2), vec![1, 2]).unwrap();
        wt.add_var(Var(3), vec![1, 2]).unwrap();
        let d = |pairs: &[(u32, u64)]| {
            WsDescriptor::from_pairs(pairs.iter().map(|&(v, x)| (Var(v), x))).unwrap()
        };
        let mut u = URelation::partition("u", ["a"]);
        u.push_simple(d(&[(1, 1)]), 1, vec![Value::str("a1")])
            .unwrap();
        u.push_simple(d(&[(1, 1), (2, 2)]), 2, vec![Value::str("a2")])
            .unwrap();
        u.push_simple(d(&[(1, 2)]), 2, vec![Value::str("a3")])
            .unwrap();
        u.push_simple(d(&[(3, 1)]), 3, vec![Value::str("a4")])
            .unwrap();
        u.push_simple(d(&[(3, 2)]), 3, vec![Value::str("a5")])
            .unwrap();
        let mut db = UDatabase::new(wt);
        db.add_relation("r", ["a"]).unwrap();
        db.add_partition("r", u).unwrap();

        let norm = normalize(&db).unwrap();
        let wsd = udb_to_wsd(&norm).unwrap();
        let mut sizes: Vec<usize> = wsd
            .components
            .iter()
            .map(|c| c.local_worlds.len())
            .collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 4]);
        assert_eq!(wsd.world_count(), Some(8));
    }
}
