//! # urel-wsd — world-set decompositions
//!
//! The attribute-level baseline of Section 5: a WSD represents a world-set
//! as a *product of components*, each component being a table whose rows
//! are its local worlds and whose columns are tuple fields (`⊥` marks a
//! field undefined in that local world). WSDs are essentially normalized
//! U-relational databases — each component corresponds to one variable,
//! each local world to one domain value (Figure 5c).
//!
//! This crate provides the data structure, product semantics, conversions
//! to and from (normalized) U-relational databases, size accounting, and
//! the ring-correlation world-sets of Examples 5.1/5.3 used to exhibit the
//! exponential separation of Theorem 5.2 (Figures 6 and 7).

pub mod convert;
pub mod ring;
pub mod wsdb;

pub use wsdb::{Component, FieldId, Wsd};
