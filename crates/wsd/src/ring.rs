//! The ring-correlation world-sets of Examples 5.1 and 5.3
//! (Figures 6 and 7) — the witnesses for Theorem 5.2's exponential
//! separation between U-relations and WSDs.
//!
//! The scenario: `R[A, B]` with `n` tuples where field `tᵢ.A` and field
//! `t_{(i mod n)+1}.B` are perfectly correlated (both are decided by one
//! bit `cᵢ`). Both formalisms encode the *input* linearly (Figure 6), but
//! the answer to `σ_{A=B}(R)` requires descriptors combining two
//! variables: U-relations store `2n` rows (Figure 7b), while the
//! corresponding WSD must fuse all `n` variables into a single component
//! with `2ⁿ` local worlds (Figure 7a).

use crate::wsdb::{Component, FieldId, Wsd};
use std::collections::BTreeMap;
use urel_core::error::Result;
use urel_core::{UDatabase, URelation, Var, WorldTable, WsDescriptor};
use urel_relalg::Value;

fn bit(v: u64) -> Value {
    Value::Int(if v == 0 { 1 } else { 0 })
}

/// The U-relational encoding of Figure 6(b): two partitions `U1[A]`,
/// `U2[B]` of `2n` rows each, one variable per correlated pair.
/// Variable `cᵢ = Var(i)` decides `tᵢ.A` and `t_{(i mod n)+1}.B`;
/// domain value 0 plays `w1` (both fields 1), value 1 plays `w2` (both 0).
pub fn ring_udb(n: usize) -> Result<UDatabase> {
    assert!(n >= 1);
    let mut wt = WorldTable::new();
    for i in 1..=n {
        wt.add_var(Var(i as u32), vec![0, 1])?;
    }
    let mut db = UDatabase::new(wt);
    db.add_relation("r", ["a", "b"])?;
    let mut u1 = URelation::partition("u1", ["a"]);
    let mut u2 = URelation::partition("u2", ["b"]);
    for i in 1..=n {
        let c = Var(i as u32);
        let succ = (i % n + 1) as i64;
        for w in [0u64, 1] {
            u1.push_simple(WsDescriptor::singleton(c, w), i as i64, vec![bit(w)])?;
            u2.push_simple(WsDescriptor::singleton(c, w), succ, vec![bit(w)])?;
        }
    }
    db.add_partition("r", u1)?;
    db.add_partition("r", u2)?;
    Ok(db)
}

/// The WSD encoding of Figure 6(a): one component per `cᵢ` with fields
/// `{tᵢ.A, t_{(i mod n)+1}.B}` and two local worlds `(1,1)` / `(0,0)`.
pub fn ring_wsd(n: usize) -> Result<Wsd> {
    assert!(n >= 1);
    let schema = BTreeMap::from([("r".to_string(), vec!["a".to_string(), "b".to_string()])]);
    let mut wsd = Wsd::new(schema);
    for i in 1..=n {
        let succ = (i % n + 1) as i64;
        wsd.add_component(Component::new(
            vec![
                FieldId::new("r", i as i64, "a"),
                FieldId::new("r", succ, "b"),
            ],
            vec![
                vec![Some(Value::Int(1)), Some(Value::Int(1))],
                vec![Some(Value::Int(0)), Some(Value::Int(0))],
            ],
        )?)?;
    }
    Ok(wsd)
}

/// The U-relational *answer* to `σ_{A=B}(R)` (Figure 7b): `2n` rows with
/// two-assignment descriptors — tuple `tᵢ` satisfies `A = B` exactly when
/// `cᵢ` and `c_{i-1}` (its B-controller) agree.
pub fn ring_answer_urel(n: usize) -> URelation {
    assert!(n >= 1);
    let mut u = URelation::partition("u3", ["a", "b"]);
    for i in 1..=n {
        let ci = Var(i as u32);
        let prev = Var(if i == 1 { n as u32 } else { i as u32 - 1 });
        for w in [0u64, 1] {
            let desc = WsDescriptor::from_pairs([(ci, w), (prev, w)])
                .expect("distinct variables unless n = 1");
            u.push_simple(desc, i as i64, vec![bit(w), bit(w)])
                .expect("fixed arity");
        }
    }
    u
}

/// The WSD answer to `σ_{A=B}(R)` (Figure 7a): every variable is fused
/// into one component of `2ⁿ` local worlds. Only feasible for small `n` —
/// use [`ring_answer_wsd_cells`] for the closed-form size beyond that.
pub fn ring_answer_wsd(n: usize) -> Result<Wsd> {
    assert!((1..=20).contains(&n), "2^n local worlds; keep n small");
    let schema = BTreeMap::from([("r".to_string(), vec!["a".to_string(), "b".to_string()])]);
    // Fields t1.A, t1.B, …, tn.A, tn.B.
    let mut fields = Vec::with_capacity(2 * n);
    for i in 1..=n {
        fields.push(FieldId::new("r", i as i64, "a"));
        fields.push(FieldId::new("r", i as i64, "b"));
    }
    let mut locals = Vec::with_capacity(1usize << n);
    for mask in 0u64..(1u64 << n) {
        // Bit i-1 of mask = value of cᵢ.
        let mut world = Vec::with_capacity(2 * n);
        for i in 1..=n {
            let ci = (mask >> (i - 1)) & 1;
            let cprev = (mask >> (if i == 1 { n - 1 } else { i - 2 })) & 1;
            // Tuple i survives σ_{A=B} iff its controllers agree.
            if ci == cprev {
                world.push(Some(bit(ci)));
                world.push(Some(bit(ci)));
            } else {
                world.push(None);
                world.push(None);
            }
        }
        locals.push(world);
    }
    let mut wsd = Wsd::new(schema);
    wsd.add_component(Component::new(fields, locals)?)?;
    Ok(wsd)
}

/// Closed-form cell count of the Figure 7(a) WSD: `2ⁿ · 2n`.
pub fn ring_answer_wsd_cells(n: usize) -> u128 {
    (1u128 << n) * (2 * n as u128)
}

#[cfg(test)]
mod tests {
    use super::*;
    use urel_core::{possible, table};
    use urel_relalg::col;

    #[test]
    fn input_encodings_agree_small_n() {
        for n in 2..=4 {
            let db = ring_udb(n).unwrap();
            let wsd = ring_wsd(n).unwrap();
            assert_eq!(db.world.world_count_exact(), wsd.world_count(), "n = {n}");
            let mut a: Vec<String> = db
                .possible_worlds(64)
                .unwrap()
                .iter()
                .map(|(_, inst)| format!("{}", inst["r"].sorted_set()))
                .collect();
            let mut b: Vec<String> = wsd
                .worlds(64)
                .unwrap()
                .iter()
                .map(|inst| format!("{}", inst["r"].sorted_set()))
                .collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "n = {n}");
        }
    }

    #[test]
    fn answer_encodings_agree_small_n() {
        for n in 2..=4 {
            let udb = ring_udb(n).unwrap();
            let answer = ring_answer_urel(n);
            let wsd = ring_answer_wsd(n).unwrap();
            // Compare per matching world: both derived from the same mask
            // convention (variable i ↦ bit i-1).
            let wsd_worlds = wsd.worlds(1 << n).unwrap();
            for (f, _) in udb.possible_worlds(1 << n).unwrap() {
                let mask: u64 = (1..=n).map(|i| f[&Var(i as u32)] << (i - 1)).sum();
                let from_u = answer.tuples_in_world(&udb.world, &f);
                let from_wsd = &wsd_worlds[mask as usize]["r"];
                assert!(
                    from_u.set_eq(from_wsd),
                    "n = {n}, world {mask:b}: {from_u} vs {from_wsd}"
                );
            }
        }
    }

    #[test]
    fn answer_matches_actual_selection() {
        // The hand-built Figure 7(b) U-relation equals the translated
        // σ_{A=B}(R) over the Figure 6(b) database.
        for n in 2..=4 {
            let db = ring_udb(n).unwrap();
            let q = table("r").select(col("a").eq(col("b")));
            let got = possible(&db, &q).unwrap();
            let want = ring_answer_urel(n).possible_tuples();
            assert!(got.set_eq(&want), "n = {n}: {got} vs {want}");
        }
    }

    #[test]
    fn theorem_5_2_exponential_separation() {
        // U-relation answer: 2n rows. WSD answer: 2^n local worlds.
        for n in [4usize, 8, 12] {
            let u = ring_answer_urel(n);
            assert_eq!(u.len(), 2 * n);
            assert_eq!(ring_answer_wsd_cells(n), (1u128 << n) * 2 * n as u128);
        }
        let wsd = ring_answer_wsd(8).unwrap();
        assert_eq!(wsd.total_cells() as u128, ring_answer_wsd_cells(8));
        // The separation: already at n = 12, the WSD is ≥ 100× larger.
        let n = 12;
        let urel_cells = (2 * n) * 4; // 2n rows × (2 desc pairs…)
        assert!(ring_answer_wsd_cells(n) > 100 * urel_cells as u128);
    }
}
