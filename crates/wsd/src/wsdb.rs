//! The WSD data structure and its product semantics.

use std::collections::BTreeMap;
use urel_core::error::{Error, Result};
use urel_relalg::{Relation, Schema, Value};

/// A tuple field: relation, tuple id, attribute.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FieldId {
    /// Logical relation name.
    pub rel: String,
    /// Tuple identifier.
    pub tid: i64,
    /// Attribute name.
    pub attr: String,
}

impl FieldId {
    /// Construct a field id.
    pub fn new(rel: impl Into<String>, tid: i64, attr: impl Into<String>) -> Self {
        FieldId {
            rel: rel.into(),
            tid,
            attr: attr.into(),
        }
    }
}

impl std::fmt::Display for FieldId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.t{}.{}", self.rel, self.tid, self.attr)
    }
}

/// One component: a set of fields × a list of local worlds. `None` is the
/// paper's `⊥` (the tuple owning that field does not occur in that local
/// world).
#[derive(Clone, Debug, PartialEq)]
pub struct Component {
    /// The fields this component decides.
    pub fields: Vec<FieldId>,
    /// Local worlds: each has one (optional) value per field.
    pub local_worlds: Vec<Vec<Option<Value>>>,
}

impl Component {
    /// Construct; every local world must cover every field slot.
    pub fn new(fields: Vec<FieldId>, local_worlds: Vec<Vec<Option<Value>>>) -> Result<Self> {
        for w in &local_worlds {
            if w.len() != fields.len() {
                return Err(Error::InvalidDatabase(
                    "component local world arity mismatch".into(),
                ));
            }
        }
        if local_worlds.is_empty() {
            return Err(Error::InvalidDatabase(
                "component with no local worlds".into(),
            ));
        }
        Ok(Component {
            fields,
            local_worlds,
        })
    }

    /// Number of table cells (the paper's size measure for WSDs).
    pub fn cells(&self) -> usize {
        self.fields.len() * self.local_worlds.len()
    }
}

/// A world-set decomposition over a multi-relation schema.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Wsd {
    /// Relation name → attribute list.
    pub schema: BTreeMap<String, Vec<String>>,
    /// The product components. Fields must not repeat across components.
    pub components: Vec<Component>,
}

impl Wsd {
    /// Empty WSD over a schema.
    pub fn new(schema: BTreeMap<String, Vec<String>>) -> Self {
        Wsd {
            schema,
            components: Vec::new(),
        }
    }

    /// Add a component, enforcing field disjointness.
    pub fn add_component(&mut self, c: Component) -> Result<()> {
        for f in &c.fields {
            if !self.schema.get(&f.rel).is_some_and(|a| a.contains(&f.attr)) {
                return Err(Error::InvalidDatabase(format!("unknown field {f}")));
            }
            if self
                .components
                .iter()
                .any(|existing| existing.fields.contains(f))
            {
                return Err(Error::InvalidDatabase(format!(
                    "field {f} appears in two components"
                )));
            }
        }
        self.components.push(c);
        Ok(())
    }

    /// Number of represented worlds (product of local world counts).
    pub fn world_count(&self) -> Option<u128> {
        let mut n: u128 = 1;
        for c in &self.components {
            n = n.checked_mul(c.local_worlds.len() as u128)?;
        }
        Some(n)
    }

    /// log₁₀ of the world count.
    pub fn world_count_log10(&self) -> f64 {
        self.components
            .iter()
            .map(|c| (c.local_worlds.len() as f64).log10())
            .sum()
    }

    /// Total cells across components — the size yardstick of Section 5.
    pub fn total_cells(&self) -> usize {
        self.components.iter().map(Component::cells).sum()
    }

    /// Approximate byte size (8 bytes per defined cell + 1 per ⊥).
    pub fn size_bytes(&self) -> usize {
        self.components
            .iter()
            .map(|c| {
                c.local_worlds
                    .iter()
                    .flatten()
                    .map(|v| v.as_ref().map_or(1, Value::size_bytes))
                    .sum::<usize>()
            })
            .sum()
    }

    /// Materialize one world from a choice of local worlds (one index per
    /// component, in order).
    pub fn instantiate(&self, choice: &[usize]) -> Result<BTreeMap<String, Relation>> {
        if choice.len() != self.components.len() {
            return Err(Error::InvalidQuery("choice arity mismatch".into()));
        }
        // Gather the chosen field values per (rel, tid).
        let mut fields: BTreeMap<(String, i64), BTreeMap<String, Option<Value>>> = BTreeMap::new();
        for (c, &k) in self.components.iter().zip(choice) {
            let world = c
                .local_worlds
                .get(k)
                .ok_or_else(|| Error::InvalidQuery("local world out of range".into()))?;
            for (f, v) in c.fields.iter().zip(world) {
                fields
                    .entry((f.rel.clone(), f.tid))
                    .or_default()
                    .insert(f.attr.clone(), v.clone());
            }
        }
        let mut out = BTreeMap::new();
        for (rel, attrs) in &self.schema {
            let mut r = Relation::empty(Schema::named(attrs));
            for ((frel, _tid), vals) in &fields {
                if frel != rel {
                    continue;
                }
                // The tuple exists iff all its attributes are defined.
                let row: Option<Vec<Value>> = attrs
                    .iter()
                    .map(|a| vals.get(a).cloned().flatten())
                    .collect();
                if let Some(row) = row {
                    if row.len() == attrs.len() {
                        r.push(row).expect("arity fixed");
                    }
                }
            }
            r.dedup_in_place();
            out.insert(rel.clone(), r);
        }
        Ok(out)
    }

    /// Enumerate every world (bounded by `limit`).
    pub fn worlds(&self, limit: usize) -> Result<Vec<BTreeMap<String, Relation>>> {
        let count = self.world_count().unwrap_or(u128::MAX);
        if count > limit as u128 {
            return Err(Error::TooLarge(format!("{count} worlds > limit {limit}")));
        }
        let mut choices: Vec<Vec<usize>> = vec![Vec::new()];
        for c in &self.components {
            let mut next = Vec::with_capacity(choices.len() * c.local_worlds.len());
            for prefix in &choices {
                for k in 0..c.local_worlds.len() {
                    let mut p = prefix.clone();
                    p.push(k);
                    next.push(p);
                }
            }
            choices = next;
        }
        choices.iter().map(|c| self.instantiate(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> BTreeMap<String, Vec<String>> {
        BTreeMap::from([("r".to_string(), vec!["a".to_string(), "b".to_string()])])
    }

    #[test]
    fn product_semantics() {
        let mut w = Wsd::new(schema());
        w.add_component(
            Component::new(
                vec![FieldId::new("r", 1, "a")],
                vec![vec![Some(Value::Int(1))], vec![Some(Value::Int(2))]],
            )
            .unwrap(),
        )
        .unwrap();
        w.add_component(
            Component::new(
                vec![FieldId::new("r", 1, "b")],
                vec![vec![Some(Value::Int(10))], vec![Some(Value::Int(20))]],
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(w.world_count(), Some(4));
        let worlds = w.worlds(8).unwrap();
        assert_eq!(worlds.len(), 4);
        for inst in &worlds {
            assert_eq!(inst["r"].len(), 1);
        }
    }

    #[test]
    fn bottom_drops_tuples() {
        let mut w = Wsd::new(schema());
        w.add_component(
            Component::new(
                vec![FieldId::new("r", 1, "a"), FieldId::new("r", 1, "b")],
                vec![
                    vec![Some(Value::Int(1)), Some(Value::Int(2))],
                    vec![None, None],
                ],
            )
            .unwrap(),
        )
        .unwrap();
        let worlds = w.worlds(4).unwrap();
        assert_eq!(worlds[0]["r"].len(), 1);
        assert_eq!(worlds[1]["r"].len(), 0);
    }

    #[test]
    fn field_disjointness_enforced() {
        let mut w = Wsd::new(schema());
        let c = Component::new(
            vec![FieldId::new("r", 1, "a")],
            vec![vec![Some(Value::Int(1))]],
        )
        .unwrap();
        w.add_component(c.clone()).unwrap();
        assert!(w.add_component(c).is_err());
    }

    #[test]
    fn unknown_fields_rejected() {
        let mut w = Wsd::new(schema());
        let c = Component::new(
            vec![FieldId::new("r", 1, "zzz")],
            vec![vec![Some(Value::Int(1))]],
        )
        .unwrap();
        assert!(w.add_component(c).is_err());
    }

    #[test]
    fn size_measures() {
        let mut w = Wsd::new(schema());
        w.add_component(
            Component::new(
                vec![FieldId::new("r", 1, "a"), FieldId::new("r", 2, "a")],
                vec![
                    vec![Some(Value::Int(1)), Some(Value::Int(1))],
                    vec![Some(Value::Int(0)), None],
                ],
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(w.total_cells(), 4);
        assert_eq!(w.size_bytes(), 8 + 8 + 8 + 1);
    }

    #[test]
    fn component_validation() {
        assert!(Component::new(vec![FieldId::new("r", 1, "a")], vec![]).is_err());
        assert!(Component::new(
            vec![FieldId::new("r", 1, "a")],
            vec![vec![Some(Value::Int(1)), Some(Value::Int(2))]],
        )
        .is_err());
    }
}
