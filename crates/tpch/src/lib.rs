//! # urel-tpch — the uncertainty-extended TPC-H generator
//!
//! Section 6's workload: the eight TPC-H tables, generated at laptop scale
//! (micro-base row counts = 1/100 of TPC-H, times the scale factor `s`),
//! with the paper's uncertainty extension:
//!
//! * `x` — uncertainty ratio: probability that a (non-key) field is
//!   uncertain;
//! * `z` — correlation ratio: Zipf parameter shaping how many variables
//!   have dependent-field count (DFC) 1, 2, …, k;
//! * `m` — maximum alternatives per field (paper: 8);
//! * `p` — survival probability of value combinations after dependency
//!   chasing (paper: 0.25): a variable with DFC `d` keeps
//!   `⌈p^{d-1}·∏ mᵢ⌉` of the full combination product as its domain.
//!
//! The generator emits attribute-level U-relations (one vertical partition
//! per column, descriptors of size ≤ 1 — the "initially normalized" shape
//! the paper assumes), plus the Figure 9 statistics (`#worlds` as a
//! power of ten, max local worlds, representation size). Tuple-level
//! expansions and the direct ULDB mapping used by Figure 14 live in
//! [`tuple_level`]; the queries of Figure 8 in [`queries`].

pub mod dict;
pub mod gen;
pub mod queries;
pub mod tuple_level;
pub mod uncertain;

pub use gen::{generate_certain, CertainTpch, ColumnKind, TableSpec};
pub use queries::{q1, q2, q3};
pub use uncertain::{generate, GenParams, GenStats, UncertainTpch};
