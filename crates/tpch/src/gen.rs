//! Certain (one-world) TPC-H table generation.
//!
//! Row counts follow a *micro-base* — 1/100 of the TPC-H specification per
//! unit scale factor — so the full parameter sweep of Figure 9/12 runs on
//! a laptop while preserving the benchmark's relative table sizes and
//! join selectivities (the substitution is documented in DESIGN.md).
//! Generation is deterministic in the seed; dates are days since
//! 1990-01-01, money is integer cents.

use crate::dict;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use urel_relalg::value::date_to_days;
use urel_relalg::{DiskTableWriter, EngineConfig, Relation, SegmentedBuilder, StorageMode, Value};

/// What kind of values a column holds — drives both base generation and
/// the sampling of *alternative* values for uncertain fields.
#[derive(Clone, Debug)]
pub enum ColumnKind {
    /// Primary key: sequential, never uncertain.
    PrimaryKey,
    /// Foreign key into `1..=max` (alternatives are other valid keys).
    ForeignKey { max: i64 },
    /// Integer in `lo..=hi`.
    Int { lo: i64, hi: i64 },
    /// Money in cents, `lo..=hi`.
    Money { lo: i64, hi: i64 },
    /// Date (days since 1990-01-01) in `lo..=hi`.
    Date { lo: i64, hi: i64 },
    /// A value from a fixed dictionary.
    Dict { words: &'static [&'static str] },
    /// `prefix#<n>` pattern names.
    Name { prefix: &'static str, max: i64 },
}

impl ColumnKind {
    /// Sample a fresh value (used both for base data and alternatives).
    pub fn sample(&self, rng: &mut StdRng) -> Value {
        match self {
            ColumnKind::PrimaryKey => unreachable!("primary keys are sequential"),
            ColumnKind::ForeignKey { max } => Value::Int(rng.gen_range(1..=*max)),
            ColumnKind::Int { lo, hi } => Value::Int(rng.gen_range(*lo..=*hi)),
            ColumnKind::Money { lo, hi } => Value::Int(rng.gen_range(*lo..=*hi)),
            ColumnKind::Date { lo, hi } => Value::Int(rng.gen_range(*lo..=*hi)),
            // Dictionary domains are small and heavily repeated: intern
            // them so every occurrence of the same text — across base
            // tuples AND or-set alternatives — shares one `Arc<str>`,
            // and the engine's vectorized string equality can compare
            // pointers before bytes. Pattern names are near-unique per
            // entity, so interning them would only grow the global pool
            // (see `value::intern`'s bounded-domain contract).
            ColumnKind::Dict { words } => Value::interned(words[rng.gen_range(0..words.len())]),
            ColumnKind::Name { prefix, max } => {
                Value::str(format!("{prefix}#{:09}", rng.gen_range(1..=*max)))
            }
        }
    }

    /// Can fields of this column be uncertain? (Keys that identify tuples
    /// cannot — their identity is what tuple ids stand for.)
    pub fn may_be_uncertain(&self) -> bool {
        !matches!(self, ColumnKind::PrimaryKey)
    }

    /// How many distinct values the column can take (bounds the number of
    /// alternatives of an uncertain field).
    pub fn domain_size(&self) -> usize {
        match self {
            ColumnKind::PrimaryKey => usize::MAX,
            ColumnKind::ForeignKey { max } => *max as usize,
            ColumnKind::Int { lo, hi }
            | ColumnKind::Money { lo, hi }
            | ColumnKind::Date { lo, hi } => (*hi - *lo + 1) as usize,
            ColumnKind::Dict { words } => words.len(),
            ColumnKind::Name { max, .. } => *max as usize,
        }
    }
}

/// A table: name, columns with kinds, and rows.
#[derive(Clone, Debug)]
pub struct TableSpec {
    /// Table name.
    pub name: String,
    /// Column names and kinds, in order.
    pub columns: Vec<(String, ColumnKind)>,
    /// Generated rows.
    pub rows: Vec<Vec<Value>>,
}

impl TableSpec {
    /// As a plain relation. Under a segmented default storage mode
    /// (`RELALG_STORAGE`), rows stream straight into compressed column
    /// segments as the relation is built, so the first scan never pays
    /// a bulk re-encode pass; under disk mode they stream straight into
    /// an on-disk segment store and the relation comes back disk-backed
    /// without ever materializing its row store.
    pub fn relation(&self) -> Relation {
        let config = EngineConfig::default();
        if config.storage == StorageMode::Disk {
            let mut writer = DiskTableWriter::create_scratch(
                "tpch",
                self.columns.iter().map(|(n, _)| n.clone()).collect(),
                config.segment_rows,
            )
            .expect("scratch segment store is writable");
            for row in &self.rows {
                writer.push(row).expect("generator emits consistent rows");
            }
            return Relation::from_disk_image(
                writer.finish().expect("scratch segment store is writable"),
            );
        }
        let rel = Relation::from_rows(
            self.columns
                .iter()
                .map(|(n, _)| n.clone())
                .collect::<Vec<_>>(),
            self.rows.clone(),
        )
        .expect("generator emits consistent rows");
        if config.storage != StorageMode::Plain {
            let mut builder = SegmentedBuilder::new(self.columns.len(), config.segment_rows);
            for row in &self.rows {
                builder.push(row);
            }
            rel.attach_segments(std::sync::Arc::new(builder.finish()));
        }
        rel
    }
}

/// The generated one-world database.
#[derive(Clone, Debug)]
pub struct CertainTpch {
    /// Tables by name (all eight).
    pub tables: BTreeMap<String, TableSpec>,
}

impl CertainTpch {
    /// Total number of fields (rows × columns), the base of the
    /// uncertainty ratio.
    pub fn total_fields(&self) -> usize {
        self.tables
            .values()
            .map(|t| t.rows.len() * t.columns.len())
            .sum()
    }
}

/// Micro-base row counts at scale factor 1 (1/100 of the TPC-H spec).
const BASE_SUPPLIER: f64 = 100.0;
const BASE_PART: f64 = 2_000.0;
const BASE_PARTSUPP: f64 = 8_000.0;
const BASE_CUSTOMER: f64 = 1_500.0;
const BASE_ORDERS: f64 = 15_000.0;
const BASE_LINEITEM: f64 = 60_000.0;

fn scaled(base: f64, scale: f64) -> usize {
    (base * scale).round().max(1.0) as usize
}

/// Generate the eight tables at the given scale factor, deterministically
/// in `seed`.
pub fn generate_certain(scale: f64, seed: u64) -> CertainTpch {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tables = BTreeMap::new();

    let date_lo = date_to_days(1992, 1, 1);
    let date_hi = date_to_days(1998, 8, 2);

    // region / nation are fixed-size per the spec.
    let region = TableSpec {
        name: "region".into(),
        columns: vec![
            ("r_regionkey".into(), ColumnKind::PrimaryKey),
            (
                "r_name".into(),
                ColumnKind::Dict {
                    words: &dict::REGIONS,
                },
            ),
        ],
        rows: dict::REGIONS
            .iter()
            .enumerate()
            .map(|(i, r)| vec![Value::Int(i as i64 + 1), Value::interned(*r)])
            .collect(),
    };
    tables.insert(region.name.clone(), region);

    let nation = TableSpec {
        name: "nation".into(),
        columns: vec![
            ("n_nationkey".into(), ColumnKind::PrimaryKey),
            (
                "n_name".into(),
                ColumnKind::Dict {
                    words: {
                        // Names only; the (name, region) pairing is fixed.
                        static NAMES: [&str; 25] = [
                            "ALGERIA",
                            "ARGENTINA",
                            "BRAZIL",
                            "CANADA",
                            "EGYPT",
                            "ETHIOPIA",
                            "FRANCE",
                            "GERMANY",
                            "INDIA",
                            "INDONESIA",
                            "IRAN",
                            "IRAQ",
                            "JAPAN",
                            "JORDAN",
                            "KENYA",
                            "MOROCCO",
                            "MOZAMBIQUE",
                            "PERU",
                            "CHINA",
                            "ROMANIA",
                            "SAUDI ARABIA",
                            "VIETNAM",
                            "RUSSIA",
                            "UNITED KINGDOM",
                            "UNITED STATES",
                        ];
                        &NAMES
                    },
                },
            ),
            ("n_regionkey".into(), ColumnKind::ForeignKey { max: 5 }),
        ],
        rows: dict::NATIONS
            .iter()
            .enumerate()
            .map(|(i, (n, r))| {
                vec![
                    Value::Int(i as i64 + 1),
                    Value::interned(*n),
                    Value::Int(*r as i64 + 1),
                ]
            })
            .collect(),
    };
    tables.insert(nation.name.clone(), nation);

    let n_supplier = scaled(BASE_SUPPLIER, scale);
    let supplier_cols = vec![
        ("s_suppkey".into(), ColumnKind::PrimaryKey),
        (
            "s_name".into(),
            ColumnKind::Name {
                prefix: "Supplier",
                max: n_supplier as i64 * 10,
            },
        ),
        ("s_nationkey".into(), ColumnKind::ForeignKey { max: 25 }),
        (
            "s_acctbal".into(),
            ColumnKind::Money {
                lo: -99_999,
                hi: 999_999,
            },
        ),
    ];
    let supplier = gen_table("supplier", supplier_cols, n_supplier, &mut rng);
    tables.insert(supplier.name.clone(), supplier);

    let n_part = scaled(BASE_PART, scale);
    let part_cols = vec![
        ("p_partkey".into(), ColumnKind::PrimaryKey),
        (
            "p_name".into(),
            ColumnKind::Dict {
                words: &dict::NAME_WORDS,
            },
        ),
        (
            "p_type".into(),
            ColumnKind::Dict {
                words: &dict::TYPE_SYLLABLE_2,
            },
        ),
        ("p_size".into(), ColumnKind::Int { lo: 1, hi: 50 }),
    ];
    let part = gen_table("part", part_cols, n_part, &mut rng);
    tables.insert(part.name.clone(), part);

    let n_partsupp = scaled(BASE_PARTSUPP, scale);
    let partsupp_cols = vec![
        ("ps_partsuppkey".into(), ColumnKind::PrimaryKey),
        (
            "ps_partkey".into(),
            ColumnKind::ForeignKey { max: n_part as i64 },
        ),
        (
            "ps_suppkey".into(),
            ColumnKind::ForeignKey {
                max: n_supplier as i64,
            },
        ),
        ("ps_availqty".into(), ColumnKind::Int { lo: 1, hi: 9_999 }),
        (
            "ps_supplycost".into(),
            ColumnKind::Money {
                lo: 100,
                hi: 100_000,
            },
        ),
    ];
    let partsupp = gen_table("partsupp", partsupp_cols, n_partsupp, &mut rng);
    tables.insert(partsupp.name.clone(), partsupp);

    let n_customer = scaled(BASE_CUSTOMER, scale);
    let customer_cols = vec![
        ("c_custkey".into(), ColumnKind::PrimaryKey),
        (
            "c_name".into(),
            ColumnKind::Name {
                prefix: "Customer",
                max: n_customer as i64 * 10,
            },
        ),
        ("c_nationkey".into(), ColumnKind::ForeignKey { max: 25 }),
        (
            "c_mktsegment".into(),
            ColumnKind::Dict {
                words: &dict::SEGMENTS,
            },
        ),
        (
            "c_acctbal".into(),
            ColumnKind::Money {
                lo: -99_999,
                hi: 999_999,
            },
        ),
    ];
    let customer = gen_table("customer", customer_cols, n_customer, &mut rng);
    tables.insert(customer.name.clone(), customer);

    let n_orders = scaled(BASE_ORDERS, scale);
    let orders_cols = vec![
        ("o_orderkey".into(), ColumnKind::PrimaryKey),
        (
            "o_custkey".into(),
            ColumnKind::ForeignKey {
                max: n_customer as i64,
            },
        ),
        (
            "o_orderdate".into(),
            ColumnKind::Date {
                lo: date_lo,
                hi: date_hi,
            },
        ),
        ("o_shippriority".into(), ColumnKind::Int { lo: 0, hi: 1 }),
        (
            "o_totalprice".into(),
            ColumnKind::Money {
                lo: 100_000,
                hi: 50_000_000,
            },
        ),
    ];
    let orders = gen_table("orders", orders_cols, n_orders, &mut rng);
    tables.insert(orders.name.clone(), orders);

    let n_lineitem = scaled(BASE_LINEITEM, scale);
    let lineitem_cols = vec![
        ("l_lineid".into(), ColumnKind::PrimaryKey),
        (
            "l_orderkey".into(),
            ColumnKind::ForeignKey {
                max: n_orders as i64,
            },
        ),
        (
            "l_partkey".into(),
            ColumnKind::ForeignKey { max: n_part as i64 },
        ),
        (
            "l_suppkey".into(),
            ColumnKind::ForeignKey {
                max: n_supplier as i64,
            },
        ),
        ("l_quantity".into(), ColumnKind::Int { lo: 1, hi: 50 }),
        (
            "l_extendedprice".into(),
            ColumnKind::Money {
                lo: 100,
                hi: 10_000_000,
            },
        ),
        ("l_discount".into(), ColumnKind::Int { lo: 0, hi: 10 }),
        (
            "l_shipdate".into(),
            ColumnKind::Date {
                lo: date_lo,
                hi: date_hi + 121,
            },
        ),
    ];
    let lineitem = gen_table("lineitem", lineitem_cols, n_lineitem, &mut rng);
    tables.insert(lineitem.name.clone(), lineitem);

    CertainTpch { tables }
}

fn gen_table(
    name: &str,
    columns: Vec<(String, ColumnKind)>,
    rows: usize,
    rng: &mut StdRng,
) -> TableSpec {
    let mut out = Vec::with_capacity(rows);
    for i in 0..rows {
        let row: Vec<Value> = columns
            .iter()
            .map(|(_, kind)| match kind {
                ColumnKind::PrimaryKey => Value::Int(i as i64 + 1),
                other => other.sample(rng),
            })
            .collect();
        out.push(row);
    }
    TableSpec {
        name: name.into(),
        columns,
        rows: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a = generate_certain(0.01, 7);
        let b = generate_certain(0.01, 7);
        assert_eq!(a.tables["lineitem"].rows, b.tables["lineitem"].rows);
        let c = generate_certain(0.01, 8);
        assert_ne!(a.tables["lineitem"].rows, c.tables["lineitem"].rows);
    }

    #[test]
    fn row_counts_scale_linearly() {
        let s1 = generate_certain(0.01, 1);
        let s5 = generate_certain(0.05, 1);
        assert_eq!(s1.tables["lineitem"].rows.len(), 600);
        assert_eq!(s5.tables["lineitem"].rows.len(), 3000);
        assert_eq!(s1.tables["region"].rows.len(), 5);
        assert_eq!(s1.tables["nation"].rows.len(), 25);
        assert_eq!(s1.tables.len(), 8);
    }

    #[test]
    fn foreign_keys_are_valid() {
        let db = generate_certain(0.02, 3);
        let n_orders = db.tables["orders"].rows.len() as i64;
        for row in &db.tables["lineitem"].rows {
            let ok = row[1].as_int().unwrap();
            assert!(ok >= 1 && ok <= n_orders);
        }
        for row in &db.tables["nation"].rows {
            let r = row[2].as_int().unwrap();
            assert!((1..=5).contains(&r));
        }
    }

    #[test]
    fn join_selectivity_matches_uniform_expectation() {
        // |lineitem ⋈ orders| = |lineitem| (every FK resolves): the
        // property the paper checks per world.
        let db = generate_certain(0.05, 11);
        let orders: std::collections::BTreeSet<i64> = db.tables["orders"]
            .rows
            .iter()
            .map(|r| r[0].as_int().unwrap())
            .collect();
        let hits = db.tables["lineitem"]
            .rows
            .iter()
            .filter(|r| orders.contains(&r[1].as_int().unwrap()))
            .count();
        assert_eq!(hits, db.tables["lineitem"].rows.len());
    }

    #[test]
    fn dates_cover_the_query_windows() {
        let db = generate_certain(0.05, 2);
        let q1_date = date_to_days(1995, 3, 15);
        let has_late = db.tables["orders"]
            .rows
            .iter()
            .any(|r| r[2].as_int().unwrap() > q1_date);
        assert!(has_late, "Q1's date predicate would be empty");
    }

    #[test]
    fn total_fields_counts() {
        let db = generate_certain(0.01, 1);
        let expect: usize = db
            .tables
            .values()
            .map(|t| t.rows.len() * t.columns.len())
            .sum();
        assert_eq!(db.total_fields(), expect);
    }
}
