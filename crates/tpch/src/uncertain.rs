//! Uncertainty injection (Section 6, "Generation of uncertain data").
//!
//! Mirrors the paper's extension of dbgen:
//!
//! 1. every non-key field becomes uncertain with probability `x` and joins
//!    the *field pool*;
//! 2. the pool is shuffled and partitioned among fresh variables whose
//!    dependent-field counts (DFC) follow a Zipf shape in `z`: the number
//!    of DFC-`i` variables is proportional to `zⁱ` (the paper's
//!    `⌈C·zⁱ⌉`; we normalize `C` so the classes consume exactly the pool,
//!    see DESIGN.md for the disambiguation of the paper's formula);
//! 3. each field of a variable gets `mᵢ ∈ [2, m]` alternative values
//!    (the original dbgen value is always alternative 0); a DFC-`d`
//!    variable keeps `max(2, ⌈p^{d-1}·∏ mᵢ⌉)` random combinations of the
//!    full product as its domain — combination 0 is the all-original one,
//!    so world 0 *is* the one-world dbgen database;
//! 4. the result is emitted as attribute-level U-relations (one partition
//!    per column, descriptor size ≤ 1: initially normalized).

use crate::gen::{generate_certain, CertainTpch};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use urel_core::error::Result;
use urel_core::{UDatabase, URelation, Var, WorldTable, WsDescriptor};
use urel_relalg::Value;

/// Generator parameters (paper names in comments).
#[derive(Clone, Debug)]
pub struct GenParams {
    /// `s` — scale factor (micro-base × s rows per table).
    pub scale: f64,
    /// `x` — uncertainty ratio: probability a field is uncertain.
    pub uncertainty: f64,
    /// `z` — correlation ratio (Zipf over DFC classes).
    pub correlation: f64,
    /// `m` — maximum alternatives per field (paper: 8).
    pub max_alternatives: usize,
    /// `p` — combination survival probability (paper: 0.25).
    pub survival_p: f64,
    /// `k` — largest dependent-field count (paper experiments imply small
    /// k; we use 4).
    pub max_dfc: usize,
    /// RNG seed; every artifact is deterministic in it.
    pub seed: u64,
}

impl GenParams {
    /// The paper's fixed settings (`m = 8`, `p = 0.25`) at the given
    /// sweep point.
    pub fn paper(scale: f64, uncertainty: f64, correlation: f64) -> Self {
        GenParams {
            scale,
            uncertainty,
            correlation,
            max_alternatives: 8,
            survival_p: 0.25,
            max_dfc: 4,
            seed: 0x5eed_1234,
        }
    }
}

/// The Figure 9 statistics of one generated database.
#[derive(Clone, Debug)]
pub struct GenStats {
    /// Fields in the one-world database.
    pub total_fields: usize,
    /// Fields selected into the pool.
    pub uncertain_fields: usize,
    /// Variables created.
    pub variables: usize,
    /// `#worlds = 10^this` (Figure 9 prints `10^…`).
    pub worlds_log10: f64,
    /// Largest variable domain ("max. local worlds" column).
    pub max_local_worlds: usize,
    /// Representation size in bytes ("dbsize" column).
    pub size_bytes: usize,
    /// `(dfc, #variables)` histogram.
    pub dfc_histogram: Vec<(usize, usize)>,
}

impl GenStats {
    /// Size in megabytes, as Figure 9 reports it.
    pub fn size_mb(&self) -> f64 {
        self.size_bytes as f64 / (1024.0 * 1024.0)
    }
}

/// A generated uncertain TPC-H database.
pub struct UncertainTpch {
    /// Attribute-level U-relational database (+ world table).
    pub db: UDatabase,
    /// Figure 9 statistics.
    pub stats: GenStats,
    /// The underlying one-world tables (world 0 of the result).
    pub certain: CertainTpch,
}

/// A field selected into the uncertainty pool.
#[derive(Clone, Copy, Debug)]
struct FieldRef {
    table: usize,
    row: usize,
    col: usize,
}

/// Generate an uncertain TPC-H database.
pub fn generate(params: &GenParams) -> Result<UncertainTpch> {
    let certain = generate_certain(params.scale, params.seed);
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0x9e37_79b9_7f4a_7c15);

    let table_names: Vec<String> = certain.tables.keys().cloned().collect();

    // 1. Field pool.
    let mut pool: Vec<FieldRef> = Vec::new();
    for (ti, name) in table_names.iter().enumerate() {
        let t = &certain.tables[name];
        for (ci, (_, kind)) in t.columns.iter().enumerate() {
            if !kind.may_be_uncertain() || kind.domain_size() < 2 {
                continue;
            }
            for ri in 0..t.rows.len() {
                if rng.gen_bool(params.uncertainty) {
                    pool.push(FieldRef {
                        table: ti,
                        row: ri,
                        col: ci,
                    });
                }
            }
        }
    }
    let total_fields = certain.total_fields();
    let uncertain_fields = pool.len();

    // 2. Shuffle and carve into DFC groups with the Zipf shape.
    pool.shuffle(&mut rng);
    let groups = carve_groups(pool.len(), params.correlation, params.max_dfc);

    // 3. Per variable: alternatives per field, then the surviving
    // combination domain.
    let mut world = WorldTable::new();
    // field → (variable, value per domain index).
    let mut assignment: BTreeMap<(usize, usize, usize), (Var, Vec<Value>)> = BTreeMap::new();
    let mut dfc_histogram: BTreeMap<usize, usize> = BTreeMap::new();
    let mut cursor = 0usize;
    for dfc in groups {
        let fields = &pool[cursor..cursor + dfc];
        cursor += dfc;
        *dfc_histogram.entry(dfc).or_default() += 1;

        // Alternatives per field; index 0 is the original dbgen value.
        let mut alt_values: Vec<Vec<Value>> = Vec::with_capacity(dfc);
        for f in fields {
            let t = &certain.tables[&table_names[f.table]];
            let kind = &t.columns[f.col].1;
            let original = t.rows[f.row][f.col].clone();
            let want = rng
                .gen_range(2..=params.max_alternatives)
                .min(kind.domain_size());
            let mut alts = vec![original];
            let mut tries = 0;
            while alts.len() < want && tries < 20 * params.max_alternatives {
                let v = kind.sample(&mut rng);
                if !alts.contains(&v) {
                    alts.push(v);
                }
                tries += 1;
            }
            alt_values.push(alts);
        }

        // Domain: combination 0 (all originals) plus a random sample of
        // the rest, sized by the survival probability.
        let full: usize = alt_values.iter().map(Vec::len).product();
        let dom = if dfc == 1 {
            full
        } else {
            let survive = (params.survival_p.powi(dfc as i32 - 1) * full as f64).ceil() as usize;
            survive.clamp(2, full)
        };
        let mut combos: Vec<usize> = vec![0];
        if dom > 1 {
            let extra = rand::seq::index::sample(&mut rng, full - 1, dom - 1);
            combos.extend(extra.iter().map(|i| i + 1));
        }

        let var = world.fresh_var(dom as u64)?;
        // Decode each combination per field (mixed radix, field-major).
        for (fi, f) in fields.iter().enumerate() {
            let mut values = Vec::with_capacity(dom);
            for &combo in &combos {
                let mut rest = combo;
                let mut idx = 0;
                for (gi, alts) in alt_values.iter().enumerate() {
                    let digit = rest % alts.len();
                    rest /= alts.len();
                    if gi == fi {
                        idx = digit;
                    }
                }
                values.push(alt_values[fi][idx].clone());
            }
            assignment.insert((f.table, f.row, f.col), (var, values));
        }
    }

    // 4. Emit the attribute-level partitions.
    let worlds_log10 = world.world_count_log10();
    let max_local_worlds = world.max_domain_size();
    let variables = world.var_count();
    let mut db = UDatabase::new(world);
    for (ti, name) in table_names.iter().enumerate() {
        let t = &certain.tables[name];
        let attrs: Vec<String> = t.columns.iter().map(|(n, _)| n.clone()).collect();
        db.add_relation(name, attrs.clone())?;
        for (ci, attr) in attrs.iter().enumerate() {
            let mut u = URelation::partition(format!("u_{name}_{attr}"), [attr.clone()]);
            for (ri, row) in t.rows.iter().enumerate() {
                let tid = ri as i64 + 1;
                match assignment.get(&(ti, ri, ci)) {
                    None => {
                        u.push_simple(WsDescriptor::empty(), tid, vec![row[ci].clone()])?;
                    }
                    Some((var, values)) => {
                        for (l, v) in values.iter().enumerate() {
                            u.push_simple(
                                WsDescriptor::singleton(*var, l as u64),
                                tid,
                                vec![v.clone()],
                            )?;
                        }
                    }
                }
            }
            db.add_partition(name, u)?;
        }
    }

    let stats = GenStats {
        total_fields,
        uncertain_fields,
        variables,
        worlds_log10,
        max_local_worlds,
        size_bytes: db.size_bytes(),
        dfc_histogram: dfc_histogram.into_iter().collect(),
    };
    Ok(UncertainTpch { db, stats, certain })
}

/// Split `n` pool fields into DFC groups. The number of DFC-`i` variables
/// follows `⌈C·zⁱ⌉` with `C` normalized so the classes consume the pool:
/// `C = n / Σ_{i=1..k} i·zⁱ`. Larger classes are carved first; the
/// remainder drains into DFC-1 variables.
fn carve_groups(n: usize, z: f64, k: usize) -> Vec<usize> {
    if n == 0 {
        return Vec::new();
    }
    let k = k.max(1);
    let denom: f64 = (1..=k).map(|i| i as f64 * z.powi(i as i32)).sum();
    let c = if denom > 0.0 {
        n as f64 / denom
    } else {
        n as f64
    };
    let mut groups = Vec::new();
    let mut left = n;
    for i in (2..=k).rev() {
        let count = (c * z.powi(i as i32)).ceil() as usize;
        for _ in 0..count {
            if left < i {
                break;
            }
            groups.push(i);
            left -= i;
        }
    }
    while left > 0 {
        groups.push(1);
        left -= 1;
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(x: f64, z: f64) -> GenParams {
        let mut p = GenParams::paper(0.002, x, z);
        p.seed = 99;
        p
    }

    #[test]
    fn carve_consumes_exactly_the_pool() {
        for n in [0usize, 1, 7, 100, 1234] {
            for z in [0.1, 0.25, 0.5] {
                let g = carve_groups(n, z, 4);
                assert_eq!(g.iter().sum::<usize>(), n, "n={n} z={z}");
                assert!(g.iter().all(|&d| (1..=4).contains(&d)));
            }
        }
    }

    #[test]
    fn higher_z_means_more_correlation() {
        let low = carve_groups(10_000, 0.1, 4);
        let high = carve_groups(10_000, 0.5, 4);
        let multi = |g: &[usize]| g.iter().filter(|&&d| d > 1).count();
        assert!(multi(&high) > multi(&low));
    }

    #[test]
    fn generated_database_is_valid() {
        let out = generate(&tiny(0.05, 0.25)).unwrap();
        out.db.validate().unwrap();
        assert!(out.stats.uncertain_fields > 0);
        assert!(out.stats.worlds_log10 > 0.0);
        assert!(out.stats.max_local_worlds >= 2);
    }

    #[test]
    fn world_zero_is_the_dbgen_database() {
        // Instantiating the valuation that picks domain value 0 for every
        // variable must reproduce the certain tables exactly.
        let out = generate(&tiny(0.1, 0.5)).unwrap();
        let f: urel_core::Valuation = out.db.world.vars().map(|v| (v, 0)).collect();
        let inst = out.db.instantiate(&f).unwrap();
        for (name, spec) in &out.certain.tables {
            let want = spec.relation().sorted_set();
            assert!(
                inst[name].set_eq(&want),
                "{name}: world 0 differs from dbgen output"
            );
        }
    }

    #[test]
    fn per_world_sizes_match_dbgen() {
        // The paper's sanity check: every world has the same relation
        // sizes as the one-world database.
        let out = generate(&tiny(0.08, 0.25)).unwrap();
        // Sample a few arbitrary valuations.
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..3 {
            let f: urel_core::Valuation = out
                .db
                .world
                .vars()
                .map(|v| {
                    let dom = out.db.world.domain(v).unwrap();
                    (v, dom[rng.gen_range(0..dom.len())])
                })
                .collect();
            let inst = out.db.instantiate(&f).unwrap();
            for (name, spec) in &out.certain.tables {
                assert_eq!(inst[name].len(), spec.rows.len(), "{name}");
            }
        }
    }

    #[test]
    fn x_zero_means_one_world() {
        let out = generate(&tiny(0.0, 0.25)).unwrap();
        assert_eq!(out.stats.uncertain_fields, 0);
        assert_eq!(out.db.world.world_count_exact(), Some(1));
        assert_eq!(out.stats.worlds_log10, 0.0);
    }

    #[test]
    fn world_count_grows_with_x() {
        let small = generate(&tiny(0.01, 0.25)).unwrap();
        let large = generate(&tiny(0.1, 0.25)).unwrap();
        assert!(large.stats.worlds_log10 > small.stats.worlds_log10);
        // …while size grows roughly linearly, not exponentially.
        let ratio = large.stats.size_bytes as f64 / small.stats.size_bytes as f64;
        assert!(ratio < 10.0, "size ratio {ratio}");
    }

    #[test]
    fn partitions_are_normalized_attribute_level() {
        let out = generate(&tiny(0.05, 0.5)).unwrap();
        for rel in out.db.relations().map(str::to_string).collect::<Vec<_>>() {
            for p in out.db.partitions_of(&rel).unwrap() {
                assert!(p.is_normalized());
                assert_eq!(p.value_cols().len(), 1);
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate(&tiny(0.05, 0.25)).unwrap();
        let b = generate(&tiny(0.05, 0.25)).unwrap();
        assert_eq!(a.stats.worlds_log10, b.stats.worlds_log10);
        assert_eq!(a.stats.size_bytes, b.stats.size_bytes);
    }
}
