//! TPC-H dictionaries (TPC Benchmark H specification, §4.2.3): the fixed
//! text domains used by the generator and by the alternative-value
//! sampler for uncertain string fields.

/// The five regions.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// The 25 nations with their region index (per the TPC-H spec).
pub const NATIONS: [(&str, usize); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

/// Customer market segments.
pub const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];

/// Order priorities.
pub const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

/// Part type syllables (types are three-word combinations).
pub const TYPE_SYLLABLE_1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
/// Second syllable.
pub const TYPE_SYLLABLE_2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
/// Third syllable.
pub const TYPE_SYLLABLE_3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];

/// Part name words (a subset of the spec's P_NAME word list).
pub const NAME_WORDS: [&str; 20] = [
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "burnished",
    "chartreuse",
    "chiffon",
    "chocolate",
    "coral",
    "cornflower",
    "cornsilk",
    "cream",
];

/// Shipping modes.
pub const SHIP_MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nations_reference_valid_regions() {
        for (n, r) in NATIONS {
            assert!(r < REGIONS.len(), "{n} has bad region {r}");
        }
    }

    #[test]
    fn q3_nations_present() {
        // Q3 filters on GERMANY and IRAQ — they must exist.
        assert!(NATIONS.iter().any(|(n, _)| *n == "GERMANY"));
        assert!(NATIONS.iter().any(|(n, _)| *n == "IRAQ"));
    }

    #[test]
    fn q1_segment_present() {
        assert!(SEGMENTS.contains(&"BUILDING"));
    }
}
