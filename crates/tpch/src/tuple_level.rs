//! Tuple-level expansion of the attribute-level database, and the direct
//! ULDB mapping — the two comparison representations of Figure 14.
//!
//! The expansion enumerates, per tuple, every consistent combination of
//! its fields' alternatives; the row count per tuple is the product of
//! the alternative counts of its *independent* uncertain fields — the
//! exponential (in arity) blow-up the paper measures ("for scale 0.01 and
//! uncertainty 10%, lineitem contains more than 15M tuples compared to
//! 80K in each of its vertical partitions").

use std::collections::BTreeMap;
use urel_core::error::{Error, Result};
use urel_core::{UDatabase, URelation, WsDescriptor};
use urel_relalg::Value;
use urel_uldb::Uldb;

/// Expand every relation to a single tuple-level partition. The same
/// world table represents the same world-set; only the partitioning
/// changes. `cap_per_tuple` / `cap_total` guard against the inherent
/// blow-up.
pub fn expand_tuple_level(
    udb: &UDatabase,
    cap_per_tuple: usize,
    cap_total: usize,
) -> Result<UDatabase> {
    let mut out = UDatabase::new(udb.world.clone());
    let mut total_rows = 0usize;
    for rel in udb.relations().map(str::to_string).collect::<Vec<_>>() {
        let attrs = udb.attrs(&rel)?.to_vec();
        out.add_relation(&rel, attrs.clone())?;
        // Per tuple id, per attribute: the (descriptor, value) options.
        let mut options: BTreeMap<i64, Vec<Vec<(WsDescriptor, Value)>>> = BTreeMap::new();
        for p in udb.partitions_of(&rel)? {
            let positions: Vec<usize> = p
                .value_cols()
                .iter()
                .map(|c| attrs.iter().position(|a| a == c).expect("validated"))
                .collect();
            for row in p.rows() {
                let entry = options
                    .entry(row.tids[0])
                    .or_insert_with(|| vec![Vec::new(); attrs.len()]);
                for (k, &pos) in positions.iter().enumerate() {
                    entry[pos].push((row.desc.clone(), row.vals[k].clone()));
                }
            }
        }
        let mut u = URelation::partition(format!("u_{rel}"), attrs.clone());
        for (tid, per_attr) in options {
            if per_attr.iter().any(Vec::is_empty) {
                // Not completable anywhere (non-reduced input); skip.
                continue;
            }
            // Product across attributes, keeping only consistent
            // descriptor combinations.
            let mut combos: Vec<(WsDescriptor, Vec<Value>)> =
                vec![(WsDescriptor::empty(), Vec::new())];
            for attr_options in &per_attr {
                let mut next = Vec::with_capacity(combos.len() * attr_options.len());
                for (desc, vals) in &combos {
                    for (d, v) in attr_options {
                        if let Some(u) = desc.union(d) {
                            let mut vs = vals.clone();
                            vs.push(v.clone());
                            next.push((u, vs));
                        }
                    }
                }
                combos = next;
                if combos.len() > cap_per_tuple {
                    return Err(Error::TooLarge(format!(
                        "tuple {tid} of `{rel}` expands to more than {cap_per_tuple} rows"
                    )));
                }
            }
            total_rows += combos.len();
            if total_rows > cap_total {
                return Err(Error::TooLarge(format!(
                    "tuple-level expansion exceeds {cap_total} rows"
                )));
            }
            for (desc, vals) in combos {
                u.push_simple(desc, tid, vals)?;
            }
        }
        out.add_partition(&rel, u)?;
    }
    Ok(out)
}

/// Map a tuple-level database to a ULDB (the Figure 14 "rather direct
/// mapping"): one x-tuple per tuple id, one alternative per tuple-level
/// row, descriptors encoded as external-symbol lineage.
pub fn to_uldb(tuple_level: &UDatabase) -> Result<Uldb> {
    let mut db = Uldb::new();
    for rel in tuple_level
        .relations()
        .map(str::to_string)
        .collect::<Vec<_>>()
    {
        let parts = tuple_level.partitions_of(&rel)?;
        if parts.len() != 1 {
            return Err(Error::InvalidQuery(format!(
                "`{rel}` is not tuple-level (has {} partitions)",
                parts.len()
            )));
        }
        urel_uldb::convert::add_tuple_level_relation(&mut db, &tuple_level.world, &rel, &parts[0])?;
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uncertain::{generate, GenParams};
    use urel_core::figure1_database;

    #[test]
    fn figure1_expands_consistently() {
        let db = figure1_database();
        let tl = expand_tuple_level(&db, 1 << 10, 1 << 16).unwrap();
        tl.validate().unwrap();
        // Same world-set.
        let a: Vec<String> = db
            .possible_worlds(16)
            .unwrap()
            .iter()
            .map(|(_, i)| format!("{}", i["r"].sorted_set()))
            .collect();
        let b: Vec<String> = tl
            .possible_worlds(16)
            .unwrap()
            .iter()
            .map(|(_, i)| format!("{}", i["r"].sorted_set()))
            .collect();
        assert_eq!(a, b);
        // Vehicle d (independent type and faction) expands to 4 rows.
        let u = &tl.partitions_of("r").unwrap()[0];
        let d_rows = u.rows().iter().filter(|r| r.tids[0] == 4).count();
        assert_eq!(d_rows, 4);
    }

    #[test]
    fn expansion_blows_up_versus_attribute_level() {
        let mut p = GenParams::paper(0.002, 0.3, 0.1);
        p.seed = 7;
        let out = generate(&p).unwrap();
        let tl = expand_tuple_level(&out.db, 1 << 16, 1 << 22).unwrap();
        // Tuple-level strictly larger than attribute-level in rows.
        assert!(
            tl.total_rows() > out.db.total_rows(),
            "{} vs {}",
            tl.total_rows(),
            out.db.total_rows()
        );
    }

    #[test]
    fn caps_guard_the_blowup() {
        let mut p = GenParams::paper(0.002, 0.5, 0.1);
        p.seed = 3;
        let out = generate(&p).unwrap();
        assert!(matches!(
            expand_tuple_level(&out.db, 1 << 16, 10),
            Err(Error::TooLarge(_))
        ));
    }

    #[test]
    fn uldb_mapping_runs() {
        let db = figure1_database();
        let tl = expand_tuple_level(&db, 1 << 10, 1 << 16).unwrap();
        let uldb = to_uldb(&tl).unwrap();
        let r = uldb.relation("r").unwrap();
        assert_eq!(r.alt_count(), tl.total_rows());
    }
}
