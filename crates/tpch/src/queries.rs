//! The experiment queries of Figure 8 — TPC-H Q3, Q6 and Q7 with the
//! aggregations dropped and `possible` wrapped around the result, exactly
//! as the paper modified them.

use urel_core::{table, table_as, UQuery};
use urel_relalg::value::date_to_days;
use urel_relalg::{col, lit_i64, lit_str, Expr};

/// Q1 (from TPC-H Q3): orders of BUILDING-segment customers placed after
/// 1995-03-15 with early-shipping line items.
///
/// ```sql
/// possible (select o_orderkey, o_orderdate, o_shippriority
///           from customer, orders, lineitem
///           where c_mktsegment = 'BUILDING'
///             and c_custkey = o_custkey and o_orderkey = l_orderkey
///             and o_orderdate > '1995-03-15' and l_shipdate < '1995-03-17')
/// ```
pub fn q1() -> UQuery {
    let customer = table("customer").select(col("c_mktsegment").eq(lit_str("BUILDING")));
    let orders = table("orders").select(col("o_orderdate").gt(lit_i64(date_to_days(1995, 3, 15))));
    let lineitem =
        table("lineitem").select(col("l_shipdate").lt(lit_i64(date_to_days(1995, 3, 17))));
    customer
        .join(orders, col("c_custkey").eq(col("o_custkey")))
        .join(lineitem, col("o_orderkey").eq(col("l_orderkey")))
        .project(["o_orderkey", "o_orderdate", "o_shippriority"])
        .poss()
}

/// Q2 (from TPC-H Q6): discounted-revenue candidates.
///
/// ```sql
/// possible (select l_extendedprice from lineitem
///           where l_shipdate between '1994-01-01' and '1996-01-01'
///             and l_discount between 0.05 and 0.08 and l_quantity < 24)
/// ```
///
/// Discounts are stored as integer percent, so `between 0.05 and 0.08`
/// becomes `between 5 and 8`.
pub fn q2() -> UQuery {
    table("lineitem")
        .select(Expr::and([
            col("l_shipdate").between(
                lit_i64(date_to_days(1994, 1, 1)),
                lit_i64(date_to_days(1996, 1, 1)),
            ),
            col("l_discount").between(lit_i64(5), lit_i64(8)),
            col("l_quantity").lt(lit_i64(24)),
        ]))
        .project(["l_extendedprice"])
        .poss()
}

/// Q3 (from TPC-H Q7): trade between GERMANY suppliers and IRAQ customers
/// — a five-join query over six relation instances (nation twice).
///
/// ```sql
/// possible (select n1.n_name, n2.n_name
///           from supplier, lineitem, orders, customer, nation n1, nation n2
///           where n2.n_name = 'IRAQ' and n1.n_name = 'GERMANY'
///             and c_nationkey = n2.n_nationkey and s_suppkey = l_suppkey
///             and o_orderkey = l_orderkey and c_custkey = o_custkey
///             and s_nationkey = n1.n_nationkey)
/// ```
pub fn q3() -> UQuery {
    let n1 = table_as("nation", "n1").select(col("n1.n_name").eq(lit_str("GERMANY")));
    let n2 = table_as("nation", "n2").select(col("n2.n_name").eq(lit_str("IRAQ")));
    table("supplier")
        .join(table("lineitem"), col("s_suppkey").eq(col("l_suppkey")))
        .join(table("orders"), col("o_orderkey").eq(col("l_orderkey")))
        .join(table("customer"), col("c_custkey").eq(col("o_custkey")))
        .join(n1, col("s_nationkey").eq(col("n1.n_nationkey")))
        .join(n2, col("c_nationkey").eq(col("n2.n_nationkey")))
        .project(["n1.n_name", "n2.n_name"])
        .poss()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uncertain::{generate, GenParams};
    use urel_core::{possible, translate};

    fn db() -> urel_core::UDatabase {
        let mut p = GenParams::paper(0.003, 0.1, 0.25);
        p.seed = 1234;
        generate(&p).unwrap().db
    }

    #[test]
    fn queries_have_the_papers_shape() {
        assert_eq!(q1().join_ops(), 2);
        assert_eq!(q3().join_ops(), 5, "Q3 involves five joins");
    }

    #[test]
    fn queries_translate_and_run() {
        let db = db();
        for (name, q) in [("q1", q1()), ("q2", q2()), ("q3", q3())] {
            let t = translate(&db, &q).unwrap_or_else(|e| panic!("{name}: {e}"));
            // Parsimony: number of physical joins = logical joins +
            // merges needed for the touched attributes.
            assert!(t.plan.join_count() >= q.join_ops());
            let out = possible(&db, &q).unwrap_or_else(|e| panic!("{name}: {e}"));
            // Results are sets over the right attributes.
            let arity = match name {
                "q1" => 3,
                "q2" => 1,
                _ => 2,
            };
            assert_eq!(out.schema().arity(), arity, "{name}");
        }
    }

    #[test]
    fn q2_respects_predicates_in_every_returned_world() {
        // Every possible answer must be witnessed by some lineitem row
        // (all alternatives considered).
        let db = db();
        let out = possible(&db, &q2()).unwrap();
        let mut witnesses = std::collections::BTreeSet::new();
        for p in db.partitions_of("lineitem").unwrap() {
            if p.value_cols() == ["l_extendedprice".to_string()] {
                for r in p.rows() {
                    witnesses.insert(r.vals[0].clone());
                }
            }
        }
        for row in out.rows() {
            assert!(witnesses.contains(&row[0]));
        }
    }
}
