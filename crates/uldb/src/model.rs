//! The ULDB data model and its possible-worlds semantics.

use std::collections::BTreeMap;
use urel_core::error::{Error, Result};
use urel_relalg::{Relation, Schema, Value};

/// A reference to an alternative: `(x-tuple id, alternative index)`.
/// Negative ids denote *external symbols* (choices outside the database,
/// e.g. the variable assignments of Lemma 5.5's encoding).
pub type AltRef = (i64, u32);

/// One alternative of an x-tuple.
#[derive(Clone, Debug, PartialEq)]
pub struct Alternative {
    /// The tuple values.
    pub values: Box<[Value]>,
    /// Conjunctive lineage: this alternative occurs exactly in the worlds
    /// where all referenced alternatives occur. Empty = independent.
    pub lineage: Vec<AltRef>,
}

impl Alternative {
    /// Lineage-free alternative.
    pub fn new(values: Vec<Value>) -> Self {
        Alternative {
            values: values.into_boxed_slice(),
            lineage: Vec::new(),
        }
    }

    /// Alternative with lineage.
    pub fn with_lineage(values: Vec<Value>, lineage: Vec<AltRef>) -> Self {
        Alternative {
            values: values.into_boxed_slice(),
            lineage,
        }
    }
}

/// An x-tuple: alternatives plus the `?` (maybe) flag.
#[derive(Clone, Debug, PartialEq)]
pub struct XTuple {
    /// Database-wide unique identifier.
    pub id: i64,
    /// `?`-tuples may be absent from a world.
    pub optional: bool,
    /// The mutually exclusive alternatives.
    pub alts: Vec<Alternative>,
}

/// An x-relation.
#[derive(Clone, Debug, PartialEq)]
pub struct XRelation {
    /// Relation name.
    pub name: String,
    /// Attribute names.
    pub attrs: Vec<String>,
    /// Whether this relation is derived by a query (its x-tuples then do
    /// not participate in world choices; their presence is determined by
    /// lineage).
    pub derived: bool,
    /// The x-tuples.
    pub xtuples: Vec<XTuple>,
}

impl XRelation {
    /// Total number of alternatives — the ULDB size yardstick of
    /// Section 5 (Theorem 5.6 counts these).
    pub fn alt_count(&self) -> usize {
        self.xtuples.iter().map(|t| t.alts.len()).sum()
    }

    /// Approximate byte size: values plus 8 bytes per lineage reference.
    pub fn size_bytes(&self) -> usize {
        self.xtuples
            .iter()
            .flat_map(|t| &t.alts)
            .map(|a| a.values.iter().map(Value::size_bytes).sum::<usize>() + a.lineage.len() * 8)
            .sum()
    }
}

/// A ULDB database: x-relations with globally unique x-tuple ids.
#[derive(Clone, Debug, Default)]
pub struct Uldb {
    relations: BTreeMap<String, XRelation>,
    /// Declared domain sizes for external symbols (negative ids). For an
    /// undeclared external, world enumeration uses the referenced values
    /// plus one sentinel "other" value.
    pub external_domains: BTreeMap<i64, u32>,
    next_id: i64,
}

impl Uldb {
    /// Empty database.
    pub fn new() -> Self {
        Uldb::default()
    }

    /// Declare a base x-relation.
    pub fn add_relation(
        &mut self,
        name: impl Into<String>,
        attrs: impl IntoIterator<Item = impl Into<String>>,
    ) -> Result<()> {
        let name = name.into();
        if self.relations.contains_key(&name) {
            return Err(Error::InvalidQuery(format!("relation `{name}` exists")));
        }
        self.relations.insert(
            name.clone(),
            XRelation {
                name,
                attrs: attrs.into_iter().map(Into::into).collect(),
                derived: false,
                xtuples: Vec::new(),
            },
        );
        Ok(())
    }

    /// Add an x-tuple; returns its fresh id.
    pub fn add_xtuple(&mut self, rel: &str, optional: bool, alts: Vec<Alternative>) -> Result<i64> {
        if alts.is_empty() {
            return Err(Error::InvalidQuery(
                "x-tuple needs at least one alternative".into(),
            ));
        }
        let arity = self.relation(rel)?.attrs.len();
        for a in &alts {
            if a.values.len() != arity {
                return Err(Error::InvalidQuery("alternative arity mismatch".into()));
            }
        }
        self.next_id += 1;
        let id = self.next_id;
        self.relations
            .get_mut(rel)
            .unwrap()
            .xtuples
            .push(XTuple { id, optional, alts });
        Ok(id)
    }

    /// Look up a relation.
    pub fn relation(&self, name: &str) -> Result<&XRelation> {
        self.relations
            .get(name)
            .ok_or_else(|| Error::InvalidQuery(format!("unknown x-relation `{name}`")))
    }

    pub(crate) fn relation_mut(&mut self, name: &str) -> Result<&mut XRelation> {
        self.relations
            .get_mut(name)
            .ok_or_else(|| Error::InvalidQuery(format!("unknown x-relation `{name}`")))
    }

    /// Register a derived x-relation under its name (used by the query
    /// operators and by callers that rename/copy relations, e.g. for
    /// self-joins).
    pub fn insert_derived(&mut self, rel: XRelation) {
        self.relations.insert(rel.name.clone(), rel);
    }

    pub(crate) fn fresh_id(&mut self) -> i64 {
        self.next_id += 1;
        self.next_id
    }

    /// Relation names.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// Find the alternative an `AltRef` points to, if it is internal.
    pub fn resolve(&self, r: AltRef) -> Option<&Alternative> {
        for rel in self.relations.values() {
            for t in &rel.xtuples {
                if t.id == r.0 {
                    return t.alts.get(r.1 as usize);
                }
            }
        }
        None
    }

    /// Expand an alternative's lineage transitively down to base and
    /// external constraints. `None` means the lineage is contradictory
    /// (an *erroneous* alternative).
    pub fn expand_lineage(&self, start: &[AltRef]) -> Option<BTreeMap<i64, u32>> {
        let mut constraints: BTreeMap<i64, u32> = BTreeMap::new();
        let mut stack: Vec<AltRef> = start.to_vec();
        while let Some((tid, alt)) = stack.pop() {
            match constraints.get(&tid) {
                Some(&existing) if existing != alt => return None,
                Some(_) => continue,
                None => {
                    constraints.insert(tid, alt);
                }
            }
            if let Some(a) = self.resolve((tid, alt)) {
                stack.extend(a.lineage.iter().copied());
            }
        }
        Some(constraints)
    }

    /// Enumerate the possible worlds as relation instances. Choices range
    /// over the x-tuples of *base* relations and over external symbols;
    /// a choice is valid iff every chosen alternative's lineage holds.
    /// Derived relations are populated by lineage satisfaction.
    pub fn worlds(&self, limit: usize) -> Result<Vec<BTreeMap<String, Relation>>> {
        // Choice axes: base x-tuples and the external symbols referenced
        // anywhere.
        let mut axes: Vec<(i64, Vec<Option<u32>>)> = Vec::new();
        let mut internal: BTreeMap<i64, usize> = BTreeMap::new(); // id → #alts
        for rel in self.relations.values() {
            for t in &rel.xtuples {
                internal.insert(t.id, t.alts.len());
                if !rel.derived {
                    let mut options: Vec<Option<u32>> =
                        (0..t.alts.len() as u32).map(Some).collect();
                    if t.optional {
                        options.push(None);
                    }
                    axes.push((t.id, options));
                }
            }
        }
        let mut external_vals: BTreeMap<i64, Vec<u32>> = BTreeMap::new();
        for rel in self.relations.values() {
            for t in &rel.xtuples {
                for a in &t.alts {
                    for &(id, v) in &a.lineage {
                        if !internal.contains_key(&id) {
                            let e = external_vals.entry(id).or_default();
                            if !e.contains(&v) {
                                e.push(v);
                            }
                        }
                    }
                }
            }
        }
        for (id, mut vals) in external_vals {
            match self.external_domains.get(&id) {
                Some(&n) => {
                    // Declared domain: enumerate it exactly.
                    axes.push((id, (0..n).map(Some).collect()));
                }
                None => {
                    vals.sort_unstable();
                    // A sentinel covers "none of the referenced choices".
                    vals.push(u32::MAX);
                    axes.push((id, vals.into_iter().map(Some).collect()));
                }
            }
        }

        // Cartesian product of the axes, bounded.
        let mut total: u128 = 1;
        for (_, opts) in &axes {
            total = total.saturating_mul(opts.len() as u128);
        }
        if total > limit as u128 {
            return Err(Error::TooLarge(format!("{total} choice combinations")));
        }
        let mut choices: Vec<BTreeMap<i64, Option<u32>>> = vec![BTreeMap::new()];
        for (id, opts) in &axes {
            let mut next = Vec::with_capacity(choices.len() * opts.len());
            for c in &choices {
                for o in opts {
                    let mut c2 = c.clone();
                    c2.insert(*id, *o);
                    next.push(c2);
                }
            }
            choices = next;
        }

        // Constraints on choice axes (base x-tuples, externals) must match
        // the choice; constraints on derived ids are satisfied through
        // their own expanded lineage, which expand_lineage already folded
        // in.
        let satisfied = |lin: &[AltRef], choice: &BTreeMap<i64, Option<u32>>| {
            self.expand_lineage(lin).is_some_and(|constraints| {
                constraints.iter().all(|(id, v)| match choice.get(id) {
                    Some(chosen) => *chosen == Some(*v),
                    None => true,
                })
            })
        };

        let mut out = Vec::new();
        'choice: for choice in &choices {
            // Validity: chosen base alternatives must have satisfied
            // lineage.
            for rel in self.relations.values().filter(|r| !r.derived) {
                for t in &rel.xtuples {
                    if let Some(Some(alt)) = choice.get(&t.id) {
                        let a = &t.alts[*alt as usize];
                        if !satisfied(&a.lineage, choice) {
                            continue 'choice;
                        }
                    }
                }
            }
            let mut inst = BTreeMap::new();
            for rel in self.relations.values() {
                let mut r = Relation::empty(Schema::named(&rel.attrs));
                for t in &rel.xtuples {
                    if rel.derived {
                        for a in &t.alts {
                            let full: Vec<AltRef> = a.lineage.clone();
                            if satisfied(&full, choice) {
                                r.push(a.values.to_vec()).expect("arity fixed");
                            }
                        }
                    } else if let Some(Some(alt)) = choice.get(&t.id) {
                        r.push(t.alts[*alt as usize].values.to_vec())
                            .expect("arity fixed");
                    }
                }
                r.dedup_in_place();
                inst.insert(rel.name.clone(), r);
            }
            out.push(inst);
        }
        Ok(out)
    }
}

/// Build Example 5.4's ULDB: the vehicles relation of Figure 1 as
/// x-tuples with lineage `λ(b,1) = {(c,1)}, λ(b,2) = {(c,2)}`.
/// Returns the database and the x-tuple ids of (a, b, c, d).
pub fn example_5_4() -> (Uldb, [i64; 4]) {
    let mut db = Uldb::new();
    db.add_relation("r", ["id", "type", "faction"]).unwrap();
    let row = |id: i64, ty: &str, fa: &str| vec![Value::Int(id), Value::str(ty), Value::str(fa)];
    let a = db
        .add_xtuple("r", false, vec![Alternative::new(row(1, "Tank", "Friend"))])
        .unwrap();
    // c first so b's lineage can reference it.
    let c = db
        .add_xtuple(
            "r",
            false,
            vec![
                Alternative::new(row(3, "Tank", "Enemy")),
                Alternative::new(row(2, "Tank", "Enemy")),
            ],
        )
        .unwrap();
    let b = db
        .add_xtuple(
            "r",
            false,
            vec![
                Alternative::with_lineage(row(2, "Transport", "Friend"), vec![(c, 0)]),
                Alternative::with_lineage(row(3, "Transport", "Friend"), vec![(c, 1)]),
            ],
        )
        .unwrap();
    let d = db
        .add_xtuple(
            "r",
            false,
            vec![
                Alternative::new(row(4, "Tank", "Friend")),
                Alternative::new(row(4, "Tank", "Enemy")),
                Alternative::new(row(4, "Transport", "Friend")),
                Alternative::new(row(4, "Transport", "Enemy")),
            ],
        )
        .unwrap();
    (db, [a, b, c, d])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_5_4_has_eight_worlds() {
        let (db, _) = example_5_4();
        let worlds = db.worlds(64).unwrap();
        // 1 × (2×2 filtered to 2 by lineage) × 4 = 8 worlds.
        assert_eq!(worlds.len(), 8);
        for inst in &worlds {
            assert_eq!(inst["r"].len(), 4);
        }
    }

    #[test]
    fn example_5_4_matches_figure1_udb() {
        let (db, _) = example_5_4();
        let udb = urel_core::figure1_database();
        let mut a: Vec<String> = db
            .worlds(64)
            .unwrap()
            .iter()
            .map(|inst| format!("{}", inst["r"].sorted_set()))
            .collect();
        let mut b: Vec<String> = udb
            .possible_worlds(64)
            .unwrap()
            .iter()
            .map(|(_, inst)| format!("{}", inst["r"].sorted_set()))
            .collect();
        a.sort();
        a.dedup();
        b.sort();
        b.dedup();
        assert_eq!(a, b);
    }

    #[test]
    fn optional_tuples_can_vanish() {
        let mut db = Uldb::new();
        db.add_relation("r", ["a"]).unwrap();
        db.add_xtuple("r", true, vec![Alternative::new(vec![Value::Int(1)])])
            .unwrap();
        let worlds = db.worlds(8).unwrap();
        assert_eq!(worlds.len(), 2);
        let sizes: Vec<usize> = worlds.iter().map(|i| i["r"].len()).collect();
        assert!(sizes.contains(&0) && sizes.contains(&1));
    }

    #[test]
    fn lineage_contradiction_detected() {
        let mut db = Uldb::new();
        db.add_relation("r", ["a"]).unwrap();
        let t = db
            .add_xtuple(
                "r",
                false,
                vec![
                    Alternative::new(vec![Value::Int(1)]),
                    Alternative::new(vec![Value::Int(2)]),
                ],
            )
            .unwrap();
        assert!(db.expand_lineage(&[(t, 0), (t, 1)]).is_none());
        assert!(db.expand_lineage(&[(t, 0), (t, 0)]).is_some());
    }

    #[test]
    fn arity_and_existence_checks() {
        let mut db = Uldb::new();
        db.add_relation("r", ["a"]).unwrap();
        assert!(db.add_relation("r", ["b"]).is_err());
        assert!(db.add_xtuple("r", false, vec![]).is_err());
        assert!(db
            .add_xtuple(
                "r",
                false,
                vec![Alternative::new(vec![Value::Int(1), Value::Int(2)])]
            )
            .is_err());
        assert!(db.relation("zzz").is_err());
    }

    #[test]
    fn size_accounting() {
        let (db, _) = example_5_4();
        let r = db.relation("r").unwrap();
        assert_eq!(r.alt_count(), 1 + 2 + 2 + 4);
        assert!(r.size_bytes() > 0);
    }
}
