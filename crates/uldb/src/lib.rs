//! # urel-uldb — ULDBs (x-tuples with lineage)
//!
//! The tuple-level baseline of Section 5, modelled after Trio's ULDBs
//! [Benjelloun et al., VLDB 2006]: relations are sets of *x-tuples*, each
//! a list of mutually exclusive *alternatives*, optionally marked `?`
//! (maybe). Dependencies between alternatives of different x-tuples are
//! expressed through *lineage* — an alternative occurs in exactly the
//! worlds where the alternatives its lineage points to occur.
//!
//! The crate implements:
//!
//! * the data model and its possible-worlds semantics ([`Uldb::worlds`]);
//! * query evaluation (σ/π/⋈) with lineage propagation, including the
//!   *erroneous tuples* phenomenon — answers may contain alternatives
//!   whose lineage is unsatisfiable — and [`Uldb::minimize`], the
//!   expensive transitive-closure cleanup the paper contrasts with
//!   U-relations' ψ-filtered joins;
//! * conversions: ULDB → U-relations (linear, Lemma 5.5) and or-set
//!   relations → ULDB (exponential, Theorem 5.6).

pub mod convert;
pub mod eval;
pub mod model;

pub use model::{example_5_4, AltRef, Alternative, Uldb, XRelation, XTuple};
