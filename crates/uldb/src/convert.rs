//! Conversions witnessing Section 5's succinctness results.
//!
//! * [`uldb_to_udb`] — Lemma 5.5: ULDBs translate *linearly* into
//!   U-relational databases (one variable per x-tuple, one tuple-level row
//!   per alternative, lineage refs inlined into the ws-descriptor).
//! * [`or_set_to_uldb`] — the hard direction of Theorem 5.6: an or-set
//!   relation (attribute-level independence) forces a ULDB to enumerate
//!   the full product of field alternatives, exponential in the arity.
//! * [`tuple_level_from_udb`] — the "rather direct mapping" used in the
//!   Figure 14 experiment: a tuple-level U-relational database becomes a
//!   ULDB whose alternative lineage encodes the descriptors through
//!   external symbols.

use crate::model::{Alternative, Uldb};
use std::collections::BTreeMap;
use urel_core::error::{Error, Result};
use urel_core::{UDatabase, URelation, Var, WorldTable, WsDescriptor};
use urel_relalg::Value;

/// Lemma 5.5: translate a (base) ULDB into a U-relational database.
///
/// For every x-tuple `t` a fresh variable `c_t` with one domain value per
/// alternative (plus one for "absent" when `t` is optional); for every
/// alternative `(t, j)` with lineage `λ(t, j)` a tuple-level row guarded
/// by `{c_t ↦ j} ∪ {c_{t_i} ↦ j_i | (t_i, j_i) ∈ λ(t, j)}`. External
/// symbols get their own variables. The output size is linear in the
/// input: one row per alternative, descriptor size 1 + |λ|.
pub fn uldb_to_udb(db: &Uldb, rel: &str) -> Result<UDatabase> {
    let x = db.relation(rel)?;
    let mut wt = WorldTable::new();
    // Variable per x-tuple — except that an x-tuple whose every
    // alternative carries lineage has no free choice of its own: its
    // alternative is determined by the choices its lineage points at
    // (vehicle `b` in Example 5.4). Giving it a variable anyway would
    // manufacture worlds in which the tuple is absent because the
    // variable disagrees with the lineage — worlds the ULDB does not
    // have.
    let mut var_of: BTreeMap<i64, Var> = BTreeMap::new();
    for t in &x.xtuples {
        let lineage_determined = !t.optional && t.alts.iter().all(|a| !a.lineage.is_empty());
        if !lineage_determined {
            let extra = usize::from(t.optional);
            var_of.insert(t.id, wt.fresh_var((t.alts.len() + extra) as u64)?);
        }
    }
    // Variables for external symbols: domain = referenced values plus a
    // sentinel for "some other choice".
    let mut ext_vals: BTreeMap<i64, Vec<u32>> = BTreeMap::new();
    for t in &x.xtuples {
        for a in &t.alts {
            for &(id, v) in &a.lineage {
                if !var_of.contains_key(&id) {
                    let e = ext_vals.entry(id).or_default();
                    if !e.contains(&v) {
                        e.push(v);
                    }
                }
            }
        }
    }
    let mut ext_var: BTreeMap<i64, (Var, Vec<u32>)> = BTreeMap::new();
    for (id, mut vals) in ext_vals {
        vals.sort_unstable();
        let var = wt.fresh_var(vals.len() as u64 + 1)?; // + sentinel
        ext_var.insert(id, (var, vals));
    }

    let mut out = UDatabase::new(wt);
    out.add_relation(rel, x.attrs.iter().cloned())?;
    let mut u = URelation::partition(format!("u_{rel}"), x.attrs.iter().cloned());
    for t in &x.xtuples {
        for (j, a) in t.alts.iter().enumerate() {
            let mut pairs: Vec<(Var, u64)> = Vec::with_capacity(1 + a.lineage.len());
            if let Some(&var) = var_of.get(&t.id) {
                pairs.push((var, j as u64));
            }
            for &(id, v) in &a.lineage {
                match var_of.get(&id) {
                    Some(&var) => pairs.push((var, v as u64)),
                    None => {
                        let (var, vals) = &ext_var[&id];
                        let idx = vals.binary_search(&v).expect("collected") as u64;
                        pairs.push((*var, idx));
                    }
                }
            }
            let desc = WsDescriptor::from_pairs(pairs).map_err(|e| {
                Error::InvalidDatabase(format!("contradictory lineage in ULDB: {e}"))
            })?;
            u.push_simple(desc, t.id, a.values.to_vec())?;
        }
    }
    out.add_partition(rel, u)?;
    Ok(out)
}

/// The hard direction of Theorem 5.6: encode an or-set relation as a ULDB.
/// Every tuple whose fields have `m₁, …, mₖ` alternatives becomes an
/// x-tuple with `∏ mᵢ` alternatives — exponential in the arity.
/// `cap` guards against accidental blow-ups.
pub fn or_set_to_uldb(
    rel: &str,
    attrs: &[&str],
    rows: &[Vec<Vec<Value>>],
    cap: usize,
) -> Result<Uldb> {
    let mut db = Uldb::new();
    db.add_relation(rel, attrs.iter().copied())?;
    for row in rows {
        if row.len() != attrs.len() {
            return Err(Error::InvalidQuery("or-set row arity mismatch".into()));
        }
        let combos: usize = row.iter().map(Vec::len).product();
        if combos == 0 {
            return Err(Error::InvalidQuery("empty or-set field".into()));
        }
        if combos > cap {
            return Err(Error::TooLarge(format!(
                "x-tuple needs {combos} alternatives (cap {cap})"
            )));
        }
        let mut alts: Vec<Vec<Value>> = vec![Vec::new()];
        for field in row {
            let mut next = Vec::with_capacity(alts.len() * field.len());
            for prefix in &alts {
                for v in field {
                    let mut p = prefix.clone();
                    p.push(v.clone());
                    next.push(p);
                }
            }
            alts = next;
        }
        db.add_xtuple(rel, false, alts.into_iter().map(Alternative::new).collect())?;
    }
    Ok(db)
}

/// Number of ULDB alternatives an or-set tuple with the given field
/// alternative counts requires (`∏ mᵢ` — the Theorem 5.6 lower bound).
pub fn or_set_uldb_alternatives(field_counts: &[usize]) -> u128 {
    field_counts.iter().map(|&m| m as u128).product()
}

/// The Figure 14 mapping: convert the tuple-level U-relation of a logical
/// relation into a ULDB. Rows are grouped by tuple id into x-tuples; each
/// row becomes an alternative whose lineage encodes its ws-descriptor
/// through external symbols `(-(var), value-index)`, preserving all
/// cross-tuple correlations.
pub fn tuple_level_from_udb(udb: &UDatabase, rel: &str, tuple_level: &URelation) -> Result<Uldb> {
    let mut db = Uldb::new();
    add_tuple_level_relation(&mut db, &udb.world, rel, tuple_level)?;
    Ok(db)
}

/// Add one tuple-level relation to an existing ULDB (multi-relation
/// variant of [`tuple_level_from_udb`], used by the Figure 14 setup).
pub fn add_tuple_level_relation(
    db: &mut Uldb,
    world: &WorldTable,
    rel: &str,
    tuple_level: &URelation,
) -> Result<()> {
    db.add_relation(rel, tuple_level.value_cols().iter().cloned())?;
    let mut by_tid: BTreeMap<i64, Vec<&urel_core::URow>> = BTreeMap::new();
    for row in tuple_level.rows() {
        by_tid.entry(row.tids[0]).or_default().push(row);
    }
    for (_tid, rows) in by_tid {
        let mut alts = Vec::with_capacity(rows.len());
        for r in rows {
            let mut lineage = Vec::with_capacity(r.desc.len());
            for &(var, val) in r.desc.iter() {
                let dom = world.domain(var)?;
                let idx = dom
                    .binary_search(&val)
                    .map_err(|_| Error::UnknownWorld(format!("{var} ↦ {val}")))?;
                lineage.push((-(var.0 as i64), idx as u32));
            }
            alts.push(Alternative::with_lineage(r.vals.to_vec(), lineage));
        }
        db.add_xtuple(rel, true, alts)?;
    }
    // Presence is fully determined by the descriptor-encoding lineage:
    // mark the relation derived so the world semantics does not invent a
    // free absent/present choice per x-tuple, and declare the true
    // domains of the external symbols.
    db.relation_mut(rel)?.derived = true;
    for var in world.vars() {
        db.external_domains
            .insert(-(var.0 as i64), world.domain(var)?.len() as u32);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::example_5_4;

    fn world_sigs(worlds: &[BTreeMap<String, urel_relalg::Relation>], rel: &str) -> Vec<String> {
        let mut v: Vec<String> = worlds
            .iter()
            .map(|inst| format!("{}", inst[rel].sorted_set()))
            .collect();
        v.sort();
        v.dedup();
        v
    }

    #[test]
    fn lemma_5_5_preserves_worlds() {
        let (db, _) = example_5_4();
        let udb = uldb_to_udb(&db, "r").unwrap();
        udb.validate().unwrap();
        let uldb_worlds = world_sigs(&db.worlds(128).unwrap(), "r");
        let mut udb_worlds: Vec<String> = udb
            .possible_worlds(128)
            .unwrap()
            .iter()
            .map(|(_, inst)| format!("{}", inst["r"].sorted_set()))
            .collect();
        udb_worlds.sort();
        udb_worlds.dedup();
        assert_eq!(uldb_worlds, udb_worlds);
    }

    #[test]
    fn lemma_5_5_is_linear() {
        let (db, _) = example_5_4();
        let x = db.relation("r").unwrap();
        let udb = uldb_to_udb(&db, "r").unwrap();
        // One row per alternative.
        assert_eq!(udb.total_rows(), x.alt_count());
    }

    #[test]
    fn theorem_5_6_exponential_or_sets() {
        // k fields × m alternatives each.
        let k: usize = 4;
        let m: usize = 3;
        let row: Vec<Vec<Value>> = (0..k)
            .map(|a| (0..m).map(|i| Value::Int((a * 10 + i) as i64)).collect())
            .collect();
        let attrs: Vec<String> = (0..k).map(|i| format!("c{i}")).collect();
        let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
        let uldb = or_set_to_uldb("r", &attr_refs, std::slice::from_ref(&row), 1 << 20).unwrap();
        assert_eq!(uldb.relation("r").unwrap().alt_count(), m.pow(k as u32));
        assert_eq!(
            or_set_uldb_alternatives(&vec![m; k]),
            (m as u128).pow(k as u32)
        );
        // The U-relational encoding of the same or-set is linear (k·m).
        let udb = urel_core::construct::or_set_database("r", &attr_refs, &[row]).unwrap();
        assert_eq!(udb.total_rows(), k * m);
        // And both represent the same world-set.
        let a = world_sigs(&uldb.worlds(1 << 12).unwrap(), "r");
        let mut b: Vec<String> = udb
            .possible_worlds(1 << 12)
            .unwrap()
            .iter()
            .map(|(_, inst)| format!("{}", inst["r"].sorted_set()))
            .collect();
        b.sort();
        b.dedup();
        assert_eq!(a, b);
    }

    #[test]
    fn cap_guard_trips() {
        let row: Vec<Vec<Value>> = (0..8).map(|_| (0..8).map(Value::Int).collect()).collect();
        let attrs: Vec<String> = (0..8).map(|i| format!("c{i}")).collect();
        let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
        assert!(or_set_to_uldb("r", &attr_refs, &[row], 1 << 10).is_err());
    }

    #[test]
    fn tuple_level_mapping_preserves_worlds() {
        // Build a small attribute-level database, expand to tuple level
        // via evaluation of the identity query, then map to ULDB.
        let udb = urel_core::figure1_database();
        let full = urel_core::evaluate(&udb, &urel_core::table("r")).unwrap();
        let uldb = tuple_level_from_udb(&udb, "r", &full).unwrap();
        // The translated tuple-level relation may order its value columns
        // differently; compare world instances in that column order.
        let order: Vec<String> = full.value_cols().to_vec();
        let reorder = |rel: &urel_relalg::Relation| {
            let idx: Vec<usize> = order
                .iter()
                .map(|c| rel.schema().resolve_name(c).unwrap())
                .collect();
            let rows: Vec<Vec<Value>> = rel
                .rows()
                .iter()
                .map(|r| idx.iter().map(|&i| r[i].clone()).collect())
                .collect();
            urel_relalg::Relation::from_rows(order.clone(), rows)
                .unwrap()
                .sorted_set()
        };
        let a = world_sigs(&uldb.worlds(4096).unwrap(), "r");
        let mut b: Vec<String> = udb
            .possible_worlds(64)
            .unwrap()
            .iter()
            .map(|(_, inst)| format!("{}", reorder(&inst["r"])))
            .collect();
        b.sort();
        b.dedup();
        assert_eq!(a, b);
    }
}
