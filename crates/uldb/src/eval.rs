//! Query evaluation on ULDBs: σ/π/⋈ with lineage propagation.
//!
//! Joins combine alternatives pairwise and record lineage to both parents.
//! Crucially — and this is the contrast the paper draws in Section 5 —
//! the join does *not* check lineage consistency, so the answer may
//! contain **erroneous tuples** (alternatives that occur in no world).
//! Removing them requires [`Uldb::minimize`], a transitive-closure pass
//! over lineage; U-relations never produce such tuples because the
//! ψ-condition filters inconsistent combinations inside the join itself.

use crate::model::{Alternative, Uldb, XRelation, XTuple};
use urel_core::error::{Error, Result};
use urel_relalg::exec::JoinCondition;
use urel_relalg::{Expr, Schema};

impl Uldb {
    /// σ: filter alternatives by a predicate over the attributes.
    /// X-tuples losing all alternatives disappear; those losing some
    /// become optional (`?`).
    pub fn select(&mut self, src: &str, out: &str, pred: &Expr) -> Result<()> {
        let rel = self.relation(src)?.clone();
        let schema = Schema::named(&rel.attrs);
        let compiled = pred.compile(&schema)?;
        let mut xtuples = Vec::new();
        for t in &rel.xtuples {
            // Surviving alternatives reference their origin alternative.
            let alts: Vec<Alternative> = t
                .alts
                .iter()
                .enumerate()
                .filter(|(_, a)| compiled.eval_bool(&a.values))
                .map(|(i, a)| {
                    Alternative::with_lineage(
                        a.values.to_vec(),
                        a.lineage
                            .iter()
                            .copied()
                            .chain([(t.id, i as u32)])
                            .collect(),
                    )
                })
                .collect();
            if alts.is_empty() {
                continue;
            }
            let optional = t.optional || alts.len() < t.alts.len();
            let id = self.fresh_id();
            xtuples.push(XTuple { id, optional, alts });
        }
        self.insert_derived(XRelation {
            name: out.to_string(),
            attrs: rel.attrs.clone(),
            derived: true,
            xtuples,
        });
        Ok(())
    }

    /// π: project alternatives onto the listed attributes.
    pub fn project(&mut self, src: &str, out: &str, attrs: &[&str]) -> Result<()> {
        let rel = self.relation(src)?.clone();
        let idx: Vec<usize> = attrs
            .iter()
            .map(|a| {
                rel.attrs
                    .iter()
                    .position(|x| x == a)
                    .ok_or_else(|| Error::InvalidQuery(format!("unknown attribute `{a}`")))
            })
            .collect::<Result<_>>()?;
        let mut xtuples = Vec::new();
        for t in &rel.xtuples {
            let alts: Vec<Alternative> = t
                .alts
                .iter()
                .enumerate()
                .map(|(i, a)| {
                    Alternative::with_lineage(
                        idx.iter().map(|&k| a.values[k].clone()).collect(),
                        a.lineage
                            .iter()
                            .copied()
                            .chain([(t.id, i as u32)])
                            .collect(),
                    )
                })
                .collect();
            let id = self.fresh_id();
            xtuples.push(XTuple {
                id,
                optional: t.optional,
                alts,
            });
        }
        self.insert_derived(XRelation {
            name: out.to_string(),
            attrs: attrs.iter().map(|s| s.to_string()).collect(),
            derived: true,
            xtuples,
        });
        Ok(())
    }

    /// ⋈: join two x-relations. One result x-tuple per pair of input
    /// x-tuples with at least one matching alternative combination; each
    /// matching combination becomes an alternative whose lineage points to
    /// both parents. Equi-conditions are executed hash-based.
    pub fn join(&mut self, left: &str, right: &str, out: &str, pred: &Expr) -> Result<()> {
        let l = self.relation(left)?.clone();
        let r = self.relation(right)?.clone();
        let ls = Schema::named(&l.attrs);
        let rs = Schema::named(&r.attrs);
        let joint = ls.concat(&rs);
        let cond = JoinCondition::analyze(pred, &ls, &rs);
        let residual = Expr::and(cond.residual.clone());
        let compiled = if residual.is_true() {
            None
        } else {
            Some(residual.compile(&joint)?)
        };

        // Flatten the right side's alternatives into a hash table on the
        // equi-key (or a single bucket when the join is pure theta).
        use std::collections::HashMap;
        type Key = Vec<urel_relalg::Value>;
        let mut table: HashMap<Key, Vec<(usize, u32)>> = HashMap::new();
        for (ti, t) in r.xtuples.iter().enumerate() {
            for (ai, a) in t.alts.iter().enumerate() {
                let key: Key = cond
                    .equi
                    .iter()
                    .map(|&(_, rk)| a.values[rk].clone())
                    .collect();
                table.entry(key).or_default().push((ti, ai as u32));
            }
        }

        let mut xtuples: Vec<XTuple> = Vec::new();
        let mut open: HashMap<(usize, usize), Vec<Alternative>> = HashMap::new();
        for (si, s) in l.xtuples.iter().enumerate() {
            for (sai, sa) in s.alts.iter().enumerate() {
                let key: Key = cond
                    .equi
                    .iter()
                    .map(|&(lk, _)| sa.values[lk].clone())
                    .collect();
                let Some(matches) = table.get(&key) else {
                    continue;
                };
                for &(ti, tai) in matches {
                    let ta = &r.xtuples[ti].alts[tai as usize];
                    let ok = compiled
                        .as_ref()
                        .is_none_or(|c| c.eval_bool_pair(&sa.values, &ta.values));
                    if !ok {
                        continue;
                    }
                    let mut values = sa.values.to_vec();
                    values.extend(ta.values.iter().cloned());
                    // Lineage: both parent alternatives (transitively
                    // closed later by minimize()). No consistency check —
                    // erroneous combinations survive, as in Trio.
                    let lineage = vec![(s.id, sai as u32), (r.xtuples[ti].id, tai)];
                    open.entry((si, ti))
                        .or_default()
                        .push(Alternative::with_lineage(values, lineage));
                }
            }
        }
        let mut keys: Vec<(usize, usize)> = open.keys().copied().collect();
        keys.sort_unstable();
        for k in keys {
            let alts = open.remove(&k).unwrap();
            let id = self.fresh_id();
            xtuples.push(XTuple {
                id,
                optional: true,
                alts,
            });
        }
        let mut attrs = l.attrs.clone();
        attrs.extend(r.attrs.iter().cloned());
        self.insert_derived(XRelation {
            name: out.to_string(),
            attrs,
            derived: true,
            xtuples,
        });
        Ok(())
    }

    /// ∪: union of two x-relations with equal arity. X-tuples are simply
    /// concatenated (tuple alternatives from different relations are
    /// independent unless their lineage says otherwise).
    pub fn union(&mut self, left: &str, right: &str, out: &str) -> Result<()> {
        let l = self.relation(left)?.clone();
        let r = self.relation(right)?.clone();
        if l.attrs.len() != r.attrs.len() {
            return Err(Error::InvalidQuery("union arity mismatch".into()));
        }
        let mut xtuples = Vec::with_capacity(l.xtuples.len() + r.xtuples.len());
        for t in l.xtuples.iter().chain(&r.xtuples) {
            let id = self.fresh_id();
            let alts = t
                .alts
                .iter()
                .enumerate()
                .map(|(i, a)| {
                    Alternative::with_lineage(
                        a.values.to_vec(),
                        a.lineage
                            .iter()
                            .copied()
                            .chain([(t.id, i as u32)])
                            .collect(),
                    )
                })
                .collect();
            xtuples.push(XTuple {
                id,
                optional: t.optional,
                alts,
            });
        }
        self.insert_derived(XRelation {
            name: out.to_string(),
            attrs: l.attrs.clone(),
            derived: true,
            xtuples,
        });
        Ok(())
    }

    /// Data minimization: remove erroneous alternatives (unsatisfiable
    /// transitive lineage). Returns the number removed. This is the
    /// expensive transitive-closure operation the paper contrasts with
    /// U-relations' in-join ψ filtering.
    pub fn minimize(&mut self, rel: &str) -> Result<usize> {
        let snapshot = self.clone();
        let r = self.relation_mut(rel)?;
        let mut removed = 0;
        for t in &mut r.xtuples {
            let before = t.alts.len();
            t.alts
                .retain(|a| snapshot.expand_lineage(&a.lineage).is_some());
            removed += before - t.alts.len();
        }
        r.xtuples.retain(|t| !t.alts.is_empty());
        Ok(removed)
    }

    /// Count erroneous alternatives without removing them.
    pub fn erroneous_count(&self, rel: &str) -> Result<usize> {
        let r = self.relation(rel)?;
        Ok(r.xtuples
            .iter()
            .flat_map(|t| &t.alts)
            .filter(|a| self.expand_lineage(&a.lineage).is_none())
            .count())
    }
}

#[cfg(test)]
mod tests {
    use crate::model::example_5_4;
    use urel_relalg::{col, lit_str, Relation, Value};

    #[test]
    fn select_marks_optional_and_tracks_lineage() {
        let (mut db, _) = example_5_4();
        db.select("r", "tanks", &col("type").eq(lit_str("Tank")))
            .unwrap();
        let tanks = db.relation("tanks").unwrap();
        // a (1 alt), c (2 alts), d (2 of 4 alts, now optional).
        assert_eq!(tanks.xtuples.len(), 3);
        let worlds = db.worlds(128).unwrap();
        for inst in &worlds {
            // In every world the tanks are exactly the Tank-typed tuples
            // of r.
            let want: Vec<_> = inst["r"]
                .rows()
                .iter()
                .filter(|row| row[1] == Value::str("Tank"))
                .cloned()
                .collect();
            let want = Relation::new(inst["r"].schema().clone(), want).unwrap();
            assert!(inst["tanks"].set_eq(&want));
        }
    }

    #[test]
    fn join_produces_erroneous_tuples_and_minimize_removes_them() {
        // Example 3.7's phenomenon, ULDB-style: self-join the enemy tanks.
        let (mut db, _) = example_5_4();
        let enemy_tank = urel_relalg::Expr::and([
            col("type").eq(lit_str("Tank")),
            col("faction").eq(lit_str("Enemy")),
        ]);
        db.select("r", "s", &enemy_tank).unwrap();
        db.project("s", "sid", &["id"]).unwrap();
        // Rename via a second derived copy for the self-join.
        db.project("s", "sid2", &["id"]).unwrap();
        let mut r2 = db.relation("sid2").unwrap().clone();
        r2.attrs = vec!["id2".to_string()];
        r2.name = "sid2r".to_string();
        db.insert_derived(r2);
        db.join("sid", "sid2r", "pairs", &col("id").ne(col("id2")))
            .unwrap();

        // c contributes alternatives (3) and (2); the pair (3,2) combines
        // c's alt 0 with c's alt 1 — erroneous (vehicle c cannot be at two
        // positions at once).
        let err = db.erroneous_count("pairs").unwrap();
        assert!(err >= 2, "expected erroneous pairs, got {err}");
        let removed = db.minimize("pairs").unwrap();
        assert_eq!(removed, err);
        assert_eq!(db.erroneous_count("pairs").unwrap(), 0);

        // After minimization the possible pairs match the U-relational
        // answer of Example 3.7: (3,4), (2,4), (4,3), (4,2).
        let mut possible: Vec<(i64, i64)> = db
            .relation("pairs")
            .unwrap()
            .xtuples
            .iter()
            .flat_map(|t| &t.alts)
            .map(|a| (a.values[0].as_int().unwrap(), a.values[1].as_int().unwrap()))
            .collect();
        possible.sort_unstable();
        possible.dedup();
        assert_eq!(possible, vec![(2, 4), (3, 4), (4, 2), (4, 3)]);
    }

    #[test]
    fn join_worlds_match_oracle() {
        let (mut db, _) = example_5_4();
        db.project("r", "ids", &["id"]).unwrap();
        let mut r2 = db.relation("ids").unwrap().clone();
        r2.attrs = vec!["id2".to_string()];
        r2.name = "ids2".to_string();
        db.insert_derived(r2);
        db.join("ids", "ids2", "j", &col("id").eq(col("id2")))
            .unwrap();
        for inst in db.worlds(128).unwrap() {
            // id ⋈ id2 on equality is the identity pairing.
            assert_eq!(inst["j"].sorted_set().len(), inst["ids"].sorted_set().len());
        }
    }

    #[test]
    fn union_keeps_worlds() {
        let (mut db, _) = example_5_4();
        db.select("r", "tanks", &col("type").eq(lit_str("Tank")))
            .unwrap();
        db.select("r", "transports", &col("type").eq(lit_str("Transport")))
            .unwrap();
        db.union("tanks", "transports", "all").unwrap();
        for inst in db.worlds(128).unwrap() {
            assert!(inst["all"].set_eq(&inst["r"]));
        }
        // Arity mismatch rejected.
        db.project("r", "ids", &["id"]).unwrap();
        assert!(db.union("ids", "r", "bad").is_err());
    }

    #[test]
    fn projection_keeps_worlds() {
        let (mut db, _) = example_5_4();
        db.project("r", "factions", &["faction"]).unwrap();
        for inst in db.worlds(128).unwrap() {
            let want: Vec<Vec<Value>> = inst["r"]
                .rows()
                .iter()
                .map(|r| vec![r[2].clone()])
                .collect();
            let want = Relation::from_rows(["faction"], want).unwrap();
            assert!(inst["factions"].set_eq(&want));
        }
    }
}
