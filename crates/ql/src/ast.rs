//! The parse tree: pipelines of stages, every node carrying the byte
//! span of the source text it came from.

use std::fmt;

/// A half-open byte range into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First byte of the spanned text.
    pub start: usize,
    /// One past the last byte.
    pub end: usize,
}

impl Span {
    /// Construct a span.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A parsed statement: an optional leading `explain`, then a pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Statement {
    /// `explain <pipeline>` asks for the optimized physical plan text
    /// instead of executing.
    pub explain: bool,
    /// The pipeline itself.
    pub pipeline: Pipeline,
}

/// `from <source> | stage | stage | ...`
#[derive(Debug, Clone, PartialEq)]
pub struct Pipeline {
    /// The leading `from` source.
    pub from: Source,
    /// The stages, in pipe order.
    pub stages: Vec<Stage>,
    /// Span of the whole pipeline.
    pub span: Span,
}

/// A pipeline input: a named relation (optionally aliased) or a
/// parenthesized sub-pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum Source {
    /// `R` or `R as alias`.
    Table {
        /// Relation name.
        name: String,
        /// `as` alias, if any.
        alias: Option<String>,
        /// Span of the source text.
        span: Span,
    },
    /// `( from ... | ... )`.
    Sub(Box<Pipeline>),
}

impl Source {
    /// The span of this source.
    pub fn span(&self) -> Span {
        match self {
            Source::Table { span, .. } => *span,
            Source::Sub(p) => p.span,
        }
    }
}

/// One `| ...` stage.
#[derive(Debug, Clone, PartialEq)]
pub enum Stage {
    /// `where <expr>` — σ.
    Where {
        /// The predicate.
        pred: PExpr,
        /// Span of the stage.
        span: Span,
    },
    /// `select a, b.c, ...` — π.
    Select {
        /// The kept attributes (possibly qualified), each with its span.
        cols: Vec<(String, Span)>,
        /// Span of the stage.
        span: Span,
    },
    /// `join <source> on <expr>` — ⋈.
    Join {
        /// The right-hand source.
        source: Source,
        /// The join predicate.
        on: PExpr,
        /// Span of the stage.
        span: Span,
    },
    /// `union ( <pipeline> )` — ∪.
    Union {
        /// The right-hand pipeline.
        pipeline: Pipeline,
        /// Span of the stage.
        span: Span,
    },
    /// `possible` / `certain`, optionally `confidence <eps>` — the
    /// terminal answer-mode clause.
    Mode {
        /// Which answers, and with what Monte-Carlo half-width.
        mode: ModeClause,
        /// Span of the stage.
        span: Span,
    },
}

impl Stage {
    /// The span of this stage.
    pub fn span(&self) -> Span {
        match self {
            Stage::Where { span, .. }
            | Stage::Select { span, .. }
            | Stage::Join { span, .. }
            | Stage::Union { span, .. }
            | Stage::Mode { span, .. } => *span,
        }
    }
}

/// The answer-mode clause of a pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ModeClause {
    /// `possible [confidence ε]` — the set of possible answer tuples,
    /// optionally with a Monte-Carlo confidence per tuple.
    Possible {
        /// Hoeffding half-width ε, if `confidence` was given.
        confidence: Option<f64>,
    },
    /// `certain [confidence ε]` — the certain answers, optionally with
    /// Monte-Carlo coverage estimation.
    Certain {
        /// Hoeffding half-width ε, if `confidence` was given.
        confidence: Option<f64>,
    },
}

/// A parsed scalar expression with its span.
#[derive(Debug, Clone, PartialEq)]
pub struct PExpr {
    /// The node.
    pub kind: PExprKind,
    /// Span of the expression text.
    pub span: Span,
}

/// Expression nodes. Mirrors the engine's `Expr`, plus spans.
#[derive(Debug, Clone, PartialEq)]
pub enum PExprKind {
    /// Column reference, `name` or `alias.name`.
    Col(String),
    /// Integer literal.
    Int(i64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// `null`.
    Null,
    /// Comparison.
    Cmp(urel_relalg::CmpOp, Box<PExpr>, Box<PExpr>),
    /// Integer arithmetic.
    Arith(urel_relalg::ArithOp, Box<PExpr>, Box<PExpr>),
    /// `a and b and c`.
    And(Vec<PExpr>),
    /// `a or b or c`.
    Or(Vec<PExpr>),
    /// `not a`.
    Not(Box<PExpr>),
}
