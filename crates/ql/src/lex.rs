//! The tokenizer: source text → spanned tokens.
//!
//! Keywords are case-insensitive (`FROM` = `from`); identifiers keep
//! their case. Strings are single-quoted with `''` escaping a quote
//! (the SQL convention). Numbers are integers unless they carry a
//! fraction, which only the `confidence` clause accepts.

use crate::ast::Span;
use crate::error::Error;

/// A token kind. Keywords lex as [`Tok::Kw`]; everything the grammar
/// does not reserve is an [`Tok::Ident`].
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Reserved word, lowercased.
    Kw(Kw),
    /// Identifier (relation, alias or attribute name).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Fractional literal (only valid after `confidence`).
    Float(f64),
    /// Single-quoted string literal, unescaped.
    Str(String),
    /// `|`
    Pipe,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=` / `==`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
}

/// The reserved words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Kw {
    From,
    As,
    Where,
    Select,
    Join,
    On,
    Union,
    Possible,
    Certain,
    Confidence,
    Explain,
    And,
    Or,
    Not,
    True,
    False,
    Null,
}

impl Kw {
    fn from_str(s: &str) -> Option<Kw> {
        Some(match s {
            "from" => Kw::From,
            "as" => Kw::As,
            "where" => Kw::Where,
            "select" => Kw::Select,
            "join" => Kw::Join,
            "on" => Kw::On,
            "union" => Kw::Union,
            "possible" => Kw::Possible,
            "certain" => Kw::Certain,
            "confidence" => Kw::Confidence,
            "explain" => Kw::Explain,
            "and" => Kw::And,
            "or" => Kw::Or,
            "not" => Kw::Not,
            "true" => Kw::True,
            "false" => Kw::False,
            "null" => Kw::Null,
            _ => return None,
        })
    }

    /// The keyword's source spelling.
    pub fn text(self) -> &'static str {
        match self {
            Kw::From => "from",
            Kw::As => "as",
            Kw::Where => "where",
            Kw::Select => "select",
            Kw::Join => "join",
            Kw::On => "on",
            Kw::Union => "union",
            Kw::Possible => "possible",
            Kw::Certain => "certain",
            Kw::Confidence => "confidence",
            Kw::Explain => "explain",
            Kw::And => "and",
            Kw::Or => "or",
            Kw::Not => "not",
            Kw::True => "true",
            Kw::False => "false",
            Kw::Null => "null",
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// Where it came from.
    pub span: Span,
}

/// Tokenize `src`. Errors carry the span of the offending byte(s).
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, Error> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        let start = i;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            b'#' => {
                // Comment to end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'|' => {
                toks.push(one(Tok::Pipe, start));
                i += 1;
            }
            b'(' => {
                toks.push(one(Tok::LParen, start));
                i += 1;
            }
            b')' => {
                toks.push(one(Tok::RParen, start));
                i += 1;
            }
            b',' => {
                toks.push(one(Tok::Comma, start));
                i += 1;
            }
            b'.' => {
                toks.push(one(Tok::Dot, start));
                i += 1;
            }
            b'+' => {
                toks.push(one(Tok::Plus, start));
                i += 1;
            }
            b'-' => {
                toks.push(one(Tok::Minus, start));
                i += 1;
            }
            b'*' => {
                toks.push(one(Tok::Star, start));
                i += 1;
            }
            b'/' => {
                toks.push(one(Tok::Slash, start));
                i += 1;
            }
            b'=' => {
                i += if bytes.get(i + 1) == Some(&b'=') {
                    2
                } else {
                    1
                };
                toks.push(spanned(Tok::Eq, start, i));
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    toks.push(spanned(Tok::Ne, start, i));
                } else {
                    return Err(err("`!` is only valid as `!=`", start, start + 1));
                }
            }
            b'<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    i += 2;
                    toks.push(spanned(Tok::Le, start, i));
                }
                Some(&b'>') => {
                    i += 2;
                    toks.push(spanned(Tok::Ne, start, i));
                }
                _ => {
                    i += 1;
                    toks.push(spanned(Tok::Lt, start, i));
                }
            },
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    toks.push(spanned(Tok::Ge, start, i));
                } else {
                    i += 1;
                    toks.push(spanned(Tok::Gt, start, i));
                }
            }
            b'\'' => {
                let mut out = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(err("unterminated string literal", start, i)),
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            out.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            // Advance one whole UTF-8 scalar.
                            let ch = src[i..].chars().next().expect("in-bounds char");
                            out.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                toks.push(spanned(Tok::Str(out), start, i));
            }
            b'0'..=b'9' => {
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let is_float =
                    bytes.get(i) == Some(&b'.') && bytes.get(i + 1).is_some_and(u8::is_ascii_digit);
                if is_float {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text = &src[start..i];
                    let v: f64 = text
                        .parse()
                        .map_err(|_| err("malformed number", start, i))?;
                    toks.push(spanned(Tok::Float(v), start, i));
                } else {
                    let text = &src[start..i];
                    let v: i64 = text
                        .parse()
                        .map_err(|_| err("integer literal out of range", start, i))?;
                    toks.push(spanned(Tok::Int(v), start, i));
                }
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let text = &src[start..i];
                let lower = text.to_ascii_lowercase();
                match Kw::from_str(&lower) {
                    Some(kw) => toks.push(spanned(Tok::Kw(kw), start, i)),
                    None => toks.push(spanned(Tok::Ident(text.to_string()), start, i)),
                }
            }
            _ => {
                let ch = src[i..].chars().next().expect("in-bounds char");
                return Err(err(
                    &format!("unexpected character `{ch}`"),
                    start,
                    start + ch.len_utf8(),
                ));
            }
        }
    }
    Ok(toks)
}

fn one(tok: Tok, start: usize) -> SpannedTok {
    spanned(tok, start, start + 1)
}

fn spanned(tok: Tok, start: usize, end: usize) -> SpannedTok {
    SpannedTok {
        tok,
        span: Span::new(start, end),
    }
}

fn err(message: &str, start: usize, end: usize) -> Error {
    Error::Parse {
        message: message.to_string(),
        span: Span::new(start, end),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_are_case_insensitive_idents_keep_case() {
        assert_eq!(
            kinds("FROM Orders"),
            vec![Tok::Kw(Kw::From), Tok::Ident("Orders".into())]
        );
    }

    #[test]
    fn operators_and_spans() {
        let toks = lex("a <= 10 | b != 'x''y'").unwrap();
        assert_eq!(toks[1].tok, Tok::Le);
        assert_eq!(toks[1].span, Span::new(2, 4));
        assert_eq!(toks[5].tok, Tok::Ne);
        assert_eq!(toks[6].tok, Tok::Str("x'y".into()));
        assert_eq!(toks[6].span, Span::new(15, 21));
    }

    #[test]
    fn numbers_int_vs_float() {
        assert_eq!(kinds("42"), vec![Tok::Int(42)]);
        assert_eq!(kinds("0.05"), vec![Tok::Float(0.05)]);
        // A trailing dot is a Dot token, not a float.
        assert_eq!(kinds("1.x")[1], Tok::Dot);
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("from r # trailing\n| select a"),
            kinds("from r | select a")
        );
    }

    #[test]
    fn bad_bytes_error_with_span() {
        let e = lex("from r ; oops").unwrap_err();
        match e {
            Error::Parse { message, span } => {
                assert!(message.contains('`'), "{message}");
                assert_eq!(span, Span::new(7, 8));
            }
            other => panic!("{other:?}"),
        }
        assert!(lex("'never closed").is_err());
        assert!(lex("a ! b").is_err());
    }
}
