//! The textual query surface for U-relations: a small pipeline
//! language that parses to a spanned AST and lowers to the core
//! algebra of [`urel_core::algebra`].
//!
//! ```text
//! from orders as o
//! | join customers as c on o.cust = c.id
//! | where o.total >= 100
//! | select o.id, c.name
//! | certain confidence 0.05
//! ```
//!
//! A pipeline starts `from` a relation (or a parenthesized
//! sub-pipeline) and applies stages left to right: `where` is σ,
//! `select` is π, `join … on` is ⋈, `union ( … )` is ∪. The optional
//! terminal `possible` / `certain` clause picks the answer mode —
//! possible answers are the default — and `confidence ε` additionally
//! requests a per-tuple Monte-Carlo probability with Hoeffding
//! half-width ε. A leading `explain` returns the optimized physical
//! plan text instead of executing.
//!
//! Every parse and lowering error is named and carries the byte
//! [`Span`] of the offending source text; see [`Error`].
//!
//! [`compile`] is the one-call entry point used by the server:
//! parse + lower, yielding a [`Lowered`] ready for
//! [`urel_core::translate::PreparedDb`].

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod lex;
pub mod lower;
pub mod parse;

pub use ast::{ModeClause, PExpr, PExprKind, Pipeline, Source, Span, Stage, Statement};
pub use error::Error;
pub use lower::{lower, lower_expr, Lowered, QueryMode};
pub use parse::parse;

/// A `Result` specialized to frontend errors.
pub type Result<T> = std::result::Result<T, Error>;

/// Parse and lower `src` in one call.
pub fn compile(src: &str) -> Result<Lowered> {
    lower(&parse(src)?)
}

/// Run a compiled statement against a prepared database, honoring its
/// mode clause. `EXPLAIN` is handled by the caller (it changes the
/// response *shape*, not the evaluation): check [`Lowered::explain`]
/// and call [`urel_core::translate::PreparedDb::explain`] instead.
pub fn execute(
    prepared: &urel_core::translate::PreparedDb<'_>,
    lowered: &Lowered,
) -> Result<Answers> {
    use urel_core::prob::ConfidenceMethod;
    let method = |eps: f64| {
        // ε = sqrt(ln(2/δ) / 2n) with δ = 10⁻⁶, solved for the sample
        // count n that Hoeffding needs for half-width ε. The seed is
        // fixed so the same statement yields the same bytes everywhere
        // (the server-vs-library differential test relies on this).
        const DELTA: f64 = 1e-6;
        const SEED: u64 = 0xC0FF_1DE5;
        let samples = ((2.0f64 / DELTA).ln() / (2.0 * eps * eps)).ceil() as usize;
        ConfidenceMethod::MonteCarlo {
            samples,
            seed: SEED,
        }
    };
    match lowered.mode {
        QueryMode::Possible { confidence: None } => {
            let (rel, stats) = prepared.possible_with_stats(&lowered.query)?;
            Ok(Answers::Plain { rel, stats })
        }
        QueryMode::Certain { confidence: None } => {
            let rel = prepared.certain(&lowered.query)?;
            Ok(Answers::Plain {
                rel,
                stats: Default::default(),
            })
        }
        QueryMode::Possible {
            confidence: Some(eps),
        } => {
            let rows = prepared.possible_with_confidence(&lowered.query, method(eps))?;
            Ok(Answers::WithConfidence { rows })
        }
        QueryMode::Certain {
            confidence: Some(eps),
        } => {
            let rows = prepared.certain_with_confidence(&lowered.query, method(eps))?;
            Ok(Answers::WithConfidence { rows })
        }
    }
}

/// The answers of an executed statement.
#[derive(Debug, Clone)]
pub enum Answers {
    /// Mode without `confidence`: a plain relation of answer tuples.
    Plain {
        /// The answer tuples.
        rel: urel_relalg::Relation,
        /// Execution statistics (zeroed for the `certain` path, which
        /// post-processes outside the tracked executor).
        stats: urel_relalg::ExecStats,
    },
    /// Mode with `confidence ε`: value tuples with their probability.
    WithConfidence {
        /// `(tuple, probability)` pairs.
        rows: Vec<(Vec<urel_relalg::Value>, f64)>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use urel_core::translate::PreparedDb;
    use urel_core::{figure1_database, table};
    use urel_relalg::col;

    #[test]
    fn compile_and_execute_roundtrip() {
        let udb = figure1_database();
        let prepared = PreparedDb::new(&udb);
        let lowered = compile("from r | where id = 1 | select type | possible").unwrap();
        let got = match execute(&prepared, &lowered).unwrap() {
            Answers::Plain { rel, .. } => rel,
            other => panic!("{other:?}"),
        };
        let want = prepared
            .possible(
                &table("r")
                    .select(col("id").eq(urel_relalg::lit_i64(1)))
                    .project(["type"]),
            )
            .unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn explain_passthrough_renders_plan() {
        let udb = figure1_database();
        let prepared = PreparedDb::new(&udb);
        let lowered = compile("explain from r | select id").unwrap();
        assert!(lowered.explain);
        let text = prepared.explain(&lowered.query).unwrap();
        assert!(
            text.contains("project") || text.contains("Project"),
            "{text}"
        );
    }

    #[test]
    fn confidence_mode_returns_probabilities() {
        let udb = figure1_database();
        let prepared = PreparedDb::new(&udb);
        let lowered = compile("from r | select type | possible confidence 0.2").unwrap();
        let rows = match execute(&prepared, &lowered).unwrap() {
            Answers::WithConfidence { rows } => rows,
            other => panic!("{other:?}"),
        };
        assert!(!rows.is_empty());
        for (_, p) in &rows {
            assert!((0.0..=1.0).contains(p), "{p}");
        }
    }
}
