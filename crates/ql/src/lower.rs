//! Lowering: parse tree → the core [`UQuery`] algebra.
//!
//! Lowering is purely structural — name resolution (unknown relations,
//! missing attributes, ambiguous projections) stays in the core
//! translation layer, which already reports those against the catalog.
//! What *is* checked here, each with a named spanned error:
//!
//! - the `possible`/`certain` mode clause must be the **last** stage,
//! - it may only appear at the **top level** (not inside a sub-pipeline
//!   or a `union` arm),
//! - `confidence ε` must satisfy 0 < ε < 1.

use crate::ast::{ModeClause, PExpr, PExprKind, Pipeline, Source, Stage, Statement};
use crate::error::Error;
use urel_core::algebra::{table, table_as, UQuery};
use urel_relalg::{col, Expr, Value};

/// How the answers of a lowered pipeline should be reported.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryMode {
    /// Possible answers (the default when no mode clause is given),
    /// optionally with per-tuple Monte-Carlo confidence of half-width ε.
    Possible {
        /// Hoeffding half-width ε, if requested.
        confidence: Option<f64>,
    },
    /// Certain answers, optionally with Monte-Carlo confidence.
    Certain {
        /// Hoeffding half-width ε, if requested.
        confidence: Option<f64>,
    },
}

/// The result of lowering a [`Statement`].
#[derive(Debug, Clone, PartialEq)]
pub struct Lowered {
    /// The algebra query, ready for [`urel_core::translate::PreparedDb`].
    /// The terminal `poss`/`certain` is *not* encoded here — it is the
    /// executor's choice via [`Lowered::mode`].
    pub query: UQuery,
    /// The answer mode from the pipeline's mode clause.
    pub mode: QueryMode,
    /// Whether the statement asked for `explain`.
    pub explain: bool,
}

/// Lower a parsed statement to the core algebra.
pub fn lower(stmt: &Statement) -> Result<Lowered, Error> {
    let (query, mode) = lower_pipeline(&stmt.pipeline, true)?;
    Ok(Lowered {
        query,
        mode: mode.unwrap_or(QueryMode::Possible { confidence: None }),
        explain: stmt.explain,
    })
}

/// Lower one pipeline. `top_level` controls whether a mode clause is
/// admissible; sub-pipelines return `None` for the mode.
fn lower_pipeline(p: &Pipeline, top_level: bool) -> Result<(UQuery, Option<QueryMode>), Error> {
    let mut q = lower_source(&p.from)?;
    let mut mode = None;
    for (idx, stage) in p.stages.iter().enumerate() {
        if mode.is_some() {
            return Err(Error::Lower {
                message: "`possible`/`certain` must be the last stage of the pipeline".into(),
                span: stage.span(),
            });
        }
        match stage {
            Stage::Where { pred, .. } => {
                q = q.select(lower_expr(pred));
            }
            Stage::Select { cols, .. } => {
                q = q.project(cols.iter().map(|(name, _)| name.clone()));
            }
            Stage::Join { source, on, .. } => {
                let rhs = lower_source(source)?;
                q = q.join(rhs, lower_expr(on));
            }
            Stage::Union { pipeline, .. } => {
                let (rhs, _none) = lower_pipeline(pipeline, false)?;
                q = q.union(rhs);
            }
            Stage::Mode { mode: clause, span } => {
                if !top_level {
                    return Err(Error::Lower {
                        message: "`possible`/`certain` is only allowed on the \
                                  top-level pipeline, not in a subquery"
                            .into(),
                        span: *span,
                    });
                }
                let _ = idx;
                mode = Some(lower_mode(clause, *span)?);
            }
        }
    }
    Ok((q, mode))
}

fn lower_mode(clause: &ModeClause, span: crate::ast::Span) -> Result<QueryMode, Error> {
    let check = |eps: Option<f64>| -> Result<Option<f64>, Error> {
        match eps {
            Some(e) if !(e > 0.0 && e < 1.0) => Err(Error::Lower {
                message: format!("confidence half-width must satisfy 0 < ε < 1, got {e}"),
                span,
            }),
            other => Ok(other),
        }
    };
    Ok(match clause {
        ModeClause::Possible { confidence } => QueryMode::Possible {
            confidence: check(*confidence)?,
        },
        ModeClause::Certain { confidence } => QueryMode::Certain {
            confidence: check(*confidence)?,
        },
    })
}

fn lower_source(src: &Source) -> Result<UQuery, Error> {
    match src {
        Source::Table { name, alias, .. } => Ok(match alias {
            Some(a) => table_as(name.clone(), a.clone()),
            None => table(name.clone()),
        }),
        Source::Sub(p) => {
            let (q, _none) = lower_pipeline(p, false)?;
            Ok(q)
        }
    }
}

/// Lower a parsed scalar expression to the engine's [`Expr`].
pub fn lower_expr(e: &PExpr) -> Expr {
    match &e.kind {
        PExprKind::Col(name) => col(name),
        PExprKind::Int(v) => Expr::Lit(Value::Int(*v)),
        PExprKind::Str(s) => Expr::Lit(Value::interned(s)),
        PExprKind::Bool(b) => Expr::Lit(Value::Bool(*b)),
        PExprKind::Null => Expr::Lit(Value::Null),
        PExprKind::Cmp(op, a, b) => {
            Expr::Cmp(*op, Box::new(lower_expr(a)), Box::new(lower_expr(b)))
        }
        PExprKind::Arith(op, a, b) => {
            Expr::Arith(*op, Box::new(lower_expr(a)), Box::new(lower_expr(b)))
        }
        PExprKind::And(parts) => Expr::and(parts.iter().map(lower_expr)),
        PExprKind::Or(parts) => Expr::or(parts.iter().map(lower_expr)),
        PExprKind::Not(inner) => Expr::Not(Box::new(lower_expr(inner))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use urel_relalg::lit_i64;

    fn low(src: &str) -> Lowered {
        lower(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn lowers_to_builder_equivalent() {
        let got = low("from orders as o | join cust as c on o.cid = c.id \
             | where o.total > 10 | select o.id, c.name");
        let want = table_as("orders", "o")
            .join(table_as("cust", "c"), col("o.cid").eq(col("c.id")))
            .select(col("o.total").gt(lit_i64(10)))
            .project(["o.id", "c.name"]);
        assert_eq!(got.query, want);
        assert_eq!(got.mode, QueryMode::Possible { confidence: None });
    }

    #[test]
    fn mode_clause_and_confidence() {
        let got = low("from r | certain confidence 0.1");
        assert_eq!(
            got.mode,
            QueryMode::Certain {
                confidence: Some(0.1)
            }
        );
        assert_eq!(got.query, table("r"));
    }

    #[test]
    fn union_and_subquery() {
        let got = low("from (from r | where a = 1) | union (from s)");
        let want = table("r").select(col("a").eq(lit_i64(1))).union(table("s"));
        assert_eq!(got.query, want);
    }

    #[test]
    fn mode_not_last_is_named_error() {
        let e = lower(&parse("from r | possible | where a = 1").unwrap()).unwrap_err();
        match e {
            Error::Lower { message, .. } => {
                assert!(message.contains("last stage"), "{message}")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mode_in_subquery_is_named_error() {
        let e = lower(&parse("from r | union (from s | certain)").unwrap()).unwrap_err();
        match e {
            Error::Lower { message, span } => {
                assert!(message.contains("top-level"), "{message}");
                // Span points at the inner `certain`.
                assert_eq!(span.start, 25);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn confidence_range_is_checked() {
        for bad in [
            "from r | possible confidence 0.0",
            "from r | certain confidence 1",
        ] {
            let e = lower(&parse(bad).unwrap()).unwrap_err();
            assert!(e.to_string().contains("0 < ε < 1"), "{e}");
        }
    }
}
