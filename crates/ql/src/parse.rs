//! Recursive-descent parser: tokens → [`Statement`].
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! statement  := [ "explain" ] pipeline
//! pipeline   := "from" source { "|" stage }
//! source     := ident [ "as" ident ] | "(" pipeline ")"
//! stage      := "where" expr
//!             | "select" col { "," col }
//!             | "join" source "on" expr
//!             | "union" "(" pipeline ")"
//!             | ( "possible" | "certain" ) [ "confidence" number ]
//! col        := ident [ "." ident ]
//! expr       := or ; or := and { "or" and } ; and := not { "and" not }
//! not        := "not" not | cmp
//! cmp        := sum [ cmpop sum ]        cmpop := = == != <> < <= > >=
//! sum        := term { ("+"|"-") term } ; term := factor { ("*"|"/") factor }
//! factor     := int | string | "true" | "false" | "null" | col | "(" expr ")"
//! ```
//!
//! Float literals are only legal as the `confidence` argument; the
//! parser names that restriction in its error rather than emitting a
//! generic "unexpected token".

use crate::ast::{ModeClause, PExpr, PExprKind, Pipeline, Source, Span, Stage, Statement};
use crate::error::Error;
use crate::lex::{lex, Kw, SpannedTok, Tok};
use urel_relalg::{ArithOp, CmpOp};

/// Parse one statement from `src`.
pub fn parse(src: &str) -> Result<Statement, Error> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks: &toks,
        pos: 0,
        src_len: src.len(),
    };
    let explain = p.eat_kw(Kw::Explain);
    let pipeline = p.pipeline()?;
    if let Some(t) = p.peek() {
        return Err(p.err_at(
            t.span,
            &format!("expected `|` or end of input, found {}", describe(&t.tok)),
        ));
    }
    Ok(Statement { explain, pipeline })
}

struct Parser<'a> {
    toks: &'a [SpannedTok],
    pos: usize,
    src_len: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a SpannedTok> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<&'a SpannedTok> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// The span errors point at when input ends too early.
    fn eof_span(&self) -> Span {
        Span::new(self.src_len, self.src_len)
    }

    fn err_at(&self, span: Span, message: &str) -> Error {
        Error::Parse {
            message: message.to_string(),
            span,
        }
    }

    fn err_here(&self, expected: &str) -> Error {
        match self.peek() {
            Some(t) => self.err_at(
                t.span,
                &format!("expected {expected}, found {}", describe(&t.tok)),
            ),
            None => self.err_at(
                self.eof_span(),
                &format!("expected {expected}, found end of input"),
            ),
        }
    }

    fn eat_kw(&mut self, kw: Kw) -> bool {
        if matches!(self.peek(), Some(t) if t.tok == Tok::Kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: Kw) -> Result<Span, Error> {
        match self.peek() {
            Some(t) if t.tok == Tok::Kw(kw) => {
                self.pos += 1;
                Ok(t.span)
            }
            _ => Err(self.err_here(&format!("`{}`", kw.text()))),
        }
    }

    fn expect_tok(&mut self, tok: Tok, what: &str) -> Result<Span, Error> {
        match self.peek() {
            Some(t) if t.tok == tok => {
                self.pos += 1;
                Ok(t.span)
            }
            _ => Err(self.err_here(what)),
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<(String, Span), Error> {
        match self.peek() {
            Some(t) => match &t.tok {
                Tok::Ident(name) => {
                    self.pos += 1;
                    Ok((name.clone(), t.span))
                }
                _ => Err(self.err_here(what)),
            },
            None => Err(self.err_here(what)),
        }
    }

    fn pipeline(&mut self) -> Result<Pipeline, Error> {
        let from_span = self.expect_kw(Kw::From)?;
        let from = self.source()?;
        let mut span = from_span.to(from.span());
        let mut stages = Vec::new();
        while self.eat_tok(Tok::Pipe) {
            let stage = self.stage()?;
            span = span.to(stage.span());
            stages.push(stage);
        }
        Ok(Pipeline { from, stages, span })
    }

    fn eat_tok(&mut self, tok: Tok) -> bool {
        if matches!(self.peek(), Some(t) if t.tok == tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn source(&mut self) -> Result<Source, Error> {
        if let Some(t) = self.peek() {
            if t.tok == Tok::LParen {
                let open = t.span;
                self.pos += 1;
                let inner = self.pipeline()?;
                let close = self.expect_tok(Tok::RParen, "`)`")?;
                let mut inner = inner;
                inner.span = open.to(close);
                return Ok(Source::Sub(Box::new(inner)));
            }
        }
        let (name, name_span) = self.expect_ident("a relation name or `(`")?;
        if self.eat_kw(Kw::As) {
            let (alias, alias_span) = self.expect_ident("an alias after `as`")?;
            Ok(Source::Table {
                name,
                alias: Some(alias),
                span: name_span.to(alias_span),
            })
        } else {
            Ok(Source::Table {
                name,
                alias: None,
                span: name_span,
            })
        }
    }

    fn stage(&mut self) -> Result<Stage, Error> {
        let t = match self.peek() {
            Some(t) => t,
            None => return Err(self.err_here("a stage after `|`")),
        };
        match t.tok {
            Tok::Kw(Kw::Where) => {
                let kw = t.span;
                self.pos += 1;
                let pred = self.expr()?;
                let span = kw.to(pred.span);
                Ok(Stage::Where { pred, span })
            }
            Tok::Kw(Kw::Select) => {
                let kw = t.span;
                self.pos += 1;
                let mut cols = Vec::new();
                let first = self.column_name()?;
                let mut span = kw.to(first.1);
                cols.push(first);
                while self.eat_tok(Tok::Comma) {
                    let c = self.column_name()?;
                    span = span.to(c.1);
                    cols.push(c);
                }
                Ok(Stage::Select { cols, span })
            }
            Tok::Kw(Kw::Join) => {
                let kw = t.span;
                self.pos += 1;
                let source = self.source()?;
                self.expect_kw(Kw::On)?;
                let on = self.expr()?;
                let span = kw.to(on.span);
                Ok(Stage::Join { source, on, span })
            }
            Tok::Kw(Kw::Union) => {
                let kw = t.span;
                self.pos += 1;
                self.expect_tok(Tok::LParen, "`(` after `union`")?;
                let pipeline = self.pipeline()?;
                let close = self.expect_tok(Tok::RParen, "`)`")?;
                let span = kw.to(close);
                Ok(Stage::Union { pipeline, span })
            }
            Tok::Kw(Kw::Possible) | Tok::Kw(Kw::Certain) => {
                let certain = t.tok == Tok::Kw(Kw::Certain);
                let kw = t.span;
                self.pos += 1;
                let (confidence, span) = if let Some(c) = self.peek() {
                    if c.tok == Tok::Kw(Kw::Confidence) {
                        self.pos += 1;
                        let (eps, eps_span) = self.number()?;
                        (Some(eps), kw.to(eps_span))
                    } else {
                        (None, kw)
                    }
                } else {
                    (None, kw)
                };
                let mode = if certain {
                    ModeClause::Certain { confidence }
                } else {
                    ModeClause::Possible { confidence }
                };
                Ok(Stage::Mode { mode, span })
            }
            _ => Err(self
                .err_here("a stage (`where`, `select`, `join`, `union`, `possible` or `certain`)")),
        }
    }

    /// A possibly-qualified attribute name, joined with `.`.
    fn column_name(&mut self) -> Result<(String, Span), Error> {
        let (mut name, mut span) = self.expect_ident("an attribute name")?;
        if self.eat_tok(Tok::Dot) {
            let (field, field_span) = self.expect_ident("an attribute name after `.`")?;
            name = format!("{name}.{field}");
            span = span.to(field_span);
        }
        Ok((name, span))
    }

    /// The ε argument of `confidence` — fractional or integral.
    fn number(&mut self) -> Result<(f64, Span), Error> {
        match self.peek() {
            Some(t) => match t.tok {
                Tok::Float(v) => {
                    self.pos += 1;
                    Ok((v, t.span))
                }
                Tok::Int(v) => {
                    self.pos += 1;
                    Ok((v as f64, t.span))
                }
                _ => Err(self.err_here("a number after `confidence`")),
            },
            None => Err(self.err_here("a number after `confidence`")),
        }
    }

    // --- expressions -----------------------------------------------------

    fn expr(&mut self) -> Result<PExpr, Error> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<PExpr, Error> {
        let first = self.and_expr()?;
        if !matches!(self.peek(), Some(t) if t.tok == Tok::Kw(Kw::Or)) {
            return Ok(first);
        }
        let mut span = first.span;
        let mut parts = vec![first];
        while self.eat_kw(Kw::Or) {
            let rhs = self.and_expr()?;
            span = span.to(rhs.span);
            parts.push(rhs);
        }
        Ok(PExpr {
            kind: PExprKind::Or(parts),
            span,
        })
    }

    fn and_expr(&mut self) -> Result<PExpr, Error> {
        let first = self.not_expr()?;
        if !matches!(self.peek(), Some(t) if t.tok == Tok::Kw(Kw::And)) {
            return Ok(first);
        }
        let mut span = first.span;
        let mut parts = vec![first];
        while self.eat_kw(Kw::And) {
            let rhs = self.not_expr()?;
            span = span.to(rhs.span);
            parts.push(rhs);
        }
        Ok(PExpr {
            kind: PExprKind::And(parts),
            span,
        })
    }

    fn not_expr(&mut self) -> Result<PExpr, Error> {
        if let Some(t) = self.peek() {
            if t.tok == Tok::Kw(Kw::Not) {
                let kw = t.span;
                self.pos += 1;
                let inner = self.not_expr()?;
                let span = kw.to(inner.span);
                return Ok(PExpr {
                    kind: PExprKind::Not(Box::new(inner)),
                    span,
                });
            }
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<PExpr, Error> {
        let lhs = self.sum()?;
        let op = match self.peek().map(|t| &t.tok) {
            Some(Tok::Eq) => CmpOp::Eq,
            Some(Tok::Ne) => CmpOp::Ne,
            Some(Tok::Lt) => CmpOp::Lt,
            Some(Tok::Le) => CmpOp::Le,
            Some(Tok::Gt) => CmpOp::Gt,
            Some(Tok::Ge) => CmpOp::Ge,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.sum()?;
        let span = lhs.span.to(rhs.span);
        Ok(PExpr {
            kind: PExprKind::Cmp(op, Box::new(lhs), Box::new(rhs)),
            span,
        })
    }

    fn sum(&mut self) -> Result<PExpr, Error> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek().map(|t| &t.tok) {
                Some(Tok::Plus) => ArithOp::Add,
                Some(Tok::Minus) => ArithOp::Sub,
                _ => return Ok(lhs),
            };
            self.pos += 1;
            let rhs = self.term()?;
            let span = lhs.span.to(rhs.span);
            lhs = PExpr {
                kind: PExprKind::Arith(op, Box::new(lhs), Box::new(rhs)),
                span,
            };
        }
    }

    fn term(&mut self) -> Result<PExpr, Error> {
        let mut lhs = self.factor()?;
        loop {
            let op = match self.peek().map(|t| &t.tok) {
                Some(Tok::Star) => ArithOp::Mul,
                Some(Tok::Slash) => ArithOp::Div,
                _ => return Ok(lhs),
            };
            self.pos += 1;
            let rhs = self.factor()?;
            let span = lhs.span.to(rhs.span);
            lhs = PExpr {
                kind: PExprKind::Arith(op, Box::new(lhs), Box::new(rhs)),
                span,
            };
        }
    }

    fn factor(&mut self) -> Result<PExpr, Error> {
        let t = match self.bump() {
            Some(t) => t,
            None => return Err(self.err_here("an expression")),
        };
        let kind = match &t.tok {
            Tok::Int(v) => PExprKind::Int(*v),
            Tok::Str(s) => PExprKind::Str(s.clone()),
            Tok::Kw(Kw::True) => PExprKind::Bool(true),
            Tok::Kw(Kw::False) => PExprKind::Bool(false),
            Tok::Kw(Kw::Null) => PExprKind::Null,
            Tok::Float(_) => {
                return Err(self.err_at(t.span, "float literals are only valid after `confidence`"))
            }
            Tok::Ident(_) => {
                self.pos -= 1;
                let (name, span) = self.column_name()?;
                return Ok(PExpr {
                    kind: PExprKind::Col(name),
                    span,
                });
            }
            Tok::LParen => {
                let inner = self.expr()?;
                let close = self.expect_tok(Tok::RParen, "`)`")?;
                return Ok(PExpr {
                    kind: inner.kind,
                    span: t.span.to(close),
                });
            }
            Tok::Minus => {
                // Negative integer literal.
                let inner = self.factor()?;
                return match inner.kind {
                    PExprKind::Int(v) => Ok(PExpr {
                        kind: PExprKind::Int(-v),
                        span: t.span.to(inner.span),
                    }),
                    _ => Err(self.err_at(
                        t.span.to(inner.span),
                        "unary `-` applies only to integer literals",
                    )),
                };
            }
            other => {
                return Err(self.err_at(
                    t.span,
                    &format!("expected an expression, found {}", describe(other)),
                ))
            }
        };
        Ok(PExpr { kind, span: t.span })
    }
}

fn describe(tok: &Tok) -> String {
    match tok {
        Tok::Kw(kw) => format!("keyword `{}`", kw.text()),
        Tok::Ident(name) => format!("identifier `{name}`"),
        Tok::Int(v) => format!("integer `{v}`"),
        Tok::Float(v) => format!("number `{v}`"),
        Tok::Str(s) => format!("string '{s}'"),
        Tok::Pipe => "`|`".into(),
        Tok::LParen => "`(`".into(),
        Tok::RParen => "`)`".into(),
        Tok::Comma => "`,`".into(),
        Tok::Dot => "`.`".into(),
        Tok::Eq => "`=`".into(),
        Tok::Ne => "`!=`".into(),
        Tok::Lt => "`<`".into(),
        Tok::Le => "`<=`".into(),
        Tok::Gt => "`>`".into(),
        Tok::Ge => "`>=`".into(),
        Tok::Plus => "`+`".into(),
        Tok::Minus => "`-`".into(),
        Tok::Star => "`*`".into(),
        Tok::Slash => "`/`".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_pipeline() {
        let s = parse("from r").unwrap();
        assert!(!s.explain);
        assert!(s.pipeline.stages.is_empty());
        match &s.pipeline.from {
            Source::Table { name, alias, .. } => {
                assert_eq!(name, "r");
                assert!(alias.is_none());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn full_pipeline_shape() {
        let s = parse(
            "EXPLAIN from orders as o \
             | join customers as c on o.cust = c.id \
             | where o.total >= 100 and not c.vip = true \
             | select o.id, c.name \
             | possible confidence 0.05",
        )
        .unwrap();
        assert!(s.explain);
        assert_eq!(s.pipeline.stages.len(), 4);
        match &s.pipeline.stages[3] {
            Stage::Mode {
                mode: ModeClause::Possible { confidence },
                ..
            } => assert_eq!(*confidence, Some(0.05)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn precedence_or_over_and_over_cmp() {
        let s = parse("from r | where a = 1 and b = 2 or c = 3").unwrap();
        match &s.pipeline.stages[0] {
            Stage::Where { pred, .. } => match &pred.kind {
                PExprKind::Or(parts) => {
                    assert_eq!(parts.len(), 2);
                    assert!(matches!(parts[0].kind, PExprKind::And(_)));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn arith_precedence() {
        let s = parse("from r | where a + b * 2 = 10").unwrap();
        match &s.pipeline.stages[0] {
            Stage::Where { pred, .. } => match &pred.kind {
                PExprKind::Cmp(CmpOp::Eq, lhs, _) => match &lhs.kind {
                    PExprKind::Arith(ArithOp::Add, _, rhs) => {
                        assert!(matches!(rhs.kind, PExprKind::Arith(ArithOp::Mul, _, _)));
                    }
                    other => panic!("{other:?}"),
                },
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn subquery_sources() {
        let s = parse("from (from r | where a = 1) | union (from s)").unwrap();
        assert!(matches!(s.pipeline.from, Source::Sub(_)));
        assert!(matches!(s.pipeline.stages[0], Stage::Union { .. }));
    }

    #[test]
    fn errors_carry_spans() {
        // `select` with no columns.
        let e = parse("from r | select ").unwrap_err();
        match e {
            Error::Parse { message, span } => {
                assert!(message.contains("attribute name"), "{message}");
                assert_eq!(span, Span::new(16, 16));
            }
            other => panic!("{other:?}"),
        }
        // Float outside confidence is a *named* error.
        let e = parse("from r | where a = 1.5").unwrap_err();
        assert!(
            e.to_string().contains("only valid after `confidence`"),
            "{e}"
        );
        // Trailing garbage.
        let e = parse("from r extra").unwrap_err();
        assert!(
            e.to_string().contains("expected `|` or end of input"),
            "{e}"
        );
    }
}
