//! Named frontend errors, each carrying the source span it points at.

use crate::ast::Span;

/// A frontend failure. Parse and lowering errors carry the byte span of
/// the offending source text so clients (the server protocol, editors,
/// the golden tests) can point at it; engine errors wrap the core
/// error unchanged.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The source text did not lex or parse.
    Parse {
        /// What the parser expected or found.
        message: String,
        /// Byte range of the offending text.
        span: Span,
    },
    /// The parse tree is well-formed but cannot lower to the algebra
    /// (mode clause in a subquery, confidence out of range, …).
    Lower {
        /// Why the construct cannot lower.
        message: String,
        /// Byte range of the offending construct.
        span: Span,
    },
    /// An error from the core translation / execution layer.
    Engine(urel_core::Error),
}

urel_relalg::impl_error_boilerplate! {
    Error {
        Parse { message, span } => "parse error at {span}: {message}",
        Lower { message, span } => "lowering error at {span}: {message}",
        Engine(e) => "engine error: {e}",
    }
    source: Engine
}

impl From<urel_core::Error> for Error {
    fn from(e: urel_core::Error) -> Self {
        Error::Engine(e)
    }
}

impl From<urel_relalg::Error> for Error {
    fn from(e: urel_relalg::Error) -> Self {
        Error::Engine(urel_core::Error::from(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_span_and_message() {
        let e = Error::Parse {
            message: "expected `from`".into(),
            span: Span::new(0, 4),
        };
        assert_eq!(e.to_string(), "parse error at 0..4: expected `from`");
        let e = Error::Lower {
            message: "boom".into(),
            span: Span::new(7, 9),
        };
        assert_eq!(e.to_string(), "lowering error at 7..9: boom");
    }
}
