//! `EXPLAIN`-style plan rendering (the Figure 13 analog).
//!
//! Prints the operator tree with the physical strategy the executor will
//! pick (hash vs nested-loop join, key columns, residual filters), the
//! optimizer's row estimates, and — for the streaming engine — whether
//! each node pipelines rows or buffers them. The final line reports the
//! number of intermediate row buffers the streaming executor will
//! allocate ([`crate::exec::predicted_buffers`]), which matches the
//! runtime [`crate::exec::ExecStats::buffers`]: a fully pipelined plan
//! reads `0 intermediate row buffer(s)`.

use crate::catalog::Catalog;
use crate::exec::{join_build_left, predicted_buffers, JoinCondition};
use crate::expr::Expr;
use crate::optimizer::est_rows;
use crate::plan::Plan;
use std::fmt::Write as _;

/// Render a plan as an indented EXPLAIN tree with pipeline annotations
/// and the predicted intermediate-buffer count.
pub fn explain(plan: &Plan, catalog: &Catalog) -> String {
    let mut out = String::new();
    render(plan, catalog, 0, &mut out);
    let buffers = predicted_buffers(plan, catalog);
    let _ = writeln!(out, "-- {buffers} intermediate row buffer(s)");
    out
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    if depth > 0 {
        out.push_str("-> ");
    }
}

/// How the streaming executor treats a buffered join input.
fn side_label(side: &Plan) -> &'static str {
    if side.materialized_source() {
        "zero-copy"
    } else {
        "buffered"
    }
}

fn render(plan: &Plan, catalog: &Catalog, depth: usize, out: &mut String) {
    indent(depth, out);
    let rows = est_rows(plan, catalog);
    match plan {
        Plan::Scan(name) => {
            let _ = writeln!(out, "Seq Scan on {name}  (rows={rows:.0})");
        }
        Plan::Values(rel) => {
            let _ = writeln!(out, "Values  (rows={})", rel.len());
        }
        Plan::Select { input, pred } => {
            let _ = writeln!(out, "Filter: {pred}  (rows≈{rows:.0}) [pipelined]");
            render(input, catalog, depth + 1, out);
        }
        Plan::Project { input, cols } => {
            let names: Vec<String> = cols.iter().map(|(_, n)| n.to_string()).collect();
            let _ = writeln!(
                out,
                "Project [{}]  (rows≈{rows:.0}) [pipelined]",
                names.join(", ")
            );
            render(input, catalog, depth + 1, out);
        }
        Plan::Join { left, right, pred } => {
            let (ls, rs) = (
                left.schema(catalog).unwrap_or_default(),
                right.schema(catalog).unwrap_or_default(),
            );
            let cond = JoinCondition::analyze(pred, &ls, &rs);
            if cond.equi.is_empty() {
                let _ = writeln!(
                    out,
                    "Nested Loop Join  (rows≈{rows:.0}) [streams left, inner {}]",
                    side_label(right)
                );
                if !pred.is_true() {
                    indent(depth + 1, out);
                    let _ = writeln!(out, "Join Filter: {pred}");
                }
            } else {
                let keys: Vec<String> = cond
                    .equi
                    .iter()
                    .map(|(l, r)| format!("{} = {}", ls.columns()[*l], rs.columns()[*r]))
                    .collect();
                let (build, probe) = if join_build_left(left, right, catalog) {
                    ("left", "right")
                } else {
                    ("right", "left")
                };
                let build_side = if build == "left" { left } else { right };
                let _ = writeln!(
                    out,
                    "Hash Join  (rows≈{rows:.0}) [streams {probe} probe, build {build} {}]",
                    side_label(build_side)
                );
                indent(depth + 1, out);
                let _ = writeln!(out, "Hash Cond: ({})", keys.join(") AND ("));
                if !cond.residual.is_empty() {
                    indent(depth + 1, out);
                    let _ = writeln!(out, "Join Filter: {}", Expr::and(cond.residual.clone()));
                }
            }
            render(left, catalog, depth + 1, out);
            render(right, catalog, depth + 1, out);
        }
        Plan::SemiJoin { left, right, pred } => {
            let _ = writeln!(
                out,
                "Hash Semi Join on {pred}  (rows≈{rows:.0}) [streams left, right {}]",
                side_label(right)
            );
            render(left, catalog, depth + 1, out);
            render(right, catalog, depth + 1, out);
        }
        Plan::AntiJoin { left, right, pred } => {
            let _ = writeln!(
                out,
                "Hash Anti Join on {pred}  (rows≈{rows:.0}) [streams left, right {}]",
                side_label(right)
            );
            render(left, catalog, depth + 1, out);
            render(right, catalog, depth + 1, out);
        }
        Plan::Union { left, right } => {
            let _ = writeln!(out, "Append  (rows≈{rows:.0}) [pipelined]");
            render(left, catalog, depth + 1, out);
            render(right, catalog, depth + 1, out);
        }
        Plan::Difference { left, right } => {
            let _ = writeln!(
                out,
                "Except  (rows≈{rows:.0}) [buffers seen-set, right {}]",
                side_label(right)
            );
            render(left, catalog, depth + 1, out);
            render(right, catalog, depth + 1, out);
        }
        Plan::Distinct(input) => {
            let _ = writeln!(
                out,
                "HashAggregate (distinct)  (rows≈{rows:.0}) [buffers seen-set]"
            );
            render(input, catalog, depth + 1, out);
        }
        Plan::Rename { input, alias } => {
            let _ = writeln!(out, "Subquery Alias {alias}  (rows≈{rows:.0}) [pipelined]");
            render(input, catalog, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit_i64};
    use crate::relation::Relation;
    use crate::value::Value;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.insert(
            "r",
            Relation::from_rows(["a", "b"], vec![vec![Value::Int(1), Value::Int(2)]]).unwrap(),
        );
        c.insert(
            "s",
            Relation::from_rows(["c"], vec![vec![Value::Int(1)]]).unwrap(),
        );
        c
    }

    #[test]
    fn explain_shows_hash_join_and_filter() {
        let c = catalog();
        let p = Plan::scan("r")
            .join(
                Plan::scan("s"),
                Expr::and([col("a").eq(col("c")), col("b").gt(lit_i64(0))]),
            )
            .project_names(["b"]);
        let text = explain(&p, &c);
        assert!(text.contains("Hash Join"), "{text}");
        assert!(text.contains("Hash Cond: (a = c)"), "{text}");
        assert!(text.contains("Join Filter"), "{text}");
        assert!(text.contains("Seq Scan on r"), "{text}");
    }

    #[test]
    fn explain_nested_loop_for_theta() {
        let c = catalog();
        let p = Plan::scan("r").join(Plan::scan("s"), col("a").lt(col("c")));
        let text = explain(&p, &c);
        assert!(text.contains("Nested Loop Join"), "{text}");
    }

    #[test]
    fn explain_reports_pipeline_and_buffer_counts() {
        let c = catalog();
        // A fully streaming chain: every node pipelined, zero buffers.
        let p = Plan::scan("r")
            .rename("x")
            .select(col("x.a").gt(lit_i64(0)))
            .join(Plan::scan("s"), col("x.a").eq(col("c")))
            .project_names(["x.b"]);
        let text = explain(&p, &c);
        assert!(
            text.contains("0 intermediate row buffer(s)"),
            "chain should be fully pipelined:\n{text}"
        );
        assert!(text.contains("[pipelined]"), "{text}");
        assert!(text.contains("zero-copy"), "{text}");

        // Distinct breaks the pipeline and the counter says so.
        let text = explain(&p.distinct(), &c);
        assert!(text.contains("[buffers seen-set]"), "{text}");
        assert!(text.contains("1 intermediate row buffer(s)"), "{text}");
    }
}
