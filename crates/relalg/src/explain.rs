//! `EXPLAIN`-style plan rendering (the Figure 13 analog).
//!
//! Prints the operator tree with the physical strategy the executor will
//! pick (hash vs nested-loop join, key columns, residual filters) and the
//! optimizer's row estimates, in a format close to PostgreSQL's.

use crate::catalog::Catalog;
use crate::exec::JoinCondition;
use crate::expr::Expr;
use crate::optimizer::est_rows;
use crate::plan::Plan;
use std::fmt::Write as _;

/// Render a plan as an indented EXPLAIN tree.
pub fn explain(plan: &Plan, catalog: &Catalog) -> String {
    let mut out = String::new();
    render(plan, catalog, 0, &mut out);
    out
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    if depth > 0 {
        out.push_str("-> ");
    }
}

fn render(plan: &Plan, catalog: &Catalog, depth: usize, out: &mut String) {
    indent(depth, out);
    let rows = est_rows(plan, catalog);
    match plan {
        Plan::Scan(name) => {
            let _ = writeln!(out, "Seq Scan on {name}  (rows={rows:.0})");
        }
        Plan::Values(rel) => {
            let _ = writeln!(out, "Values  (rows={})", rel.len());
        }
        Plan::Select { input, pred } => {
            let _ = writeln!(out, "Filter: {pred}  (rows≈{rows:.0})");
            render(input, catalog, depth + 1, out);
        }
        Plan::Project { input, cols } => {
            let names: Vec<String> = cols.iter().map(|(_, n)| n.to_string()).collect();
            let _ = writeln!(out, "Project [{}]  (rows≈{rows:.0})", names.join(", "));
            render(input, catalog, depth + 1, out);
        }
        Plan::Join { left, right, pred } => {
            let (ls, rs) = (
                left.schema(catalog).unwrap_or_default(),
                right.schema(catalog).unwrap_or_default(),
            );
            let cond = JoinCondition::analyze(pred, &ls, &rs);
            if cond.equi.is_empty() {
                let _ = writeln!(out, "Nested Loop Join  (rows≈{rows:.0})");
                if !pred.is_true() {
                    indent(depth + 1, out);
                    let _ = writeln!(out, "Join Filter: {pred}");
                }
            } else {
                let keys: Vec<String> = cond
                    .equi
                    .iter()
                    .map(|(l, r)| format!("{} = {}", ls.columns()[*l], rs.columns()[*r]))
                    .collect();
                let _ = writeln!(out, "Hash Join  (rows≈{rows:.0})");
                indent(depth + 1, out);
                let _ = writeln!(out, "Hash Cond: ({})", keys.join(") AND ("));
                if !cond.residual.is_empty() {
                    indent(depth + 1, out);
                    let _ = writeln!(out, "Join Filter: {}", Expr::and(cond.residual.clone()));
                }
            }
            render(left, catalog, depth + 1, out);
            render(right, catalog, depth + 1, out);
        }
        Plan::SemiJoin { left, right, pred } => {
            let _ = writeln!(out, "Hash Semi Join on {pred}  (rows≈{rows:.0})");
            render(left, catalog, depth + 1, out);
            render(right, catalog, depth + 1, out);
        }
        Plan::AntiJoin { left, right, pred } => {
            let _ = writeln!(out, "Hash Anti Join on {pred}  (rows≈{rows:.0})");
            render(left, catalog, depth + 1, out);
            render(right, catalog, depth + 1, out);
        }
        Plan::Union { left, right } => {
            let _ = writeln!(out, "Append  (rows≈{rows:.0})");
            render(left, catalog, depth + 1, out);
            render(right, catalog, depth + 1, out);
        }
        Plan::Difference { left, right } => {
            let _ = writeln!(out, "Except  (rows≈{rows:.0})");
            render(left, catalog, depth + 1, out);
            render(right, catalog, depth + 1, out);
        }
        Plan::Distinct(input) => {
            let _ = writeln!(out, "HashAggregate (distinct)  (rows≈{rows:.0})");
            render(input, catalog, depth + 1, out);
        }
        Plan::Rename { input, alias } => {
            let _ = writeln!(out, "Subquery Alias {alias}  (rows≈{rows:.0})");
            render(input, catalog, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit_i64};
    use crate::relation::Relation;
    use crate::value::Value;

    #[test]
    fn explain_shows_hash_join_and_filter() {
        let mut c = Catalog::new();
        c.insert(
            "r",
            Relation::from_rows(["a", "b"], vec![vec![Value::Int(1), Value::Int(2)]]).unwrap(),
        );
        c.insert(
            "s",
            Relation::from_rows(["c"], vec![vec![Value::Int(1)]]).unwrap(),
        );
        let p = Plan::scan("r")
            .join(
                Plan::scan("s"),
                Expr::and([col("a").eq(col("c")), col("b").gt(lit_i64(0))]),
            )
            .project_names(["b"]);
        let text = explain(&p, &c);
        assert!(text.contains("Hash Join"), "{text}");
        assert!(text.contains("Hash Cond: (a = c)"), "{text}");
        assert!(text.contains("Join Filter"), "{text}");
        assert!(text.contains("Seq Scan on r"), "{text}");
    }

    #[test]
    fn explain_nested_loop_for_theta() {
        let mut c = Catalog::new();
        c.insert(
            "r",
            Relation::from_rows(["a"], vec![vec![Value::Int(1)]]).unwrap(),
        );
        c.insert(
            "s",
            Relation::from_rows(["c"], vec![vec![Value::Int(1)]]).unwrap(),
        );
        let p = Plan::scan("r").join(Plan::scan("s"), col("a").lt(col("c")));
        let text = explain(&p, &c);
        assert!(text.contains("Nested Loop Join"), "{text}");
    }
}
