//! `EXPLAIN`-style plan rendering (the Figure 13 analog).
//!
//! Prints the operator tree with the physical strategy the executor will
//! pick (hash vs nested-loop join, key columns, residual filters), the
//! optimizer's row estimates, and — for the streaming engine — whether
//! each node pipelines rows or buffers them, and whether its pipeline
//! runs `[batched]` (vectorized over column batches) or `[row]` (the
//! fallback cursor bridge — visible here instead of silent). The final
//! line reports the number of intermediate row buffers the streaming
//! executor will allocate ([`crate::exec::predicted_buffers`]), which
//! matches the runtime [`crate::exec::ExecStats::buffers`]: a fully
//! pipelined plan reads `0 intermediate row buffer(s)`.
//! [`explain_executed`] additionally runs the plan and appends the
//! observed batch count and mean batch fill.

use crate::batch::BATCH_SIZE;
use crate::catalog::{Catalog, StorageMode};
use crate::error::Result;
use crate::exec::{
    batched_pipeline, join_build_left, predicted_buffers, predicted_workers, JoinCondition,
};
use crate::expr::Expr;
use crate::optimizer::est_rows;
use crate::plan::Plan;
use crate::pool::TaskPool;
use std::fmt::Write as _;

/// Render a plan as an indented EXPLAIN tree with pipeline annotations
/// and the predicted intermediate-buffer count. When the morsel-driven
/// engine will fan the root pipeline out, its line is tagged
/// `[parallel xN]` and a footer repeats the worker count (parallel
/// execution is byte-identical to serial — the tag is purely about
/// scheduling).
pub fn explain(plan: &Plan, catalog: &Catalog) -> String {
    let mut out = String::new();
    render(plan, catalog, 0, &mut out);
    let workers = predicted_workers(plan, catalog);
    if workers > 1 {
        // Tag the root pipeline's line (the whole probe spine runs on
        // the workers; breaker builds are separate prepare pipelines).
        if let Some(eol) = out.find('\n') {
            out.insert_str(eol, &format!(" [parallel x{workers}]"));
        }
    }
    let buffers = predicted_buffers(plan, catalog);
    let _ = writeln!(out, "-- {buffers} intermediate row buffer(s)");
    if workers > 1 {
        let _ = writeln!(out, "-- parallel: {workers} worker(s)");
    }
    let budget = catalog.config().mem_budget;
    if budget != usize::MAX {
        let share = worker_share(catalog);
        let _ = writeln!(
            out,
            "-- memory budget: {budget} byte(s) ({share} per worker share)"
        );
    }
    out
}

/// The engine's actual per-worker budget share for this catalog's
/// configuration (delegates to [`TaskPool::share_of`], the single home
/// of that policy — including the one-byte floor for tiny budgets).
fn worker_share(catalog: &Catalog) -> usize {
    TaskPool::new(catalog.config().threads).share_of(catalog.config().mem_budget)
}

/// `EXPLAIN ANALYZE`-style: render the plan, execute it, and append the
/// observed batch count and mean batch fill (rows per batch; the target
/// is [`BATCH_SIZE`]) — plus, for parallel runs, the worker count and
/// per-worker batch counters the gather collected.
pub fn explain_executed(plan: &Plan, catalog: &Catalog) -> Result<String> {
    let mut out = explain(plan, catalog);
    let streamed = crate::exec::stream(plan, catalog)?;
    streamed.collect_rows(None)?;
    let stats = streamed.stats();
    match stats.mean_batch_fill() {
        Some(fill) => {
            let _ = writeln!(
                out,
                "-- {} batch(es), mean fill {:.1}/{} rows",
                stats.batches, fill, BATCH_SIZE
            );
        }
        None => {
            let _ = writeln!(out, "-- no batches emitted (empty result or row path)");
        }
    }
    if stats.workers > 1 {
        let per: Vec<String> = streamed
            .worker_batch_stats()
            .iter()
            .map(|(b, r)| format!("{b} batch(es)/{r} row(s)"))
            .collect();
        let _ = writeln!(
            out,
            "-- executed on {} worker(s): {}",
            stats.workers,
            per.join(", ")
        );
    }
    if stats.spill_events > 0 {
        let _ = writeln!(
            out,
            "-- spilled: {} event(s), ~{} byte(s) to disk (peak tracked {} byte(s))",
            stats.spill_events, stats.spilled_bytes, stats.peak_tracked_bytes
        );
    }
    if stats.segments_scanned + stats.segments_skipped > 0 {
        let _ = writeln!(
            out,
            "-- segments: {} scanned, {} skipped, ~{} byte(s) decoded",
            stats.segments_scanned, stats.segments_skipped, stats.decoded_bytes
        );
    }
    if stats.pages_read + stats.pool_hits + stats.pool_misses > 0 {
        let _ = writeln!(
            out,
            "-- disk: {} page(s) read, buffer pool {} hit(s) / {} miss(es)",
            stats.pages_read, stats.pool_hits, stats.pool_misses
        );
    }
    if stats.faults_injected + stats.retries > 0 || stats.cancelled {
        let _ = writeln!(
            out,
            "-- faults: {} injected, {} retried, cancelled: {}",
            stats.faults_injected, stats.retries, stats.cancelled
        );
    }
    Ok(out)
}

/// The per-node engine tag: will the pipeline rooted here run
/// vectorized, or on the row-cursor fallback? Re-derived per rendered
/// node (quadratic in plan size) — EXPLAIN is a cold, human-facing
/// path; if that ever changes, compute the tags in one top-down pass.
fn engine_tag(plan: &Plan, catalog: &Catalog) -> &'static str {
    if batched_pipeline(plan, catalog) {
        "[batched]"
    } else {
        "[row]"
    }
}

/// Estimated average output-row bytes of a plan: leaf widths come from
/// table statistics ([`crate::stats::TableStats::avg_row_bytes`]);
/// operators transform them structurally (joins concatenate, projections
/// scale by arity).
fn est_row_bytes(plan: &Plan, catalog: &Catalog) -> f64 {
    match plan {
        Plan::Scan(name) => catalog
            .stats(name)
            .map(|s| s.avg_row_bytes())
            .unwrap_or(16.0),
        Plan::Values(rel) => {
            if rel.is_empty() {
                16.0
            } else {
                rel.size_bytes() as f64 / rel.len() as f64
            }
        }
        Plan::Select { input, .. } | Plan::Rename { input, .. } | Plan::Distinct(input) => {
            est_row_bytes(input, catalog)
        }
        Plan::Project { input, cols } => {
            let in_arity = input
                .schema(catalog)
                .map(|s| s.arity())
                .unwrap_or(cols.len())
                .max(1);
            est_row_bytes(input, catalog) * cols.len() as f64 / in_arity as f64
        }
        Plan::Join { left, right, .. } => {
            est_row_bytes(left, catalog) + est_row_bytes(right, catalog)
        }
        Plan::SemiJoin { left, .. }
        | Plan::AntiJoin { left, .. }
        | Plan::Difference { left, .. } => est_row_bytes(left, catalog),
        Plan::Union { left, right } => {
            est_row_bytes(left, catalog).max(est_row_bytes(right, catalog))
        }
    }
}

/// `" [spill]"` when, under the configured memory budget, the breaker
/// buffer holding `side`'s rows is predicted to exceed its per-worker
/// share (48 bytes/row of buffer overhead assumed, mirroring the
/// runtime's footprint estimate). Purely advisory: the runtime decides
/// from actual sizes, and spilling never changes results.
fn spill_tag(side: &Plan, catalog: &Catalog) -> &'static str {
    if catalog.config().mem_budget == usize::MAX || side.materialized_source() {
        // Unbounded — or a zero-copy source build side, which indexes
        // the catalog's storage and never buffers, so it cannot spill.
        return "";
    }
    let share = worker_share(catalog) as f64;
    let bytes = est_rows(side, catalog) * (est_row_bytes(side, catalog) + 48.0);
    if bytes > share {
        " [spill]"
    } else {
        ""
    }
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    if depth > 0 {
        out.push_str("-> ");
    }
}

/// How the streaming executor treats a buffered join input.
fn side_label(side: &Plan) -> &'static str {
    if side.materialized_source() {
        "zero-copy"
    } else {
        "buffered"
    }
}

/// The ` [seg K/M]` / ` [seg M]` annotation of a segmented-storage
/// scan: `M` segments total, of which `K` survive zone-map pruning
/// under the filter directly above the scan (omitted entirely when no
/// conjunct is sargable, and under plain storage). Empty string when
/// the scan won't run segmented.
fn seg_tag(name: &str, catalog: &Catalog, zone_pred: Option<&Expr>) -> String {
    if catalog.config().storage == StorageMode::Plain {
        return String::new();
    }
    let Ok(rel) = catalog.get(name) else {
        return String::new();
    };
    if rel.is_empty() {
        return String::new();
    }
    let mut zone = Vec::new();
    if let Some(compiled) = zone_pred.and_then(|p| p.compile(rel.schema()).ok()) {
        compiled.collect_sargable(&mut zone);
    }
    // Disk-native relations answer from the manifest's zone maps — no
    // page-file access and no in-memory re-encode just to EXPLAIN.
    if let Some(img) = rel.native_disk_image() {
        let total = img.seg_count();
        if zone.is_empty() {
            return format!(" [seg {total}]");
        }
        let kept = (0..total)
            .filter(|&s| {
                zone.iter()
                    .all(|(c, op, lit)| img.zone(*c, s).may_match(*op, lit))
            })
            .count();
        return format!(" [seg {kept}/{total}]");
    }
    let img = rel.segments(catalog.config().segment_rows);
    let total = img.seg_count();
    if zone.is_empty() {
        return format!(" [seg {total}]");
    }
    let kept = (0..total)
        .filter(|&s| {
            zone.iter()
                .all(|(c, op, lit)| img.zone(*c, s).may_match(*op, lit))
        })
        .count();
    format!(" [seg {kept}/{total}]")
}

fn render(plan: &Plan, catalog: &Catalog, depth: usize, out: &mut String) {
    render_zone(plan, catalog, depth, out, None);
}

/// [`render`] with the filter predicate directly above the node, so a
/// scan can report its zone-map pruning prospects.
fn render_zone(
    plan: &Plan,
    catalog: &Catalog,
    depth: usize,
    out: &mut String,
    zone_pred: Option<&Expr>,
) {
    indent(depth, out);
    let rows = est_rows(plan, catalog);
    let tag = engine_tag(plan, catalog);
    match plan {
        Plan::Scan(name) => {
            let seg = seg_tag(name, catalog, zone_pred);
            let _ = writeln!(out, "Seq Scan on {name}  (rows={rows:.0}) {tag}{seg}");
        }
        Plan::Values(rel) => {
            let _ = writeln!(out, "Values  (rows={}) {tag}", rel.len());
        }
        Plan::Select { input, pred } => {
            let _ = writeln!(out, "Filter: {pred}  (rows≈{rows:.0}) [pipelined] {tag}");
            render_zone(input, catalog, depth + 1, out, Some(pred));
        }
        Plan::Project { input, cols } => {
            let names: Vec<String> = cols.iter().map(|(_, n)| n.to_string()).collect();
            let _ = writeln!(
                out,
                "Project [{}]  (rows≈{rows:.0}) [pipelined] {tag}",
                names.join(", ")
            );
            render(input, catalog, depth + 1, out);
        }
        Plan::Join { left, right, pred } => {
            let (ls, rs) = (
                left.schema(catalog).unwrap_or_default(),
                right.schema(catalog).unwrap_or_default(),
            );
            let cond = JoinCondition::analyze(pred, &ls, &rs);
            if cond.equi.is_empty() {
                let _ = writeln!(
                    out,
                    "Nested Loop Join  (rows≈{rows:.0}) [streams left, inner {}] {tag}",
                    side_label(right)
                );
                if !pred.is_true() {
                    indent(depth + 1, out);
                    let _ = writeln!(out, "Join Filter: {pred}");
                }
            } else {
                let keys: Vec<String> = cond
                    .equi
                    .iter()
                    .map(|(l, r)| format!("{} = {}", ls.columns()[*l], rs.columns()[*r]))
                    .collect();
                let (build, probe) = if join_build_left(left, right, catalog) {
                    ("left", "right")
                } else {
                    ("right", "left")
                };
                let build_side = if build == "left" { left } else { right };
                let _ = writeln!(
                    out,
                    "Hash Join  (rows≈{rows:.0}) [streams {probe} probe, build {build} {}] {tag}{}",
                    side_label(build_side),
                    spill_tag(build_side, catalog)
                );
                indent(depth + 1, out);
                let _ = writeln!(out, "Hash Cond: ({})", keys.join(") AND ("));
                if !cond.residual.is_empty() {
                    indent(depth + 1, out);
                    let _ = writeln!(out, "Join Filter: {}", Expr::and(cond.residual.clone()));
                }
            }
            render(left, catalog, depth + 1, out);
            render(right, catalog, depth + 1, out);
        }
        Plan::SemiJoin { left, right, pred } => {
            let _ = writeln!(
                out,
                "Hash Semi Join on {pred}  (rows≈{rows:.0}) [streams left, right {}] {tag}",
                side_label(right)
            );
            render(left, catalog, depth + 1, out);
            render(right, catalog, depth + 1, out);
        }
        Plan::AntiJoin { left, right, pred } => {
            let _ = writeln!(
                out,
                "Hash Anti Join on {pred}  (rows≈{rows:.0}) [streams left, right {}] {tag}",
                side_label(right)
            );
            render(left, catalog, depth + 1, out);
            render(right, catalog, depth + 1, out);
        }
        Plan::Union { left, right } => {
            let _ = writeln!(out, "Append  (rows≈{rows:.0}) [pipelined] {tag}");
            render(left, catalog, depth + 1, out);
            render(right, catalog, depth + 1, out);
        }
        Plan::Difference { left, right } => {
            let _ = writeln!(
                out,
                "Except  (rows≈{rows:.0}) [buffers seen-set, right {}] {tag}{}",
                side_label(right),
                spill_tag(plan, catalog)
            );
            render(left, catalog, depth + 1, out);
            render(right, catalog, depth + 1, out);
        }
        Plan::Distinct(input) => {
            let _ = writeln!(
                out,
                "HashAggregate (distinct)  (rows≈{rows:.0}) [buffers seen-set] {tag}{}",
                spill_tag(plan, catalog)
            );
            render(input, catalog, depth + 1, out);
        }
        Plan::Rename { input, alias } => {
            let _ = writeln!(
                out,
                "Subquery Alias {alias}  (rows≈{rows:.0}) [pipelined] {tag}"
            );
            render(input, catalog, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit_i64};
    use crate::relation::Relation;
    use crate::value::Value;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.insert(
            "r",
            Relation::from_rows(["a", "b"], vec![vec![Value::Int(1), Value::Int(2)]]).unwrap(),
        );
        c.insert(
            "s",
            Relation::from_rows(["c"], vec![vec![Value::Int(1)]]).unwrap(),
        );
        c
    }

    #[test]
    fn explain_shows_hash_join_and_filter() {
        let c = catalog();
        let p = Plan::scan("r")
            .join(
                Plan::scan("s"),
                Expr::and([col("a").eq(col("c")), col("b").gt(lit_i64(0))]),
            )
            .project_names(["b"]);
        let text = explain(&p, &c);
        assert!(text.contains("Hash Join"), "{text}");
        assert!(text.contains("Hash Cond: (a = c)"), "{text}");
        assert!(text.contains("Join Filter"), "{text}");
        assert!(text.contains("Seq Scan on r"), "{text}");
    }

    #[test]
    fn explain_nested_loop_for_theta() {
        let c = catalog();
        let p = Plan::scan("r").join(Plan::scan("s"), col("a").lt(col("c")));
        let text = explain(&p, &c);
        assert!(text.contains("Nested Loop Join"), "{text}");
    }

    #[test]
    fn explain_reports_pipeline_and_buffer_counts() {
        let c = catalog();
        // A fully streaming chain: every node pipelined, zero buffers.
        let p = Plan::scan("r")
            .rename("x")
            .select(col("x.a").gt(lit_i64(0)))
            .join(Plan::scan("s"), col("x.a").eq(col("c")))
            .project_names(["x.b"]);
        let text = explain(&p, &c);
        assert!(
            text.contains("0 intermediate row buffer(s)"),
            "chain should be fully pipelined:\n{text}"
        );
        assert!(text.contains("[pipelined]"), "{text}");
        assert!(text.contains("zero-copy"), "{text}");

        // Distinct breaks the pipeline and the counter says so.
        let text = explain(&p.distinct(), &c);
        assert!(text.contains("[buffers seen-set]"), "{text}");
        assert!(text.contains("1 intermediate row buffer(s)"), "{text}");
    }

    #[test]
    fn explain_tags_batched_vs_row_pipelines() {
        let c = catalog();
        // A hash-join chain runs batched on every node.
        let p = Plan::scan("r")
            .select(col("a").gt(lit_i64(0)))
            .join(Plan::scan("s"), col("a").eq(col("c")));
        let text = explain(&p, &c);
        assert!(text.contains("[batched]"), "{text}");
        assert!(!text.contains("[row]"), "{text}");
        // Theta joins run the pair-batch evaluator: no [row] tags left,
        // on the nested loop or above it.
        let theta = Plan::scan("r")
            .join(Plan::scan("s"), col("a").lt(col("c")))
            .select(col("b").gt(lit_i64(0)));
        let text = explain(&theta, &c);
        assert!(text.contains("Nested Loop Join"), "{text}");
        assert!(!text.contains("[row]"), "{text}");
        assert!(text.contains("Seq Scan on r  (rows=1) [batched]"), "{text}");
    }

    #[test]
    fn explain_tags_parallel_pipelines() {
        use crate::batch::BATCH_SIZE;
        // A big enough relation with a parallel engine configuration:
        // the root line gets the [parallel xN] tag, the footer names the
        // workers, and explain_executed reports per-worker counters.
        let mut c = Catalog::new();
        c.insert(
            "big",
            Relation::from_rows(
                ["a"],
                (0..(4 * BATCH_SIZE as i64))
                    .map(|i| vec![Value::Int(i)])
                    .collect::<Vec<_>>(),
            )
            .unwrap(),
        );
        c.set_threads(2);
        c.set_parallel_granularity(BATCH_SIZE, 0);
        let p = Plan::scan("big").select(col("a").ge(lit_i64(0)));
        let text = explain(&p, &c);
        assert!(text.contains("[parallel x2]"), "{text}");
        assert!(text.contains("-- parallel: 2 worker(s)"), "{text}");
        let text = explain_executed(&p, &c).unwrap();
        assert!(text.contains("executed on 2 worker(s)"), "{text}");
        // Serial configurations stay untagged.
        let mut serial = c.clone();
        serial.set_threads(1);
        let text = explain(&p, &serial);
        assert!(!text.contains("parallel"), "{text}");
    }

    #[test]
    fn explain_tags_spilling_breakers_under_a_budget() {
        use crate::catalog::EngineConfig;
        let mut c = Catalog::new().with_config(EngineConfig::serial());
        // Start explicitly unbounded even when the test process runs
        // under RELALG_MEM_BUDGET (as the CI mem-budget leg does).
        c.set_mem_budget(0);
        c.insert(
            "big",
            Relation::from_rows(
                ["a", "b"],
                (0..4096i64)
                    .map(|i| vec![Value::Int(i), Value::Int(i % 7)])
                    .collect::<Vec<_>>(),
            )
            .unwrap(),
        );
        let p = Plan::scan("big").project_names(["a"]).distinct();
        // Unbounded: no spill tag, no budget footer.
        let text = explain(&p, &c);
        assert!(!text.contains("[spill]"), "{text}");
        assert!(!text.contains("memory budget"), "{text}");
        // A tiny budget predicts the seen-set over its share.
        c.set_mem_budget(512);
        let text = explain(&p, &c);
        assert!(text.contains("[spill]"), "{text}");
        assert!(text.contains("memory budget: 512 byte(s)"), "{text}");
        // The executed report shows what actually spilled.
        let text = explain_executed(&p, &c).unwrap();
        assert!(text.contains("-- spilled:"), "{text}");
        // A budget generous enough for this plan predicts no spill.
        c.set_mem_budget(64 << 20);
        let text = explain(&p, &c);
        assert!(!text.contains("[spill]"), "{text}");
    }

    #[test]
    fn explain_tags_segmented_scans_with_zone_pruning() {
        let mut c = Catalog::new().with_config(crate::catalog::EngineConfig::serial());
        c.set_storage(StorageMode::Segmented);
        c.set_segment_layout(4, 2);
        c.insert(
            "t",
            Relation::from_rows(
                ["a"],
                (0..16i64).map(|i| vec![Value::Int(i)]).collect::<Vec<_>>(),
            )
            .unwrap(),
        );
        // Bare scan: total segment count only.
        let text = explain(&Plan::scan("t"), &c);
        assert!(
            text.contains("Seq Scan on t  (rows=16) [batched] [seg 4]"),
            "{text}"
        );
        // A selective sargable filter prunes: rows 0..4 live in segment
        // 0 of 4.
        let p = Plan::scan("t").select(col("a").lt(lit_i64(4)));
        let text = explain(&p, &c);
        assert!(text.contains("[seg 1/4]"), "{text}");
        // The executed report counts actual segment traffic.
        let text = explain_executed(&p, &c).unwrap();
        assert!(text.contains("-- segments: 1 scanned, 3 skipped"), "{text}");
        // Plain storage: no seg annotations anywhere.
        let mut plain = c.clone();
        plain.set_storage(StorageMode::Plain);
        let text = explain_executed(&p, &plain).unwrap();
        assert!(!text.contains("[seg"), "{text}");
        assert!(!text.contains("-- segments:"), "{text}");
    }

    #[test]
    fn explain_executed_reports_batch_fill() {
        let c = catalog();
        let p = Plan::scan("r").select(col("a").gt(lit_i64(0)));
        let text = explain_executed(&p, &c).unwrap();
        assert!(text.contains("mean fill"), "{text}");
        // An empty result emits no batches and says so.
        let theta = Plan::scan("r").join(Plan::scan("s"), col("a").lt(col("c")));
        let text = explain_executed(&theta, &c).unwrap();
        assert!(text.contains("no batches emitted"), "{text}");
        assert!(explain_executed(&Plan::scan("nope"), &c).is_err());
    }
}
