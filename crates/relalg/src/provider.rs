//! Image providers: the seam between segmented storage and scans.
//!
//! An [`ImageProvider`] hands scan cursors decoded segments of one
//! relation's [`SegmentedImage`]. The two implementations trade memory
//! for decode work:
//!
//! * [`MemImageProvider`] decodes each segment at most once and keeps it
//!   resident — the segmented analog of the plain in-memory image;
//! * [`PagedImageProvider`] keeps at most `cap` decoded segments behind
//!   a clock (second-chance) eviction cache, so the decoded *working
//!   set*, not the table, is what occupies memory; cold segments are
//!   re-decoded on return.
//!
//! Providers are created per scan node at prepare time and shared by
//! all workers of that scan, so decode work is deduplicated across
//! morsels while queries never observe each other's cache state.

use crate::catalog::StorageMode;
use crate::segment::{DecodedSegment, SegmentedImage};
use std::fmt::Debug;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Serves decoded segments of one [`SegmentedImage`] to scan cursors.
pub trait ImageProvider: Send + Sync + Debug {
    /// The compressed image being served.
    fn image(&self) -> &Arc<SegmentedImage>;

    /// A decoded view of segment `seg`. Every *fresh* decode adds the
    /// segment's materialized size to `decoded_bytes` (cache hits add
    /// nothing), which is how [`crate::exec::ExecStats`] observes decode
    /// traffic and cache effectiveness.
    fn segment(&self, seg: usize, decoded_bytes: &AtomicUsize) -> Arc<DecodedSegment>;
}

/// Decode-once, keep-forever provider: segment `s` is decoded by the
/// first cursor that touches it and stays resident for the query.
pub struct MemImageProvider {
    image: Arc<SegmentedImage>,
    decoded: Mutex<Vec<Option<Arc<DecodedSegment>>>>,
}

impl MemImageProvider {
    /// Provider over `image` with an empty decode cache.
    pub fn new(image: Arc<SegmentedImage>) -> Self {
        let slots = image.seg_count();
        MemImageProvider {
            image,
            decoded: Mutex::new(vec![None; slots]),
        }
    }
}

impl Debug for MemImageProvider {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemImageProvider")
            .field("segments", &self.image.seg_count())
            .finish()
    }
}

impl ImageProvider for MemImageProvider {
    fn image(&self) -> &Arc<SegmentedImage> {
        &self.image
    }

    fn segment(&self, seg: usize, decoded_bytes: &AtomicUsize) -> Arc<DecodedSegment> {
        let mut slots = self.decoded.lock().expect("decode cache");
        if let Some(d) = &slots[seg] {
            return Arc::clone(d);
        }
        let d = Arc::new(self.image.decode(seg));
        decoded_bytes.fetch_add(d.bytes, Ordering::Relaxed);
        slots[seg] = Some(Arc::clone(&d));
        d
    }
}

/// One clock-cache slot: a decoded segment plus its reference bit.
struct ClockSlot {
    seg: usize,
    dec: Arc<DecodedSegment>,
    referenced: bool,
}

/// Bounded provider: at most `cap` decoded segments stay resident,
/// evicted by the clock (second-chance) policy — the hand sweeps slots,
/// clearing reference bits, and evicts the first slot found cold. Scans
/// touching a segment set its bit, so segments shared by concurrent
/// morsels survive the sweep. Decoding happens under the cache lock:
/// simple, and exactly one worker pays each decode (the others block
/// briefly and then hit).
pub struct PagedImageProvider {
    image: Arc<SegmentedImage>,
    cap: usize,
    clock: Mutex<(Vec<ClockSlot>, usize)>,
}

impl PagedImageProvider {
    /// Provider over `image` keeping at most `cap` (floored at 1)
    /// decoded segments resident.
    pub fn new(image: Arc<SegmentedImage>, cap: usize) -> Self {
        PagedImageProvider {
            image,
            cap: cap.max(1),
            clock: Mutex::new((Vec::new(), 0)),
        }
    }
}

impl Debug for PagedImageProvider {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedImageProvider")
            .field("segments", &self.image.seg_count())
            .field("cap", &self.cap)
            .finish()
    }
}

impl ImageProvider for PagedImageProvider {
    fn image(&self) -> &Arc<SegmentedImage> {
        &self.image
    }

    fn segment(&self, seg: usize, decoded_bytes: &AtomicUsize) -> Arc<DecodedSegment> {
        let mut guard = self.clock.lock().expect("segment cache");
        let (slots, hand) = &mut *guard;
        if let Some(slot) = slots.iter_mut().find(|s| s.seg == seg) {
            slot.referenced = true;
            return Arc::clone(&slot.dec);
        }
        let dec = Arc::new(self.image.decode(seg));
        decoded_bytes.fetch_add(dec.bytes, Ordering::Relaxed);
        if slots.len() < self.cap {
            slots.push(ClockSlot {
                seg,
                dec: Arc::clone(&dec),
                referenced: true,
            });
        } else {
            // Sweep until a cold slot turns up; every slot loses its
            // reference bit on the way past, so the sweep terminates
            // within two revolutions.
            loop {
                let slot = &mut slots[*hand];
                if slot.referenced {
                    slot.referenced = false;
                    *hand = (*hand + 1) % slots.len();
                } else {
                    *slot = ClockSlot {
                        seg,
                        dec: Arc::clone(&dec),
                        referenced: true,
                    };
                    *hand = (*hand + 1) % slots.len();
                    break;
                }
            }
        }
        dec
    }
}

/// The provider the engine's configuration asks for.
/// [`StorageMode::Plain`] never reaches a provider (scans use the plain
/// image directly), so it maps to the resident provider for callers
/// that want one anyway.
pub fn provider_for(
    image: Arc<SegmentedImage>,
    mode: StorageMode,
    cap: usize,
) -> Arc<dyn ImageProvider> {
    match mode {
        StorageMode::Paged => Arc::new(PagedImageProvider::new(image, cap)),
        StorageMode::Plain | StorageMode::Segmented => Arc::new(MemImageProvider::new(image)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn image(rows: usize, seg_rows: usize) -> Arc<SegmentedImage> {
        let rows: Vec<crate::relation::Row> = (0..rows)
            .map(|i| vec![Value::Int(i as i64)].into_boxed_slice())
            .collect();
        Arc::new(SegmentedImage::build(1, &rows, seg_rows))
    }

    #[test]
    fn mem_provider_decodes_each_segment_once() {
        let p = MemImageProvider::new(image(10, 4));
        let bytes = AtomicUsize::new(0);
        let a = p.segment(0, &bytes);
        let after_first = bytes.load(Ordering::Relaxed);
        assert!(after_first > 0);
        let b = p.segment(0, &bytes);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(bytes.load(Ordering::Relaxed), after_first); // cache hit
        assert_eq!(a.start, 0);
        assert_eq!(a.len, 4);
        assert_eq!(p.segment(2, &bytes).len, 2); // tail segment
    }

    #[test]
    fn paged_provider_evicts_cold_segments() {
        let p = PagedImageProvider::new(image(12, 4), 2);
        let bytes = AtomicUsize::new(0);
        p.segment(0, &bytes);
        p.segment(1, &bytes);
        let full = bytes.load(Ordering::Relaxed);
        // Hits don't decode.
        p.segment(0, &bytes);
        assert_eq!(bytes.load(Ordering::Relaxed), full);
        // A third segment evicts one of the two; touring all three with
        // cap 2 forces re-decodes.
        p.segment(2, &bytes);
        p.segment(0, &bytes);
        p.segment(1, &bytes);
        assert!(bytes.load(Ordering::Relaxed) > full);
        // Values still come back correct after eviction churn.
        let d = p.segment(1, &bytes);
        assert_eq!(d.cols[0].get(0), Value::Int(4));
    }

    #[test]
    fn factory_picks_by_mode() {
        let img = image(4, 2);
        assert!(format!(
            "{:?}",
            provider_for(Arc::clone(&img), StorageMode::Paged, 2)
        )
        .contains("Paged"));
        assert!(format!("{:?}", provider_for(img, StorageMode::Segmented, 2)).contains("Mem"));
    }
}
