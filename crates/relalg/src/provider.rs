//! Image providers: the seam between segmented storage and scans.
//!
//! An [`ImageProvider`] hands scan cursors decoded segments of one
//! relation's image — in-memory compressed segments or on-disk segment
//! files — behind a layout interface (`seg_rows`/`zone`) so the cursor
//! never needs to know where the bytes live. The implementations trade
//! memory for decode/IO work:
//!
//! * [`MemImageProvider`] decodes each segment at most once and keeps it
//!   resident — the segmented analog of the plain in-memory image;
//! * [`PagedImageProvider`] keeps at most `cap` decoded segments behind
//!   a clock (second-chance) eviction cache, so the decoded *working
//!   set*, not the table, is what occupies memory; cold segments are
//!   re-decoded on return;
//! * [`crate::store::DiskImageProvider`] reads encoded segments from a
//!   page file through a [`crate::store::BufferPool`] shared across
//!   relations.
//!
//! Providers are created per scan node at prepare time and shared by
//! all workers of that scan, so decode work is deduplicated across
//! morsels while queries never observe each other's cache state.
//!
//! **Locking discipline:** no provider ever decodes (or reads disk)
//! while holding its cache lock. A miss registers the segment as
//! *in-flight*, releases the lock, pays the decode, then re-locks to
//! install the result; concurrent workers asking for the same segment
//! wait on a condvar instead of duplicating the decode, and workers
//! asking for *different* segments proceed entirely in parallel.

use crate::catalog::StorageMode;
use crate::error::Result;
use crate::fault::{self, FaultInjector, FaultKind};
use crate::segment::{DecodedSegment, SegmentedImage, ZoneMap};
use std::fmt::Debug;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Storage-side counters shared by every cursor of one execution:
/// bytes materialized by fresh decodes, pages read from segment files,
/// and buffer-pool hit/miss tallies. Atomics because parallel morsel
/// workers bump them concurrently. Also carries the execution's fault
/// injector (if any) down to the storage edges — read and lease faults
/// draw their ticks through here.
#[derive(Debug, Default)]
pub struct IoCounters {
    /// Approximate bytes materialized by fresh segment decodes (cache
    /// and pool hits add nothing).
    pub decoded_bytes: AtomicUsize,
    /// 4 KiB pages read from on-disk segment files.
    pub pages_read: AtomicUsize,
    /// Buffer-pool lookups served by a resident segment.
    pub pool_hits: AtomicUsize,
    /// Buffer-pool lookups that had to read and decode from disk.
    pub pool_misses: AtomicUsize,
    /// The execution's fault injector, `None` when faults are disabled.
    faults: Option<Arc<FaultInjector>>,
}

impl IoCounters {
    /// Counters wired to an execution's fault injector.
    pub fn with_faults(faults: Option<Arc<FaultInjector>>) -> IoCounters {
        IoCounters {
            faults,
            ..IoCounters::default()
        }
    }

    /// The fault injector drawn by this execution's storage edges.
    pub fn faults(&self) -> Option<&FaultInjector> {
        self.faults.as_deref()
    }

    /// Record a fresh decode of `bytes` materialized bytes.
    pub fn decoded(&self, bytes: usize) {
        self.decoded_bytes.fetch_add(bytes, Ordering::Relaxed);
    }
}

/// Serves decoded segments of one relation image to scan cursors.
///
/// The layout accessors (`seg_rows`, `seg_count`, `zone`) expose just
/// enough of the image for a cursor to walk segment boundaries and
/// consult zone maps without decoding — identically for in-memory and
/// on-disk backends.
pub trait ImageProvider: Send + Sync + Debug {
    /// Rows per segment (the last segment may be short).
    fn seg_rows(&self) -> usize;

    /// Number of segments.
    fn seg_count(&self) -> usize;

    /// The zone map of (column `col`, segment `seg`).
    fn zone(&self, col: usize, seg: usize) -> &ZoneMap;

    /// A decoded view of segment `seg`. Every *fresh* decode adds the
    /// segment's materialized size to `io.decoded_bytes` (cache hits add
    /// nothing), which is how [`crate::exec::ExecStats`] observes decode
    /// traffic and cache effectiveness; disk-backed providers also
    /// account pages read and pool hits/misses. Fallible: disk reads
    /// can fail for real, and the paged/disk lease and read edges draw
    /// from `io`'s fault injector when one is configured.
    fn segment(&self, seg: usize, io: &IoCounters) -> Result<Arc<DecodedSegment>>;
}

/// Decode-once, keep-forever provider: segment `s` is decoded by the
/// first cursor that touches it and stays resident for the query.
pub struct MemImageProvider {
    image: Arc<SegmentedImage>,
    decoded: Mutex<Vec<Option<Arc<DecodedSegment>>>>,
}

impl MemImageProvider {
    /// Provider over `image` with an empty decode cache.
    pub fn new(image: Arc<SegmentedImage>) -> Self {
        let slots = image.seg_count();
        MemImageProvider {
            image,
            decoded: Mutex::new(vec![None; slots]),
        }
    }
}

impl Debug for MemImageProvider {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemImageProvider")
            .field("segments", &self.image.seg_count())
            .finish()
    }
}

impl ImageProvider for MemImageProvider {
    fn seg_rows(&self) -> usize {
        self.image.seg_rows()
    }

    fn seg_count(&self) -> usize {
        self.image.seg_count()
    }

    fn zone(&self, col: usize, seg: usize) -> &ZoneMap {
        self.image.zone(col, seg)
    }

    fn segment(&self, seg: usize, io: &IoCounters) -> Result<Arc<DecodedSegment>> {
        // A resident segment is a pure lock-and-clone; a miss decodes
        // under the lock. That is fine *here*: the cache is unbounded,
        // so each segment is decoded exactly once per provider and a
        // blocked peer would only have re-decoded the same segment.
        let mut slots = fault::lock_recover(&self.decoded);
        if let Some(d) = &slots[seg] {
            return Ok(Arc::clone(d));
        }
        let d = Arc::new(self.image.decode(seg));
        io.decoded(d.bytes);
        slots[seg] = Some(Arc::clone(&d));
        Ok(d)
    }
}

/// One clock-cache slot: a decoded segment plus its reference bit.
struct ClockSlot {
    seg: usize,
    dec: Arc<DecodedSegment>,
    referenced: bool,
}

/// Clock-cache state: the resident slots, the sweep hand, and the
/// segments currently being decoded outside the lock.
struct PagedState {
    slots: Vec<ClockSlot>,
    hand: usize,
    /// Segments some worker is decoding right now (lock released). A
    /// worker wanting one of these waits on the condvar instead of
    /// duplicating the decode. Tiny (≤ worker count), so a Vec beats a
    /// set.
    in_flight: Vec<usize>,
}

/// Bounded provider: at most `cap` decoded segments stay resident,
/// evicted by the clock (second-chance) policy — the hand sweeps slots,
/// clearing reference bits, and evicts the first slot found cold. Scans
/// touching a segment set its bit, so segments shared by concurrent
/// morsels survive the sweep.
///
/// Decoding happens *outside* the cache lock: a miss marks the segment
/// in-flight, releases the lock, decodes, then re-locks to install.
/// Exactly one worker pays each decode (peers wanting the same segment
/// wait on the latch), and workers on other segments are never
/// serialized behind it — which matters even more once the "decode" is
/// a disk read.
pub struct PagedImageProvider {
    image: Arc<SegmentedImage>,
    cap: usize,
    state: Mutex<PagedState>,
    cv: Condvar,
    /// Test-only decode gate, called with the segment id after the lock
    /// is released and before the decode happens. Lets concurrency tests
    /// hold one decode open while proving others proceed.
    #[cfg(test)]
    gate: Option<Arc<dyn Fn(usize) + Send + Sync>>,
}

impl PagedImageProvider {
    /// Provider over `image` keeping at most `cap` (floored at 1)
    /// decoded segments resident.
    pub fn new(image: Arc<SegmentedImage>, cap: usize) -> Self {
        PagedImageProvider {
            image,
            cap: cap.max(1),
            state: Mutex::new(PagedState {
                slots: Vec::new(),
                hand: 0,
                in_flight: Vec::new(),
            }),
            cv: Condvar::new(),
            #[cfg(test)]
            gate: None,
        }
    }

    #[cfg(test)]
    fn with_gate(
        image: Arc<SegmentedImage>,
        cap: usize,
        gate: Arc<dyn Fn(usize) + Send + Sync>,
    ) -> Self {
        PagedImageProvider {
            gate: Some(gate),
            ..PagedImageProvider::new(image, cap)
        }
    }

    /// Install a freshly decoded segment into the clock cache (lock
    /// held). The sweep clears reference bits on the way past, so it
    /// terminates within two revolutions.
    fn install(state: &mut PagedState, cap: usize, seg: usize, dec: &Arc<DecodedSegment>) {
        if state.slots.len() < cap {
            state.slots.push(ClockSlot {
                seg,
                dec: Arc::clone(dec),
                referenced: true,
            });
            return;
        }
        loop {
            let slot = &mut state.slots[state.hand];
            if slot.referenced {
                slot.referenced = false;
                state.hand = (state.hand + 1) % state.slots.len();
            } else {
                *slot = ClockSlot {
                    seg,
                    dec: Arc::clone(dec),
                    referenced: true,
                };
                state.hand = (state.hand + 1) % state.slots.len();
                break;
            }
        }
    }
}

impl Debug for PagedImageProvider {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedImageProvider")
            .field("segments", &self.image.seg_count())
            .field("cap", &self.cap)
            .finish()
    }
}

impl ImageProvider for PagedImageProvider {
    fn seg_rows(&self) -> usize {
        self.image.seg_rows()
    }

    fn seg_count(&self) -> usize {
        self.image.seg_count()
    }

    fn zone(&self, col: usize, seg: usize) -> &ZoneMap {
        self.image.zone(col, seg)
    }

    fn segment(&self, seg: usize, io: &IoCounters) -> Result<Arc<DecodedSegment>> {
        // The lease edge: under paged storage this is the injectable
        // fault point (decodes themselves are in-memory and infallible).
        fault::retry_io(io.faults(), || {
            fault::inject(io.faults(), FaultKind::Lease, "lease segment-cache slot")
        })
        .map_err(|e| fault::io_error("lease segment-cache slot", &e))?;
        let mut state = fault::lock_recover(&self.state);
        loop {
            if let Some(slot) = state.slots.iter_mut().find(|s| s.seg == seg) {
                slot.referenced = true;
                return Ok(Arc::clone(&slot.dec));
            }
            if state.in_flight.contains(&seg) {
                // Someone else is decoding exactly this segment: wait
                // for the install instead of decoding it twice. After
                // waking, re-check the cache — under heavy eviction the
                // segment may already be gone again, in which case this
                // worker becomes the decoder.
                state = self
                    .cv
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            } else {
                break;
            }
        }
        state.in_flight.push(seg);
        drop(state);
        // Remove the latch and wake peers on every exit — including an
        // unwind out of the decode — so no failure wedges this segment.
        struct Latch<'a> {
            provider: &'a PagedImageProvider,
            seg: usize,
        }
        impl Drop for Latch<'_> {
            fn drop(&mut self) {
                let mut state = fault::lock_recover(&self.provider.state);
                state.in_flight.retain(|&s| s != self.seg);
                drop(state);
                self.provider.cv.notify_all();
            }
        }
        let _latch = Latch {
            provider: self,
            seg,
        };
        // The decode itself runs with no lock held: workers on other
        // segments hit or decode concurrently.
        #[cfg(test)]
        if let Some(gate) = &self.gate {
            gate(seg);
        }
        let dec = Arc::new(self.image.decode(seg));
        io.decoded(dec.bytes);
        let mut state = fault::lock_recover(&self.state);
        Self::install(&mut state, self.cap, seg, &dec);
        drop(state);
        Ok(dec)
    }
}

/// The provider the engine's configuration asks for.
/// [`StorageMode::Plain`] never reaches a provider (scans use the plain
/// image directly), so it maps to the resident provider for callers
/// that want one anyway. [`StorageMode::Disk`] is not constructible
/// from an in-memory image — disk scans build a
/// [`crate::store::DiskImageProvider`] from the relation's segment
/// files instead — so it maps to the paged provider here.
pub fn provider_for(
    image: Arc<SegmentedImage>,
    mode: StorageMode,
    cap: usize,
) -> Arc<dyn ImageProvider> {
    match mode {
        StorageMode::Paged | StorageMode::Disk => Arc::new(PagedImageProvider::new(image, cap)),
        StorageMode::Plain | StorageMode::Segmented => Arc::new(MemImageProvider::new(image)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use std::sync::atomic::AtomicBool;
    use std::sync::mpsc;
    use std::sync::Barrier;
    use std::time::Duration;

    fn image(rows: usize, seg_rows: usize) -> Arc<SegmentedImage> {
        let rows: Vec<crate::relation::Row> = (0..rows)
            .map(|i| vec![Value::Int(i as i64)].into_boxed_slice())
            .collect();
        Arc::new(SegmentedImage::build(1, &rows, seg_rows))
    }

    #[test]
    fn mem_provider_decodes_each_segment_once() {
        let p = MemImageProvider::new(image(10, 4));
        let io = IoCounters::default();
        let a = p.segment(0, &io).unwrap();
        let after_first = io.decoded_bytes.load(Ordering::Relaxed);
        assert!(after_first > 0);
        let b = p.segment(0, &io).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(io.decoded_bytes.load(Ordering::Relaxed), after_first); // cache hit
        assert_eq!(a.start, 0);
        assert_eq!(a.len, 4);
        assert_eq!(p.segment(2, &io).unwrap().len, 2); // tail segment
        assert_eq!(p.seg_rows(), 4);
        assert_eq!(p.seg_count(), 3);
        assert_eq!(p.zone(0, 0).min, Value::Int(0));
    }

    #[test]
    fn paged_provider_evicts_cold_segments() {
        let p = PagedImageProvider::new(image(12, 4), 2);
        let io = IoCounters::default();
        p.segment(0, &io).unwrap();
        p.segment(1, &io).unwrap();
        let full = io.decoded_bytes.load(Ordering::Relaxed);
        // Hits don't decode.
        p.segment(0, &io).unwrap();
        assert_eq!(io.decoded_bytes.load(Ordering::Relaxed), full);
        // A third segment evicts one of the two; touring all three with
        // cap 2 forces re-decodes.
        p.segment(2, &io).unwrap();
        p.segment(0, &io).unwrap();
        p.segment(1, &io).unwrap();
        assert!(io.decoded_bytes.load(Ordering::Relaxed) > full);
        // Values still come back correct after eviction churn.
        let d = p.segment(1, &io).unwrap();
        assert_eq!(d.cols[0].get(0), Value::Int(4));
    }

    #[test]
    fn factory_picks_by_mode() {
        let img = image(4, 2);
        assert!(format!(
            "{:?}",
            provider_for(Arc::clone(&img), StorageMode::Paged, 2)
        )
        .contains("Paged"));
        assert!(format!("{:?}", provider_for(img, StorageMode::Segmented, 2)).contains("Mem"));
    }

    /// The in-flight latch dedups concurrent decodes: 4 workers racing
    /// over every segment of one provider (capacity ≥ segment count, so
    /// nothing is ever evicted) decode each segment exactly once —
    /// total decoded bytes equal one full tour of the image.
    #[test]
    fn concurrent_workers_decode_each_segment_once() {
        let img = image(64, 4);
        let segs = img.seg_count();
        let one_tour: usize = (0..segs).map(|s| img.decode(s).bytes).sum();
        let p = Arc::new(PagedImageProvider::new(Arc::clone(&img), segs));
        let io = Arc::new(IoCounters::default());
        let barrier = Arc::new(Barrier::new(4));
        let workers: Vec<_> = (0..4)
            .map(|w| {
                let (p, io, barrier) = (Arc::clone(&p), Arc::clone(&io), Arc::clone(&barrier));
                std::thread::spawn(move || {
                    barrier.wait();
                    for i in 0..segs {
                        // Different starting offsets maximize overlap on
                        // different segments at any instant.
                        let seg = (i + w * segs / 4) % segs;
                        let d = p.segment(seg, &io).unwrap();
                        assert_eq!(d.start, seg * 4);
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(
            io.decoded_bytes.load(Ordering::Relaxed),
            one_tour,
            "latch failed: some segment was decoded more than once"
        );
    }

    /// Decodes must not serialize the whole cache: while one worker is
    /// stuck mid-decode of segment 0 (held open by the test gate), a
    /// second worker must still complete a *hit* on an already-resident
    /// segment. If decoding ever moves back under the cache lock, the
    /// second worker blocks and this test fails by timeout instead of
    /// hanging the suite.
    #[test]
    fn decode_does_not_hold_the_cache_lock() {
        let entered = Arc::new((Mutex::new(false), Condvar::new()));
        let release = Arc::new(AtomicBool::new(false));
        let gate = {
            let entered = Arc::clone(&entered);
            let release = Arc::clone(&release);
            Arc::new(move |seg: usize| {
                if seg == 0 {
                    let (flag, cv) = &*entered;
                    *flag.lock().unwrap() = true;
                    cv.notify_all();
                    while !release.load(Ordering::Acquire) {
                        std::thread::yield_now();
                    }
                }
            })
        };
        let p = Arc::new(PagedImageProvider::with_gate(image(12, 4), 3, gate));
        let io = Arc::new(IoCounters::default());
        // Make segment 1 resident before anything blocks.
        p.segment(1, &io).unwrap();
        let blocked = {
            let (p, io) = (Arc::clone(&p), Arc::clone(&io));
            std::thread::spawn(move || p.segment(0, &io).unwrap())
        };
        // Wait until the blocked worker is inside the decode (lock
        // released, gate held).
        {
            let (flag, cv) = &*entered;
            let mut flag = flag.lock().unwrap();
            while !*flag {
                flag = cv.wait(flag).unwrap();
            }
        }
        // A hit on segment 1 must complete while the decode is stuck.
        let (tx, rx) = mpsc::channel();
        let hitter = {
            let (p, io) = (Arc::clone(&p), Arc::clone(&io));
            std::thread::spawn(move || {
                let d = p.segment(1, &io).unwrap();
                tx.send(d.start).unwrap();
            })
        };
        let start = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("hit on a resident segment serialized behind an in-flight decode");
        assert_eq!(start, 4);
        release.store(true, Ordering::Release);
        assert_eq!(blocked.join().unwrap().start, 0);
        hitter.join().unwrap();
    }

    /// Two workers asking for the *same* in-flight segment: the second
    /// waits on the latch and reuses the first worker's decode (exactly
    /// one decode total), rather than duplicating it.
    #[test]
    fn same_segment_waiters_share_one_decode() {
        let entered = Arc::new((Mutex::new(0usize), Condvar::new()));
        let release = Arc::new(AtomicBool::new(false));
        let gate = {
            let entered = Arc::clone(&entered);
            let release = Arc::clone(&release);
            Arc::new(move |_seg: usize| {
                let (count, cv) = &*entered;
                *count.lock().unwrap() += 1;
                cv.notify_all();
                while !release.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            })
        };
        let p = Arc::new(PagedImageProvider::with_gate(image(8, 4), 2, gate));
        let io = Arc::new(IoCounters::default());
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let (p, io) = (Arc::clone(&p), Arc::clone(&io));
                std::thread::spawn(move || p.segment(0, &io).unwrap())
            })
            .collect();
        // Exactly one worker reaches the decode; the other parks on the
        // latch. (Give the loser a moment to park, then release.)
        {
            let (count, cv) = &*entered;
            let mut count = count.lock().unwrap();
            while *count == 0 {
                count = cv.wait(count).unwrap();
            }
            assert_eq!(*count, 1, "both workers entered the decode");
        }
        std::thread::sleep(Duration::from_millis(50));
        {
            let (count, _) = &*entered;
            assert_eq!(*count.lock().unwrap(), 1, "latch let a duplicate decode in");
        }
        release.store(true, Ordering::Release);
        let decs: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
        assert!(Arc::ptr_eq(&decs[0], &decs[1]), "waiter got its own decode");
        let one = p.image.decode(0).bytes;
        assert_eq!(io.decoded_bytes.load(Ordering::Relaxed), one);
    }
}
