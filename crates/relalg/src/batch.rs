//! Column-major batches for the vectorized executor.
//!
//! A [`ColumnBatch`] is the unit of work flowing through the batched
//! cursor tree (`exec`): up to [`BATCH_SIZE`] logical rows held as one
//! [`BatchCol`] per output column. Columns are zero-copy wherever the
//! data already exists in a relation's cached [`ColumnarImage`]:
//!
//! * a scan emits [`BatchCol::Slice`] — a contiguous window of a shared
//!   column, the best case for vectorized kernels;
//! * a filter narrows a batch to a *selection vector* ([`BatchCol::View`]):
//!   the surviving row indices, shared (`Arc`) across every column that
//!   aliases the same source — no values move;
//! * a projection that only reorders columns is a pointer shuffle;
//! * a hash-join probe emits probe-side columns re-selected by match
//!   position and build-side columns as views of the build relation's
//!   image — both sides zero-copy;
//! * a segmented-storage scan emits [`BatchCol::Shared`] — the same
//!   contiguous-window shape as a slice, but holding an `Arc` to the
//!   decoded segment column so eviction can't pull storage out from
//!   under an in-flight batch (narrowed to [`BatchCol::SharedView`]);
//! * only computed expressions ([`BatchCol::Owned`]) and literal padding
//!   ([`BatchCol::Const`]) own their values.
//!
//! Row-major materialization happens once, at the consumer.

use crate::relation::{Column, ColumnarImage, Row};
use crate::value::Value;
use std::sync::Arc;

/// Target number of logical rows per batch. Large enough to amortize
/// per-batch dispatch into tight per-column loops, small enough that a
/// batch's selection vectors and masks stay cache-resident.
pub const BATCH_SIZE: usize = 1024;

/// One column of a batch.
#[derive(Clone, Debug)]
pub enum BatchCol<'a> {
    /// Rows `[start, start + batch.len)` of a shared column.
    Slice { col: &'a Column, start: usize },
    /// Arbitrary row picks of a shared column; `sel[pos]` is the row
    /// index of logical position `pos`. The selection vector is `Arc`-
    /// shared across columns selected the same way.
    View { col: &'a Column, sel: Arc<[u32]> },
    /// Dense computed values: position `pos` is row `pos` (`Arc` so a
    /// projection can reference the same computed column twice without
    /// deep-copying it).
    Owned(Arc<Column>),
    /// Every row holds the same value (projection literals — the union
    /// translation's padding columns never materialize).
    Const(Value),
    /// Like [`BatchCol::Slice`], but over an owning handle: decoded
    /// storage segments aren't borrowed from a relation's image, so the
    /// batch keeps them alive itself (the provider's cache slot may be
    /// evicted while the batch is in flight).
    Shared { col: Arc<Column>, start: usize },
    /// Like [`BatchCol::View`], over an owning handle — what a
    /// [`BatchCol::Shared`] column becomes under compact/gather.
    SharedView { col: Arc<Column>, sel: Arc<[u32]> },
}

impl BatchCol<'_> {
    /// The value at logical position `pos` (clones).
    #[inline]
    pub fn value(&self, pos: usize) -> Value {
        match self {
            BatchCol::Slice { col, start } => col.get(start + pos),
            BatchCol::View { col, sel } => col.get(sel[pos] as usize),
            BatchCol::Owned(col) => col.get(pos),
            BatchCol::Const(v) => v.clone(),
            BatchCol::Shared { col, start } => col.get(start + pos),
            BatchCol::SharedView { col, sel } => col.get(sel[pos] as usize),
        }
    }

    /// The backing column and row index for `pos`, when the column is a
    /// view of shared storage (`None` for owned/const data).
    #[inline]
    pub fn shared_at(&self, pos: usize) -> Option<(&Column, usize)> {
        match self {
            BatchCol::Slice { col, start } => Some((col, start + pos)),
            BatchCol::View { col, sel } => Some((col, sel[pos] as usize)),
            BatchCol::Shared { col, start } => Some((col, start + pos)),
            BatchCol::SharedView { col, sel } => Some((col, sel[pos] as usize)),
            BatchCol::Owned(_) | BatchCol::Const(_) => None,
        }
    }
}

/// A column-major batch of `len` logical rows.
#[derive(Debug)]
pub struct ColumnBatch<'a> {
    /// One entry per output column.
    pub cols: Vec<BatchCol<'a>>,
    /// Number of logical rows (kept explicitly: a projection may produce
    /// zero columns, and `Const` columns carry no length).
    pub len: usize,
}

impl<'a> ColumnBatch<'a> {
    /// A batch with no columns (zero-arity relations).
    pub fn empty(len: usize) -> ColumnBatch<'a> {
        ColumnBatch {
            cols: Vec::new(),
            len,
        }
    }

    /// A full-width contiguous window `[start, start + len)` over an image.
    pub fn slice_of(image: &'a ColumnarImage, start: usize, len: usize) -> ColumnBatch<'a> {
        ColumnBatch {
            cols: image
                .cols()
                .iter()
                .map(|col| BatchCol::Slice { col, start })
                .collect(),
            len,
        }
    }

    /// An owned batch materialized from row storage: one dense
    /// [`BatchCol::Owned`] column per attribute, compacted to typed
    /// storage where the values allow. This is how spilled operators
    /// re-enter the vectorized pipeline — rows merged back from disk
    /// runs become ordinary batches for downstream kernels.
    pub fn from_rows(rows: &[Row], arity: usize) -> ColumnBatch<'a> {
        let mut cols: Vec<Vec<Value>> = vec![Vec::with_capacity(rows.len()); arity];
        for row in rows {
            for (c, v) in cols.iter_mut().zip(row.iter()) {
                c.push(v.clone());
            }
        }
        ColumnBatch {
            cols: cols
                .into_iter()
                .map(|v| BatchCol::Owned(Arc::new(Column::from_values(v))))
                .collect(),
            len: rows.len(),
        }
    }

    /// Number of logical rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The value at (column, position) (clones).
    #[inline]
    pub fn value(&self, col: usize, pos: usize) -> Value {
        self.cols[col].value(pos)
    }

    /// Materialize logical row `pos`.
    pub fn row(&self, pos: usize) -> Row {
        self.cols
            .iter()
            .map(|c| c.value(pos))
            .collect::<Vec<_>>()
            .into_boxed_slice()
    }

    /// Keep only the positions where `keep` is true, preserving order.
    ///
    /// View columns narrow by rewriting their selection vectors — value
    /// storage is untouched — with the rewritten vector shared across
    /// all columns that aliased the same selection (or the same slice
    /// window). Owned columns compact their values.
    pub fn compact(&mut self, keep: &[bool]) {
        debug_assert_eq!(keep.len(), self.len);
        let kept: Vec<u32> = (0..self.len as u32).filter(|&p| keep[p as usize]).collect();
        self.gather(&kept);
    }

    /// Replace the batch's rows by the logical positions in `take`
    /// (repeats allowed — a join probe emits one entry per match).
    pub fn gather(&mut self, take: &[u32]) {
        // Selection vectors are rewritten once per *distinct* source
        // selection and shared: slices key by their window start, views
        // by their old selection's allocation.
        let mut by_start: Vec<(usize, Arc<[u32]>)> = Vec::new();
        let mut by_sel: Vec<(*const u32, Arc<[u32]>)> = Vec::new();
        for c in &mut self.cols {
            match c {
                BatchCol::Slice { col, start } => {
                    let start = *start;
                    let sel = match by_start.iter().find(|(k, _)| *k == start) {
                        Some((_, s)) => Arc::clone(s),
                        None => {
                            let s: Arc<[u32]> =
                                take.iter().map(|&p| (start + p as usize) as u32).collect();
                            by_start.push((start, Arc::clone(&s)));
                            s
                        }
                    };
                    *c = BatchCol::View { col, sel };
                }
                BatchCol::View { col, sel } => {
                    let old = Arc::clone(sel);
                    let key = Arc::as_ptr(&old) as *const u32;
                    let new = match by_sel.iter().find(|(k, _)| *k == key) {
                        Some((_, s)) => Arc::clone(s),
                        None => {
                            let s: Arc<[u32]> = take.iter().map(|&p| old[p as usize]).collect();
                            by_sel.push((key, Arc::clone(&s)));
                            s
                        }
                    };
                    *c = BatchCol::View { col, sel: new };
                }
                BatchCol::Shared { col, start } => {
                    // Same rewrite as a slice, but the result keeps the
                    // owning handle alive.
                    let start = *start;
                    let sel = match by_start.iter().find(|(k, _)| *k == start) {
                        Some((_, s)) => Arc::clone(s),
                        None => {
                            let s: Arc<[u32]> =
                                take.iter().map(|&p| (start + p as usize) as u32).collect();
                            by_start.push((start, Arc::clone(&s)));
                            s
                        }
                    };
                    *c = BatchCol::SharedView {
                        col: Arc::clone(col),
                        sel,
                    };
                }
                BatchCol::SharedView { col, sel } => {
                    let old = Arc::clone(sel);
                    let key = Arc::as_ptr(&old) as *const u32;
                    let new = match by_sel.iter().find(|(k, _)| *k == key) {
                        Some((_, s)) => Arc::clone(s),
                        None => {
                            let s: Arc<[u32]> = take.iter().map(|&p| old[p as usize]).collect();
                            by_sel.push((key, Arc::clone(&s)));
                            s
                        }
                    };
                    *c = BatchCol::SharedView {
                        col: Arc::clone(col),
                        sel: new,
                    };
                }
                BatchCol::Owned(col) => {
                    *col = Arc::new(gather_owned(col, take));
                }
                BatchCol::Const(_) => {}
            }
        }
        self.len = take.len();
    }
}

fn gather_owned(col: &Column, take: &[u32]) -> Column {
    match col {
        Column::Int(v) => Column::Int(take.iter().map(|&p| v[p as usize]).collect()),
        Column::Str(v) => Column::Str(take.iter().map(|&p| Arc::clone(&v[p as usize])).collect()),
        Column::IntN(v, m) => {
            let mut mask = crate::relation::NullMask::new(take.len());
            for (i, &p) in take.iter().enumerate() {
                if m.is_null(p as usize) {
                    mask.set_null(i);
                }
            }
            Column::IntN(take.iter().map(|&p| v[p as usize]).collect(), mask)
        }
        Column::StrN(v, m) => {
            let mut mask = crate::relation::NullMask::new(take.len());
            for (i, &p) in take.iter().enumerate() {
                if m.is_null(p as usize) {
                    mask.set_null(i);
                }
            }
            Column::StrN(
                take.iter().map(|&p| Arc::clone(&v[p as usize])).collect(),
                mask,
            )
        }
        Column::Mixed(v) => Column::Mixed(take.iter().map(|&p| v[p as usize].clone()).collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;

    fn image_rel() -> Relation {
        Relation::from_rows(
            ["a", "s"],
            (0..6)
                .map(|i| vec![Value::Int(i), Value::str(format!("v{i}"))])
                .collect::<Vec<_>>(),
        )
        .unwrap()
    }

    #[test]
    fn slice_view_and_values() {
        let rel = image_rel();
        let b = ColumnBatch::slice_of(rel.columns(), 2, 3);
        assert_eq!(b.len(), 3);
        assert_eq!(b.value(0, 0), Value::Int(2));
        assert_eq!(b.value(1, 2), Value::str("v4"));
        assert_eq!(b.row(1).as_ref(), &[Value::Int(3), Value::str("v3")]);
    }

    #[test]
    fn compact_shares_rewritten_selections() {
        let rel = image_rel();
        let mut b = ColumnBatch::slice_of(rel.columns(), 0, 6);
        b.compact(&[true, false, true, false, false, true]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.value(0, 1), Value::Int(2));
        assert_eq!(b.value(1, 2), Value::str("v5"));
        // Both columns came from the same slice window: they must share
        // one rewritten selection vector.
        let (BatchCol::View { sel: s0, .. }, BatchCol::View { sel: s1, .. }) =
            (&b.cols[0], &b.cols[1])
        else {
            panic!("compacted slices become views");
        };
        assert!(Arc::ptr_eq(s0, s1));
        // Compacting again rewrites the shared vector once more.
        b.compact(&[false, true, true]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.value(0, 0), Value::Int(2));
        assert_eq!(b.value(0, 1), Value::Int(5));
    }

    #[test]
    fn gather_repeats_and_owned_and_const() {
        let rel = image_rel();
        let mut b = ColumnBatch::slice_of(rel.columns(), 0, 4);
        b.cols
            .push(BatchCol::Owned(Arc::new(Column::Int(vec![10, 11, 12, 13]))));
        b.cols.push(BatchCol::Const(Value::str("pad")));
        b.gather(&[3, 0, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.value(0, 0), Value::Int(3));
        assert_eq!(b.value(0, 1), Value::Int(0));
        assert_eq!(b.value(2, 0), Value::Int(13));
        assert_eq!(b.value(2, 2), Value::Int(13));
        assert_eq!(b.value(3, 1), Value::str("pad"));
    }

    #[test]
    fn shared_columns_survive_gather_and_keep_storage_alive() {
        let decoded = Arc::new(Column::Int(vec![7, 8, 9, 10]));
        let strs = Arc::new(Column::Str(
            (0..4)
                .map(|i| crate::value::intern(&format!("s{i}")))
                .collect(),
        ));
        let mut b = ColumnBatch {
            cols: vec![
                BatchCol::Shared {
                    col: Arc::clone(&decoded),
                    start: 1,
                },
                BatchCol::Shared {
                    col: Arc::clone(&strs),
                    start: 1,
                },
            ],
            len: 3,
        };
        assert_eq!(b.value(0, 0), Value::Int(8));
        let (shared_col, shared_idx) = b.cols[0].shared_at(2).expect("shared storage");
        assert!(std::ptr::eq(shared_col, decoded.as_ref()));
        assert_eq!(shared_idx, 3);
        b.gather(&[2, 0, 2]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.value(0, 0), Value::Int(10));
        assert_eq!(b.value(1, 1), Value::str("s1"));
        // Both shared columns windowed the same start: the rewritten
        // selection is shared, and the columns stay owning views.
        let (BatchCol::SharedView { sel: s0, .. }, BatchCol::SharedView { sel: s1, col }) =
            (&b.cols[0], &b.cols[1])
        else {
            panic!("gathered shared columns become shared views");
        };
        assert!(Arc::ptr_eq(s0, s1));
        assert!(Arc::ptr_eq(col, &strs));
        // Dropping the external handles leaves the batch self-sufficient.
        drop(decoded);
        drop(strs);
        b.gather(&[1]);
        assert_eq!(b.value(0, 0), Value::Int(8));
    }

    #[test]
    fn gather_owned_carries_null_masks() {
        let int = Column::from_values(vec![Value::Int(1), Value::Null, Value::Int(3)]);
        let strs = Column::from_values(vec![Value::str("a"), Value::str("b"), Value::Null]);
        let mut b = ColumnBatch {
            cols: vec![
                BatchCol::Owned(Arc::new(int)),
                BatchCol::Owned(Arc::new(strs)),
            ],
            len: 3,
        };
        b.gather(&[2, 1, 1, 0]);
        assert_eq!(b.len(), 4);
        assert_eq!(b.value(0, 0), Value::Int(3));
        assert_eq!(b.value(0, 1), Value::Null);
        assert_eq!(b.value(0, 3), Value::Int(1));
        assert_eq!(b.value(1, 0), Value::Null);
        assert_eq!(b.value(1, 2), Value::str("b"));
    }

    #[test]
    fn empty_batch_has_rows_without_columns() {
        let b = ColumnBatch::empty(5);
        assert_eq!(b.len(), 5);
        assert_eq!(b.row(3).len(), 0);
    }
}
