//! Materialized relations with shared row storage.

use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// A row: a boxed slice of values (two words on the stack, no spare
/// capacity — see the perf guide on boxed slices).
pub type Row = Box<[Value]>;

/// A materialized relation: a schema plus rows, bag semantics.
///
/// Rows live behind an `Arc`, so cloning a relation — and in particular
/// re-qualifying its schema for a rename — shares storage instead of
/// deep-copying tuples. Mutators ([`Relation::push`],
/// [`Relation::dedup_in_place`]) are copy-on-write: they are free while
/// the storage is unshared (the builder phase) and fork the rows only if
/// someone else still holds them.
///
/// The engine is operator-at-a-time: every operator consumes and produces
/// relations, with [`crate::exec::execute`] handing out `Arc<Relation>`
/// so scans alias the catalog instead of copying it. Set semantics is
/// opt-in via [`Relation::sorted_set`] / `Plan::Distinct`, which is how
/// the `poss` operator and the test oracles normalize results.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Relation {
    schema: Schema,
    rows: Arc<Vec<Row>>,
}

impl Relation {
    /// Empty relation over a schema.
    pub fn empty(schema: Schema) -> Self {
        Relation {
            schema,
            rows: Arc::new(Vec::new()),
        }
    }

    /// Relation from parts; every row must match the schema arity.
    pub fn new(schema: Schema, rows: Vec<Row>) -> Result<Self> {
        for r in &rows {
            if r.len() != schema.arity() {
                return Err(Error::ArityMismatch {
                    expected: schema.arity(),
                    got: r.len(),
                });
            }
        }
        Ok(Relation {
            schema,
            rows: Arc::new(rows),
        })
    }

    /// Relation over `schema` sharing another relation's row storage
    /// (the zero-copy rename: arities must agree, no tuple is touched).
    pub fn shared_with_schema(&self, schema: Schema) -> Result<Self> {
        if schema.arity() != self.schema.arity() {
            return Err(Error::ArityMismatch {
                expected: self.schema.arity(),
                got: schema.arity(),
            });
        }
        Ok(Relation {
            schema,
            rows: Arc::clone(&self.rows),
        })
    }

    /// Convenience constructor from unqualified column names and value rows.
    pub fn from_rows<S: AsRef<str>>(
        names: impl IntoIterator<Item = S>,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> Result<Self> {
        let schema = Schema::named(names);
        let rows = rows
            .into_iter()
            .map(|r| r.into_boxed_slice())
            .collect::<Vec<_>>();
        Relation::new(schema, rows)
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterate rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// `true` iff both relations alias the same row storage (used by the
    /// zero-copy tests; content equality is `==` / [`Relation::set_eq`]).
    pub fn shares_rows_with(&self, other: &Relation) -> bool {
        Arc::ptr_eq(&self.rows, &other.rows)
    }

    /// `true` iff this relation is the sole owner of its row storage, so
    /// consuming or mutating it will not copy tuples. A rename shares
    /// rows with its input even inside a freshly built `Relation`.
    pub fn owns_rows(&self) -> bool {
        Arc::strong_count(&self.rows) == 1
    }

    /// Append a row (arity-checked). Copy-on-write: forks the row storage
    /// if it is currently shared.
    pub fn push(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.schema.arity() {
            return Err(Error::ArityMismatch {
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        Arc::make_mut(&mut self.rows).push(row.into_boxed_slice());
        Ok(())
    }

    /// Consume into rows. Free when the storage is unshared; otherwise
    /// clones the tuples (someone else keeps the original).
    pub fn into_rows(self) -> Vec<Row> {
        Arc::try_unwrap(self.rows).unwrap_or_else(|shared| (*shared).clone())
    }

    /// Consume into schema and rows (same sharing semantics as
    /// [`Relation::into_rows`]).
    pub fn into_parts(self) -> (Schema, Vec<Row>) {
        let rows = Arc::try_unwrap(self.rows).unwrap_or_else(|shared| (*shared).clone());
        (self.schema, rows)
    }

    /// Replace the schema (e.g. after a rename); arities must agree. The
    /// row storage is reused as-is.
    pub fn with_schema(self, schema: Schema) -> Result<Self> {
        if schema.arity() != self.schema.arity() {
            return Err(Error::ArityMismatch {
                expected: self.schema.arity(),
                got: schema.arity(),
            });
        }
        Ok(Relation {
            schema,
            rows: self.rows,
        })
    }

    /// Sorted, deduplicated copy: the canonical *set* form used to compare
    /// query answers in tests and to implement set operations.
    pub fn sorted_set(&self) -> Relation {
        let mut rows = (*self.rows).clone();
        rows.sort();
        rows.dedup();
        Relation {
            schema: self.schema.clone(),
            rows: Arc::new(rows),
        }
    }

    /// In-place sort + dedup (copy-on-write).
    pub fn dedup_in_place(&mut self) {
        let rows = Arc::make_mut(&mut self.rows);
        rows.sort();
        rows.dedup();
    }

    /// Total payload size in bytes (Figure 9 accounting).
    pub fn size_bytes(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.iter().map(Value::size_bytes).sum::<usize>())
            .sum()
    }

    /// Two relations represent the same *set* of tuples (ignores order and
    /// multiplicity, requires identical arity).
    pub fn set_eq(&self, other: &Relation) -> bool {
        self.schema.arity() == other.schema.arity()
            && self.sorted_set().rows == other.sorted_set().rows
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}]", self.schema)?;
        for r in self.rows.iter() {
            for (i, v) in r.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write!(f, "{v}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r() -> Relation {
        Relation::from_rows(
            ["a", "b"],
            vec![
                vec![Value::Int(1), Value::str("x")],
                vec![Value::Int(1), Value::str("x")],
                vec![Value::Int(2), Value::str("y")],
            ],
        )
        .unwrap()
    }

    #[test]
    fn arity_checked() {
        assert!(Relation::from_rows(["a"], vec![vec![Value::Int(1), Value::Int(2)]]).is_err());
        let mut rel = Relation::empty(Schema::named(["a"]));
        assert!(rel.push(vec![Value::Int(1)]).is_ok());
        assert!(rel.push(vec![]).is_err());
    }

    #[test]
    fn sorted_set_dedups() {
        let s = r().sorted_set();
        assert_eq!(s.len(), 2);
        assert!(r().set_eq(&s));
    }

    #[test]
    fn set_eq_ignores_order() {
        let a = Relation::from_rows(["a"], vec![vec![Value::Int(2)], vec![Value::Int(1)]]).unwrap();
        let b = Relation::from_rows(
            ["a"],
            vec![
                vec![Value::Int(1)],
                vec![Value::Int(2)],
                vec![Value::Int(2)],
            ],
        )
        .unwrap();
        assert!(a.set_eq(&b));
        let c = Relation::from_rows(["a"], vec![vec![Value::Int(3)]]).unwrap();
        assert!(!a.set_eq(&c));
    }

    #[test]
    fn size_bytes_counts_payload() {
        assert_eq!(r().size_bytes(), 3 * (8 + 1));
    }

    #[test]
    fn clone_shares_storage_until_written() {
        let a = r();
        let mut b = a.clone();
        assert!(a.shares_rows_with(&b));
        // Copy-on-write: pushing into the clone forks it...
        b.push(vec![Value::Int(9), Value::str("z")]).unwrap();
        assert!(!a.shares_rows_with(&b));
        // ...and the original is untouched.
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn shared_with_schema_is_zero_copy() {
        let a = r();
        let q = a.shared_with_schema(a.schema().qualify("t")).unwrap();
        assert!(a.shares_rows_with(&q));
        assert_eq!(q.schema().to_string(), "t.a, t.b");
        // Arity mismatch is rejected.
        assert!(a.shared_with_schema(Schema::named(["x"])).is_err());
    }

    #[test]
    fn into_rows_avoids_copy_when_unique() {
        let a = r();
        let ptr = a.rows()[0].as_ptr();
        let rows = a.into_rows();
        // Storage was unique: the same allocation comes back out.
        assert_eq!(rows[0].as_ptr(), ptr);
    }
}
