//! Materialized relations.

use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::value::Value;
use std::fmt;

/// A row: a boxed slice of values (two words on the stack, no spare
/// capacity — see the perf guide on boxed slices).
pub type Row = Box<[Value]>;

/// A materialized relation: a schema plus rows, bag semantics.
///
/// The engine is operator-at-a-time: every operator consumes and produces
/// `Relation`s. Set semantics is opt-in via [`Relation::sorted_set`] /
/// `Plan::Distinct`, which is how the `poss` operator and the test oracles
/// normalize results.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Relation {
    schema: Schema,
    rows: Vec<Row>,
}

impl Relation {
    /// Empty relation over a schema.
    pub fn empty(schema: Schema) -> Self {
        Relation { schema, rows: Vec::new() }
    }

    /// Relation from parts; every row must match the schema arity.
    pub fn new(schema: Schema, rows: Vec<Row>) -> Result<Self> {
        for r in &rows {
            if r.len() != schema.arity() {
                return Err(Error::ArityMismatch {
                    expected: schema.arity(),
                    got: r.len(),
                });
            }
        }
        Ok(Relation { schema, rows })
    }

    /// Convenience constructor from unqualified column names and value rows.
    pub fn from_rows<S: AsRef<str>>(
        names: impl IntoIterator<Item = S>,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> Result<Self> {
        let schema = Schema::named(names);
        let rows = rows
            .into_iter()
            .map(|r| r.into_boxed_slice())
            .collect::<Vec<_>>();
        Relation::new(schema, rows)
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterate rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Append a row (arity-checked).
    pub fn push(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.schema.arity() {
            return Err(Error::ArityMismatch {
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        self.rows.push(row.into_boxed_slice());
        Ok(())
    }

    /// Consume into rows.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// Replace the schema (e.g. after a rename); arities must agree.
    pub fn with_schema(self, schema: Schema) -> Result<Self> {
        if schema.arity() != self.schema.arity() {
            return Err(Error::ArityMismatch {
                expected: self.schema.arity(),
                got: schema.arity(),
            });
        }
        Ok(Relation { schema, rows: self.rows })
    }

    /// Sorted, deduplicated copy: the canonical *set* form used to compare
    /// query answers in tests and to implement set operations.
    pub fn sorted_set(&self) -> Relation {
        let mut rows = self.rows.clone();
        rows.sort();
        rows.dedup();
        Relation { schema: self.schema.clone(), rows }
    }

    /// In-place sort + dedup.
    pub fn dedup_in_place(&mut self) {
        self.rows.sort();
        self.rows.dedup();
    }

    /// Total payload size in bytes (Figure 9 accounting).
    pub fn size_bytes(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.iter().map(Value::size_bytes).sum::<usize>())
            .sum()
    }

    /// Two relations represent the same *set* of tuples (ignores order and
    /// multiplicity, requires identical arity).
    pub fn set_eq(&self, other: &Relation) -> bool {
        self.schema.arity() == other.schema.arity()
            && self.sorted_set().rows == other.sorted_set().rows
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}]", self.schema)?;
        for r in &self.rows {
            for (i, v) in r.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write!(f, "{v}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r() -> Relation {
        Relation::from_rows(
            ["a", "b"],
            vec![
                vec![Value::Int(1), Value::str("x")],
                vec![Value::Int(1), Value::str("x")],
                vec![Value::Int(2), Value::str("y")],
            ],
        )
        .unwrap()
    }

    #[test]
    fn arity_checked() {
        assert!(Relation::from_rows(["a"], vec![vec![Value::Int(1), Value::Int(2)]]).is_err());
        let mut rel = Relation::empty(Schema::named(["a"]));
        assert!(rel.push(vec![Value::Int(1)]).is_ok());
        assert!(rel.push(vec![]).is_err());
    }

    #[test]
    fn sorted_set_dedups() {
        let s = r().sorted_set();
        assert_eq!(s.len(), 2);
        assert!(r().set_eq(&s));
    }

    #[test]
    fn set_eq_ignores_order() {
        let a = Relation::from_rows(
            ["a"],
            vec![vec![Value::Int(2)], vec![Value::Int(1)]],
        )
        .unwrap();
        let b = Relation::from_rows(
            ["a"],
            vec![vec![Value::Int(1)], vec![Value::Int(2)], vec![Value::Int(2)]],
        )
        .unwrap();
        assert!(a.set_eq(&b));
        let c = Relation::from_rows(["a"], vec![vec![Value::Int(3)]]).unwrap();
        assert!(!a.set_eq(&c));
    }

    #[test]
    fn size_bytes_counts_payload() {
        assert_eq!(r().size_bytes(), 3 * (8 + 1));
    }
}
