//! Materialized relations with shared row storage and a cached
//! column-major image for the batched executor.

use crate::error::{Error, Result};
use crate::fxhash::FxHasher;
use crate::schema::{ColRef, Schema};
use crate::segment::SegmentedImage;
use crate::store::DiskImage;
use crate::value::{str_eq, Value};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::io;
use std::sync::{Arc, Mutex, OnceLock};

/// A row: a boxed slice of values (two words on the stack, no spare
/// capacity — see the perf guide on boxed slices).
pub type Row = Box<[Value]>;

/// Null/validity bitmap for the nullable typed columns
/// ([`Column::IntN`], [`Column::StrN`]): one bit per row, set when the
/// row is `Null`. The count is cached — segment zone maps and batch
/// kernels read it constantly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NullMask {
    /// Bit `i` set ⇔ row `i` is null.
    bits: Vec<u64>,
    len: usize,
    nulls: usize,
}

impl NullMask {
    /// All-valid mask over `len` rows.
    pub fn new(len: usize) -> NullMask {
        NullMask {
            bits: vec![0; len.div_ceil(64)],
            len,
            nulls: 0,
        }
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the mask covers no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mark row `idx` null (idempotent).
    pub fn set_null(&mut self, idx: usize) {
        debug_assert!(idx < self.len);
        let (word, bit) = (idx / 64, idx % 64);
        if self.bits[word] & (1 << bit) == 0 {
            self.bits[word] |= 1 << bit;
            self.nulls += 1;
        }
    }

    /// Is row `idx` null?
    #[inline]
    pub fn is_null(&self, idx: usize) -> bool {
        self.bits[idx / 64] & (1 << (idx % 64)) != 0
    }

    /// Number of null rows (cached; O(1)).
    pub fn null_count(&self) -> usize {
        self.nulls
    }
}

/// The shared placeholder occupying null slots of a [`Column::StrN`]
/// payload vector (never observed through the accessors — the mask is
/// checked first — but keeps the vector's slots initialized without one
/// allocation per null).
pub(crate) fn null_str_slot() -> Arc<str> {
    static SLOT: OnceLock<Arc<str>> = OnceLock::new();
    Arc::clone(SLOT.get_or_init(|| Arc::from("")))
}

/// One column of a [`ColumnarImage`]: typed storage when the column is
/// homogeneous (the common case — TPC-H columns are all-integer or
/// all-string), a generic `Value` vector otherwise (nulls introduced by
/// the union translation's padding, booleans, mixed types).
///
/// Typed columns are what make batched predicate evaluation fast: a
/// comparison over an [`Column::Int`] column is a tight loop over a
/// contiguous `&[i64]`, with no per-row enum dispatch or `Value` clone.
#[derive(Clone, Debug)]
pub enum Column {
    /// All-integer column.
    Int(Vec<i64>),
    /// All-string column (interned `Arc<str>` — see [`crate::value::intern`]).
    Str(Vec<Arc<str>>),
    /// Integer column with nulls: rows flagged by the [`NullMask`] read
    /// as [`Value::Null`] and their payload slot is never observed. This
    /// is what the union translation's `Int`-padded columns compact to
    /// instead of collapsing to [`Column::Mixed`].
    IntN(Vec<i64>, NullMask),
    /// String column with nulls (null slots hold a shared placeholder).
    StrN(Vec<Arc<str>>, NullMask),
    /// Fallback: any mix of values, still stored contiguously.
    Mixed(Vec<Value>),
}

impl Column {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Str(v) => v.len(),
            Column::IntN(v, _) => v.len(),
            Column::StrN(v, _) => v.len(),
            Column::Mixed(v) => v.len(),
        }
    }

    /// `true` if no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at `idx` (clones; `Arc` bump for strings).
    #[inline]
    pub fn get(&self, idx: usize) -> Value {
        match self {
            Column::Int(v) => Value::Int(v[idx]),
            Column::Str(v) => Value::Str(Arc::clone(&v[idx])),
            Column::IntN(v, m) => {
                if m.is_null(idx) {
                    Value::Null
                } else {
                    Value::Int(v[idx])
                }
            }
            Column::StrN(v, m) => {
                if m.is_null(idx) {
                    Value::Null
                } else {
                    Value::Str(Arc::clone(&v[idx]))
                }
            }
            Column::Mixed(v) => v[idx].clone(),
        }
    }

    /// Hash the value at `idx` into `h`, producing *exactly* the digest
    /// [`Value::hash`] would: the batched hash-join probe and the
    /// row-built hash tables must agree on every key digest.
    #[inline]
    pub fn hash_value_into(&self, idx: usize, h: &mut FxHasher) {
        match self {
            Column::Int(v) => {
                h.write_u8(2); // Value::Int rank
                h.write_i64(v[idx]);
            }
            Column::Str(v) => {
                h.write_u8(3); // Value::Str rank
                v[idx].as_ref().hash(h);
            }
            Column::IntN(v, m) => {
                if m.is_null(idx) {
                    h.write_u8(0); // Value::Null rank, no payload
                } else {
                    h.write_u8(2);
                    h.write_i64(v[idx]);
                }
            }
            Column::StrN(v, m) => {
                if m.is_null(idx) {
                    h.write_u8(0);
                } else {
                    h.write_u8(3);
                    v[idx].as_ref().hash(h);
                }
            }
            Column::Mixed(v) => v[idx].hash(h),
        }
    }

    /// Compare the value at `idx` against a [`Value`] (no clones;
    /// pointer-first for strings).
    #[inline]
    pub fn value_eq(&self, idx: usize, other: &Value) -> bool {
        match (self, other) {
            (Column::Int(v), Value::Int(o)) => v[idx] == *o,
            (Column::Str(v), Value::Str(o)) => str_eq(&v[idx], o),
            (Column::IntN(v, m), o) => {
                if m.is_null(idx) {
                    o.is_null()
                } else {
                    matches!(o, Value::Int(x) if v[idx] == *x)
                }
            }
            (Column::StrN(v, m), o) => {
                if m.is_null(idx) {
                    o.is_null()
                } else {
                    matches!(o, Value::Str(s) if str_eq(&v[idx], s))
                }
            }
            (Column::Mixed(v), o) => v[idx] == *o,
            _ => false,
        }
    }

    /// Compare values across two columns (no clones on the typed paths;
    /// pointer-first for strings) — the exact-equality check behind
    /// hash-join key digests.
    #[inline]
    pub fn cross_eq(&self, idx: usize, other: &Column, odx: usize) -> bool {
        match (self, other) {
            (Column::Int(a), Column::Int(b)) => a[idx] == b[odx],
            (Column::Str(a), Column::Str(b)) => str_eq(&a[idx], &b[odx]),
            (Column::Mixed(a), b) => b.value_eq(odx, &a[idx]),
            (a, Column::Mixed(b)) => a.value_eq(idx, &b[odx]),
            // Nullable or cross-typed pairs: at most an `Arc` bump.
            (a, b) => b.value_eq(odx, &a.get(idx)),
        }
    }

    /// Build a column from an owned value vector, compacting to typed
    /// storage when the values are homogeneous — including
    /// [`Column::IntN`] / [`Column::StrN`] for columns that are uniform
    /// except for `Null` padding (the union translation's pad columns),
    /// which previously collapsed to [`Column::Mixed`] and lost the
    /// vectorized kernels.
    pub fn from_values(vals: Vec<Value>) -> Column {
        if !vals.is_empty() && vals.iter().all(|v| matches!(v, Value::Int(_))) {
            return Column::Int(
                vals.into_iter()
                    .map(|v| match v {
                        Value::Int(i) => i,
                        _ => unreachable!("checked all-int"),
                    })
                    .collect(),
            );
        }
        if !vals.is_empty() && vals.iter().all(|v| matches!(v, Value::Str(_))) {
            return Column::Str(
                vals.into_iter()
                    .map(|v| match v {
                        Value::Str(s) => s,
                        _ => unreachable!("checked all-str"),
                    })
                    .collect(),
            );
        }
        let ints = vals.iter().filter(|v| matches!(v, Value::Int(_))).count();
        let strs = vals.iter().filter(|v| matches!(v, Value::Str(_))).count();
        let nulls = vals.iter().filter(|v| v.is_null()).count();
        if ints > 0 && ints + nulls == vals.len() {
            let mut mask = NullMask::new(vals.len());
            let payload = vals
                .into_iter()
                .enumerate()
                .map(|(i, v)| match v {
                    Value::Int(x) => x,
                    _ => {
                        mask.set_null(i);
                        0
                    }
                })
                .collect();
            return Column::IntN(payload, mask);
        }
        if strs > 0 && strs + nulls == vals.len() {
            let mut mask = NullMask::new(vals.len());
            let payload = vals
                .into_iter()
                .enumerate()
                .map(|(i, v)| match v {
                    Value::Str(s) => s,
                    _ => {
                        mask.set_null(i);
                        null_str_slot()
                    }
                })
                .collect();
            return Column::StrN(payload, mask);
        }
        Column::Mixed(vals)
    }

    fn from_rows(rows: &[Row], col: usize) -> Column {
        if !rows.is_empty() && rows.iter().all(|r| matches!(r[col], Value::Int(_))) {
            return Column::Int(
                rows.iter()
                    .map(|r| match &r[col] {
                        Value::Int(i) => *i,
                        _ => unreachable!("checked all-int"),
                    })
                    .collect(),
            );
        }
        if !rows.is_empty() && rows.iter().all(|r| matches!(r[col], Value::Str(_))) {
            return Column::Str(
                rows.iter()
                    .map(|r| match &r[col] {
                        Value::Str(s) => Arc::clone(s),
                        _ => unreachable!("checked all-str"),
                    })
                    .collect(),
            );
        }
        // Heterogeneous (or null-padded): clone through the value path,
        // which compacts nullable-typed columns too.
        Column::from_values(rows.iter().map(|r| r[col].clone()).collect())
    }
}

/// The column-major image of a relation: one [`Column`] per schema
/// column, all of equal length. Built lazily by [`Relation::columns`]
/// and cached, so repeated queries over a shared catalog pay the
/// row-to-column conversion once per relation, not once per scan.
#[derive(Debug)]
pub struct ColumnarImage {
    cols: Vec<Column>,
    len: usize,
}

impl ColumnarImage {
    fn build(schema: &Schema, rows: &[Row]) -> ColumnarImage {
        ColumnarImage {
            cols: (0..schema.arity())
                .map(|c| Column::from_rows(rows, c))
                .collect(),
            len: rows.len(),
        }
    }

    /// The columns.
    pub fn cols(&self) -> &[Column] {
        &self.cols
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of morsels — fixed-size runs of rows, the unit of work the
    /// parallel executor's workers claim — this image splits into at
    /// `morsel_rows` rows apiece (the last one may be short).
    pub fn morsel_count(&self, morsel_rows: usize) -> usize {
        self.len.div_ceil(morsel_rows.max(1))
    }

    /// The row range `[start, end)` of morsel `idx` (see
    /// [`ColumnarImage::morsel_count`]).
    pub fn morsel_bounds(&self, idx: usize, morsel_rows: usize) -> std::ops::Range<usize> {
        let morsel_rows = morsel_rows.max(1);
        let start = (idx * morsel_rows).min(self.len);
        start..(start + morsel_rows).min(self.len)
    }
}

/// Where a relation's tuples live: in memory (the default), or in an
/// opened on-disk segment store with the row form decoded lazily on
/// first demand — disk-resident base tables never pay for a row store
/// the batched segment scan does not need.
#[derive(Clone, Debug)]
enum RowStore {
    /// Plain in-memory rows, shared across clones and renames.
    Mem(Arc<Vec<Row>>),
    /// An opened on-disk segment image; `rows` materializes (once) only
    /// when an operator genuinely needs the row form.
    Disk {
        image: Arc<DiskImage>,
        rows: OnceLock<Arc<Vec<Row>>>,
    },
}

/// A materialized relation: a schema plus rows, bag semantics.
///
/// Rows live behind an `Arc`, so cloning a relation — and in particular
/// re-qualifying its schema for a rename — shares storage instead of
/// deep-copying tuples. Mutators ([`Relation::push`],
/// [`Relation::dedup_in_place`]) are copy-on-write: they are free while
/// the storage is unshared (the builder phase) and fork the rows only if
/// someone else still holds them.
///
/// The engine is operator-at-a-time: every operator consumes and produces
/// relations, with [`crate::exec::execute`] handing out `Arc<Relation>`
/// so scans alias the catalog instead of copying it. Set semantics is
/// opt-in via [`Relation::sorted_set`] / `Plan::Distinct`, which is how
/// the `poss` operator and the test oracles normalize results.
#[derive(Debug)]
pub struct Relation {
    schema: Schema,
    rows: RowStore,
    /// Lazily built column-major image (see [`Relation::columns`]).
    /// Shared across clones and zero-copy renames; reset by the
    /// copy-on-write mutators. Not part of relation equality.
    columnar: OnceLock<Arc<ColumnarImage>>,
    /// Lazily built compressed segmented image (see
    /// [`Relation::segments`]). Cached for one segment size at a time;
    /// shared across clones and renames like the plain image; reset by
    /// the copy-on-write mutators. Not part of relation equality.
    segmented: Mutex<Option<Arc<SegmentedImage>>>,
    /// Scratch spill cache for in-memory relations scanned under
    /// [`crate::catalog::StorageMode::Disk`] (see
    /// [`Relation::disk_image`]); written once, shared across clones,
    /// reset by the copy-on-write mutators. Not part of equality.
    disk: Mutex<Option<Arc<DiskImage>>>,
}

impl Clone for Relation {
    fn clone(&self) -> Self {
        Relation {
            schema: self.schema.clone(),
            rows: self.rows.clone(),
            columnar: self.columnar.clone(),
            segmented: Mutex::new(self.segmented.lock().expect("segment cache").clone()),
            disk: Mutex::new(self.disk.lock().expect("disk cache").clone()),
        }
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.rows_arc() == other.rows_arc()
    }
}

impl Eq for Relation {}

impl Relation {
    /// Empty relation over a schema.
    pub fn empty(schema: Schema) -> Self {
        Relation {
            schema,
            rows: RowStore::Mem(Arc::new(Vec::new())),
            columnar: OnceLock::new(),
            segmented: Mutex::new(None),
            disk: Mutex::new(None),
        }
    }

    /// The in-memory row storage, decoding a disk-backed relation's
    /// segments on first demand (cached for the relation's lifetime).
    fn rows_arc(&self) -> &Arc<Vec<Row>> {
        match &self.rows {
            RowStore::Mem(rows) => rows,
            RowStore::Disk { image, rows } => {
                // Infallible interface: a decode failure unwinds with the
                // Error payload and is converted back to `Err` at the pull
                // driver (see `fault::catch_pull`).
                rows.get_or_init(|| Arc::new(crate::fault::rethrow(image.decode_rows())))
            }
        }
    }

    /// Fork disk-backed storage into plain memory rows ahead of a
    /// mutation, and drop any scratch spill image (it describes the
    /// pre-mutation rows).
    fn make_mem(&mut self) {
        if let RowStore::Disk { .. } = self.rows {
            let rows = Arc::clone(self.rows_arc());
            self.rows = RowStore::Mem(rows);
        }
        *self.disk.lock().expect("disk cache") = None;
    }

    /// Relation from parts; every row must match the schema arity.
    pub fn new(schema: Schema, rows: Vec<Row>) -> Result<Self> {
        for r in &rows {
            if r.len() != schema.arity() {
                return Err(Error::ArityMismatch {
                    expected: schema.arity(),
                    got: r.len(),
                });
            }
        }
        Ok(Relation {
            schema,
            rows: RowStore::Mem(Arc::new(rows)),
            columnar: OnceLock::new(),
            segmented: Mutex::new(None),
            disk: Mutex::new(None),
        })
    }

    /// Relation over an opened on-disk segment store: the schema comes
    /// from the manifest's column names, and rows stay on disk until an
    /// operator genuinely demands the row form.
    pub fn from_disk_image(image: Arc<DiskImage>) -> Relation {
        let schema = Schema::new(image.names().iter().map(|n| ColRef::parse(n)).collect());
        Relation {
            schema,
            rows: RowStore::Disk {
                image,
                rows: OnceLock::new(),
            },
            columnar: OnceLock::new(),
            segmented: Mutex::new(None),
            disk: Mutex::new(None),
        }
    }

    /// The on-disk segment image this relation is natively backed by
    /// (built by [`Relation::from_disk_image`]), if any.
    pub fn native_disk_image(&self) -> Option<Arc<DiskImage>> {
        match &self.rows {
            RowStore::Disk { image, .. } => Some(Arc::clone(image)),
            RowStore::Mem(_) => None,
        }
    }

    /// An on-disk segment image for this relation under disk storage:
    /// the native image when the relation was loaded from disk,
    /// otherwise a scratch spill of the encoded segmented image —
    /// written once into a temp directory that is deleted when the last
    /// reference drops, cached across scans, reset by mutators.
    pub fn disk_image(&self, seg_rows: usize) -> Result<Arc<DiskImage>> {
        if let Some(img) = self.native_disk_image() {
            return Ok(img);
        }
        let mut cache = self.disk.lock().expect("disk cache");
        if let Some(img) = cache.as_ref() {
            if img.seg_rows() == seg_rows.max(1) {
                return Ok(Arc::clone(img));
            }
        }
        let names: Vec<String> = self
            .schema
            .columns()
            .iter()
            .map(|c| c.to_string())
            .collect();
        let img = crate::store::write_image_scratch(&self.segments(seg_rows), &names)?;
        *cache = Some(Arc::clone(&img));
        Ok(img)
    }

    /// Relation over `schema` sharing another relation's row storage
    /// (the zero-copy rename: arities must agree, no tuple is touched).
    /// The cached columnar image is shared too — a rename costs no
    /// re-conversion.
    pub fn shared_with_schema(&self, schema: Schema) -> Result<Self> {
        if schema.arity() != self.schema.arity() {
            return Err(Error::ArityMismatch {
                expected: self.schema.arity(),
                got: schema.arity(),
            });
        }
        Ok(Relation {
            schema,
            rows: self.rows.clone(),
            columnar: self.columnar.clone(),
            segmented: Mutex::new(self.segmented.lock().expect("segment cache").clone()),
            disk: Mutex::new(self.disk.lock().expect("disk cache").clone()),
        })
    }

    /// Convenience constructor from unqualified column names and value rows.
    pub fn from_rows<S: AsRef<str>>(
        names: impl IntoIterator<Item = S>,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> Result<Self> {
        let schema = Schema::named(names);
        let rows = rows
            .into_iter()
            .map(|r| r.into_boxed_slice())
            .collect::<Vec<_>>();
        Relation::new(schema, rows)
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Row count (served from the manifest for disk-backed relations —
    /// no row materialization).
    pub fn len(&self) -> usize {
        match &self.rows {
            RowStore::Mem(rows) => rows.len(),
            RowStore::Disk { image, .. } => image.len(),
        }
    }

    /// `true` if no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate rows (decodes a disk-backed relation's segments on first
    /// call; the batched executor reads segments directly instead).
    pub fn rows(&self) -> &[Row] {
        self.rows_arc()
    }

    /// The column-major image, built on first use and cached. Batched
    /// scans read this; the conversion is paid once per relation even
    /// across repeated queries (clones and renames share the cache).
    pub fn columns(&self) -> &ColumnarImage {
        self.columnar
            .get_or_init(|| Arc::new(ColumnarImage::build(&self.schema, self.rows_arc())))
    }

    /// `true` iff the columnar image has already been built (test hook
    /// for the conversion-caching guarantee).
    pub fn columns_cached(&self) -> bool {
        self.columnar.get().is_some()
    }

    /// The compressed segmented image at `seg_rows` rows per segment,
    /// built directly from row storage (never via the plain columnar
    /// image — in paged storage mode that image is exactly what must not
    /// be materialized) and cached. Asking for a different segment size
    /// rebuilds; clones and renames share the cache.
    pub fn segments(&self, seg_rows: usize) -> Arc<SegmentedImage> {
        let mut cache = self.segmented.lock().expect("segment cache");
        if let Some(img) = cache.as_ref() {
            if img.seg_rows() == seg_rows.max(1) {
                return Arc::clone(img);
            }
        }
        let img = Arc::new(SegmentedImage::build(
            self.schema.arity(),
            self.rows_arc(),
            seg_rows,
        ));
        *cache = Some(Arc::clone(&img));
        img
    }

    /// `true` iff a segmented image is cached (test hook).
    pub fn segments_cached(&self) -> bool {
        self.segmented.lock().expect("segment cache").is_some()
    }

    /// Attach a pre-built segmented image (loaders that stream rows
    /// straight into a segment builder hand the result over here, so
    /// [`Relation::segments`] never re-encodes). The image must describe
    /// exactly this relation's rows.
    pub fn attach_segments(&self, img: Arc<SegmentedImage>) {
        debug_assert_eq!(img.len(), self.len());
        debug_assert_eq!(img.arity(), self.schema.arity());
        *self.segmented.lock().expect("segment cache") = Some(img);
    }

    /// `true` iff both relations alias the same row storage (used by the
    /// zero-copy tests; content equality is `==` / [`Relation::set_eq`]).
    pub fn shares_rows_with(&self, other: &Relation) -> bool {
        match (&self.rows, &other.rows) {
            (RowStore::Mem(a), RowStore::Mem(b)) => Arc::ptr_eq(a, b),
            (RowStore::Disk { image: a, .. }, RowStore::Disk { image: b, .. }) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// `true` iff this relation is the sole owner of its row storage, so
    /// consuming or mutating it will not copy tuples. A rename shares
    /// rows with its input even inside a freshly built `Relation`.
    pub fn owns_rows(&self) -> bool {
        match &self.rows {
            RowStore::Mem(rows) => Arc::strong_count(rows) == 1,
            // Disk-backed rows are a decoded view of the image; consuming
            // them never hands back the storage for free.
            RowStore::Disk { .. } => false,
        }
    }

    /// Append a row (arity-checked). Copy-on-write: forks the row storage
    /// if it is currently shared.
    pub fn push(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.schema.arity() {
            return Err(Error::ArityMismatch {
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        self.make_mem();
        let RowStore::Mem(rows) = &mut self.rows else {
            unreachable!("make_mem leaves memory storage");
        };
        Arc::make_mut(rows).push(row.into_boxed_slice());
        self.columnar = OnceLock::new(); // rows changed: images are stale
        self.segmented = Mutex::new(None);
        Ok(())
    }

    /// Consume into rows. Free when the storage is unshared; otherwise
    /// clones the tuples (someone else keeps the original).
    pub fn into_rows(self) -> Vec<Row> {
        Self::store_into_rows(self.rows)
    }

    /// Consume into schema and rows (same sharing semantics as
    /// [`Relation::into_rows`]).
    pub fn into_parts(self) -> (Schema, Vec<Row>) {
        (self.schema, Self::store_into_rows(self.rows))
    }

    fn store_into_rows(store: RowStore) -> Vec<Row> {
        let rows = match store {
            RowStore::Mem(rows) => rows,
            RowStore::Disk { image, rows } => match rows.into_inner() {
                Some(rows) => rows,
                None => return crate::fault::rethrow(image.decode_rows()),
            },
        };
        Arc::try_unwrap(rows).unwrap_or_else(|shared| (*shared).clone())
    }

    /// Replace the schema (e.g. after a rename); arities must agree. The
    /// row storage is reused as-is.
    pub fn with_schema(self, schema: Schema) -> Result<Self> {
        if schema.arity() != self.schema.arity() {
            return Err(Error::ArityMismatch {
                expected: self.schema.arity(),
                got: schema.arity(),
            });
        }
        Ok(Relation {
            schema,
            rows: self.rows,
            columnar: self.columnar,
            segmented: self.segmented,
            disk: self.disk,
        })
    }

    /// Sorted, deduplicated copy: the canonical *set* form used to compare
    /// query answers in tests and to implement set operations.
    pub fn sorted_set(&self) -> Relation {
        let mut rows = (**self.rows_arc()).clone();
        rows.sort();
        rows.dedup();
        Relation {
            schema: self.schema.clone(),
            rows: RowStore::Mem(Arc::new(rows)),
            columnar: OnceLock::new(),
            segmented: Mutex::new(None),
            disk: Mutex::new(None),
        }
    }

    /// In-place sort + dedup (copy-on-write).
    pub fn dedup_in_place(&mut self) {
        self.make_mem();
        let RowStore::Mem(rows) = &mut self.rows else {
            unreachable!("make_mem leaves memory storage");
        };
        let rows = Arc::make_mut(rows);
        rows.sort();
        rows.dedup();
        self.columnar = OnceLock::new(); // rows changed: images are stale
        self.segmented = Mutex::new(None);
    }

    /// Total payload size in bytes (Figure 9 accounting). Disk-backed
    /// relations answer from the manifest's statistics — the writer
    /// accumulated exactly this sum while streaming.
    pub fn size_bytes(&self) -> usize {
        match &self.rows {
            RowStore::Mem(rows) => rows
                .iter()
                .map(|r| r.iter().map(Value::size_bytes).sum::<usize>())
                .sum(),
            RowStore::Disk { image, .. } => image.stats().bytes,
        }
    }

    /// Two relations represent the same *set* of tuples (ignores order and
    /// multiplicity, requires identical arity).
    pub fn set_eq(&self, other: &Relation) -> bool {
        if self.schema.arity() != other.schema.arity() {
            return false;
        }
        self.sorted_set().rows() == other.sorted_set().rows()
    }
}

// ---------------------------------------------------------------------------
// Run serialization: the binary row codec spilled runs are written in
// ---------------------------------------------------------------------------

/// Value tags of the spill-run row codec (see [`encode_row`]). Kept
/// private to the codec: the on-disk format is an implementation detail
/// of one process's execution — runs never outlive their spill
/// directory, so there is no versioning concern.
const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_STR: u8 = 4;

/// Serialize a row for a spill run: `u16` arity, then one tagged value
/// per column (integers little-endian, strings length-prefixed UTF-8).
/// Lossless: [`decode_row`] reproduces a row that compares `Eq`/`Ord`/
/// `Hash`-identical to the original (decoded strings are fresh
/// allocations — equality falls back from the interner's pointer check
/// to bytes, which is exactly what [`str_eq`] does).
pub fn encode_row(w: &mut impl io::Write, row: &Row) -> io::Result<()> {
    let arity = u16::try_from(row.len()).expect("spilled row arity fits u16");
    w.write_all(&arity.to_le_bytes())?;
    for v in row.iter() {
        match v {
            Value::Null => w.write_all(&[TAG_NULL])?,
            Value::Bool(false) => w.write_all(&[TAG_FALSE])?,
            Value::Bool(true) => w.write_all(&[TAG_TRUE])?,
            Value::Int(i) => {
                w.write_all(&[TAG_INT])?;
                w.write_all(&i.to_le_bytes())?;
            }
            Value::Str(s) => {
                w.write_all(&[TAG_STR])?;
                let len = u32::try_from(s.len()).expect("spilled string fits u32");
                w.write_all(&len.to_le_bytes())?;
                w.write_all(s.as_bytes())?;
            }
        }
    }
    Ok(())
}

/// Deserialize one [`encode_row`] row. `Ok(None)` at a clean
/// end-of-stream; an error on a truncated or corrupt record.
pub fn decode_row(r: &mut impl io::Read) -> io::Result<Option<Row>> {
    let mut arity = [0u8; 2];
    match r.read(&mut arity)? {
        0 => return Ok(None),
        1 => r.read_exact(&mut arity[1..])?,
        _ => {}
    }
    let arity = u16::from_le_bytes(arity) as usize;
    let mut row = Vec::with_capacity(arity);
    for _ in 0..arity {
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag)?;
        row.push(match tag[0] {
            TAG_NULL => Value::Null,
            TAG_FALSE => Value::Bool(false),
            TAG_TRUE => Value::Bool(true),
            TAG_INT => {
                let mut b = [0u8; 8];
                r.read_exact(&mut b)?;
                Value::Int(i64::from_le_bytes(b))
            }
            TAG_STR => {
                let mut b = [0u8; 4];
                r.read_exact(&mut b)?;
                let mut s = vec![0u8; u32::from_le_bytes(b) as usize];
                r.read_exact(&mut s)?;
                Value::Str(Arc::from(
                    String::from_utf8(s)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?,
                ))
            }
            t => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown spill value tag {t}"),
                ))
            }
        });
    }
    Ok(Some(row.into_boxed_slice()))
}

/// Approximate in-memory footprint of one row: heap payload plus the
/// per-value enum slots and the boxed-slice header. This is what breaker
/// buffers charge against the memory budget — an estimate, deliberately
/// on the simple side (allocator slack and hash-table overhead are not
/// modeled), but monotone in what the buffer actually holds.
pub fn row_footprint(row: &Row) -> usize {
    24 + row.iter().map(|v| 24 + v.size_bytes()).sum::<usize>()
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}]", self.schema)?;
        for r in self.rows().iter() {
            for (i, v) in r.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write!(f, "{v}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r() -> Relation {
        Relation::from_rows(
            ["a", "b"],
            vec![
                vec![Value::Int(1), Value::str("x")],
                vec![Value::Int(1), Value::str("x")],
                vec![Value::Int(2), Value::str("y")],
            ],
        )
        .unwrap()
    }

    #[test]
    fn arity_checked() {
        assert!(Relation::from_rows(["a"], vec![vec![Value::Int(1), Value::Int(2)]]).is_err());
        let mut rel = Relation::empty(Schema::named(["a"]));
        assert!(rel.push(vec![Value::Int(1)]).is_ok());
        assert!(rel.push(vec![]).is_err());
    }

    #[test]
    fn sorted_set_dedups() {
        let s = r().sorted_set();
        assert_eq!(s.len(), 2);
        assert!(r().set_eq(&s));
    }

    #[test]
    fn set_eq_ignores_order() {
        let a = Relation::from_rows(["a"], vec![vec![Value::Int(2)], vec![Value::Int(1)]]).unwrap();
        let b = Relation::from_rows(
            ["a"],
            vec![
                vec![Value::Int(1)],
                vec![Value::Int(2)],
                vec![Value::Int(2)],
            ],
        )
        .unwrap();
        assert!(a.set_eq(&b));
        let c = Relation::from_rows(["a"], vec![vec![Value::Int(3)]]).unwrap();
        assert!(!a.set_eq(&c));
    }

    #[test]
    fn size_bytes_counts_payload() {
        assert_eq!(r().size_bytes(), 3 * (8 + 1));
    }

    #[test]
    fn clone_shares_storage_until_written() {
        let a = r();
        let mut b = a.clone();
        assert!(a.shares_rows_with(&b));
        // Copy-on-write: pushing into the clone forks it...
        b.push(vec![Value::Int(9), Value::str("z")]).unwrap();
        assert!(!a.shares_rows_with(&b));
        // ...and the original is untouched.
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn shared_with_schema_is_zero_copy() {
        let a = r();
        let q = a.shared_with_schema(a.schema().qualify("t")).unwrap();
        assert!(a.shares_rows_with(&q));
        assert_eq!(q.schema().to_string(), "t.a, t.b");
        // Arity mismatch is rejected.
        assert!(a.shared_with_schema(Schema::named(["x"])).is_err());
    }

    #[test]
    fn columnar_image_is_typed_cached_and_invalidated() {
        let a = r();
        assert!(!a.columns_cached());
        let img = a.columns();
        assert_eq!(img.len(), 3);
        assert!(matches!(img.cols()[0], Column::Int(_)));
        assert!(matches!(img.cols()[1], Column::Str(_)));
        assert_eq!(img.cols()[0].get(2), Value::Int(2));
        assert!(a.columns_cached());
        // Renames and clones share the cached image.
        let renamed = a.shared_with_schema(a.schema().qualify("t")).unwrap();
        assert!(renamed.columns_cached());
        assert!(a.clone().columns_cached());
        // A CoW mutation invalidates the mutated relation's cache only.
        let mut b = a.clone();
        b.push(vec![Value::Int(9), Value::Null]).unwrap();
        assert!(!b.columns_cached());
        assert!(a.columns_cached());
        // The pushed Null keeps the string column typed: it rebuilds as
        // a nullable string column, not a Mixed fallback.
        let Column::StrN(_, mask) = &b.columns().cols()[1] else {
            panic!("null-padded string column compacts to StrN");
        };
        assert_eq!(mask.null_count(), 1);
        assert_eq!(b.columns().cols()[1].get(3), Value::Null);
    }

    #[test]
    fn column_hash_matches_value_hash() {
        use std::hash::{Hash, Hasher};
        let rel = Relation::from_rows(
            ["i", "s", "m"],
            vec![
                vec![Value::Int(7), Value::str("abc"), Value::Null],
                vec![Value::Int(-1), Value::str(""), Value::Bool(true)],
            ],
        )
        .unwrap();
        let img = rel.columns();
        for (ri, row) in rel.rows().iter().enumerate() {
            for (ci, v) in row.iter().enumerate() {
                let mut a = FxHasher::default();
                img.cols()[ci].hash_value_into(ri, &mut a);
                let mut b = FxHasher::default();
                v.hash(&mut b);
                assert_eq!(a.finish(), b.finish(), "digest mismatch at ({ri},{ci})");
            }
        }
    }

    #[test]
    fn column_equality_helpers() {
        let rel = Relation::from_rows(
            ["i", "s"],
            vec![
                vec![Value::Int(1), Value::interned("x")],
                vec![Value::Int(2), Value::interned("y")],
            ],
        )
        .unwrap();
        let img = rel.columns();
        assert!(img.cols()[0].value_eq(0, &Value::Int(1)));
        assert!(!img.cols()[0].value_eq(0, &Value::str("1")));
        assert!(img.cols()[1].value_eq(1, &Value::interned("y")));
        assert!(img.cols()[0].cross_eq(1, &img.cols()[0], 1));
        assert!(!img.cols()[0].cross_eq(0, &img.cols()[1], 0));
        assert_eq!(
            Column::from_values(vec![Value::Int(1), Value::Int(2)]).get(1),
            Value::Int(2)
        );
        // Null-padded homogeneous columns compact to the nullable typed
        // variants; genuinely mixed ones still fall back to Mixed.
        let c = Column::from_values(vec![Value::Int(1), Value::Null]);
        assert!(matches!(c, Column::IntN(..)));
        assert_eq!(c.get(0), Value::Int(1));
        assert_eq!(c.get(1), Value::Null);
        assert!(c.value_eq(1, &Value::Null));
        assert!(!c.value_eq(0, &Value::Null));
        assert!(matches!(
            Column::from_values(vec![Value::Bool(true), Value::Int(1)]),
            Column::Mixed(_)
        ));
        assert!(matches!(
            Column::from_values(vec![Value::Null, Value::Null]),
            Column::Mixed(_)
        ));
    }

    #[test]
    fn nullable_columns_hash_and_compare_like_values() {
        use std::hash::{Hash, Hasher};
        let vals = vec![
            Value::Int(7),
            Value::Null,
            Value::Int(-3),
            Value::Null,
            Value::Int(7),
        ];
        let c = Column::from_values(vals.clone());
        assert!(matches!(c, Column::IntN(..)));
        let s = Column::from_values(vec![
            Value::interned("x"),
            Value::Null,
            Value::interned("y"),
        ]);
        assert!(matches!(s, Column::StrN(..)));
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(c.get(i), *v);
            let mut a = FxHasher::default();
            c.hash_value_into(i, &mut a);
            let mut b = FxHasher::default();
            v.hash(&mut b);
            assert_eq!(a.finish(), b.finish(), "digest mismatch at {i}");
        }
        // Cross-column equality sees through the masks.
        assert!(c.cross_eq(1, &c, 3)); // Null == Null
        assert!(!c.cross_eq(0, &c, 1));
        assert!(c.cross_eq(0, &c, 4));
        assert!(c.cross_eq(0, &Column::Int(vec![9, 7]), 1));
        assert!(!c.cross_eq(1, &Column::Int(vec![9, 7]), 1));
        assert!(s.cross_eq(1, &c, 1)); // nulls equal across types
        assert!(s.value_eq(0, &Value::interned("x")));
        assert!(!s.value_eq(1, &Value::interned("x")));
        let mixed = Column::from_values(vec![Value::Bool(true), Value::Null]);
        assert!(mixed.cross_eq(1, &s, 1));
        assert!(!mixed.cross_eq(0, &s, 1));
    }

    #[test]
    fn morsel_partitioning_covers_the_image() {
        let rel = Relation::from_rows(
            ["a"],
            (0..10).map(|i| vec![Value::Int(i)]).collect::<Vec<_>>(),
        )
        .unwrap();
        let img = rel.columns();
        assert_eq!(img.morsel_count(4), 3);
        assert_eq!(img.morsel_bounds(0, 4), 0..4);
        assert_eq!(img.morsel_bounds(2, 4), 8..10);
        assert_eq!(img.morsel_count(100), 1);
        assert_eq!(img.morsel_bounds(0, 100), 0..10);
        // Degenerate sizes are floored, empty images have no morsels.
        assert_eq!(img.morsel_count(0), 10);
        let empty = Relation::empty(Schema::named(["a"]));
        assert_eq!(empty.columns().morsel_count(4), 0);
    }

    #[test]
    fn into_rows_avoids_copy_when_unique() {
        let a = r();
        let ptr = a.rows()[0].as_ptr();
        let rows = a.into_rows();
        // Storage was unique: the same allocation comes back out.
        assert_eq!(rows[0].as_ptr(), ptr);
    }
}
