//! Heuristic + cost-based plan optimization.
//!
//! Three passes, in the spirit of what PostgreSQL did for the paper's
//! translated queries (Section 6: "due to the simplicity of our rewritings,
//! PostgreSQL optimizes the queries in a fairly good way"):
//!
//! 1. **Selection pushdown** — conjuncts are split and routed below joins
//!    and through projections/renames as far as their columns allow.
//! 2. **Join reordering** — maximal inner-join trees are flattened and
//!    rebuilt greedily, smallest estimated intermediate first, using
//!    `|L⋈R| ≈ |L|·|R| / max(ndv)` with NDV traced to base-table stats.
//!    The translation's ψ descriptor-consistency conjuncts
//!    (`Var ≠ Var' ∨ Rng = Rng'`) get their own NDV-driven estimate
//!    instead of a flat guess — descriptor columns are low-selectivity,
//!    and treating them as ordinary predicates made ψ-joins look far
//!    smaller than they are. Pair scoring is pure arithmetic over
//!    per-leaf distinct-count tables bound once during flattening.
//!    Estimates are memoized per plan node ([`EstCache`]); the executor
//!    reuses them when picking hash-join build sides.
//! 3. **Projection pruning** — narrowing projections are inserted above
//!    join inputs so only live columns flow through joins (the paper's
//!    "late materialization" benefit depends on this).
//! 4. **Redundant-distinct elimination** — a `Distinct` whose parent
//!    already deduplicates (another `Distinct`, or either side of a
//!    `Difference`, which has set semantics) is stripped. Under the
//!    streaming executor every `Distinct` is a pipeline breaker with a
//!    seen-set buffer, so dropping redundant ones removes real
//!    materializations, not just plan noise.

use crate::catalog::Catalog;
use crate::error::Result;
use crate::expr::{CmpOp, Expr};
use crate::plan::Plan;
use crate::schema::{ColRef, Schema};
use std::collections::BTreeSet;

/// Optimize a plan: pushdown, reorder, prune. The result is equivalent
/// (same bag of tuples up to row order) and usually much faster.
pub fn optimize(plan: &Plan, catalog: &Catalog) -> Result<Plan> {
    // Validate input while we are at it: schema() errors early.
    plan.schema(catalog)?;
    let p = push_selections(plan.clone(), catalog);
    let p = reorder_joins(p, catalog);
    let p = prune_projections(p, catalog, None);
    let p = strip_redundant_distinct(p, false);
    p.schema(catalog)?; // invariant: optimization preserves well-formedness
    Ok(p)
}

// ---------------------------------------------------------------------------
// Pass 4: redundant-distinct elimination
// ---------------------------------------------------------------------------

/// Drop `Distinct` nodes whose output reaches a deduplicating operator
/// anyway. `deduped` is true when an ancestor already imposes set
/// semantics on this subtree's multiplicities: another `Distinct`, or a
/// `Difference` (SQL `EXCEPT` both dedups its left side and only tests
/// membership on its right). The flag propagates through σ and ρ (which
/// preserve "is a set") and conservatively resets at every other
/// operator.
fn strip_redundant_distinct(plan: Plan, deduped: bool) -> Plan {
    match plan {
        Plan::Distinct(input) if deduped => strip_redundant_distinct(*input, true),
        Plan::Distinct(input) => Plan::Distinct(Box::new(strip_redundant_distinct(*input, true))),
        // σ over a set stays a set: keep propagating.
        Plan::Select { input, pred } => Plan::Select {
            input: Box::new(strip_redundant_distinct(*input, deduped)),
            pred,
        },
        // ρ is a pure schema change.
        Plan::Rename { input, alias } => Plan::Rename {
            input: Box::new(strip_redundant_distinct(*input, deduped)),
            alias,
        },
        // Difference has set semantics on its own output and only tests
        // membership on the right: Distinct directly under either side
        // is redundant.
        Plan::Difference { left, right } => Plan::Difference {
            left: Box::new(strip_redundant_distinct(*left, true)),
            right: Box::new(strip_redundant_distinct(*right, true)),
        },
        // Everything else resets the flag for its children.
        Plan::Project { input, cols } => Plan::Project {
            input: Box::new(strip_redundant_distinct(*input, false)),
            cols,
        },
        Plan::Join { left, right, pred } => Plan::Join {
            left: Box::new(strip_redundant_distinct(*left, false)),
            right: Box::new(strip_redundant_distinct(*right, false)),
            pred,
        },
        Plan::SemiJoin { left, right, pred } => Plan::SemiJoin {
            left: Box::new(strip_redundant_distinct(*left, false)),
            right: Box::new(strip_redundant_distinct(*right, false)),
            pred,
        },
        Plan::AntiJoin { left, right, pred } => Plan::AntiJoin {
            left: Box::new(strip_redundant_distinct(*left, false)),
            right: Box::new(strip_redundant_distinct(*right, false)),
            pred,
        },
        Plan::Union { left, right } => Plan::Union {
            left: Box::new(strip_redundant_distinct(*left, false)),
            right: Box::new(strip_redundant_distinct(*right, false)),
        },
        leaf => leaf,
    }
}

// ---------------------------------------------------------------------------
// Pass 1: selection pushdown
// ---------------------------------------------------------------------------

fn push_selections(plan: Plan, catalog: &Catalog) -> Plan {
    match plan {
        Plan::Select { input, pred } => {
            let inner = push_selections(*input, catalog);
            push_pred_into(inner, pred, catalog)
        }
        Plan::Project { input, cols } => Plan::Project {
            input: Box::new(push_selections(*input, catalog)),
            cols,
        },
        Plan::Join { left, right, pred } => Plan::Join {
            left: Box::new(push_selections(*left, catalog)),
            right: Box::new(push_selections(*right, catalog)),
            pred,
        },
        Plan::SemiJoin { left, right, pred } => Plan::SemiJoin {
            left: Box::new(push_selections(*left, catalog)),
            right: Box::new(push_selections(*right, catalog)),
            pred,
        },
        Plan::AntiJoin { left, right, pred } => Plan::AntiJoin {
            left: Box::new(push_selections(*left, catalog)),
            right: Box::new(push_selections(*right, catalog)),
            pred,
        },
        Plan::Union { left, right } => Plan::Union {
            left: Box::new(push_selections(*left, catalog)),
            right: Box::new(push_selections(*right, catalog)),
        },
        Plan::Difference { left, right } => Plan::Difference {
            left: Box::new(push_selections(*left, catalog)),
            right: Box::new(push_selections(*right, catalog)),
        },
        Plan::Distinct(input) => Plan::Distinct(Box::new(push_selections(*input, catalog))),
        Plan::Rename { input, alias } => Plan::Rename {
            input: Box::new(push_selections(*input, catalog)),
            alias,
        },
        leaf => leaf,
    }
}

/// Push a predicate as deep as possible into an (already pushed) plan.
fn push_pred_into(plan: Plan, pred: Expr, catalog: &Catalog) -> Plan {
    let conjuncts = pred.conjuncts();
    if conjuncts.is_empty() {
        return plan;
    }
    match plan {
        Plan::Select { input, pred: inner } => {
            // Merge and retry as one predicate set.
            let merged = Expr::and(conjuncts.into_iter().chain(inner.conjuncts()));
            push_pred_into(*input, merged, catalog)
        }
        Plan::Join {
            left,
            right,
            pred: jp,
        } => {
            let ls = match left.schema_shape(catalog) {
                Ok(s) => s,
                Err(_) => {
                    return rebuild_select(
                        Plan::Join {
                            left,
                            right,
                            pred: jp,
                        },
                        conjuncts,
                    )
                }
            };
            let rs = match right.schema_shape(catalog) {
                Ok(s) => s,
                Err(_) => {
                    return rebuild_select(
                        Plan::Join {
                            left,
                            right,
                            pred: jp,
                        },
                        conjuncts,
                    )
                }
            };
            let mut to_left = Vec::new();
            let mut to_right = Vec::new();
            let mut to_join = Vec::new();
            for c in conjuncts {
                if resolves_all(&c, &ls) {
                    to_left.push(c);
                } else if resolves_all(&c, &rs) {
                    to_right.push(c);
                } else {
                    to_join.push(c);
                }
            }
            let new_left = if to_left.is_empty() {
                *left
            } else {
                push_pred_into(*left, Expr::and(to_left), catalog)
            };
            let new_right = if to_right.is_empty() {
                *right
            } else {
                push_pred_into(*right, Expr::and(to_right), catalog)
            };
            Plan::Join {
                left: Box::new(new_left),
                right: Box::new(new_right),
                pred: Expr::and(jp.conjuncts().into_iter().chain(to_join)),
            }
        }
        Plan::Project { input, cols } => {
            // Push through iff every referenced output column is a plain
            // column alias; rewrite references to the input names.
            let all_cols: BTreeSet<ColRef> = conjuncts.iter().flat_map(|c| c.columns()).collect();
            let mut mapping = Vec::new();
            let mut pushable = true;
            'outer: for r in &all_cols {
                for (e, name) in &cols {
                    if name.matches(r) || (r.qualifier.is_none() && name.name == r.name) {
                        if let Expr::Col(src) = e {
                            mapping.push((r.clone(), src.clone()));
                            continue 'outer;
                        }
                    }
                }
                pushable = false;
                break;
            }
            if pushable {
                let rewritten = Expr::and(conjuncts).map_columns(&|c| {
                    mapping
                        .iter()
                        .find(|(from, _)| from == c)
                        .map(|(_, to)| to.clone())
                        .unwrap_or_else(|| c.clone())
                });
                Plan::Project {
                    input: Box::new(push_pred_into(*input, rewritten, catalog)),
                    cols,
                }
            } else {
                rebuild_select(Plan::Project { input, cols }, conjuncts)
            }
        }
        Plan::Rename { input, alias } => {
            // Strip the alias qualifier and push inside if the stripped
            // predicate still compiles there.
            let inner_schema = match input.schema_shape(catalog) {
                Ok(s) => s,
                Err(_) => return rebuild_select(Plan::Rename { input, alias }, conjuncts),
            };
            let stripped = Expr::and(conjuncts.clone()).map_columns(&|c| {
                if c.qualifier.as_deref() == Some(alias.as_str()) {
                    c.unqualified()
                } else {
                    c.clone()
                }
            });
            if stripped.compile(&inner_schema).is_ok() {
                Plan::Rename {
                    input: Box::new(push_pred_into(*input, stripped, catalog)),
                    alias,
                }
            } else {
                rebuild_select(Plan::Rename { input, alias }, conjuncts)
            }
        }
        Plan::Distinct(input) => Plan::Distinct(Box::new(push_pred_into(
            *input,
            Expr::and(conjuncts),
            catalog,
        ))),
        Plan::Difference { left, right } => {
            // σ(L − R) = σ(L) − R; pushing into R would be wrong.
            Plan::Difference {
                left: Box::new(push_pred_into(*left, Expr::and(conjuncts), catalog)),
                right,
            }
        }
        Plan::Union { left, right } => {
            // Union is positional; push only if the predicate compiles on
            // both children by name.
            let p = Expr::and(conjuncts.clone());
            let ok = left
                .schema_shape(catalog)
                .and_then(|s| p.compile(&s))
                .is_ok()
                && right
                    .schema_shape(catalog)
                    .and_then(|s| p.compile(&s))
                    .is_ok();
            if ok {
                Plan::Union {
                    left: Box::new(push_pred_into(*left, p.clone(), catalog)),
                    right: Box::new(push_pred_into(*right, p, catalog)),
                }
            } else {
                rebuild_select(Plan::Union { left, right }, conjuncts)
            }
        }
        other => rebuild_select(other, conjuncts),
    }
}

fn rebuild_select(plan: Plan, conjuncts: Vec<Expr>) -> Plan {
    if conjuncts.is_empty() {
        plan
    } else {
        plan.select(Expr::and(conjuncts))
    }
}

fn resolves_all(e: &Expr, schema: &Schema) -> bool {
    e.columns().iter().all(|c| schema.resolve(c).is_ok())
}

// ---------------------------------------------------------------------------
// Pass 2: greedy join reordering
// ---------------------------------------------------------------------------

fn reorder_joins(plan: Plan, catalog: &Catalog) -> Plan {
    match plan {
        Plan::Join { .. } => {
            let original = plan.clone();
            let mut leaves = Vec::new();
            let mut conjuncts = Vec::new();
            if flatten_joins(plan, catalog, &mut leaves, &mut conjuncts).is_some() {
                rebuild_join_tree(leaves, conjuncts, catalog)
                    .unwrap_or_else(|| reorder_children_only(original, catalog))
            } else {
                reorder_children_only(original, catalog)
            }
        }
        Plan::Select { input, pred } => Plan::Select {
            input: Box::new(reorder_joins(*input, catalog)),
            pred,
        },
        Plan::Project { input, cols } => Plan::Project {
            input: Box::new(reorder_joins(*input, catalog)),
            cols,
        },
        Plan::SemiJoin { left, right, pred } => Plan::SemiJoin {
            left: Box::new(reorder_joins(*left, catalog)),
            right: Box::new(reorder_joins(*right, catalog)),
            pred,
        },
        Plan::AntiJoin { left, right, pred } => Plan::AntiJoin {
            left: Box::new(reorder_joins(*left, catalog)),
            right: Box::new(reorder_joins(*right, catalog)),
            pred,
        },
        Plan::Union { left, right } => Plan::Union {
            left: Box::new(reorder_joins(*left, catalog)),
            right: Box::new(reorder_joins(*right, catalog)),
        },
        Plan::Difference { left, right } => Plan::Difference {
            left: Box::new(reorder_joins(*left, catalog)),
            right: Box::new(reorder_joins(*right, catalog)),
        },
        Plan::Distinct(input) => Plan::Distinct(Box::new(reorder_joins(*input, catalog))),
        Plan::Rename { input, alias } => Plan::Rename {
            input: Box::new(reorder_joins(*input, catalog)),
            alias,
        },
        leaf => leaf,
    }
}

/// Recurse into a join's children without flattening this node (fallback
/// when safe rebinding is impossible).
fn reorder_children_only(plan: Plan, catalog: &Catalog) -> Plan {
    match plan {
        Plan::Join { left, right, pred } => Plan::Join {
            left: Box::new(reorder_joins(*left, catalog)),
            right: Box::new(reorder_joins(*right, catalog)),
            pred,
        },
        other => reorder_joins(other, catalog),
    }
}

/// A conjunct whose column references have been bound to concrete
/// (leaf index, column index) pairs, so it can be re-applied at any point
/// of a rebuilt join tree without name-capture bugs.
struct BoundConjunct {
    expr: Expr,
    /// For every distinct column reference in `expr`: where it binds.
    bindings: Vec<(ColRef, usize, usize)>,
    /// Set of leaf indices the conjunct touches.
    leaves: BTreeSet<usize>,
}

/// A join conjunct classified for arithmetic pair scoring, with every
/// column pre-bound to `(leaf index, column index)` — scoring a
/// candidate join pair then needs no plan walks or name resolution.
enum ConjunctKind {
    /// `col = col` across two leaves: `(leaf_a, col_a, leaf_b, col_b)`.
    Equi(usize, usize, usize, usize),
    /// The translation's ψ descriptor-consistency shape
    /// `Var ≠ Var' ∨ Rng = Rng'`, with both column pairs cross-leaf.
    Psi {
        var: (usize, usize, usize, usize),
        rng: (usize, usize, usize, usize),
    },
    /// Anything else: flat 0.5 selectivity.
    Other,
}

fn classify_conjunct(b: &BoundConjunct) -> ConjunctKind {
    let bind = |c: &ColRef| {
        b.bindings
            .iter()
            .find(|(r, _, _)| r == c)
            .map(|(_, leaf, local)| (*leaf, *local))
    };
    let cross_pair = |x: &Expr, y: &Expr| -> Option<(usize, usize, usize, usize)> {
        let (Expr::Col(cx), Expr::Col(cy)) = (x, y) else {
            return None;
        };
        let (lx, ix) = bind(cx)?;
        let (ly, iy) = bind(cy)?;
        (lx != ly).then_some((lx, ix, ly, iy))
    };
    match &b.expr {
        Expr::Cmp(CmpOp::Eq, a, bb) => cross_pair(a, bb)
            .map(|(la, ca, lb, cb)| ConjunctKind::Equi(la, ca, lb, cb))
            .unwrap_or(ConjunctKind::Other),
        Expr::Or(parts) => {
            if let [Expr::Cmp(CmpOp::Ne, na, nb), Expr::Cmp(CmpOp::Eq, ea, eb)] = parts.as_slice() {
                if let (Some(var), Some(rng)) = (cross_pair(na, nb), cross_pair(ea, eb)) {
                    return ConjunctKind::Psi { var, rng };
                }
            }
            ConjunctKind::Other
        }
        _ => ConjunctKind::Other,
    }
}

/// Flatten a join tree. Returns `None` (reordering aborted) if any
/// predicate column cannot be bound unambiguously at its original node.
fn flatten_joins(
    plan: Plan,
    catalog: &Catalog,
    leaves: &mut Vec<(Plan, Schema)>,
    conjuncts: &mut Vec<BoundConjunct>,
) -> Option<std::ops::Range<usize>> {
    match plan {
        Plan::Join { left, right, pred } => {
            let lr = flatten_joins(*left, catalog, leaves, conjuncts)?;
            let rr = flatten_joins(*right, catalog, leaves, conjuncts)?;
            let range = lr.start..rr.end;
            // Bind this node's conjuncts against the concatenated schema of
            // its own subtree, exactly as the original plan resolved them.
            let mut joint = Schema::default();
            let mut offsets = Vec::new();
            for (_, s) in &leaves[range.clone()] {
                offsets.push(joint.arity());
                joint = joint.concat(s);
            }
            for c in pred.conjuncts() {
                let mut bindings = Vec::new();
                let mut leaf_set = BTreeSet::new();
                for r in c.columns() {
                    let global = joint.resolve(&r).ok()?;
                    // Map the flat index back to (leaf, local).
                    let rel = offsets
                        .iter()
                        .rposition(|&o| o <= global)
                        .expect("offset exists");
                    let leaf_idx = range.start + rel;
                    let local = global - offsets[rel];
                    leaf_set.insert(leaf_idx);
                    bindings.push((r, leaf_idx, local));
                }
                conjuncts.push(BoundConjunct {
                    expr: c,
                    bindings,
                    leaves: leaf_set,
                });
            }
            Some(range)
        }
        other => {
            let reordered = reorder_joins(other, catalog);
            let schema = reordered.schema_shape(catalog).ok()?;
            let start = leaves.len();
            leaves.push((reordered, schema));
            Some(start..start + 1)
        }
    }
}

/// Greedily rebuild a flattened join tree, smallest estimated intermediate
/// first. Every leaf is wrapped in a fresh `__jK` alias and conjuncts are
/// rewritten to fully-qualified references, so rebinding is unambiguous in
/// any shape; a final projection restores the original output schema.
/// Returns `None` if a leaf has internally duplicated column names (then
/// the original shape is kept).
fn rebuild_join_tree(
    leaves: Vec<(Plan, Schema)>,
    conjuncts: Vec<BoundConjunct>,
    catalog: &Catalog,
) -> Option<Plan> {
    if leaves.len() == 1 {
        let (leaf, _) = leaves.into_iter().next().unwrap();
        let preds: Vec<Expr> = conjuncts.into_iter().map(|b| b.expr).collect();
        return Some(rebuild_select(leaf, preds));
    }
    // Leaf column names must be unique within each leaf for `__jK.name`
    // qualification to be unambiguous.
    for (_, s) in &leaves {
        let mut names: Vec<&str> = s.columns().iter().map(|c| &*c.name).collect();
        names.sort_unstable();
        if names.windows(2).any(|w| w[0] == w[1]) {
            return None;
        }
    }

    let original_schemas: Vec<Schema> = leaves.iter().map(|(_, s)| s.clone()).collect();

    // Per-leaf per-column distinct counts, traced once through the leaf
    // plans to the base-table statistics. Pair scoring below is then
    // pure arithmetic over these tables — the old code re-walked the
    // growing part plans for NDV on every pair of every round, which
    // dominated optimization time on the translated multi-join queries.
    let leaf_ndv: Vec<Vec<f64>> = leaves
        .iter()
        .map(|(p, s)| {
            let cache = EstCache::default();
            (0..s.arity())
                .map(|c| column_ndv(p, c, catalog, &cache))
                .collect()
        })
        .collect();
    // Adjacent-pair joint NDVs per leaf, for correlation-aware ψ
    // scoring (descriptor Var/Rng columns are adjacent by construction).
    let leaf_pair_ndv: Vec<Vec<Option<f64>>> = leaves
        .iter()
        .map(|(p, s)| {
            let cache = EstCache::default();
            (0..s.arity().saturating_sub(1))
                .map(|c| column_pair_ndv(p, c, c + 1, catalog, &cache))
                .collect()
        })
        .collect();

    // Rewrite conjuncts to `__jK.name` form and classify them for the
    // arithmetic scorer.
    let rewritten: Vec<(Expr, BTreeSet<usize>, ConjunctKind)> = conjuncts
        .into_iter()
        .map(|b| {
            let kind = classify_conjunct(&b);
            let expr = b.expr.map_columns(&|c| {
                b.bindings
                    .iter()
                    .find(|(r, _, _)| r == c)
                    .map(|(_, leaf, local)| {
                        ColRef::qualified(
                            format!("__j{leaf}"),
                            &*original_schemas[*leaf].columns()[*local].name,
                        )
                    })
                    .unwrap_or_else(|| c.clone())
            });
            (expr, b.leaves, kind)
        })
        .collect();

    // (plan, covered leaves, estimate, output schema) for each remaining
    // input. Schemas are carried and concatenated instead of re-derived:
    // `Plan::schema` re-compiles predicates, which made the pair loop
    // quadratically expensive on the translated multi-join plans.
    let mut parts: Vec<(Plan, BTreeSet<usize>, f64, Schema)> = leaves
        .into_iter()
        .enumerate()
        .map(|(k, (p, s))| {
            let est = est_rows(&p, catalog);
            let alias = format!("__j{k}");
            let schema = s.qualify(&alias);
            (p.rename(alias), BTreeSet::from([k]), est, schema)
        })
        .collect();
    let mut remaining: Vec<(Expr, BTreeSet<usize>, ConjunctKind)> = rewritten;

    // NDV clamped by a side's estimated rows (a column cannot have more
    // distinct values than the side has tuples).
    let ndv_at = |leaf: usize, col: usize, side_rows: f64| -> f64 {
        leaf_ndv[leaf][col].max(1.0).min(side_rows.max(1.0))
    };
    while parts.len() > 1 {
        let mut best: Option<(usize, usize, f64, bool)> = None;
        for i in 0..parts.len() {
            for j in (i + 1)..parts.len() {
                let (ei, ej) = (parts[i].2, parts[j].2);
                let mut est = ei * ej;
                let mut connected = false;
                for (_, ls, kind) in &remaining {
                    if !(ls.is_subset(&parts[i].1) || ls.is_subset(&parts[j].1))
                        && ls
                            .iter()
                            .all(|l| parts[i].1.contains(l) || parts[j].1.contains(l))
                    {
                        connected = true;
                        // Clamp each column's NDV by the rows of the side
                        // its leaf actually landed on.
                        let rows_of =
                            |leaf: &usize| if parts[i].1.contains(leaf) { ei } else { ej };
                        match kind {
                            ConjunctKind::Equi(la, ca, lb, cb) => {
                                est /= ndv_at(*la, *ca, rows_of(la)).max(ndv_at(
                                    *lb,
                                    *cb,
                                    rows_of(lb),
                                ));
                            }
                            ConjunctKind::Psi { var, rng } => {
                                let nv = ndv_at(var.0, var.1, rows_of(&var.0)).max(ndv_at(
                                    var.2,
                                    var.3,
                                    rows_of(&var.2),
                                ));
                                let nr = ndv_at(rng.0, rng.1, rows_of(&rng.0)).max(ndv_at(
                                    rng.2,
                                    rng.3,
                                    rows_of(&rng.2),
                                ));
                                // Joint (Var, Rng) NDV of one physical
                                // side, when its two columns sit on the
                                // same leaf adjacently.
                                let joint_of = |vleaf: usize, vcol: usize| -> Option<f64> {
                                    let (rl, rc) = if rng.0 == vleaf {
                                        (rng.0, rng.1)
                                    } else if rng.2 == vleaf {
                                        (rng.2, rng.3)
                                    } else {
                                        return None;
                                    };
                                    (rc == vcol + 1)
                                        .then(|| leaf_pair_ndv[rl].get(vcol).copied().flatten())
                                        .flatten()
                                };
                                let joint = match (joint_of(var.0, var.1), joint_of(var.2, var.3)) {
                                    (Some(a), Some(b)) => Some(a.max(b)),
                                    _ => None,
                                };
                                est *= psi_survival(nv, nr, joint);
                            }
                            ConjunctKind::Other => est *= 0.5,
                        }
                    }
                }
                let est = est.max(1.0).min(ei * ej);
                let score = if connected { est } else { est * 1e6 };
                if best.as_ref().is_none_or(|(_, _, b, _)| score < *b) {
                    best = Some((i, j, score, connected));
                }
            }
        }
        let (i, j, est, _) = best.expect("at least two parts");
        let (hi, lo) = if i > j { (i, j) } else { (j, i) };
        let (pj, cj, _, sj) = parts.remove(hi);
        let (pi, ci, _, si) = parts.remove(lo);
        let cover: BTreeSet<usize> = ci.union(&cj).cloned().collect();
        let mut preds = Vec::new();
        remaining.retain(|(e, ls, _)| {
            if ls.is_subset(&cover) {
                preds.push(e.clone());
                false
            } else {
                true
            }
        });
        let joined = pi.join(pj, Expr::and(preds));
        let joined_schema = si.concat(&sj);
        parts.push((joined, cover, est, joined_schema));
    }
    let (mut plan, _, _, _) = parts.into_iter().next().unwrap();
    // Any leftover predicates apply at the top (still in __j form).
    let leftover: Vec<Expr> = remaining.into_iter().map(|(e, _, _)| e).collect();
    plan = rebuild_select(plan, leftover);
    // Restore the original column names and order.
    let mut cols = Vec::new();
    for (k, s) in original_schemas.iter().enumerate() {
        for c in s.columns() {
            cols.push((
                Expr::Col(ColRef::qualified(format!("__j{k}"), &*c.name)),
                c.clone(),
            ));
        }
    }
    Some(Plan::Project {
        input: Box::new(plan),
        cols,
    })
}

// ---------------------------------------------------------------------------
// Cardinality estimation
// ---------------------------------------------------------------------------

/// Memo for repeated cardinality estimates (row counts *and* schema
/// shapes) over one immutably borrowed plan tree, keyed by node address.
/// Valid only while that borrow is live (the executor's prepare phase,
/// one estimation call) — node addresses are stable there because the
/// tree is never mutated.
#[derive(Default)]
pub(crate) struct EstCache {
    rows: std::cell::RefCell<crate::fxhash::FxHashMap<usize, f64>>,
    shapes: std::cell::RefCell<crate::fxhash::FxHashMap<usize, Schema>>,
}

/// Estimated output rows of a plan (used by reordering and EXPLAIN).
pub fn est_rows(plan: &Plan, catalog: &Catalog) -> f64 {
    est_rows_cached(plan, catalog, &EstCache::default())
}

/// [`est_rows`] with an explicit memo: the streaming executor estimates
/// both sides of every hash join to pick the build side, which revisits
/// the same subtrees O(joins) times per prepare.
pub(crate) fn est_rows_cached(plan: &Plan, catalog: &Catalog, cache: &EstCache) -> f64 {
    let key = plan as *const Plan as usize;
    if let Some(v) = cache.rows.borrow().get(&key) {
        return *v;
    }
    let v = est_rows_uncached(plan, catalog, cache);
    cache.rows.borrow_mut().insert(key, v);
    v
}

/// Memoized schema shape: estimation consults the schema of every
/// σ/join node, and deriving it fresh each time is quadratic in plan
/// size. Errors collapse to the empty schema (estimates stay defined).
fn shape_cached(plan: &Plan, catalog: &Catalog, cache: &EstCache) -> Schema {
    let key = plan as *const Plan as usize;
    if let Some(s) = cache.shapes.borrow().get(&key) {
        return s.clone();
    }
    let s = match plan {
        Plan::Scan(name) => catalog
            .get(name)
            .map(|r| r.schema().clone())
            .unwrap_or_default(),
        Plan::Values(rel) => rel.schema().clone(),
        Plan::Select { input, .. } | Plan::Distinct(input) => shape_cached(input, catalog, cache),
        Plan::Project { cols, .. } => Schema::new(cols.iter().map(|(_, n)| n.clone()).collect()),
        Plan::Join { left, right, .. } => {
            shape_cached(left, catalog, cache).concat(&shape_cached(right, catalog, cache))
        }
        Plan::SemiJoin { left, .. }
        | Plan::AntiJoin { left, .. }
        | Plan::Union { left, .. }
        | Plan::Difference { left, .. } => shape_cached(left, catalog, cache),
        Plan::Rename { input, alias } => shape_cached(input, catalog, cache).qualify(alias),
    };
    cache.shapes.borrow_mut().insert(key, s.clone());
    s
}

fn est_rows_uncached(plan: &Plan, catalog: &Catalog, cache: &EstCache) -> f64 {
    match plan {
        Plan::Scan(name) => catalog.stats(name).map(|s| s.rows as f64).unwrap_or(1000.0),
        Plan::Values(rel) => rel.len() as f64,
        Plan::Select { input, pred } => {
            let base = est_rows_cached(input, catalog, cache);
            let schema = shape_cached(input, catalog, cache);
            let mut sel = 1.0;
            pred.for_each_conjunct(&mut |c| {
                sel *= selectivity(c, input, &schema, catalog, cache);
            });
            (base * sel).max(1.0)
        }
        Plan::Project { input, .. } | Plan::Rename { input, .. } => {
            est_rows_cached(input, catalog, cache)
        }
        Plan::Distinct(input) => est_rows_cached(input, catalog, cache) * 0.9,
        Plan::Join { left, right, pred } => {
            let ls = shape_cached(left, catalog, cache);
            let rs = shape_cached(right, catalog, cache);
            let mut conjuncts: Vec<&Expr> = Vec::new();
            pred.for_each_conjunct(&mut |c| conjuncts.push(c));
            join_estimate(
                est_rows_cached(left, catalog, cache),
                est_rows_cached(right, catalog, cache),
                &conjuncts,
                left,
                &ls,
                right,
                &rs,
                catalog,
                cache,
            )
        }
        Plan::SemiJoin { left, .. } => est_rows_cached(left, catalog, cache) * 0.5,
        Plan::AntiJoin { left, .. } => est_rows_cached(left, catalog, cache) * 0.5,
        Plan::Union { left, right } => {
            est_rows_cached(left, catalog, cache) + est_rows_cached(right, catalog, cache)
        }
        Plan::Difference { left, .. } => est_rows_cached(left, catalog, cache),
    }
}

/// Resolve a column-column comparison's operands to (left index, right
/// index) across two schemas, in either written order.
fn cross_cols(a: &Expr, b: &Expr, ls: &Schema, rs: &Schema) -> Option<(usize, usize)> {
    let (Expr::Col(ca), Expr::Col(cb)) = (a, b) else {
        return None;
    };
    match (
        ls.resolve(ca).ok(),
        rs.resolve(ca).ok(),
        ls.resolve(cb).ok(),
        rs.resolve(cb).ok(),
    ) {
        (Some(li), None, None, Some(ri)) => Some((li, ri)),
        (None, Some(ri), Some(li), None) => Some((li, ri)),
        _ => None,
    }
}

#[allow(clippy::too_many_arguments)]
fn join_estimate(
    l_rows: f64,
    r_rows: f64,
    conjuncts: &[&Expr],
    left: &Plan,
    ls: &Schema,
    right: &Plan,
    rs: &Schema,
    catalog: &Catalog,
    cache: &EstCache,
) -> f64 {
    let ndv_pair = |li: usize, ri: usize| -> f64 {
        let ndv_l = column_ndv(left, li, catalog, cache)
            .max(1.0)
            .min(l_rows.max(1.0));
        let ndv_r = column_ndv(right, ri, catalog, cache)
            .max(1.0)
            .min(r_rows.max(1.0));
        ndv_l.max(ndv_r)
    };
    let mut est = l_rows * r_rows;
    for &c in conjuncts {
        if let Expr::Cmp(CmpOp::Eq, a, b) = c {
            if let Some((li, ri)) = cross_cols(a.as_ref(), b.as_ref(), ls, rs) {
                est /= ndv_pair(li, ri);
                continue;
            }
        }
        // The translation's ψ descriptor-consistency conjunct,
        // `D.Var ≠ D'.Var ∨ D.Rng = D'.Rng`, is nearly non-selective
        // when many variables exist: only the 1/ndv(Var) fraction of
        // pairs on the same variable is filtered by range equality.
        // Estimating it from the descriptor columns' distinct counts
        // (instead of the old flat 0.5 per conjunct) keeps ψ-joins from
        // looking artificially small, which previously skewed both the
        // greedy reorder and the executor's build-side choice.
        if let Expr::Or(parts) = c {
            if let [Expr::Cmp(CmpOp::Ne, na, nb), Expr::Cmp(CmpOp::Eq, ea, eb)] = parts.as_slice() {
                if let (Some((vl, vr)), Some((rl, rr))) = (
                    cross_cols(na.as_ref(), nb.as_ref(), ls, rs),
                    cross_cols(ea.as_ref(), eb.as_ref(), ls, rs),
                ) {
                    // Joint (Var, Rng) distinct counts, when both sides
                    // track the pair (descriptor columns are adjacent by
                    // construction), scored via the larger side.
                    let joint = match (
                        column_pair_ndv(left, vl, rl, catalog, cache),
                        column_pair_ndv(right, vr, rr, catalog, cache),
                    ) {
                        (Some(a), Some(b)) => Some(a.max(b)),
                        _ => None,
                    };
                    est *= psi_survival(ndv_pair(vl, vr), ndv_pair(rl, rr), joint);
                    continue;
                }
            }
        }
        est *= 0.5;
    }
    est.max(1.0)
}

/// Survival fraction of the ψ descriptor-consistency conjunct
/// `Var ≠ Var' ∨ Rng = Rng'`:
/// `1 − P(var eq) + P(var eq ∧ rng eq)`.
///
/// Var and Rng are *strongly correlated* — a range index is only
/// meaningful within its variable — so `P(both eq)` is estimated
/// jointly rather than as a product of independent selectivities:
///
/// * with joint statistics (the adjacent-pair distinct counts the
///   catalog tracks), the min-NDV combination `1 / joint_ndv` scores
///   the pair directly;
/// * without them, exponential backoff (`s_min · √s_max`) replaces full
///   independence (`s_min · s_max`) — the standard correlation hedge,
///   sitting between independence and perfect correlation.
pub(crate) fn psi_survival(ndv_var: f64, ndv_rng: f64, joint_ndv: Option<f64>) -> f64 {
    let p_var = 1.0 / ndv_var.max(1.0);
    let s_rng = 1.0 / ndv_rng.max(1.0);
    let p_both = match joint_ndv {
        // Joint NDV is at least the variable NDV (pairs refine firsts).
        Some(j) => 1.0 / j.max(ndv_var).max(1.0),
        None => {
            let (lo, hi) = if p_var <= s_rng {
                (p_var, s_rng)
            } else {
                (s_rng, p_var)
            };
            lo * hi.sqrt()
        }
    };
    (1.0 - p_var + p_both.min(p_var)).clamp(0.0, 1.0)
}

/// Joint NDV of an output column pair, traced to base-table adjacent-
/// pair statistics where possible (`None` when the pair cannot be traced
/// to a tracked adjacent pair — callers fall back to exponential
/// backoff).
fn column_pair_ndv(
    plan: &Plan,
    a: usize,
    b: usize,
    catalog: &Catalog,
    cache: &EstCache,
) -> Option<f64> {
    match plan {
        Plan::Scan(name) => catalog
            .stats(name)?
            .pair_ndv_adjacent(a, b)
            .map(|n| n as f64),
        Plan::Values(rel) => crate::stats::TableStats::compute(rel)
            .pair_ndv_adjacent(a, b)
            .map(|n| n as f64),
        Plan::Select { input, .. } | Plan::Distinct(input) | Plan::Rename { input, .. } => {
            column_pair_ndv(input, a, b, catalog, cache)
        }
        Plan::Project { input, cols } => {
            let (Some((Expr::Col(ca), _)), Some((Expr::Col(cb), _))) = (cols.get(a), cols.get(b))
            else {
                return None;
            };
            let shape = shape_cached(input, catalog, cache);
            let (ia, ib) = (shape.resolve(ca).ok()?, shape.resolve(cb).ok()?);
            column_pair_ndv(input, ia, ib, catalog, cache)
        }
        Plan::Join { left, right, .. } => {
            let la = shape_cached(left, catalog, cache).arity();
            if a < la && b < la {
                column_pair_ndv(left, a, b, catalog, cache)
            } else if a >= la && b >= la {
                column_pair_ndv(right, a - la, b - la, catalog, cache)
            } else {
                None
            }
        }
        Plan::SemiJoin { left, .. }
        | Plan::AntiJoin { left, .. }
        | Plan::Difference { left, .. } => column_pair_ndv(left, a, b, catalog, cache),
        Plan::Union { left, right } => {
            let l = column_pair_ndv(left, a, b, catalog, cache)?;
            let r = column_pair_ndv(right, a, b, catalog, cache)?;
            Some(l + r)
        }
    }
}

fn selectivity(
    conjunct: &Expr,
    input: &Plan,
    schema: &Schema,
    catalog: &Catalog,
    cache: &EstCache,
) -> f64 {
    match conjunct {
        Expr::Cmp(op, a, b) => match (a.as_ref(), b.as_ref()) {
            (Expr::Col(c), Expr::Lit(v)) => {
                col_lit_selectivity(*op, c, v, input, schema, catalog, cache)
            }
            (Expr::Lit(v), Expr::Col(c)) => {
                col_lit_selectivity(op.flipped(), c, v, input, schema, catalog, cache)
            }
            // Column-column comparisons estimate from the larger side's
            // distinct count (descriptor Var/Rng columns hit this).
            (Expr::Col(ca), Expr::Col(cb)) => {
                let ndv = match (schema.resolve(ca), schema.resolve(cb)) {
                    (Ok(ia), Ok(ib)) => column_ndv(input, ia, catalog, cache)
                        .max(column_ndv(input, ib, catalog, cache))
                        .max(1.0),
                    _ => 10.0,
                };
                match op {
                    CmpOp::Eq => (1.0 / ndv).min(1.0),
                    CmpOp::Ne => (1.0 - 1.0 / ndv).max(0.0),
                    _ => 0.33,
                }
            }
            _ => match op {
                CmpOp::Eq => 0.1,
                _ => 0.33,
            },
        },
        Expr::And(parts) => parts
            .iter()
            .map(|p| selectivity(p, input, schema, catalog, cache))
            .product(),
        Expr::Or(parts) => parts
            .iter()
            .map(|p| selectivity(p, input, schema, catalog, cache))
            .sum::<f64>()
            .min(1.0),
        Expr::Not(e) => 1.0 - selectivity(e, input, schema, catalog, cache),
        Expr::Lit(crate::value::Value::Bool(true)) => 1.0,
        Expr::Lit(crate::value::Value::Bool(false)) => 0.0,
        _ => 0.5,
    }
}

/// Selectivity of a normalized `col op literal` conjunct (literal-first
/// comparisons arrive here with `op` already flipped). Equality divides
/// by the distinct count; ranges interpolate within the column's known
/// integer bounds (zone-map min/max folded into [`TableStats`]) and fall
/// back to the flat 1/3 guess when no bounds are known.
#[allow(clippy::too_many_arguments)]
fn col_lit_selectivity(
    op: CmpOp,
    c: &ColRef,
    v: &crate::value::Value,
    input: &Plan,
    schema: &Schema,
    catalog: &Catalog,
    cache: &EstCache,
) -> f64 {
    match op {
        CmpOp::Eq => {
            let ndv = schema
                .resolve(c)
                .ok()
                .map(|i| column_ndv(input, i, catalog, cache))
                .unwrap_or(10.0);
            (1.0 / ndv.max(1.0)).min(1.0)
        }
        CmpOp::Ne => 0.9,
        _ => {
            let bounds = schema
                .resolve(c)
                .ok()
                .and_then(|i| column_minmax(input, i, catalog, cache));
            match (bounds, v) {
                (Some((lo, hi)), crate::value::Value::Int(k)) => range_fraction(op, *k, lo, hi),
                _ => 0.33,
            }
        }
    }
}

/// Uniform interpolation of `col op k` within known bounds `[lo, hi]`,
/// clamped away from 0 and 1 so stale or skewed bounds can never zero
/// out (or saturate) an estimate and starve the join-order search.
fn range_fraction(op: CmpOp, k: i64, lo: i64, hi: i64) -> f64 {
    let span = ((hi as i128 - lo as i128) + 1) as f64;
    let frac = |n: i128| (n as f64 / span).clamp(0.05, 0.95);
    let (k, lo, hi) = (k as i128, lo as i128, hi as i128);
    match op {
        CmpOp::Lt => frac(k - lo),
        CmpOp::Le => frac(k - lo + 1),
        CmpOp::Gt => frac(hi - k),
        CmpOp::Ge => frac(hi - k + 1),
        // Equality never reaches here (handled by the NDV path).
        CmpOp::Eq | CmpOp::Ne => 0.33,
    }
}

/// Integer min/max of a plan output column, traced through the
/// operators down to base-table statistics (populated from the zone
/// maps under segmented storage, or the columnar fold under plain).
/// `None` when the column is not integer-typed or has no known bounds;
/// selections deliberately pass bounds through unchanged — a superset
/// range only makes the interpolation conservative.
fn column_minmax(
    plan: &Plan,
    idx: usize,
    catalog: &Catalog,
    cache: &EstCache,
) -> Option<(i64, i64)> {
    use crate::value::Value;
    match plan {
        Plan::Scan(name) => match catalog.stats(name)?.minmax(idx)? {
            (Value::Int(lo), Value::Int(hi)) => Some((*lo, *hi)),
            _ => None,
        },
        Plan::Values(rel) => match crate::stats::TableStats::compute(rel).minmax(idx)? {
            (Value::Int(lo), Value::Int(hi)) => Some((*lo, *hi)),
            _ => None,
        },
        Plan::Select { input, .. } | Plan::Distinct(input) | Plan::Rename { input, .. } => {
            column_minmax(input, idx, catalog, cache)
        }
        Plan::Project { input, cols } => match cols.get(idx) {
            Some((Expr::Col(c), _)) => shape_cached(input, catalog, cache)
                .resolve(c)
                .ok()
                .and_then(|i| column_minmax(input, i, catalog, cache)),
            _ => None,
        },
        Plan::Join { left, right, .. } => {
            let la = shape_cached(left, catalog, cache).arity();
            if idx < la {
                column_minmax(left, idx, catalog, cache)
            } else {
                column_minmax(right, idx - la, catalog, cache)
            }
        }
        Plan::SemiJoin { left, .. }
        | Plan::AntiJoin { left, .. }
        | Plan::Difference { left, .. } => column_minmax(left, idx, catalog, cache),
        Plan::Union { left, right } => {
            let (llo, lhi) = column_minmax(left, idx, catalog, cache)?;
            let (rlo, rhi) = column_minmax(right, idx, catalog, cache)?;
            Some((llo.min(rlo), lhi.max(rhi)))
        }
    }
}

/// NDV of a plan output column, traced through the operators down to the
/// base-table statistics where possible (the catalog computes exact
/// per-column distinct counts from the columnar image at registration).
fn column_ndv(plan: &Plan, idx: usize, catalog: &Catalog, cache: &EstCache) -> f64 {
    match plan {
        Plan::Scan(name) => catalog
            .stats(name)
            .map(|s| s.ndv_or_default(idx) as f64)
            .unwrap_or(10.0),
        Plan::Values(rel) => crate::stats::TableStats::compute(rel).ndv_or_default(idx) as f64,
        Plan::Select { input, .. } | Plan::Distinct(input) | Plan::Rename { input, .. } => {
            column_ndv(input, idx, catalog, cache)
        }
        Plan::Project { input, cols } => match cols.get(idx) {
            Some((Expr::Col(c), _)) => shape_cached(input, catalog, cache)
                .resolve(c)
                .ok()
                .map(|i| column_ndv(input, i, catalog, cache))
                .unwrap_or(10.0),
            Some((Expr::Lit(_), _)) => 1.0,
            _ => est_rows_cached(plan, catalog, cache),
        },
        Plan::Join { left, right, .. } => {
            let la = shape_cached(left, catalog, cache).arity();
            if idx < la {
                column_ndv(left, idx, catalog, cache)
            } else {
                column_ndv(right, idx - la, catalog, cache)
            }
        }
        Plan::SemiJoin { left, .. } | Plan::AntiJoin { left, .. } => {
            column_ndv(left, idx, catalog, cache)
        }
        Plan::Union { left, right } => {
            column_ndv(left, idx, catalog, cache) + column_ndv(right, idx, catalog, cache)
        }
        Plan::Difference { left, .. } => column_ndv(left, idx, catalog, cache),
    }
}

// ---------------------------------------------------------------------------
// Pass 3: projection pruning above join inputs
// ---------------------------------------------------------------------------

fn prune_projections(plan: Plan, catalog: &Catalog, needed: Option<&BTreeSet<ColRef>>) -> Plan {
    match plan {
        Plan::Project { input, cols } => {
            // Drop projection outputs the parent does not need (safe in bag
            // semantics: arity changes, multiplicity does not). Positional
            // parents pass `needed = None` and keep everything.
            let cols: Vec<_> = match needed {
                Some(n) => {
                    let kept: Vec<_> = cols
                        .iter()
                        .filter(|(_, name)| n.iter().any(|u| name.matches(u)))
                        .cloned()
                        .collect();
                    if kept.is_empty() {
                        cols.into_iter().take(1).collect()
                    } else {
                        kept
                    }
                }
                None => cols,
            };
            let used: BTreeSet<ColRef> = cols.iter().flat_map(|(e, _)| e.columns()).collect();
            Plan::Project {
                input: Box::new(prune_projections(*input, catalog, Some(&used))),
                cols,
            }
        }
        Plan::Select { input, pred } => {
            let mut used: BTreeSet<ColRef> = pred.columns();
            match needed {
                Some(n) => used.extend(n.iter().cloned()),
                None => {
                    return Plan::Select {
                        input: Box::new(prune_projections(*input, catalog, None)),
                        pred,
                    }
                }
            }
            Plan::Select {
                input: Box::new(prune_projections(*input, catalog, Some(&used))),
                pred,
            }
        }
        Plan::Join { left, right, pred } => {
            let mut used: BTreeSet<ColRef> = pred.columns();
            let all_needed = needed.is_none();
            if let Some(n) = needed {
                used.extend(n.iter().cloned());
            }
            let l = prune_side(*left, catalog, &used, all_needed);
            let r = prune_side(*right, catalog, &used, all_needed);
            Plan::Join {
                left: Box::new(l),
                right: Box::new(r),
                pred,
            }
        }
        Plan::SemiJoin { left, right, pred } => {
            let mut lneed: BTreeSet<ColRef> = pred.columns();
            let all_needed = needed.is_none();
            if let Some(n) = needed {
                lneed.extend(n.iter().cloned());
            }
            let l = prune_side(*left, catalog, &lneed, all_needed);
            let r = prune_side(*right, catalog, &pred.columns(), false);
            Plan::SemiJoin {
                left: Box::new(l),
                right: Box::new(r),
                pred,
            }
        }
        Plan::AntiJoin { left, right, pred } => {
            let mut lneed: BTreeSet<ColRef> = pred.columns();
            let all_needed = needed.is_none();
            if let Some(n) = needed {
                lneed.extend(n.iter().cloned());
            }
            let l = prune_side(*left, catalog, &lneed, all_needed);
            let r = prune_side(*right, catalog, &pred.columns(), false);
            Plan::AntiJoin {
                left: Box::new(l),
                right: Box::new(r),
                pred,
            }
        }
        // Positional / set-sensitive operators: stop propagating needs.
        Plan::Union { left, right } => Plan::Union {
            left: Box::new(prune_projections(*left, catalog, None)),
            right: Box::new(prune_projections(*right, catalog, None)),
        },
        Plan::Difference { left, right } => Plan::Difference {
            left: Box::new(prune_projections(*left, catalog, None)),
            right: Box::new(prune_projections(*right, catalog, None)),
        },
        Plan::Distinct(input) => Plan::Distinct(Box::new(prune_projections(*input, catalog, None))),
        Plan::Rename { input, alias } => {
            // Strip the alias qualifier to express needs in terms of the
            // inner schema; foreign-qualified refs cannot match inside.
            let inner_needed: Option<BTreeSet<ColRef>> = needed.map(|n| {
                n.iter()
                    .filter_map(|c| match &c.qualifier {
                        Some(q) if **q == *alias => Some(c.unqualified()),
                        Some(_) => None,
                        None => Some(c.clone()),
                    })
                    .collect()
            });
            Plan::Rename {
                input: Box::new(prune_projections(*input, catalog, inner_needed.as_ref())),
                alias,
            }
        }
        leaf => leaf,
    }
}

/// Insert a narrowing projection above a join input when the parent needs
/// strictly fewer columns than the input produces.
fn prune_side(side: Plan, catalog: &Catalog, used: &BTreeSet<ColRef>, all_needed: bool) -> Plan {
    let pruned = prune_projections(side, catalog, if all_needed { None } else { Some(used) });
    if all_needed {
        return pruned;
    }
    let Ok(schema) = pruned.schema_shape(catalog) else {
        return pruned;
    };
    let keep: Vec<ColRef> = schema
        .columns()
        .iter()
        .filter(|c| used.iter().any(|u| c.matches(u)))
        .cloned()
        .collect();
    if keep.is_empty() || keep.len() == schema.arity() {
        return pruned;
    }
    // Keep fully-qualified output names so references above stay valid.
    Plan::Project {
        input: Box::new(pruned),
        cols: keep
            .into_iter()
            .map(|c| (Expr::Col(c.clone()), c))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::expr::{col, lit_i64, lit_str};
    use crate::relation::Relation;
    use crate::value::Value;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let mut big = Vec::new();
        for i in 0..200 {
            big.push(vec![Value::Int(i), Value::Int(i % 10), Value::str("pay")]);
        }
        c.insert("big", Relation::from_rows(["k", "fk", "pay"], big).unwrap());
        let mut small = Vec::new();
        for i in 0..10 {
            small.push(vec![Value::Int(i), Value::str(format!("g{i}"))]);
        }
        c.insert("small", Relation::from_rows(["g", "gname"], small).unwrap());
        c
    }

    fn assert_equivalent(p: &Plan, c: &Catalog) {
        let opt = optimize(p, c).unwrap();
        let before = execute(p, c).unwrap();
        let after = execute(&opt, c).unwrap();
        assert!(
            before.set_eq(&after),
            "optimization changed results:\nplan: {p:?}\nopt: {opt:?}"
        );
    }

    #[test]
    fn pushdown_preserves_semantics() {
        let c = catalog();
        let p = Plan::scan("big")
            .join(Plan::scan("small"), col("fk").eq(col("g")))
            .select(Expr::and([
                col("k").lt(lit_i64(50)),
                col("gname").eq(lit_str("g3")),
            ]))
            .project_names(["k", "gname"]);
        assert_equivalent(&p, &c);
        // And the selection actually moved below the join.
        let opt = optimize(&p, &c).unwrap();
        fn select_above_join(p: &Plan) -> bool {
            match p {
                Plan::Select { input, .. } => {
                    matches!(**input, Plan::Join { .. }) || select_above_join(input)
                }
                Plan::Project { input, .. }
                | Plan::Distinct(input)
                | Plan::Rename { input, .. } => select_above_join(input),
                Plan::Join { left, right, .. } => {
                    select_above_join(left) || select_above_join(right)
                }
                _ => false,
            }
        }
        assert!(!select_above_join(&opt), "selection not pushed: {opt:?}");
    }

    #[test]
    fn reorder_handles_three_way_join() {
        let c = catalog();
        let p = Plan::scan("big")
            .join(Plan::scan("small"), col("fk").eq(col("g")))
            .join(Plan::scan("small").rename("s2"), col("fk").eq(col("s2.g")));
        assert_equivalent(&p, &c);
    }

    #[test]
    fn pruning_narrows_join_inputs() {
        let c = catalog();
        let p = Plan::scan("big")
            .join(Plan::scan("small"), col("fk").eq(col("g")))
            .project_names(["k"]);
        let opt = optimize(&p, &c).unwrap();
        assert_equivalent(&p, &c);
        // The join's left input should now produce at most 2 columns
        // (k, fk) instead of 3.
        fn max_join_input_arity(p: &Plan, c: &Catalog) -> usize {
            match p {
                Plan::Join { left, right, .. } => {
                    let la = left.schema(c).map(|s| s.arity()).unwrap_or(0);
                    let ra = right.schema(c).map(|s| s.arity()).unwrap_or(0);
                    la.max(ra)
                        .max(max_join_input_arity(left, c))
                        .max(max_join_input_arity(right, c))
                }
                Plan::Select { input, .. }
                | Plan::Project { input, .. }
                | Plan::Distinct(input)
                | Plan::Rename { input, .. } => max_join_input_arity(input, c),
                _ => 0,
            }
        }
        assert!(max_join_input_arity(&opt, &c) <= 2, "{opt:?}");
    }

    #[test]
    fn psi_descriptor_conjuncts_estimate_from_ndv() {
        // Two descriptor-bearing partitions: 10 distinct variables, a
        // handful of ranges. The ψ conjunct (Var≠Var' ∨ Rng=Rng') keeps
        // almost every pair — only same-variable pairs with differing
        // ranges drop — so its estimate must sit near the cross product,
        // not at the old flat 0.5 per conjunct.
        let mut c = Catalog::new();
        for name in ["u1", "u2"] {
            let rows: Vec<Vec<Value>> = (0..100)
                .map(|i| vec![Value::Int(i % 10), Value::Int(i % 3), Value::Int(i)])
                .collect();
            let cols = if name == "u1" {
                ["v1", "r1", "a"]
            } else {
                ["v2", "r2", "b"]
            };
            c.insert(name, Relation::from_rows(cols, rows).unwrap());
        }
        let psi = Expr::or([col("v1").ne(col("v2")), col("r1").eq(col("r2"))]);
        let p = Plan::scan("u1").join(Plan::scan("u2"), psi);
        let est = est_rows(&p, &c);
        let cross = 100.0 * 100.0;
        // True survivor fraction is 1 - (1/10)·(1 - 1/3) ≈ 0.93.
        assert!(
            est > 0.8 * cross,
            "ψ estimate should be nearly non-selective, got {est} of {cross}"
        );
        // A genuine equi conjunct still divides by NDV.
        let equi = Plan::scan("u1").join(Plan::scan("u2"), col("v1").eq(col("v2")));
        assert!(est_rows(&equi, &c) <= cross / 9.0);
        // Column-column σ selectivity is NDV-driven too.
        let ne = Plan::scan("u1").select(col("v1").ne(col("r1")));
        let eq = Plan::scan("u1").select(col("v1").eq(col("r1")));
        assert!(est_rows(&ne, &c) > est_rows(&eq, &c));
    }

    #[test]
    fn range_selectivity_interpolates_within_minmax_bounds() {
        // 100 rows with a uniform 0..100 column: `a < 10` should
        // estimate near 10 rows, `a < 90` near 90 — not both at the old
        // flat 1/3 — and the clamp keeps out-of-range literals nonzero.
        let mut c = Catalog::new();
        c.insert(
            "t",
            Relation::from_rows(
                ["a"],
                (0..100i64).map(|i| vec![Value::Int(i)]).collect::<Vec<_>>(),
            )
            .unwrap(),
        );
        let est = |p: &Plan| est_rows(p, &c);
        let narrow = est(&Plan::scan("t").select(col("a").lt(lit_i64(10))));
        let wide = est(&Plan::scan("t").select(col("a").lt(lit_i64(90))));
        assert!((narrow - 10.0).abs() < 1.0, "narrow: {narrow}");
        assert!((wide - 90.0).abs() < 1.0, "wide: {wide}");
        // Literal-first comparisons flip: `10 > a` ≡ `a < 10`.
        let flipped = est(&Plan::scan("t").select(lit_i64(10).gt(col("a"))));
        assert!((flipped - narrow).abs() < 1e-9, "{flipped} vs {narrow}");
        // Out-of-range literals clamp instead of zeroing out.
        let below = est(&Plan::scan("t").select(col("a").lt(lit_i64(-5))));
        assert!(below >= 5.0 && below < narrow, "below: {below}");
    }

    #[test]
    fn psi_correlated_pairs_score_jointly() {
        // The survival formula at its anchor points: perfect correlation
        // (joint NDV = var NDV) makes the ψ conjunct a tautology on
        // same-variable pairs; full independence (joint = product)
        // reproduces the old estimate; backoff sits strictly between.
        let perfect = psi_survival(10.0, 10.0, Some(10.0));
        assert!((perfect - 1.0).abs() < 1e-12, "{perfect}");
        let independent = psi_survival(10.0, 10.0, Some(100.0));
        assert!((independent - 0.91).abs() < 1e-12, "{independent}");
        let backoff = psi_survival(10.0, 10.0, None);
        assert!(
            independent < backoff && backoff < perfect,
            "backoff {backoff} must sit between {independent} and {perfect}"
        );

        // End to end: Rng a function of Var (the correlated-descriptor
        // shape) ⇒ the ψ-join estimate reaches the cross product, which
        // the independence-based estimate structurally cannot.
        let mut c = Catalog::new();
        for name in ["u1", "u2"] {
            let rows: Vec<Vec<Value>> = (0..100)
                .map(|i| vec![Value::Int(i % 10), Value::Int((i % 10) * 7), Value::Int(i)])
                .collect();
            let cols = if name == "u1" {
                ["v1", "r1", "a"]
            } else {
                ["v2", "r2", "b"]
            };
            c.insert(name, Relation::from_rows(cols, rows).unwrap());
        }
        let psi = Expr::or([col("v1").ne(col("v2")), col("r1").eq(col("r2"))]);
        let p = Plan::scan("u1").join(Plan::scan("u2"), psi);
        let est = est_rows(&p, &c);
        let cross = 100.0 * 100.0;
        assert!(
            est > 0.999 * cross,
            "fully correlated ψ is a tautology; estimate {est} of {cross}"
        );
        // A genuinely independent pair still discounts: same tables but
        // comparing the non-adjacent (v, payload) columns gives no joint
        // stats, so backoff applies and the estimate drops below cross.
        let loose = Expr::or([col("v1").ne(col("v2")), col("a").eq(col("b"))]);
        let p = Plan::scan("u1").join(Plan::scan("u2"), loose);
        assert!(est_rows(&p, &c) < 0.999 * cross);
    }

    #[test]
    fn estimates_favor_selective_side() {
        let c = catalog();
        let selective = Plan::scan("big").select(col("k").eq(lit_i64(7)));
        let loose = Plan::scan("big");
        assert!(est_rows(&selective, &c) < est_rows(&loose, &c));
    }

    #[test]
    fn optimize_union_difference_distinct() {
        let c = catalog();
        let ids = Plan::scan("big").project_names(["fk"]);
        let p = ids.clone().union(ids.clone()).distinct().difference(
            Plan::scan("small")
                .project_names(["g"])
                .select(col("g").gt(lit_i64(5))),
        );
        assert_equivalent(&p, &c);
    }

    #[test]
    fn redundant_distincts_are_stripped() {
        let c = catalog();
        fn distinct_count(p: &Plan) -> usize {
            match p {
                Plan::Distinct(input) => 1 + distinct_count(input),
                Plan::Select { input, .. }
                | Plan::Project { input, .. }
                | Plan::Rename { input, .. } => distinct_count(input),
                Plan::Join { left, right, .. }
                | Plan::SemiJoin { left, right, .. }
                | Plan::AntiJoin { left, right, .. }
                | Plan::Union { left, right }
                | Plan::Difference { left, right } => distinct_count(left) + distinct_count(right),
                _ => 0,
            }
        }
        // δ(σ(δ(x))) → δ(σ(x)); δ under either Difference side goes too.
        let p = Plan::scan("small")
            .distinct()
            .select(col("g").gt(lit_i64(2)))
            .distinct()
            .difference(Plan::scan("small").distinct());
        assert_eq!(distinct_count(&p), 3);
        let opt = optimize(&p, &c).unwrap();
        assert_eq!(distinct_count(&opt), 0, "{opt:?}");
        assert_equivalent(&p, &c);
        // A lone δ that actually dedups is kept.
        let keep = Plan::scan("big").project_names(["fk"]).distinct();
        let opt = optimize(&keep, &c).unwrap();
        assert_eq!(distinct_count(&opt), 1, "{opt:?}");
    }

    #[test]
    fn pushdown_through_rename() {
        let c = catalog();
        let p = Plan::scan("big")
            .rename("b")
            .select(col("b.k").lt(lit_i64(3)));
        assert_equivalent(&p, &c);
        let opt = optimize(&p, &c).unwrap();
        // The rename should now sit above the selection.
        assert!(
            matches!(&opt, Plan::Rename { input, .. } if matches!(**input, Plan::Select { .. })),
            "{opt:?}"
        );
    }
}
