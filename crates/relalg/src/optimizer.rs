//! Heuristic + cost-based plan optimization.
//!
//! Three passes, in the spirit of what PostgreSQL did for the paper's
//! translated queries (Section 6: "due to the simplicity of our rewritings,
//! PostgreSQL optimizes the queries in a fairly good way"):
//!
//! 1. **Selection pushdown** — conjuncts are split and routed below joins
//!    and through projections/renames as far as their columns allow.
//! 2. **Join reordering** — maximal inner-join trees are flattened and
//!    rebuilt greedily, smallest estimated intermediate first, using
//!    `|L⋈R| ≈ |L|·|R| / max(ndv)` with NDV traced to base-table stats.
//! 3. **Projection pruning** — narrowing projections are inserted above
//!    join inputs so only live columns flow through joins (the paper's
//!    "late materialization" benefit depends on this).
//! 4. **Redundant-distinct elimination** — a `Distinct` whose parent
//!    already deduplicates (another `Distinct`, or either side of a
//!    `Difference`, which has set semantics) is stripped. Under the
//!    streaming executor every `Distinct` is a pipeline breaker with a
//!    seen-set buffer, so dropping redundant ones removes real
//!    materializations, not just plan noise.

use crate::catalog::Catalog;
use crate::error::Result;
use crate::expr::{CmpOp, Expr};
use crate::plan::Plan;
use crate::schema::{ColRef, Schema};
use std::collections::BTreeSet;

/// Optimize a plan: pushdown, reorder, prune. The result is equivalent
/// (same bag of tuples up to row order) and usually much faster.
pub fn optimize(plan: &Plan, catalog: &Catalog) -> Result<Plan> {
    // Validate input while we are at it: schema() errors early.
    plan.schema(catalog)?;
    let p = push_selections(plan.clone(), catalog);
    let p = reorder_joins(p, catalog);
    let p = prune_projections(p, catalog, None);
    let p = strip_redundant_distinct(p, false);
    p.schema(catalog)?; // invariant: optimization preserves well-formedness
    Ok(p)
}

// ---------------------------------------------------------------------------
// Pass 4: redundant-distinct elimination
// ---------------------------------------------------------------------------

/// Drop `Distinct` nodes whose output reaches a deduplicating operator
/// anyway. `deduped` is true when an ancestor already imposes set
/// semantics on this subtree's multiplicities: another `Distinct`, or a
/// `Difference` (SQL `EXCEPT` both dedups its left side and only tests
/// membership on its right). The flag propagates through σ and ρ (which
/// preserve "is a set") and conservatively resets at every other
/// operator.
fn strip_redundant_distinct(plan: Plan, deduped: bool) -> Plan {
    match plan {
        Plan::Distinct(input) if deduped => strip_redundant_distinct(*input, true),
        Plan::Distinct(input) => Plan::Distinct(Box::new(strip_redundant_distinct(*input, true))),
        // σ over a set stays a set: keep propagating.
        Plan::Select { input, pred } => Plan::Select {
            input: Box::new(strip_redundant_distinct(*input, deduped)),
            pred,
        },
        // ρ is a pure schema change.
        Plan::Rename { input, alias } => Plan::Rename {
            input: Box::new(strip_redundant_distinct(*input, deduped)),
            alias,
        },
        // Difference has set semantics on its own output and only tests
        // membership on the right: Distinct directly under either side
        // is redundant.
        Plan::Difference { left, right } => Plan::Difference {
            left: Box::new(strip_redundant_distinct(*left, true)),
            right: Box::new(strip_redundant_distinct(*right, true)),
        },
        // Everything else resets the flag for its children.
        Plan::Project { input, cols } => Plan::Project {
            input: Box::new(strip_redundant_distinct(*input, false)),
            cols,
        },
        Plan::Join { left, right, pred } => Plan::Join {
            left: Box::new(strip_redundant_distinct(*left, false)),
            right: Box::new(strip_redundant_distinct(*right, false)),
            pred,
        },
        Plan::SemiJoin { left, right, pred } => Plan::SemiJoin {
            left: Box::new(strip_redundant_distinct(*left, false)),
            right: Box::new(strip_redundant_distinct(*right, false)),
            pred,
        },
        Plan::AntiJoin { left, right, pred } => Plan::AntiJoin {
            left: Box::new(strip_redundant_distinct(*left, false)),
            right: Box::new(strip_redundant_distinct(*right, false)),
            pred,
        },
        Plan::Union { left, right } => Plan::Union {
            left: Box::new(strip_redundant_distinct(*left, false)),
            right: Box::new(strip_redundant_distinct(*right, false)),
        },
        leaf => leaf,
    }
}

// ---------------------------------------------------------------------------
// Pass 1: selection pushdown
// ---------------------------------------------------------------------------

fn push_selections(plan: Plan, catalog: &Catalog) -> Plan {
    match plan {
        Plan::Select { input, pred } => {
            let inner = push_selections(*input, catalog);
            push_pred_into(inner, pred, catalog)
        }
        Plan::Project { input, cols } => Plan::Project {
            input: Box::new(push_selections(*input, catalog)),
            cols,
        },
        Plan::Join { left, right, pred } => Plan::Join {
            left: Box::new(push_selections(*left, catalog)),
            right: Box::new(push_selections(*right, catalog)),
            pred,
        },
        Plan::SemiJoin { left, right, pred } => Plan::SemiJoin {
            left: Box::new(push_selections(*left, catalog)),
            right: Box::new(push_selections(*right, catalog)),
            pred,
        },
        Plan::AntiJoin { left, right, pred } => Plan::AntiJoin {
            left: Box::new(push_selections(*left, catalog)),
            right: Box::new(push_selections(*right, catalog)),
            pred,
        },
        Plan::Union { left, right } => Plan::Union {
            left: Box::new(push_selections(*left, catalog)),
            right: Box::new(push_selections(*right, catalog)),
        },
        Plan::Difference { left, right } => Plan::Difference {
            left: Box::new(push_selections(*left, catalog)),
            right: Box::new(push_selections(*right, catalog)),
        },
        Plan::Distinct(input) => Plan::Distinct(Box::new(push_selections(*input, catalog))),
        Plan::Rename { input, alias } => Plan::Rename {
            input: Box::new(push_selections(*input, catalog)),
            alias,
        },
        leaf => leaf,
    }
}

/// Push a predicate as deep as possible into an (already pushed) plan.
fn push_pred_into(plan: Plan, pred: Expr, catalog: &Catalog) -> Plan {
    let conjuncts = pred.conjuncts();
    if conjuncts.is_empty() {
        return plan;
    }
    match plan {
        Plan::Select { input, pred: inner } => {
            // Merge and retry as one predicate set.
            let merged = Expr::and(conjuncts.into_iter().chain(inner.conjuncts()));
            push_pred_into(*input, merged, catalog)
        }
        Plan::Join {
            left,
            right,
            pred: jp,
        } => {
            let ls = match left.schema(catalog) {
                Ok(s) => s,
                Err(_) => {
                    return rebuild_select(
                        Plan::Join {
                            left,
                            right,
                            pred: jp,
                        },
                        conjuncts,
                    )
                }
            };
            let rs = match right.schema(catalog) {
                Ok(s) => s,
                Err(_) => {
                    return rebuild_select(
                        Plan::Join {
                            left,
                            right,
                            pred: jp,
                        },
                        conjuncts,
                    )
                }
            };
            let mut to_left = Vec::new();
            let mut to_right = Vec::new();
            let mut to_join = Vec::new();
            for c in conjuncts {
                if resolves_all(&c, &ls) {
                    to_left.push(c);
                } else if resolves_all(&c, &rs) {
                    to_right.push(c);
                } else {
                    to_join.push(c);
                }
            }
            let new_left = if to_left.is_empty() {
                *left
            } else {
                push_pred_into(*left, Expr::and(to_left), catalog)
            };
            let new_right = if to_right.is_empty() {
                *right
            } else {
                push_pred_into(*right, Expr::and(to_right), catalog)
            };
            Plan::Join {
                left: Box::new(new_left),
                right: Box::new(new_right),
                pred: Expr::and(jp.conjuncts().into_iter().chain(to_join)),
            }
        }
        Plan::Project { input, cols } => {
            // Push through iff every referenced output column is a plain
            // column alias; rewrite references to the input names.
            let all_cols: BTreeSet<ColRef> = conjuncts.iter().flat_map(|c| c.columns()).collect();
            let mut mapping = Vec::new();
            let mut pushable = true;
            'outer: for r in &all_cols {
                for (e, name) in &cols {
                    if name.matches(r) || (r.qualifier.is_none() && name.name == r.name) {
                        if let Expr::Col(src) = e {
                            mapping.push((r.clone(), src.clone()));
                            continue 'outer;
                        }
                    }
                }
                pushable = false;
                break;
            }
            if pushable {
                let rewritten = Expr::and(conjuncts).map_columns(&|c| {
                    mapping
                        .iter()
                        .find(|(from, _)| from == c)
                        .map(|(_, to)| to.clone())
                        .unwrap_or_else(|| c.clone())
                });
                Plan::Project {
                    input: Box::new(push_pred_into(*input, rewritten, catalog)),
                    cols,
                }
            } else {
                rebuild_select(Plan::Project { input, cols }, conjuncts)
            }
        }
        Plan::Rename { input, alias } => {
            // Strip the alias qualifier and push inside if the stripped
            // predicate still compiles there.
            let inner_schema = match input.schema(catalog) {
                Ok(s) => s,
                Err(_) => return rebuild_select(Plan::Rename { input, alias }, conjuncts),
            };
            let stripped = Expr::and(conjuncts.clone()).map_columns(&|c| {
                if c.qualifier.as_deref() == Some(alias.as_str()) {
                    c.unqualified()
                } else {
                    c.clone()
                }
            });
            if stripped.compile(&inner_schema).is_ok() {
                Plan::Rename {
                    input: Box::new(push_pred_into(*input, stripped, catalog)),
                    alias,
                }
            } else {
                rebuild_select(Plan::Rename { input, alias }, conjuncts)
            }
        }
        Plan::Distinct(input) => Plan::Distinct(Box::new(push_pred_into(
            *input,
            Expr::and(conjuncts),
            catalog,
        ))),
        Plan::Difference { left, right } => {
            // σ(L − R) = σ(L) − R; pushing into R would be wrong.
            Plan::Difference {
                left: Box::new(push_pred_into(*left, Expr::and(conjuncts), catalog)),
                right,
            }
        }
        Plan::Union { left, right } => {
            // Union is positional; push only if the predicate compiles on
            // both children by name.
            let p = Expr::and(conjuncts.clone());
            let ok = left.schema(catalog).and_then(|s| p.compile(&s)).is_ok()
                && right.schema(catalog).and_then(|s| p.compile(&s)).is_ok();
            if ok {
                Plan::Union {
                    left: Box::new(push_pred_into(*left, p.clone(), catalog)),
                    right: Box::new(push_pred_into(*right, p, catalog)),
                }
            } else {
                rebuild_select(Plan::Union { left, right }, conjuncts)
            }
        }
        other => rebuild_select(other, conjuncts),
    }
}

fn rebuild_select(plan: Plan, conjuncts: Vec<Expr>) -> Plan {
    if conjuncts.is_empty() {
        plan
    } else {
        plan.select(Expr::and(conjuncts))
    }
}

fn resolves_all(e: &Expr, schema: &Schema) -> bool {
    e.columns().iter().all(|c| schema.resolve(c).is_ok())
}

// ---------------------------------------------------------------------------
// Pass 2: greedy join reordering
// ---------------------------------------------------------------------------

fn reorder_joins(plan: Plan, catalog: &Catalog) -> Plan {
    match plan {
        Plan::Join { .. } => {
            let original = plan.clone();
            let mut leaves = Vec::new();
            let mut conjuncts = Vec::new();
            if flatten_joins(plan, catalog, &mut leaves, &mut conjuncts).is_some() {
                rebuild_join_tree(leaves, conjuncts, catalog)
                    .unwrap_or_else(|| reorder_children_only(original, catalog))
            } else {
                reorder_children_only(original, catalog)
            }
        }
        Plan::Select { input, pred } => Plan::Select {
            input: Box::new(reorder_joins(*input, catalog)),
            pred,
        },
        Plan::Project { input, cols } => Plan::Project {
            input: Box::new(reorder_joins(*input, catalog)),
            cols,
        },
        Plan::SemiJoin { left, right, pred } => Plan::SemiJoin {
            left: Box::new(reorder_joins(*left, catalog)),
            right: Box::new(reorder_joins(*right, catalog)),
            pred,
        },
        Plan::AntiJoin { left, right, pred } => Plan::AntiJoin {
            left: Box::new(reorder_joins(*left, catalog)),
            right: Box::new(reorder_joins(*right, catalog)),
            pred,
        },
        Plan::Union { left, right } => Plan::Union {
            left: Box::new(reorder_joins(*left, catalog)),
            right: Box::new(reorder_joins(*right, catalog)),
        },
        Plan::Difference { left, right } => Plan::Difference {
            left: Box::new(reorder_joins(*left, catalog)),
            right: Box::new(reorder_joins(*right, catalog)),
        },
        Plan::Distinct(input) => Plan::Distinct(Box::new(reorder_joins(*input, catalog))),
        Plan::Rename { input, alias } => Plan::Rename {
            input: Box::new(reorder_joins(*input, catalog)),
            alias,
        },
        leaf => leaf,
    }
}

/// Recurse into a join's children without flattening this node (fallback
/// when safe rebinding is impossible).
fn reorder_children_only(plan: Plan, catalog: &Catalog) -> Plan {
    match plan {
        Plan::Join { left, right, pred } => Plan::Join {
            left: Box::new(reorder_joins(*left, catalog)),
            right: Box::new(reorder_joins(*right, catalog)),
            pred,
        },
        other => reorder_joins(other, catalog),
    }
}

/// A conjunct whose column references have been bound to concrete
/// (leaf index, column index) pairs, so it can be re-applied at any point
/// of a rebuilt join tree without name-capture bugs.
struct BoundConjunct {
    expr: Expr,
    /// For every distinct column reference in `expr`: where it binds.
    bindings: Vec<(ColRef, usize, usize)>,
    /// Set of leaf indices the conjunct touches.
    leaves: BTreeSet<usize>,
}

/// Flatten a join tree. Returns `None` (reordering aborted) if any
/// predicate column cannot be bound unambiguously at its original node.
fn flatten_joins(
    plan: Plan,
    catalog: &Catalog,
    leaves: &mut Vec<(Plan, Schema)>,
    conjuncts: &mut Vec<BoundConjunct>,
) -> Option<std::ops::Range<usize>> {
    match plan {
        Plan::Join { left, right, pred } => {
            let lr = flatten_joins(*left, catalog, leaves, conjuncts)?;
            let rr = flatten_joins(*right, catalog, leaves, conjuncts)?;
            let range = lr.start..rr.end;
            // Bind this node's conjuncts against the concatenated schema of
            // its own subtree, exactly as the original plan resolved them.
            let mut joint = Schema::default();
            let mut offsets = Vec::new();
            for (_, s) in &leaves[range.clone()] {
                offsets.push(joint.arity());
                joint = joint.concat(s);
            }
            for c in pred.conjuncts() {
                let mut bindings = Vec::new();
                let mut leaf_set = BTreeSet::new();
                for r in c.columns() {
                    let global = joint.resolve(&r).ok()?;
                    // Map the flat index back to (leaf, local).
                    let rel = offsets
                        .iter()
                        .rposition(|&o| o <= global)
                        .expect("offset exists");
                    let leaf_idx = range.start + rel;
                    let local = global - offsets[rel];
                    leaf_set.insert(leaf_idx);
                    bindings.push((r, leaf_idx, local));
                }
                conjuncts.push(BoundConjunct {
                    expr: c,
                    bindings,
                    leaves: leaf_set,
                });
            }
            Some(range)
        }
        other => {
            let reordered = reorder_joins(other, catalog);
            let schema = reordered.schema(catalog).ok()?;
            let start = leaves.len();
            leaves.push((reordered, schema));
            Some(start..start + 1)
        }
    }
}

/// Greedily rebuild a flattened join tree, smallest estimated intermediate
/// first. Every leaf is wrapped in a fresh `__jK` alias and conjuncts are
/// rewritten to fully-qualified references, so rebinding is unambiguous in
/// any shape; a final projection restores the original output schema.
/// Returns `None` if a leaf has internally duplicated column names (then
/// the original shape is kept).
fn rebuild_join_tree(
    leaves: Vec<(Plan, Schema)>,
    conjuncts: Vec<BoundConjunct>,
    catalog: &Catalog,
) -> Option<Plan> {
    if leaves.len() == 1 {
        let (leaf, _) = leaves.into_iter().next().unwrap();
        let preds: Vec<Expr> = conjuncts.into_iter().map(|b| b.expr).collect();
        return Some(rebuild_select(leaf, preds));
    }
    // Leaf column names must be unique within each leaf for `__jK.name`
    // qualification to be unambiguous.
    for (_, s) in &leaves {
        let mut names: Vec<&str> = s.columns().iter().map(|c| &*c.name).collect();
        names.sort_unstable();
        if names.windows(2).any(|w| w[0] == w[1]) {
            return None;
        }
    }

    let original_schemas: Vec<Schema> = leaves.iter().map(|(_, s)| s.clone()).collect();

    // Rewrite conjuncts to `__jK.name` form.
    let rewritten: Vec<(Expr, BTreeSet<usize>)> = conjuncts
        .into_iter()
        .map(|b| {
            let expr = b.expr.map_columns(&|c| {
                b.bindings
                    .iter()
                    .find(|(r, _, _)| r == c)
                    .map(|(_, leaf, local)| {
                        ColRef::qualified(
                            format!("__j{leaf}"),
                            &*original_schemas[*leaf].columns()[*local].name,
                        )
                    })
                    .unwrap_or_else(|| c.clone())
            });
            (expr, b.leaves)
        })
        .collect();

    // (plan, covered leaves, estimate) for each remaining input.
    let mut parts: Vec<(Plan, BTreeSet<usize>, f64)> = leaves
        .into_iter()
        .enumerate()
        .map(|(k, (p, _))| {
            let est = est_rows(&p, catalog);
            let aliased = p.rename(format!("__j{k}"));
            (aliased, BTreeSet::from([k]), est)
        })
        .collect();
    let mut remaining: Vec<(Expr, BTreeSet<usize>)> = rewritten;

    while parts.len() > 1 {
        let mut best: Option<(usize, usize, f64, bool)> = None;
        for i in 0..parts.len() {
            for j in (i + 1)..parts.len() {
                let mut cover: BTreeSet<usize> = parts[i].1.union(&parts[j].1).cloned().collect();
                let applicable: Vec<&Expr> = remaining
                    .iter()
                    .filter(|(_, ls)| ls.is_subset(&cover))
                    .map(|(e, _)| e)
                    .collect();
                let connected = !applicable.is_empty();
                // Crude estimate: product shrunk by 1/10 per equality
                // conjunct when NDV tracing is unavailable mid-rebuild.
                let mut est = parts[i].2 * parts[j].2;
                let ls = parts[i].0.schema(catalog).unwrap_or_default();
                let rs = parts[j].0.schema(catalog).unwrap_or_default();
                est = join_estimate(
                    parts[i].2,
                    parts[j].2,
                    &applicable.iter().map(|e| (*e).clone()).collect::<Vec<_>>(),
                    &parts[i].0,
                    &ls,
                    &parts[j].0,
                    &rs,
                    catalog,
                )
                .min(est);
                let score = if connected { est } else { est * 1e6 };
                if best.as_ref().is_none_or(|(_, _, b, _)| score < *b) {
                    best = Some((i, j, score, connected));
                }
                cover.clear();
            }
        }
        let (i, j, est, _) = best.expect("at least two parts");
        let (hi, lo) = if i > j { (i, j) } else { (j, i) };
        let (pj, cj, _) = parts.remove(hi);
        let (pi, ci, _) = parts.remove(lo);
        let cover: BTreeSet<usize> = ci.union(&cj).cloned().collect();
        let mut preds = Vec::new();
        remaining.retain(|(e, ls)| {
            if ls.is_subset(&cover) {
                preds.push(e.clone());
                false
            } else {
                true
            }
        });
        let joined = pi.join(pj, Expr::and(preds));
        parts.push((joined, cover, est));
    }
    let (mut plan, _, _) = parts.into_iter().next().unwrap();
    // Any leftover predicates apply at the top (still in __j form).
    let leftover: Vec<Expr> = remaining.into_iter().map(|(e, _)| e).collect();
    plan = rebuild_select(plan, leftover);
    // Restore the original column names and order.
    let mut cols = Vec::new();
    for (k, s) in original_schemas.iter().enumerate() {
        for c in s.columns() {
            cols.push((
                Expr::Col(ColRef::qualified(format!("__j{k}"), &*c.name)),
                c.clone(),
            ));
        }
    }
    Some(Plan::Project {
        input: Box::new(plan),
        cols,
    })
}

// ---------------------------------------------------------------------------
// Cardinality estimation
// ---------------------------------------------------------------------------

/// Estimated output rows of a plan (used by reordering and EXPLAIN).
pub fn est_rows(plan: &Plan, catalog: &Catalog) -> f64 {
    match plan {
        Plan::Scan(name) => catalog.stats(name).map(|s| s.rows as f64).unwrap_or(1000.0),
        Plan::Values(rel) => rel.len() as f64,
        Plan::Select { input, pred } => {
            let base = est_rows(input, catalog);
            let schema = input.schema(catalog).unwrap_or_default();
            let sel: f64 = pred
                .clone()
                .conjuncts()
                .iter()
                .map(|c| selectivity(c, input, &schema, catalog))
                .product();
            (base * sel).max(1.0)
        }
        Plan::Project { input, .. } | Plan::Rename { input, .. } => est_rows(input, catalog),
        Plan::Distinct(input) => est_rows(input, catalog) * 0.9,
        Plan::Join { left, right, pred } => {
            let ls = left.schema(catalog).unwrap_or_default();
            let rs = right.schema(catalog).unwrap_or_default();
            join_estimate(
                est_rows(left, catalog),
                est_rows(right, catalog),
                &pred.clone().conjuncts(),
                left,
                &ls,
                right,
                &rs,
                catalog,
            )
        }
        Plan::SemiJoin { left, .. } => est_rows(left, catalog) * 0.5,
        Plan::AntiJoin { left, .. } => est_rows(left, catalog) * 0.5,
        Plan::Union { left, right } => est_rows(left, catalog) + est_rows(right, catalog),
        Plan::Difference { left, .. } => est_rows(left, catalog),
    }
}

#[allow(clippy::too_many_arguments)]
fn join_estimate(
    l_rows: f64,
    r_rows: f64,
    conjuncts: &[Expr],
    left: &Plan,
    ls: &Schema,
    right: &Plan,
    rs: &Schema,
    catalog: &Catalog,
) -> f64 {
    let mut est = l_rows * r_rows;
    for c in conjuncts {
        if let Expr::Cmp(CmpOp::Eq, a, b) = c {
            if let (Expr::Col(ca), Expr::Col(cb)) = (a.as_ref(), b.as_ref()) {
                let sides = (
                    ls.resolve(ca).ok(),
                    rs.resolve(ca).ok(),
                    ls.resolve(cb).ok(),
                    rs.resolve(cb).ok(),
                );
                let (li, ri) = match sides {
                    (Some(li), None, None, Some(ri)) => (li, ri),
                    (None, Some(ri), Some(li), None) => (li, ri),
                    _ => {
                        est *= 0.5;
                        continue;
                    }
                };
                let ndv_l = column_ndv(left, li, catalog).max(1.0).min(l_rows.max(1.0));
                let ndv_r = column_ndv(right, ri, catalog).max(1.0).min(r_rows.max(1.0));
                est /= ndv_l.max(ndv_r);
                continue;
            }
        }
        est *= 0.5;
    }
    est.max(1.0)
}

fn selectivity(conjunct: &Expr, input: &Plan, schema: &Schema, catalog: &Catalog) -> f64 {
    match conjunct {
        Expr::Cmp(op, a, b) => {
            let col_lit = match (a.as_ref(), b.as_ref()) {
                (Expr::Col(c), Expr::Lit(_)) => Some(c),
                (Expr::Lit(_), Expr::Col(c)) => Some(c),
                _ => None,
            };
            match (op, col_lit) {
                (CmpOp::Eq, Some(c)) => {
                    let ndv = schema
                        .resolve(c)
                        .ok()
                        .map(|i| column_ndv(input, i, catalog))
                        .unwrap_or(10.0);
                    (1.0 / ndv.max(1.0)).min(1.0)
                }
                (CmpOp::Ne, Some(_)) => 0.9,
                (CmpOp::Eq, None) => 0.1,
                _ => 0.33,
            }
        }
        Expr::And(parts) => parts
            .iter()
            .map(|p| selectivity(p, input, schema, catalog))
            .product(),
        Expr::Or(parts) => parts
            .iter()
            .map(|p| selectivity(p, input, schema, catalog))
            .sum::<f64>()
            .min(1.0),
        Expr::Not(e) => 1.0 - selectivity(e, input, schema, catalog),
        Expr::Lit(crate::value::Value::Bool(true)) => 1.0,
        Expr::Lit(crate::value::Value::Bool(false)) => 0.0,
        _ => 0.5,
    }
}

/// NDV of a plan output column, traced through the operators down to the
/// base-table statistics where possible.
fn column_ndv(plan: &Plan, idx: usize, catalog: &Catalog) -> f64 {
    match plan {
        Plan::Scan(name) => catalog
            .stats(name)
            .map(|s| s.ndv_or_default(idx) as f64)
            .unwrap_or(10.0),
        Plan::Values(rel) => crate::stats::TableStats::compute(rel).ndv_or_default(idx) as f64,
        Plan::Select { input, .. } | Plan::Distinct(input) | Plan::Rename { input, .. } => {
            column_ndv(input, idx, catalog)
        }
        Plan::Project { input, cols } => match cols.get(idx) {
            Some((Expr::Col(c), _)) => input
                .schema(catalog)
                .ok()
                .and_then(|s| s.resolve(c).ok())
                .map(|i| column_ndv(input, i, catalog))
                .unwrap_or(10.0),
            Some((Expr::Lit(_), _)) => 1.0,
            _ => est_rows(plan, catalog),
        },
        Plan::Join { left, right, .. } => {
            let la = left.schema(catalog).map(|s| s.arity()).unwrap_or(0);
            if idx < la {
                column_ndv(left, idx, catalog)
            } else {
                column_ndv(right, idx - la, catalog)
            }
        }
        Plan::SemiJoin { left, .. } | Plan::AntiJoin { left, .. } => column_ndv(left, idx, catalog),
        Plan::Union { left, right } => {
            column_ndv(left, idx, catalog) + column_ndv(right, idx, catalog)
        }
        Plan::Difference { left, .. } => column_ndv(left, idx, catalog),
    }
}

// ---------------------------------------------------------------------------
// Pass 3: projection pruning above join inputs
// ---------------------------------------------------------------------------

fn prune_projections(plan: Plan, catalog: &Catalog, needed: Option<&BTreeSet<ColRef>>) -> Plan {
    match plan {
        Plan::Project { input, cols } => {
            // Drop projection outputs the parent does not need (safe in bag
            // semantics: arity changes, multiplicity does not). Positional
            // parents pass `needed = None` and keep everything.
            let cols: Vec<_> = match needed {
                Some(n) => {
                    let kept: Vec<_> = cols
                        .iter()
                        .filter(|(_, name)| n.iter().any(|u| name.matches(u)))
                        .cloned()
                        .collect();
                    if kept.is_empty() {
                        cols.into_iter().take(1).collect()
                    } else {
                        kept
                    }
                }
                None => cols,
            };
            let used: BTreeSet<ColRef> = cols.iter().flat_map(|(e, _)| e.columns()).collect();
            Plan::Project {
                input: Box::new(prune_projections(*input, catalog, Some(&used))),
                cols,
            }
        }
        Plan::Select { input, pred } => {
            let mut used: BTreeSet<ColRef> = pred.columns();
            match needed {
                Some(n) => used.extend(n.iter().cloned()),
                None => {
                    return Plan::Select {
                        input: Box::new(prune_projections(*input, catalog, None)),
                        pred,
                    }
                }
            }
            Plan::Select {
                input: Box::new(prune_projections(*input, catalog, Some(&used))),
                pred,
            }
        }
        Plan::Join { left, right, pred } => {
            let mut used: BTreeSet<ColRef> = pred.columns();
            let all_needed = needed.is_none();
            if let Some(n) = needed {
                used.extend(n.iter().cloned());
            }
            let l = prune_side(*left, catalog, &used, all_needed);
            let r = prune_side(*right, catalog, &used, all_needed);
            Plan::Join {
                left: Box::new(l),
                right: Box::new(r),
                pred,
            }
        }
        Plan::SemiJoin { left, right, pred } => {
            let mut lneed: BTreeSet<ColRef> = pred.columns();
            let all_needed = needed.is_none();
            if let Some(n) = needed {
                lneed.extend(n.iter().cloned());
            }
            let l = prune_side(*left, catalog, &lneed, all_needed);
            let r = prune_side(*right, catalog, &pred.columns(), false);
            Plan::SemiJoin {
                left: Box::new(l),
                right: Box::new(r),
                pred,
            }
        }
        Plan::AntiJoin { left, right, pred } => {
            let mut lneed: BTreeSet<ColRef> = pred.columns();
            let all_needed = needed.is_none();
            if let Some(n) = needed {
                lneed.extend(n.iter().cloned());
            }
            let l = prune_side(*left, catalog, &lneed, all_needed);
            let r = prune_side(*right, catalog, &pred.columns(), false);
            Plan::AntiJoin {
                left: Box::new(l),
                right: Box::new(r),
                pred,
            }
        }
        // Positional / set-sensitive operators: stop propagating needs.
        Plan::Union { left, right } => Plan::Union {
            left: Box::new(prune_projections(*left, catalog, None)),
            right: Box::new(prune_projections(*right, catalog, None)),
        },
        Plan::Difference { left, right } => Plan::Difference {
            left: Box::new(prune_projections(*left, catalog, None)),
            right: Box::new(prune_projections(*right, catalog, None)),
        },
        Plan::Distinct(input) => Plan::Distinct(Box::new(prune_projections(*input, catalog, None))),
        Plan::Rename { input, alias } => {
            // Strip the alias qualifier to express needs in terms of the
            // inner schema; foreign-qualified refs cannot match inside.
            let inner_needed: Option<BTreeSet<ColRef>> = needed.map(|n| {
                n.iter()
                    .filter_map(|c| match &c.qualifier {
                        Some(q) if **q == *alias => Some(c.unqualified()),
                        Some(_) => None,
                        None => Some(c.clone()),
                    })
                    .collect()
            });
            Plan::Rename {
                input: Box::new(prune_projections(*input, catalog, inner_needed.as_ref())),
                alias,
            }
        }
        leaf => leaf,
    }
}

/// Insert a narrowing projection above a join input when the parent needs
/// strictly fewer columns than the input produces.
fn prune_side(side: Plan, catalog: &Catalog, used: &BTreeSet<ColRef>, all_needed: bool) -> Plan {
    let pruned = prune_projections(side, catalog, if all_needed { None } else { Some(used) });
    if all_needed {
        return pruned;
    }
    let Ok(schema) = pruned.schema(catalog) else {
        return pruned;
    };
    let keep: Vec<ColRef> = schema
        .columns()
        .iter()
        .filter(|c| used.iter().any(|u| c.matches(u)))
        .cloned()
        .collect();
    if keep.is_empty() || keep.len() == schema.arity() {
        return pruned;
    }
    // Keep fully-qualified output names so references above stay valid.
    Plan::Project {
        input: Box::new(pruned),
        cols: keep
            .into_iter()
            .map(|c| (Expr::Col(c.clone()), c))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::expr::{col, lit_i64, lit_str};
    use crate::relation::Relation;
    use crate::value::Value;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let mut big = Vec::new();
        for i in 0..200 {
            big.push(vec![Value::Int(i), Value::Int(i % 10), Value::str("pay")]);
        }
        c.insert("big", Relation::from_rows(["k", "fk", "pay"], big).unwrap());
        let mut small = Vec::new();
        for i in 0..10 {
            small.push(vec![Value::Int(i), Value::str(format!("g{i}"))]);
        }
        c.insert("small", Relation::from_rows(["g", "gname"], small).unwrap());
        c
    }

    fn assert_equivalent(p: &Plan, c: &Catalog) {
        let opt = optimize(p, c).unwrap();
        let before = execute(p, c).unwrap();
        let after = execute(&opt, c).unwrap();
        assert!(
            before.set_eq(&after),
            "optimization changed results:\nplan: {p:?}\nopt: {opt:?}"
        );
    }

    #[test]
    fn pushdown_preserves_semantics() {
        let c = catalog();
        let p = Plan::scan("big")
            .join(Plan::scan("small"), col("fk").eq(col("g")))
            .select(Expr::and([
                col("k").lt(lit_i64(50)),
                col("gname").eq(lit_str("g3")),
            ]))
            .project_names(["k", "gname"]);
        assert_equivalent(&p, &c);
        // And the selection actually moved below the join.
        let opt = optimize(&p, &c).unwrap();
        fn select_above_join(p: &Plan) -> bool {
            match p {
                Plan::Select { input, .. } => {
                    matches!(**input, Plan::Join { .. }) || select_above_join(input)
                }
                Plan::Project { input, .. }
                | Plan::Distinct(input)
                | Plan::Rename { input, .. } => select_above_join(input),
                Plan::Join { left, right, .. } => {
                    select_above_join(left) || select_above_join(right)
                }
                _ => false,
            }
        }
        assert!(!select_above_join(&opt), "selection not pushed: {opt:?}");
    }

    #[test]
    fn reorder_handles_three_way_join() {
        let c = catalog();
        let p = Plan::scan("big")
            .join(Plan::scan("small"), col("fk").eq(col("g")))
            .join(Plan::scan("small").rename("s2"), col("fk").eq(col("s2.g")));
        assert_equivalent(&p, &c);
    }

    #[test]
    fn pruning_narrows_join_inputs() {
        let c = catalog();
        let p = Plan::scan("big")
            .join(Plan::scan("small"), col("fk").eq(col("g")))
            .project_names(["k"]);
        let opt = optimize(&p, &c).unwrap();
        assert_equivalent(&p, &c);
        // The join's left input should now produce at most 2 columns
        // (k, fk) instead of 3.
        fn max_join_input_arity(p: &Plan, c: &Catalog) -> usize {
            match p {
                Plan::Join { left, right, .. } => {
                    let la = left.schema(c).map(|s| s.arity()).unwrap_or(0);
                    let ra = right.schema(c).map(|s| s.arity()).unwrap_or(0);
                    la.max(ra)
                        .max(max_join_input_arity(left, c))
                        .max(max_join_input_arity(right, c))
                }
                Plan::Select { input, .. }
                | Plan::Project { input, .. }
                | Plan::Distinct(input)
                | Plan::Rename { input, .. } => max_join_input_arity(input, c),
                _ => 0,
            }
        }
        assert!(max_join_input_arity(&opt, &c) <= 2, "{opt:?}");
    }

    #[test]
    fn estimates_favor_selective_side() {
        let c = catalog();
        let selective = Plan::scan("big").select(col("k").eq(lit_i64(7)));
        let loose = Plan::scan("big");
        assert!(est_rows(&selective, &c) < est_rows(&loose, &c));
    }

    #[test]
    fn optimize_union_difference_distinct() {
        let c = catalog();
        let ids = Plan::scan("big").project_names(["fk"]);
        let p = ids.clone().union(ids.clone()).distinct().difference(
            Plan::scan("small")
                .project_names(["g"])
                .select(col("g").gt(lit_i64(5))),
        );
        assert_equivalent(&p, &c);
    }

    #[test]
    fn redundant_distincts_are_stripped() {
        let c = catalog();
        fn distinct_count(p: &Plan) -> usize {
            match p {
                Plan::Distinct(input) => 1 + distinct_count(input),
                Plan::Select { input, .. }
                | Plan::Project { input, .. }
                | Plan::Rename { input, .. } => distinct_count(input),
                Plan::Join { left, right, .. }
                | Plan::SemiJoin { left, right, .. }
                | Plan::AntiJoin { left, right, .. }
                | Plan::Union { left, right }
                | Plan::Difference { left, right } => distinct_count(left) + distinct_count(right),
                _ => 0,
            }
        }
        // δ(σ(δ(x))) → δ(σ(x)); δ under either Difference side goes too.
        let p = Plan::scan("small")
            .distinct()
            .select(col("g").gt(lit_i64(2)))
            .distinct()
            .difference(Plan::scan("small").distinct());
        assert_eq!(distinct_count(&p), 3);
        let opt = optimize(&p, &c).unwrap();
        assert_eq!(distinct_count(&opt), 0, "{opt:?}");
        assert_equivalent(&p, &c);
        // A lone δ that actually dedups is kept.
        let keep = Plan::scan("big").project_names(["fk"]).distinct();
        let opt = optimize(&keep, &c).unwrap();
        assert_eq!(distinct_count(&opt), 1, "{opt:?}");
    }

    #[test]
    fn pushdown_through_rename() {
        let c = catalog();
        let p = Plan::scan("big")
            .rename("b")
            .select(col("b.k").lt(lit_i64(3)));
        assert_equivalent(&p, &c);
        let opt = optimize(&p, &c).unwrap();
        // The rename should now sit above the selection.
        assert!(
            matches!(&opt, Plan::Rename { input, .. } if matches!(**input, Plan::Select { .. })),
            "{opt:?}"
        );
    }
}
