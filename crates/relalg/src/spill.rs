//! Memory accounting and spill-to-sorted-runs for pipeline breakers.
//!
//! The streaming executor's breaker operators (hash-join build sides,
//! distinct/difference seen-sets, sort buffers, aggregation group
//! states) buffer without bound by default. When the engine runs with a
//! memory budget ([`crate::catalog::EngineConfig::mem_budget`], set via
//! `RELALG_MEM_BUDGET` or [`crate::Catalog::set_mem_budget`]), every
//! breaker charges its buffer bytes against a shared [`MemBudget`]
//! tracker and — when its own buffer exceeds the per-worker *share* of
//! the budget — spills to disk:
//!
//! * a spilling operator writes **runs**: flat files of records, each a
//!   few `u64` sort keys plus one [`Row`] in the
//!   [`crate::relation::encode_row`] codec ([`RunWriter`] /
//!   [`RunReader`]);
//! * finished runs are combined by a streaming k-way [`merge_runs`],
//!   which is stable (ties resolve toward the earlier run) so external
//!   merges reproduce in-memory results byte-for-byte;
//! * all run files live in one per-execution [`SpillDir`] under the
//!   system temp directory, created lazily on the first spill and
//!   removed recursively when the execution is dropped — including on
//!   the panic/unwind path, since cleanup rides on `Drop`.
//!
//! The [`SpillCtx`] bundles the budget, the directory, and the spill
//! counters ([`crate::exec::ExecStats`] reports them); one `SpillCtx`
//! is shared by every operator of one prepared execution, across
//! worker threads.
//!
//! Spill I/O is fallible and fault-injectable ([`crate::fault`]):
//! every edge — directory creation, run-file open, record write/read,
//! merge passes — returns `Result`, with transient read/open failures
//! retried under the bounded [`crate::fault::retry_io`] policy and
//! everything else surfacing as a clean [`crate::Error::Io`]. Cursors
//! that cannot carry `Result` unwind via [`crate::fault::rethrow`];
//! either way the [`SpillDir`]'s `Drop` removes every run file.

use crate::error::Result;
use crate::fault::{self, FaultInjector, FaultKind};
use crate::pool::TaskPool;
use crate::relation::{decode_row, encode_row, row_footprint, Row};
use std::cmp::Ordering;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering as AtOrd};
use std::sync::{Arc, OnceLock};

/// Byte budget shared by every breaker buffer of one execution.
///
/// `usize::MAX` means unbounded — every charge is accepted, nothing is
/// tracked (the disabled tracker adds no work to the hot path beyond
/// one branch). A bounded tracker keeps a running `used` total and its
/// high-water mark; operators compare their *own* buffer against
/// [`MemBudget::share`] (the budget divided over the configured
/// workers) to decide when to spill, so concurrent workers degrade
/// independently instead of racing on the global counter.
#[derive(Debug)]
pub struct MemBudget {
    limit: usize,
    share: usize,
    used: AtomicUsize,
    peak: AtomicUsize,
}

impl MemBudget {
    /// A tracker enforcing `limit` bytes across `workers` workers
    /// (`usize::MAX` = unbounded). The per-worker share comes from
    /// [`TaskPool::share_of`], the single home of that policy.
    pub fn new(limit: usize, workers: usize) -> MemBudget {
        MemBudget {
            limit,
            share: TaskPool::new(workers).share_of(limit),
            used: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        }
    }

    /// `true` when a finite budget is configured.
    pub fn enabled(&self) -> bool {
        self.limit != usize::MAX
    }

    /// The per-worker share a single breaker buffer may hold before it
    /// spills (see [`TaskPool::share_of`]).
    pub fn share(&self) -> usize {
        self.share
    }

    /// Record `bytes` newly held by a breaker buffer.
    pub fn charge(&self, bytes: usize) {
        if !self.enabled() || bytes == 0 {
            return;
        }
        let now = self.used.fetch_add(bytes, AtOrd::Relaxed) + bytes;
        self.peak.fetch_max(now, AtOrd::Relaxed);
    }

    /// Record `bytes` released by a breaker buffer (a spill flush).
    pub fn release(&self, bytes: usize) {
        if !self.enabled() || bytes == 0 {
            return;
        }
        // Saturating: releases are matched to charges, but an estimate
        // drifting below zero must not wrap.
        self.used
            .fetch_update(AtOrd::Relaxed, AtOrd::Relaxed, |u| {
                Some(u.saturating_sub(bytes))
            })
            .ok();
    }

    /// Currently tracked bytes.
    pub fn used(&self) -> usize {
        self.used.load(AtOrd::Relaxed)
    }

    /// High-water mark of tracked bytes.
    pub fn peak(&self) -> usize {
        self.peak.load(AtOrd::Relaxed)
    }
}

/// Process-wide sequence for unique spill directory names.
static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A per-execution scoped temp directory for spill runs.
///
/// The directory is created lazily — a budgeted execution that never
/// spills touches no filesystem — and removed recursively on `Drop`,
/// which also covers the panic path (unwinding drops the owning
/// [`SpillCtx`]). File names are sequenced so concurrent workers never
/// collide.
#[derive(Debug, Default)]
pub struct SpillDir {
    path: OnceLock<PathBuf>,
    file_seq: AtomicU64,
}

impl SpillDir {
    /// Path of a fresh spill file (creates the directory on first use).
    fn next_file(&self, label: &str, faults: Option<&FaultInjector>) -> Result<PathBuf> {
        // The OnceLock closure is infallible, so resolve the path first
        // and create the directory (idempotently) outside it.
        let dir = self.path.get_or_init(|| {
            std::env::temp_dir().join(format!(
                "relalg-spill-{}-{}",
                std::process::id(),
                DIR_SEQ.fetch_add(1, AtOrd::Relaxed)
            ))
        });
        fault::retry_io(faults, || {
            fault::inject(faults, FaultKind::Open, "create spill directory")?;
            std::fs::create_dir_all(dir)
        })
        .map_err(|e| fault::io_error("create spill directory", &e))?;
        let seq = self.file_seq.fetch_add(1, AtOrd::Relaxed);
        Ok(dir.join(format!("{label}-{seq}.run")))
    }

    /// The directory path, if any spill file has been created yet.
    pub fn path(&self) -> Option<&Path> {
        self.path.get().map(PathBuf::as_path)
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        if let Some(dir) = self.path.get() {
            // Best effort, and deliberately infallible: this runs on
            // the unwind path too (cancelled or faulted executions), so
            // a temp dir the OS already reaped — or a removal error —
            // must never turn into a double panic.
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

/// The per-execution spill context: budget tracker, scoped directory,
/// and the spill counters [`crate::exec::ExecStats`] reports. Shared
/// (`Arc`) by every operator and worker of one prepared execution.
#[derive(Debug)]
pub struct SpillCtx {
    budget: MemBudget,
    dir: SpillDir,
    events: AtomicUsize,
    spilled_bytes: AtomicUsize,
    /// Fault source shared with the execution (`None` = injection off).
    faults: Option<Arc<FaultInjector>>,
}

impl SpillCtx {
    /// Context for a `limit`-byte budget over `workers` workers.
    pub fn new(limit: usize, workers: usize) -> SpillCtx {
        SpillCtx {
            budget: MemBudget::new(limit, workers),
            dir: SpillDir::default(),
            events: AtomicUsize::new(0),
            spilled_bytes: AtomicUsize::new(0),
            faults: None,
        }
    }

    /// Attach a fault injector: every spill I/O edge of this context
    /// draws from its schedule.
    pub fn with_faults(mut self, faults: Option<Arc<FaultInjector>>) -> SpillCtx {
        self.faults = faults;
        self
    }

    /// The attached fault injector, if any.
    pub fn faults(&self) -> Option<&Arc<FaultInjector>> {
        self.faults.as_ref()
    }

    /// An unbounded context (the default when no budget is configured).
    pub fn unbounded() -> SpillCtx {
        SpillCtx::new(usize::MAX, 1)
    }

    /// The budget tracker.
    pub fn budget(&self) -> &MemBudget {
        &self.budget
    }

    /// Spill events so far (one per flushed run).
    pub fn events(&self) -> usize {
        self.events.load(AtOrd::Relaxed)
    }

    /// Estimated bytes written to spill runs so far.
    pub fn spilled_bytes(&self) -> usize {
        self.spilled_bytes.load(AtOrd::Relaxed)
    }

    /// The spill directory path, if this execution has spilled.
    pub fn dir_path(&self) -> Option<&Path> {
        self.dir.path()
    }

    /// Open a writer for a fresh run file. `label` names the spilling
    /// operator in the file name (debugging aid only).
    pub fn writer(&self, label: &str) -> Result<RunWriter> {
        let faults = self.faults.as_deref();
        let path = self.dir.next_file(label, faults)?;
        let file = fault::retry_io(faults, || {
            fault::inject(faults, FaultKind::Open, "create spill run file")?;
            File::create(&path)
        })
        .map_err(|e| fault::io_error("create spill run file", &e))?;
        Ok(RunWriter {
            w: BufWriter::new(file),
            path,
            records: 0,
            bytes: 0,
            faults: self.faults.clone(),
        })
    }

    /// Count one spill event that moved `bytes` of buffered data to
    /// disk. Budget release is the *caller's* job — only the operator
    /// knows whether the spilled bytes had been charged (a buffer flush)
    /// or streamed straight to disk (never resident).
    pub fn record_spill(&self, bytes: usize) {
        self.events.fetch_add(1, AtOrd::Relaxed);
        self.spilled_bytes.fetch_add(bytes, AtOrd::Relaxed);
    }
}

/// One spill-run record: a few `u64` sort keys plus a row. What the
/// keys mean is the spilling operator's business (sequence numbers,
/// digests, build-row indices, group positions).
pub type Record = (Vec<u64>, Row);

/// Writes one run: records with a fixed key count, in whatever order
/// the spilling operator guarantees (sorted runs are the operator's
/// contract, not the writer's).
pub struct RunWriter {
    w: BufWriter<File>,
    path: PathBuf,
    records: usize,
    bytes: usize,
    faults: Option<Arc<FaultInjector>>,
}

impl RunWriter {
    /// Append one record. Write errors — injected or real — are not
    /// retried (a mid-record stream position is unrecoverable); they
    /// propagate and the whole run is abandoned.
    pub fn push(&mut self, keys: &[u64], row: &Row) -> Result<()> {
        let fail = |e: &std::io::Error| fault::io_error("write spill run", e);
        fault::inject(self.faults.as_deref(), FaultKind::Write, "write spill run")
            .map_err(|e| fail(&e))?;
        let nkeys = u8::try_from(keys.len()).expect("spill record key count fits u8");
        self.w.write_all(&[nkeys]).map_err(|e| fail(&e))?;
        for k in keys {
            self.w.write_all(&k.to_le_bytes()).map_err(|e| fail(&e))?;
        }
        encode_row(&mut self.w, row).map_err(|e| fail(&e))?;
        self.records += 1;
        // Resident footprint the run's rows *will* have when loaded
        // back — what re-partitioning decisions compare to the share.
        self.bytes += row_footprint(row) + 16 * keys.len();
        Ok(())
    }

    /// Records appended so far.
    pub fn records(&self) -> usize {
        self.records
    }

    /// Flush and seal the run.
    pub fn finish(mut self) -> Result<Run> {
        let fail = |e: &std::io::Error| fault::io_error("flush spill run", e);
        fault::inject(self.faults.as_deref(), FaultKind::Write, "flush spill run")
            .map_err(|e| fail(&e))?;
        self.w.flush().map_err(|e| fail(&e))?;
        Ok(Run {
            path: self.path,
            records: self.records,
            bytes: self.bytes,
            faults: self.faults,
        })
    }
}

/// A sealed run file, ready for sequential reads.
#[derive(Debug, Clone)]
pub struct Run {
    path: PathBuf,
    records: usize,
    bytes: usize,
    faults: Option<Arc<FaultInjector>>,
}

impl Run {
    /// Number of records in the run.
    pub fn records(&self) -> usize {
        self.records
    }

    /// Estimated resident footprint of the run's records once loaded
    /// (the metadata a reader checks against the budget share *before*
    /// loading anything).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Open the run for a sequential scan.
    pub fn reader(&self) -> Result<RunReader> {
        let faults = self.faults.as_deref();
        let file = fault::retry_io(faults, || {
            fault::inject(faults, FaultKind::Open, "open spill run")?;
            File::open(&self.path)
        })
        .map_err(|e| fault::io_error("open spill run", &e))?;
        Ok(RunReader {
            r: BufReader::new(file),
            faults: self.faults.clone(),
        })
    }
}

/// Sequential reader over one run.
pub struct RunReader {
    r: BufReader<File>,
    faults: Option<Arc<FaultInjector>>,
}

impl RunReader {
    /// The next record, `Ok(None)` at end of run. Injected faults fire
    /// *before* any byte moves, so a transient injection retries from
    /// an unchanged stream position; real mid-record errors are not
    /// resumable and propagate.
    pub fn next_record(&mut self) -> Result<Option<Record>> {
        let fail = |e: &std::io::Error| fault::io_error("read spill run", e);
        fault::retry_io(self.faults.as_deref(), || {
            fault::inject(self.faults.as_deref(), FaultKind::Read, "read spill run")
        })
        .map_err(|e| fail(&e))?;
        let mut nkeys = [0u8; 1];
        if self.r.read(&mut nkeys).map_err(|e| fail(&e))? == 0 {
            return Ok(None);
        }
        let mut keys = Vec::with_capacity(nkeys[0] as usize);
        for _ in 0..nkeys[0] {
            let mut b = [0u8; 8];
            self.r.read_exact(&mut b).map_err(|e| fail(&e))?;
            keys.push(u64::from_le_bytes(b));
        }
        let row = decode_row(&mut self.r)
            .map_err(|e| fail(&e))?
            .ok_or_else(|| crate::error::Error::Io("truncated spill record".into()))?;
        Ok(Some((keys, row)))
    }
}

/// Streaming k-way merge over sorted runs.
///
/// Yields `(run index, record)` in `cmp` order; among equal heads the
/// *earliest* run wins, which is the stability contract external sorts
/// and seen-set resolutions rely on (runs are flushed in input order,
/// so earlier runs hold earlier input rows). The fan-in is capped at
/// [`MERGE_FAN_IN`] open files — a linear scan per pop over that many
/// heads beats heap bookkeeping, matching the in-memory merge in
/// [`crate::sort`].
pub struct MergeRuns<F> {
    readers: Vec<RunReader>,
    heads: Vec<Option<Record>>,
    cmp: F,
}

/// Maximum runs one streaming merge pass holds open. A workload that
/// flushed more runs than this (a multi-GiB input under a MiB-scale
/// share) is compacted in runs-of-runs passes first, so the merge
/// neither exhausts file descriptors nor scans thousands of heads per
/// pop.
pub const MERGE_FAN_IN: usize = 64;

/// Merge `runs` with `cmp` over records (see [`MergeRuns`]).
///
/// More than [`MERGE_FAN_IN`] runs are first compacted: consecutive
/// groups of `MERGE_FAN_IN` merge into one intermediate run apiece
/// (in `ctx`'s spill directory, counted as spill events), repeatedly,
/// until one pass can stream them all. Consecutive grouping preserves
/// the earlier-run-wins stability contract — records keep their keys
/// verbatim, and an intermediate run inherits its group's position.
pub fn merge_runs<F>(runs: &[Run], ctx: &SpillCtx, mut cmp: F) -> Result<MergeRuns<F>>
where
    F: FnMut(&Record, &Record) -> Ordering,
{
    let mut runs: Vec<Run> = runs.to_vec();
    while runs.len() > MERGE_FAN_IN {
        let mut next: Vec<Run> = Vec::with_capacity(runs.len().div_ceil(MERGE_FAN_IN));
        for chunk in runs.chunks(MERGE_FAN_IN) {
            if chunk.len() == 1 {
                next.push(chunk[0].clone());
                continue;
            }
            let mut w = ctx.writer("merge-pass")?;
            let mut pass = open_merge(chunk.to_vec(), &mut cmp)?;
            while let Some((_, (keys, row))) = pass.next_rec()? {
                w.push(&keys, &row)?;
            }
            let run = w.finish()?;
            ctx.record_spill(run.bytes());
            next.push(run);
        }
        runs = next;
    }
    open_merge(runs, cmp)
}

fn open_merge<F>(runs: Vec<Run>, cmp: F) -> Result<MergeRuns<F>>
where
    F: FnMut(&Record, &Record) -> Ordering,
{
    let mut readers = Vec::with_capacity(runs.len());
    for run in &runs {
        readers.push(run.reader()?);
    }
    let mut heads = Vec::with_capacity(readers.len());
    for r in &mut readers {
        heads.push(r.next_record()?);
    }
    Ok(MergeRuns {
        readers,
        heads,
        cmp,
    })
}

impl<F> MergeRuns<F>
where
    F: FnMut(&Record, &Record) -> Ordering,
{
    /// The next `(run index, record)` in merge order, `Ok(None)` at
    /// end of all runs.
    pub fn next_rec(&mut self) -> Result<Option<(usize, Record)>> {
        let mut best: Option<usize> = None;
        for (i, head) in self.heads.iter().enumerate() {
            let Some(h) = head else { continue };
            best = match best {
                None => Some(i),
                Some(b) => {
                    let cur = self.heads[b].as_ref().expect("best head present");
                    // Strictly-less replaces: ties keep the earlier run.
                    if (self.cmp)(h, cur) == Ordering::Less {
                        Some(i)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        let Some(b) = best else { return Ok(None) };
        let rec = self.heads[b].take().expect("best head present");
        self.heads[b] = self.readers[b].next_record()?;
        Ok(Some((b, rec)))
    }
}

impl<F> Iterator for MergeRuns<F>
where
    F: FnMut(&Record, &Record) -> Ordering,
{
    type Item = Result<(usize, Record)>;

    fn next(&mut self) -> Option<Result<(usize, Record)>> {
        self.next_rec().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn row(vals: Vec<Value>) -> Row {
        vals.into_boxed_slice()
    }

    #[test]
    fn budget_tracks_usage_share_and_peak() {
        let b = MemBudget::new(1000, 4);
        assert!(b.enabled());
        assert_eq!(b.share(), 250);
        b.charge(600);
        b.charge(300);
        assert_eq!(b.used(), 900);
        b.release(500);
        assert_eq!(b.used(), 400);
        assert_eq!(b.peak(), 900);
        // Over-release saturates instead of wrapping.
        b.release(10_000);
        assert_eq!(b.used(), 0);
        // Unbounded budgets track nothing.
        let u = MemBudget::new(usize::MAX, 4);
        assert!(!u.enabled());
        assert_eq!(u.share(), usize::MAX);
        u.charge(1 << 40);
        assert_eq!(u.used(), 0);
        // Tiny budgets floor the share at one byte.
        assert_eq!(MemBudget::new(2, 8).share(), 1);
    }

    #[test]
    fn run_roundtrip_preserves_keys_and_rows() {
        let ctx = SpillCtx::new(0, 1);
        let rows = [
            row(vec![Value::Int(-7), Value::str("héllo"), Value::Null]),
            row(vec![Value::Int(42), Value::str(""), Value::Bool(true)]),
            row(vec![]),
        ];
        let mut w = ctx.writer("test").unwrap();
        for (i, r) in rows.iter().enumerate() {
            w.push(&[i as u64, 99], r).unwrap();
        }
        assert_eq!(w.records(), 3);
        let run = w.finish().unwrap();
        assert_eq!(run.records(), 3);
        let mut rd = run.reader().unwrap();
        for (i, want) in rows.iter().enumerate() {
            let (keys, got) = rd.next_record().unwrap().expect("record");
            assert_eq!(keys, vec![i as u64, 99]);
            assert_eq!(&got, want);
        }
        assert!(rd.next_record().unwrap().is_none());
        // The run can be re-read from the start.
        assert_eq!(
            run.reader().unwrap().next_record().unwrap().unwrap().0,
            vec![0, 99]
        );
    }

    #[test]
    fn merge_is_ordered_and_stable_toward_earlier_runs() {
        let ctx = SpillCtx::new(0, 1);
        // Two sorted runs with overlapping and *equal* keys: the merge
        // must interleave by key and give equal keys to the earlier run
        // first (the payload marks run provenance).
        let mut w0 = ctx.writer("a").unwrap();
        for k in [1u64, 3, 5, 5] {
            w0.push(&[k], &row(vec![Value::Int(0)])).unwrap();
        }
        let mut w1 = ctx.writer("b").unwrap();
        for k in [2u64, 3, 5] {
            w1.push(&[k], &row(vec![Value::Int(1)])).unwrap();
        }
        let runs = [w0.finish().unwrap(), w1.finish().unwrap()];
        let merged: Vec<(usize, u64)> = merge_runs(&runs, &ctx, |a, b| a.0[0].cmp(&b.0[0]))
            .unwrap()
            .map(|r| {
                let (run, (keys, _)) = r.unwrap();
                (run, keys[0])
            })
            .collect();
        assert_eq!(
            merged,
            vec![
                (0, 1),
                (1, 2),
                (0, 3), // tie at 3: run 0 first
                (1, 3),
                (0, 5), // tie at 5: both run-0 records before run 1
                (0, 5),
                (1, 5),
            ]
        );
        // Merging zero runs is an empty iterator.
        assert!(
            merge_runs(&[], &ctx, |a: &Record, b: &Record| a.0.cmp(&b.0))
                .unwrap()
                .next()
                .is_none()
        );
    }

    #[test]
    fn merge_compacts_past_the_fan_in_cap() {
        let ctx = SpillCtx::new(0, 1);
        // Far more runs than one pass may hold open: single-record runs
        // keyed so the global order interleaves across all of them, and
        // every key duplicated in a later run (payload = run index) so
        // compaction must preserve earlier-run-wins stability.
        let n = 2 * MERGE_FAN_IN + 7;
        let runs: Vec<Run> = (0..n)
            .map(|i| {
                let mut w = ctx.writer("many").unwrap();
                w.push(
                    &[(i % MERGE_FAN_IN) as u64],
                    &row(vec![Value::Int(i as i64)]),
                )
                .unwrap();
                w.finish().unwrap()
            })
            .collect();
        let merged: Vec<(u64, i64)> = merge_runs(&runs, &ctx, |a, b| a.0[0].cmp(&b.0[0]))
            .unwrap()
            .map(|rec| {
                let (_, (keys, r)) = rec.unwrap();
                (keys[0], r[0].as_int().unwrap())
            })
            .collect();
        assert_eq!(merged.len(), n);
        // Keys ascend; equal keys keep original run order (stability
        // survives the runs-of-runs compaction passes).
        for w in merged.windows(2) {
            assert!(w[0].0 <= w[1].0, "{merged:?}");
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "tie broke stability: {merged:?}");
            }
        }
        assert!(ctx.events() > 0, "compaction passes count as spills");
    }

    #[test]
    fn spill_dir_is_lazy_and_cleaned_on_drop() {
        let ctx = SpillCtx::new(0, 1);
        assert!(ctx.dir_path().is_none(), "no dir before the first spill");
        let mut w = ctx.writer("probe").unwrap();
        w.push(&[0], &row(vec![Value::Int(1)])).unwrap();
        let _run = w.finish().unwrap();
        let dir = ctx.dir_path().expect("dir exists after a spill").to_owned();
        assert!(dir.exists());
        ctx.record_spill(64);
        assert_eq!(ctx.events(), 1);
        assert!(ctx.spilled_bytes() >= 64);
        drop(ctx);
        assert!(!dir.exists(), "spill dir must be removed on drop");
    }

    #[test]
    fn spill_dir_is_cleaned_on_panic_unwind() {
        let dir = std::sync::Arc::new(std::sync::Mutex::new(None::<PathBuf>));
        let dir2 = std::sync::Arc::clone(&dir);
        let res = std::panic::catch_unwind(move || {
            let ctx = SpillCtx::new(0, 1);
            let mut w = ctx.writer("doomed").unwrap();
            w.push(&[0], &row(vec![Value::Int(1)])).unwrap();
            let _run = w.finish().unwrap();
            *dir2.lock().unwrap() = ctx.dir_path().map(Path::to_owned);
            panic!("aborted mid-spill");
        });
        assert!(res.is_err());
        let dir = dir.lock().unwrap().clone().expect("dir was created");
        assert!(
            !dir.exists(),
            "spill dir must be removed when execution unwinds"
        );
    }
}
