//! Ordering and truncation: ORDER BY / LIMIT as library operations.
//!
//! Like aggregation, these are engine amenities rather than part of the
//! uncertain-query translation surface (the paper's positive algebra has
//! no order). The harness binaries use them to print stable outputs.

use crate::error::Result;
use crate::expr::{CompiledExpr, Expr};
use crate::relation::Relation;

/// Sort direction per key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Order {
    /// Ascending (`Value`'s total order).
    Asc,
    /// Descending.
    Desc,
}

/// Sort a relation by the given key expressions. Stable, so equal keys
/// preserve input order.
pub fn sort_by(input: &Relation, keys: &[(Expr, Order)]) -> Result<Relation> {
    let compiled: Vec<(CompiledExpr, Order)> = keys
        .iter()
        .map(|(e, o)| Ok((e.compile(input.schema())?, *o)))
        .collect::<Result<_>>()?;
    let mut rows = input.rows().to_vec();
    rows.sort_by(|a, b| {
        for (e, o) in &compiled {
            let (va, vb) = (e.eval(a), e.eval(b));
            let ord = match o {
                Order::Asc => va.cmp(&vb),
                Order::Desc => vb.cmp(&va),
            };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Relation::new(input.schema().clone(), rows)
}

/// Keep the first `n` rows.
pub fn limit(input: &Relation, n: usize) -> Relation {
    Relation::new(
        input.schema().clone(),
        input.rows().iter().take(n).cloned().collect(),
    )
    .expect("same schema")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::col;
    use crate::value::Value;

    fn rel() -> Relation {
        Relation::from_rows(
            ["a", "b"],
            vec![
                vec![Value::Int(2), Value::str("x")],
                vec![Value::Int(1), Value::str("y")],
                vec![Value::Int(2), Value::str("a")],
            ],
        )
        .unwrap()
    }

    #[test]
    fn multi_key_sort() {
        let out = sort_by(&rel(), &[(col("a"), Order::Asc), (col("b"), Order::Desc)]).unwrap();
        let firsts: Vec<i64> = out.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(firsts, vec![1, 2, 2]);
        assert_eq!(out.rows()[1][1], Value::str("x")); // desc within a = 2
    }

    #[test]
    fn stability() {
        let out = sort_by(&rel(), &[(col("a"), Order::Asc)]).unwrap();
        // The two a=2 rows keep input order (x before a).
        assert_eq!(out.rows()[1][1], Value::str("x"));
        assert_eq!(out.rows()[2][1], Value::str("a"));
    }

    #[test]
    fn limit_truncates() {
        assert_eq!(limit(&rel(), 2).len(), 2);
        assert_eq!(limit(&rel(), 0).len(), 0);
        assert_eq!(limit(&rel(), 99).len(), 3);
    }

    #[test]
    fn sort_rejects_unknown_columns() {
        assert!(sort_by(&rel(), &[(col("zzz"), Order::Asc)]).is_err());
    }
}
