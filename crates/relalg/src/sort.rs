//! Ordering and truncation: ORDER BY / LIMIT as library operations.
//!
//! Like aggregation, these are engine amenities rather than part of the
//! uncertain-query translation surface (the paper's positive algebra has
//! no order). The harness binaries use them to print stable outputs.
//!
//! Sort is the canonical pipeline breaker: [`sort_plan`] pulls the
//! streaming executor's output directly into the sort buffer, so the
//! plan output is materialized exactly once (instead of once by the
//! executor and again by the sort) — and since the pull is unlimited,
//! batchable plans run the vectorized batch pipeline end to end, with
//! rows materialized only as they enter the buffer. [`limit_plan`]
//! exploits streaming the other way: it pulls on the row path and stops
//! after exactly `n` rows, so upstream work for the rest of the input is
//! never done (a batched pull would overshoot by up to a batch).

use crate::catalog::Catalog;
use crate::error::Result;
use crate::exec;
use crate::expr::{CompiledExpr, Expr};
use crate::plan::Plan;
use crate::relation::{Relation, Row};

/// Sort direction per key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Order {
    /// Ascending (`Value`'s total order).
    Asc,
    /// Descending.
    Desc,
}

fn sort_rows(rows: &mut [Row], compiled: &[(CompiledExpr, Order)]) {
    rows.sort_by(|a, b| {
        for (e, o) in compiled {
            let (va, vb) = (e.eval(a), e.eval(b));
            let ord = match o {
                Order::Asc => va.cmp(&vb),
                Order::Desc => vb.cmp(&va),
            };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
}

/// Sort a relation by the given key expressions. Stable, so equal keys
/// preserve input order.
pub fn sort_by(input: &Relation, keys: &[(Expr, Order)]) -> Result<Relation> {
    let compiled: Vec<(CompiledExpr, Order)> = keys
        .iter()
        .map(|(e, o)| Ok((e.compile(input.schema())?, *o)))
        .collect::<Result<_>>()?;
    let mut rows = input.rows().to_vec();
    sort_rows(&mut rows, &compiled);
    Relation::new(input.schema().clone(), rows)
}

/// ORDER BY over a streamed plan: rows are pulled directly into the
/// sort buffer, so the plan output is materialized exactly once.
pub fn sort_plan(plan: &Plan, catalog: &Catalog, keys: &[(Expr, Order)]) -> Result<Relation> {
    let streamed = exec::stream(plan, catalog)?;
    let compiled: Vec<(CompiledExpr, Order)> = keys
        .iter()
        .map(|(e, o)| Ok((e.compile(streamed.schema())?, *o)))
        .collect::<Result<_>>()?;
    let mut rows = streamed.collect_rows(None);
    sort_rows(&mut rows, &compiled);
    Relation::new(streamed.schema().clone(), rows)
}

/// Keep the first `n` rows.
pub fn limit(input: &Relation, n: usize) -> Relation {
    Relation::new(
        input.schema().clone(),
        input.rows().iter().take(n).cloned().collect(),
    )
    .expect("same schema")
}

/// LIMIT over a streamed plan: pulling stops after `n` rows, so
/// upstream operators never produce the rest of the input.
pub fn limit_plan(plan: &Plan, catalog: &Catalog, n: usize) -> Result<Relation> {
    let streamed = exec::stream(plan, catalog)?;
    let rows = streamed.collect_rows(Some(n));
    Relation::new(streamed.schema().clone(), rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::col;
    use crate::value::Value;

    fn rel() -> Relation {
        Relation::from_rows(
            ["a", "b"],
            vec![
                vec![Value::Int(2), Value::str("x")],
                vec![Value::Int(1), Value::str("y")],
                vec![Value::Int(2), Value::str("a")],
            ],
        )
        .unwrap()
    }

    #[test]
    fn multi_key_sort() {
        let out = sort_by(&rel(), &[(col("a"), Order::Asc), (col("b"), Order::Desc)]).unwrap();
        let firsts: Vec<i64> = out.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(firsts, vec![1, 2, 2]);
        assert_eq!(out.rows()[1][1], Value::str("x")); // desc within a = 2
    }

    #[test]
    fn stability() {
        let out = sort_by(&rel(), &[(col("a"), Order::Asc)]).unwrap();
        // The two a=2 rows keep input order (x before a).
        assert_eq!(out.rows()[1][1], Value::str("x"));
        assert_eq!(out.rows()[2][1], Value::str("a"));
    }

    #[test]
    fn limit_truncates() {
        assert_eq!(limit(&rel(), 2).len(), 2);
        assert_eq!(limit(&rel(), 0).len(), 0);
        assert_eq!(limit(&rel(), 99).len(), 3);
    }

    #[test]
    fn sort_rejects_unknown_columns() {
        assert!(sort_by(&rel(), &[(col("zzz"), Order::Asc)]).is_err());
    }

    #[test]
    fn plan_variants_match_relation_variants() {
        use crate::expr::lit_i64;
        let mut c = Catalog::new();
        c.insert("t", rel());
        let p = Plan::scan("t").select(col("a").gt(lit_i64(0)));
        let materialized = exec::execute(&p, &c).unwrap();
        let sorted = sort_plan(&p, &c, &[(col("a"), Order::Asc)]).unwrap();
        assert_eq!(
            sorted,
            sort_by(&materialized, &[(col("a"), Order::Asc)]).unwrap()
        );
        let limited = limit_plan(&p, &c, 2).unwrap();
        assert_eq!(limited, limit(&materialized, 2));
        assert!(sort_plan(&p, &c, &[(col("zzz"), Order::Asc)]).is_err());
    }
}
