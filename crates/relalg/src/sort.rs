//! Ordering and truncation: ORDER BY / LIMIT as library operations.
//!
//! Like aggregation, these are engine amenities rather than part of the
//! uncertain-query translation surface (the paper's positive algebra has
//! no order). The harness binaries use them to print stable outputs.
//!
//! Sort is the canonical pipeline breaker: [`sort_plan`] pulls the
//! streaming executor's output directly into the sort buffer, so the
//! plan output is materialized exactly once (instead of once by the
//! executor and again by the sort) — and since the pull is unlimited,
//! batchable plans run the vectorized batch pipeline end to end, with
//! rows materialized only as they enter the buffer. [`limit_plan`]
//! exploits streaming the other way: it pulls on the row path and stops
//! after exactly `n` rows, so upstream work for the rest of the input is
//! never done (a batched pull would overshoot by up to a batch).

use crate::catalog::Catalog;
use crate::error::Result;
use crate::exec::{self, ExecStats};
use crate::expr::{CompiledExpr, Expr};
use crate::plan::Plan;
use crate::pool::TaskPool;
use crate::relation::{row_footprint, Relation, Row};
use crate::spill::{merge_runs, Run, SpillCtx};
use std::cmp::Ordering;

/// Sort direction per key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Order {
    /// Ascending (`Value`'s total order).
    Asc,
    /// Descending.
    Desc,
}

fn key_cmp(a: &Row, b: &Row, compiled: &[(CompiledExpr, Order)]) -> Ordering {
    for (e, o) in compiled {
        let (va, vb) = (e.eval(a), e.eval(b));
        let ord = match o {
            Order::Asc => va.cmp(&vb),
            Order::Desc => vb.cmp(&va),
        };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

fn sort_rows(rows: &mut [Row], compiled: &[(CompiledExpr, Order)]) {
    rows.sort_by(|a, b| key_cmp(a, b, compiled));
}

/// Minimum input size before sorting fans out (below it, thread setup
/// costs more than the sort).
const MIN_PARALLEL_SORT: usize = 4096;

/// Stable parallel sort: split the input into contiguous runs, stable-
/// sort each run on its own scoped worker (the partial states), then
/// merge the sorted runs with ties resolved toward the earlier run — a
/// stable sort is a unique permutation, so the result is byte-identical
/// to [`sort_rows`]. Inputs too small for the pool sort serially.
fn parallel_sort_rows(
    rows: Vec<Row>,
    compiled: &[(CompiledExpr, Order)],
    pool: &TaskPool,
) -> Vec<Row> {
    if pool.threads() <= 1 || rows.len() < MIN_PARALLEL_SORT {
        let mut rows = rows;
        sort_rows(&mut rows, compiled);
        return rows;
    }
    // Contiguous runs in input order (stability needs the split to
    // preserve original positions run-major).
    let chunk = rows.len().div_ceil(pool.threads());
    let mut runs: Vec<Vec<Row>> = Vec::with_capacity(pool.threads());
    let mut rest = rows;
    while rest.len() > chunk {
        let tail = rest.split_off(chunk);
        runs.push(rest);
        rest = tail;
    }
    runs.push(rest);
    std::thread::scope(|s| {
        for run in runs.iter_mut() {
            s.spawn(move || sort_rows(run, compiled));
        }
    });
    merge_sorted_runs(runs, compiled)
}

/// Stable k-way merge of sorted runs: the smallest head wins, ties go to
/// the earliest run (which held the earlier original positions).
fn merge_sorted_runs(mut runs: Vec<Vec<Row>>, compiled: &[(CompiledExpr, Order)]) -> Vec<Row> {
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut heads: Vec<usize> = vec![0; runs.len()];
    let mut out = Vec::with_capacity(total);
    // k is the worker count (small): a linear scan per pop beats heap
    // bookkeeping and keeps tie-breaking trivially stable.
    for _ in 0..total {
        let mut best: Option<usize> = None;
        for (r, run) in runs.iter().enumerate() {
            if heads[r] >= run.len() {
                continue;
            }
            best = match best {
                None => Some(r),
                Some(b) => {
                    if key_cmp(&run[heads[r]], &runs[b][heads[b]], compiled) == Ordering::Less {
                        Some(r)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        let b = best.expect("total counts remaining rows");
        // Taking (not cloning) the merged row leaves an empty boxed
        // slice behind; the head index never revisits it.
        let head = heads[b];
        out.push(std::mem::take(&mut runs[b][head]));
        heads[b] += 1;
    }
    out
}

/// Sort a relation by the given key expressions. Stable, so equal keys
/// preserve input order.
pub fn sort_by(input: &Relation, keys: &[(Expr, Order)]) -> Result<Relation> {
    let compiled: Vec<(CompiledExpr, Order)> = keys
        .iter()
        .map(|(e, o)| Ok((e.compile(input.schema())?, *o)))
        .collect::<Result<_>>()?;
    let mut rows = input.rows().to_vec();
    sort_rows(&mut rows, &compiled);
    Relation::new(input.schema().clone(), rows)
}

/// ORDER BY over a streamed plan: rows are pulled directly into the
/// sort buffer, so the plan output is materialized exactly once — and,
/// with a parallel engine configuration, both the pull (morsel-driven)
/// and the sort itself (per-worker sorted runs + stable merge) fan out,
/// with output identical to the serial path.
///
/// Under a memory budget the sort goes *external*: input chunks are
/// stable-sorted and flushed as sorted runs whenever the buffer crosses
/// the budget's per-worker share, and the runs are merged back with
/// ties resolved toward the earlier run — runs hold contiguous input
/// chunks in input order, so the merge reproduces the in-memory stable
/// sort byte-for-byte.
pub fn sort_plan(plan: &Plan, catalog: &Catalog, keys: &[(Expr, Order)]) -> Result<Relation> {
    sort_plan_with_stats(plan, catalog, keys).map(|(rel, _)| rel)
}

/// [`sort_plan`] plus the execution's [`ExecStats`] (spill events of
/// both the plan's breakers and the sort itself included).
pub fn sort_plan_with_stats(
    plan: &Plan,
    catalog: &Catalog,
    keys: &[(Expr, Order)],
) -> Result<(Relation, ExecStats)> {
    let streamed = exec::stream(plan, catalog)?;
    let compiled: Vec<(CompiledExpr, Order)> = keys
        .iter()
        .map(|(e, o)| Ok((e.compile(streamed.schema())?, *o)))
        .collect::<Result<_>>()?;
    let pool = TaskPool::new(catalog.config().threads);
    let rows = if streamed.spill_ctx().budget().enabled() {
        external_sort_rows(&streamed, &compiled, &pool)?
    } else {
        let rows = streamed.collect_rows(None)?;
        parallel_sort_rows(rows, &compiled, &pool)
    };
    let rel = Relation::new(streamed.schema().clone(), rows)?;
    let stats = streamed.stats();
    Ok((rel, stats))
}

/// Budgeted sort: buffer input rows up to the budget share, flushing
/// stable-sorted chunks as runs; merge the runs (plus the in-memory
/// tail) stably at the end. Equivalent to the in-memory stable sort —
/// the unique stable permutation — and never holds more than one
/// chunk's rows plus the merge heads in memory (the *output* vector is
/// the consumer's, as always).
fn external_sort_rows(
    streamed: &exec::Streamed,
    compiled: &[(CompiledExpr, Order)],
    pool: &TaskPool,
) -> Result<Vec<Row>> {
    let ctx = streamed.spill_ctx();
    let share = ctx.budget().share();
    let mut chunk: Vec<Row> = Vec::new();
    let mut bytes = 0usize;
    let mut runs: Vec<Run> = Vec::new();
    streamed.for_each_batch(|b| {
        for pos in 0..b.len() {
            let row = b.row(pos);
            let fp = row_footprint(&row);
            ctx.budget().charge(fp);
            bytes += fp;
            chunk.push(row);
            if bytes > share {
                flush_sort_run(&mut chunk, &mut bytes, compiled, ctx, &mut runs)?;
            }
        }
        Ok(())
    })?;
    if runs.is_empty() {
        // Everything fit the share: release the charge and sort in
        // memory — on the parallel path, exactly like unbounded runs.
        ctx.budget().release(bytes);
        return Ok(parallel_sort_rows(chunk, compiled, pool));
    }
    if !chunk.is_empty() {
        flush_sort_run(&mut chunk, &mut bytes, compiled, ctx, &mut runs)?;
    }
    let merge = merge_runs(&runs, ctx, |a, b| key_cmp(&a.1, &b.1, compiled))?;
    let mut out = Vec::new();
    for item in merge {
        let (_, (_, row)) = item?;
        out.push(row);
    }
    Ok(out)
}

/// Flush one stable-sorted chunk as a run and release its bytes.
fn flush_sort_run(
    chunk: &mut Vec<Row>,
    bytes: &mut usize,
    compiled: &[(CompiledExpr, Order)],
    ctx: &SpillCtx,
    runs: &mut Vec<Run>,
) -> Result<()> {
    sort_rows(chunk, compiled);
    let mut w = ctx.writer("sort-run")?;
    for r in chunk.iter() {
        w.push(&[], r)?;
    }
    runs.push(w.finish()?);
    ctx.record_spill(*bytes);
    ctx.budget().release(*bytes);
    *bytes = 0;
    chunk.clear();
    Ok(())
}

/// Keep the first `n` rows.
pub fn limit(input: &Relation, n: usize) -> Relation {
    Relation::new(
        input.schema().clone(),
        input.rows().iter().take(n).cloned().collect(),
    )
    .expect("same schema")
}

/// LIMIT over a streamed plan: pulling stops after `n` rows, so
/// upstream operators never produce the rest of the input.
pub fn limit_plan(plan: &Plan, catalog: &Catalog, n: usize) -> Result<Relation> {
    let streamed = exec::stream(plan, catalog)?;
    let rows = streamed.collect_rows(Some(n))?;
    Relation::new(streamed.schema().clone(), rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::col;
    use crate::value::Value;

    fn rel() -> Relation {
        Relation::from_rows(
            ["a", "b"],
            vec![
                vec![Value::Int(2), Value::str("x")],
                vec![Value::Int(1), Value::str("y")],
                vec![Value::Int(2), Value::str("a")],
            ],
        )
        .unwrap()
    }

    #[test]
    fn multi_key_sort() {
        let out = sort_by(&rel(), &[(col("a"), Order::Asc), (col("b"), Order::Desc)]).unwrap();
        let firsts: Vec<i64> = out.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(firsts, vec![1, 2, 2]);
        assert_eq!(out.rows()[1][1], Value::str("x")); // desc within a = 2
    }

    #[test]
    fn stability() {
        let out = sort_by(&rel(), &[(col("a"), Order::Asc)]).unwrap();
        // The two a=2 rows keep input order (x before a).
        assert_eq!(out.rows()[1][1], Value::str("x"));
        assert_eq!(out.rows()[2][1], Value::str("a"));
    }

    #[test]
    fn limit_truncates() {
        assert_eq!(limit(&rel(), 2).len(), 2);
        assert_eq!(limit(&rel(), 0).len(), 0);
        assert_eq!(limit(&rel(), 99).len(), 3);
    }

    #[test]
    fn sort_rejects_unknown_columns() {
        assert!(sort_by(&rel(), &[(col("zzz"), Order::Asc)]).is_err());
    }

    #[test]
    fn parallel_sort_matches_serial_stable_sort() {
        // Many duplicate keys across run boundaries: stability (original
        // order within equal keys) must survive the run merge.
        let rows: Vec<Row> = (0..(2 * MIN_PARALLEL_SORT as i64))
            .map(|i| vec![Value::Int(i % 13), Value::Int(i)].into_boxed_slice())
            .collect();
        let schema = crate::schema::Schema::named(["k", "seq"]);
        let compiled = vec![(col("k").compile(&schema).unwrap(), Order::Asc)];
        let mut serial = rows.clone();
        sort_rows(&mut serial, &compiled);
        for threads in [2, 4] {
            let parallel = parallel_sort_rows(rows.clone(), &compiled, &TaskPool::new(threads));
            assert_eq!(parallel, serial, "{threads} threads");
        }
        // Small inputs take the serial path inside parallel_sort_rows.
        let small: Vec<Row> = rows.iter().take(10).cloned().collect();
        let mut want = small.clone();
        sort_rows(&mut want, &compiled);
        assert_eq!(
            parallel_sort_rows(small, &compiled, &TaskPool::new(4)),
            want
        );
    }

    #[test]
    fn plan_variants_match_relation_variants() {
        use crate::expr::lit_i64;
        let mut c = Catalog::new();
        c.insert("t", rel());
        let p = Plan::scan("t").select(col("a").gt(lit_i64(0)));
        let materialized = exec::execute(&p, &c).unwrap();
        let sorted = sort_plan(&p, &c, &[(col("a"), Order::Asc)]).unwrap();
        assert_eq!(
            sorted,
            sort_by(&materialized, &[(col("a"), Order::Asc)]).unwrap()
        );
        let limited = limit_plan(&p, &c, 2).unwrap();
        assert_eq!(limited, limit(&materialized, 2));
        assert!(sort_plan(&p, &c, &[(col("zzz"), Order::Asc)]).is_err());
    }
}
