//! A small FxHash-style hasher.
//!
//! Join keys are short vectors of integers and interned strings; SipHash's
//! HashDoS protection buys nothing here and costs a lot on hot paths (see
//! the Rust Performance Book, "Hashing"). This is the classic Firefox/rustc
//! multiply-rotate hash, implemented locally to keep the dependency set to
//! the approved list.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher over a 64-bit state.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with the fast hasher.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"a"), hash_of(&"b"));
        assert_ne!(hash_of(&[1u64, 2]), hash_of(&[2u64, 1]));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<String, i32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(format!("key{i}"), i);
        }
        for i in 0..1000 {
            assert_eq!(m.get(&format!("key{i}")), Some(&i));
        }
    }
}
