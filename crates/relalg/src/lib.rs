//! # urel-relalg — an in-memory relational algebra engine
//!
//! This crate is the relational substrate of the U-relations reproduction
//! (Antova, Jansen, Koch, Olteanu, ICDE 2008). The paper's central claim is
//! that queries over uncertain databases translate into *plain relational
//! algebra* over the representation relations, and that a stock relational
//! optimizer handles the translated plans well. This crate supplies exactly
//! that target language:
//!
//! * [`Value`], [`Schema`], [`Relation`] — the data model (typed rows over
//!   named, optionally qualified columns);
//! * [`Expr`] — scalar expressions (comparisons, boolean connectives) that
//!   compile to column-index form before evaluation;
//! * [`Plan`] — logical plans: scan, select, project (generalized), inner
//!   theta-join, semi/anti-join, union, difference, distinct, rename;
//! * [`exec::execute`] — pull-based streaming execution, vectorized and
//!   morsel-driven parallel: pipelines process column-major
//!   [`batch::ColumnBatch`]es (typed columns off each relation's cached
//!   [`relation::ColumnarImage`], selection vectors, column-at-a-time
//!   predicates, batch-hashed join probes, pair-batch evaluation of
//!   cross-side residuals), and large pulls fan out over a scoped
//!   [`pool::TaskPool`] of workers claiming image morsels, with an
//!   ordered gather keeping parallel output byte-identical to serial
//!   (`RELALG_THREADS` / [`catalog::EngineConfig`] control the
//!   fan-out). Only pipeline breakers (hash-join build sides,
//!   distinct/difference seen-sets, sort, aggregation) buffer — as
//!   parallel partial states when fanned out — and [`exec::ExecStats`]
//!   counts exactly how much, plus the batches emitted and the workers
//!   used. Under a memory budget (`RELALG_MEM_BUDGET` /
//!   [`Catalog::set_mem_budget`]) over-share breakers **spill to
//!   sorted runs** ([`spill`]) — hybrid-hash join partitions, dedup
//!   candidate runs, external sort/aggregation merges — with output
//!   byte-identical to unbounded execution and run files in a scoped
//!   temp directory cleaned on drop. Base tables can live as
//!   **compressed column segments** ([`segment`]) — dictionary-coded
//!   strings and frame-of-reference bit-packed integers with
//!   per-segment zone maps — served through an [`ImageProvider`]
//!   ([`provider`]) that either keeps decoded segments resident or
//!   pages them through a small clock-eviction cache
//!   (`RELALG_STORAGE` / [`Catalog::set_storage`]); scans skip whole
//!   segments whose zone maps refute a sargable predicate. The
//!   retained operator-at-a-time engine
//!   ([`exec::execute_reference`]) is the differential baseline;
//! * [`optimizer::optimize`] — conjunct splitting, selection pushdown,
//!   projection pruning, greedy cost-based join reordering, and
//!   redundant-distinct elimination;
//! * [`explain::explain`] — an `EXPLAIN`-style plan printer with row
//!   estimates and per-node pipeline/buffer annotations (the Figure 13
//!   analog);
//! * [`Catalog`] — a named-relation store with per-column statistics.
//!
//! The engine is deliberately small but real: hash joins, semijoin
//! filtering, set operations and the optimizer are the code paths the
//! paper's experiments exercise through PostgreSQL.

pub mod admission;
pub mod aggregate;
pub mod batch;
pub mod catalog;
pub mod error;
pub mod exec;
pub mod explain;
pub mod expr;
pub mod fault;
pub mod fxhash;
pub mod io;
pub mod optimizer;
pub mod plan;
pub mod pool;
pub mod provider;
pub mod relation;
pub mod schema;
pub mod segment;
pub mod sort;
pub mod spill;
pub mod stats;
pub mod store;
pub mod value;

pub use admission::{AdmissionGate, AdmissionPermit, AdmissionStats};
pub use aggregate::{aggregate, aggregate_plan, aggregate_plan_with_stats, AggFunc, Aggregate};
pub use batch::{BatchCol, ColumnBatch, BATCH_SIZE};
pub use catalog::{Catalog, EngineConfig, StorageMode};
pub use error::{Error, Result};
pub use exec::ExecStats;
pub use expr::{col, lit, lit_bool, lit_i64, lit_str, ArithOp, CmpOp, Expr};
pub use fault::{CancelToken, FaultConfig, FaultInjector, FaultKind, FaultKinds};
pub use plan::Plan;
pub use pool::TaskPool;
pub use provider::{ImageProvider, IoCounters};
pub use relation::{Column, ColumnarImage, NullMask, Relation, Row};
pub use schema::{ColRef, Schema};
pub use segment::{SegmentedBuilder, SegmentedImage, ZoneMap};
pub use spill::{MemBudget, SpillCtx};
pub use store::{BufferPool, DiskImage, DiskImageProvider, DiskTableWriter};
pub use value::Value;
