//! Column references and relation schemas.

use crate::error::{Error, Result};
use std::fmt;
use std::sync::Arc;

/// A column reference: an optional relation qualifier plus a column name.
///
/// `ColRef::parse("c.custkey")` yields qualifier `c`, name `custkey`;
/// `ColRef::parse("custkey")` is unqualified. Resolution against a
/// [`Schema`] follows SQL rules: a qualified reference must match both
/// parts; an unqualified reference matches by name only and is an error if
/// ambiguous.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColRef {
    /// Optional relation alias (set by `Plan::Rename`).
    pub qualifier: Option<Arc<str>>,
    /// The column name proper.
    pub name: Arc<str>,
}

impl ColRef {
    /// Unqualified column reference.
    pub fn new(name: impl AsRef<str>) -> Self {
        ColRef {
            qualifier: None,
            name: Arc::from(name.as_ref()),
        }
    }

    /// Qualified column reference.
    pub fn qualified(qualifier: impl AsRef<str>, name: impl AsRef<str>) -> Self {
        ColRef {
            qualifier: Some(Arc::from(qualifier.as_ref())),
            name: Arc::from(name.as_ref()),
        }
    }

    /// Parse `"q.name"` or `"name"`.
    pub fn parse(s: &str) -> Self {
        match s.split_once('.') {
            Some((q, n)) => ColRef::qualified(q, n),
            None => ColRef::new(s),
        }
    }

    /// Does a reference `r` (as written in an expression) match this schema
    /// column? Unqualified references match by name; qualified ones must
    /// match the qualifier too.
    pub fn matches(&self, r: &ColRef) -> bool {
        if self.name != r.name {
            return false;
        }
        match (&r.qualifier, &self.qualifier) {
            (None, _) => true,
            (Some(rq), Some(sq)) => rq == sq,
            (Some(_), None) => false,
        }
    }

    /// The same column with its qualifier replaced.
    pub fn with_qualifier(&self, q: impl AsRef<str>) -> Self {
        ColRef {
            qualifier: Some(Arc::from(q.as_ref())),
            name: self.name.clone(),
        }
    }

    /// The same column with the qualifier removed.
    pub fn unqualified(&self) -> Self {
        ColRef {
            qualifier: None,
            name: self.name.clone(),
        }
    }
}

impl fmt::Display for ColRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

impl From<&str> for ColRef {
    fn from(s: &str) -> Self {
        ColRef::parse(s)
    }
}

/// An ordered list of (qualified) column names.
///
/// Backed by `Arc<[ColRef]>`: schemas are cloned on every plan walk,
/// prepare, and estimate, so a clone must be a refcount bump, not a
/// vector copy. Schemas are immutable — `concat`/`qualify` build new
/// ones.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Schema {
    cols: Arc<[ColRef]>,
}

impl Schema {
    /// Schema from column references.
    pub fn new(cols: Vec<ColRef>) -> Self {
        Schema { cols: cols.into() }
    }

    /// Schema from unqualified (or dotted) name strings.
    pub fn named<S: AsRef<str>>(names: impl IntoIterator<Item = S>) -> Self {
        Schema {
            cols: names
                .into_iter()
                .map(|n| ColRef::parse(n.as_ref()))
                .collect::<Vec<_>>()
                .into(),
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// The column list.
    pub fn columns(&self) -> &[ColRef] {
        &self.cols
    }

    /// Resolve a reference to a column index. Errors on unknown or
    /// ambiguous references.
    pub fn resolve(&self, r: &ColRef) -> Result<usize> {
        let mut found = None;
        for (i, c) in self.cols.iter().enumerate() {
            if c.matches(r) {
                if found.is_some() {
                    return Err(Error::AmbiguousColumn {
                        name: r.to_string(),
                        schema: self.to_string(),
                    });
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| Error::UnknownColumn {
            name: r.to_string(),
            schema: self.to_string(),
        })
    }

    /// Resolve a plain name string (see [`ColRef::parse`]).
    pub fn resolve_name(&self, name: &str) -> Result<usize> {
        self.resolve(&ColRef::parse(name))
    }

    /// `true` if the reference resolves uniquely.
    pub fn contains(&self, r: &ColRef) -> bool {
        self.resolve(r).is_ok()
    }

    /// Concatenate two schemas (join output).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut cols: Vec<ColRef> = Vec::with_capacity(self.cols.len() + other.cols.len());
        cols.extend(self.cols.iter().cloned());
        cols.extend(other.cols.iter().cloned());
        Schema { cols: cols.into() }
    }

    /// All columns re-qualified with `alias` (rename output).
    pub fn qualify(&self, alias: &str) -> Schema {
        Schema {
            cols: self
                .cols
                .iter()
                .map(|c| c.with_qualifier(alias))
                .collect::<Vec<_>>()
                .into(),
        }
    }

    /// Positional compatibility for set operations: same arity (names may
    /// differ; the left schema wins in the output).
    pub fn compatible(&self, other: &Schema) -> bool {
        self.arity() == other.arity()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.cols.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let c = ColRef::parse("cust.name");
        assert_eq!(c.qualifier.as_deref(), Some("cust"));
        assert_eq!(&*c.name, "name");
        assert_eq!(c.to_string(), "cust.name");
        assert_eq!(ColRef::parse("name").to_string(), "name");
    }

    #[test]
    fn resolution_rules() {
        let s = Schema::new(vec![
            ColRef::qualified("l", "tid"),
            ColRef::qualified("r", "tid"),
            ColRef::qualified("l", "a"),
        ]);
        assert_eq!(s.resolve(&ColRef::parse("l.tid")).unwrap(), 0);
        assert_eq!(s.resolve(&ColRef::parse("r.tid")).unwrap(), 1);
        assert!(matches!(
            s.resolve(&ColRef::parse("tid")),
            Err(Error::AmbiguousColumn { .. })
        ));
        assert_eq!(s.resolve(&ColRef::parse("a")).unwrap(), 2);
        assert!(matches!(
            s.resolve(&ColRef::parse("zzz")),
            Err(Error::UnknownColumn { .. })
        ));
        // Qualified ref does not match an unqualified schema column.
        let s2 = Schema::named(["x"]);
        assert!(s2.resolve(&ColRef::parse("q.x")).is_err());
    }

    #[test]
    fn qualify_and_concat() {
        let s = Schema::named(["a", "b"]).qualify("t");
        assert_eq!(s.to_string(), "t.a, t.b");
        let joined = s.concat(&Schema::named(["c"]));
        assert_eq!(joined.arity(), 3);
        assert_eq!(joined.resolve(&ColRef::parse("c")).unwrap(), 2);
    }
}
