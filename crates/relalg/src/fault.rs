//! Deterministic fault injection, cooperative cancellation, and the
//! engine's unified panic/poison recovery policy.
//!
//! The engine's correctness now depends on dozens of filesystem
//! operations — disk-store page reads, spill-run writes and merges,
//! buffer-pool leases — and the contract for all of them is: **no
//! fault may panic, leak, or corrupt**. A failing operation either
//! succeeds after a bounded retry (transient errors only) or surfaces
//! as a clean [`Error::Io`], with every spill file, pool lease and
//! lock released on the way out.
//!
//! Three pieces enforce that contract:
//!
//! * [`FaultInjector`] — a seeded, deterministic fault source threaded
//!   through every fallible I/O edge. Each edge draws one *tick*; a
//!   splitmix-style hash of `(seed, tick)` decides whether that
//!   operation fails and whether the failure is transient (retryable)
//!   or fatal. One execution owns one injector with ticks starting at
//!   0, so a `(seed, rate)` pair names a reproducible fault schedule
//!   regardless of process history. Configured via
//!   `RELALG_FAULTS=<seed>:<rate>[:<kinds>]` or
//!   [`crate::Catalog::set_faults`]; when disabled (the default) every
//!   edge short-circuits on a `None` check — no ticks, no hashing.
//! * [`CancelToken`] — cooperative cancellation checked at batch and
//!   morsel boundaries. A token trips either explicitly
//!   ([`CancelToken::cancel`]) or by deadline
//!   (`RELALG_DEADLINE_MS` / [`crate::Catalog::set_deadline`]); the
//!   executing query unwinds through its breakers, releasing buffer
//!   pool slots and dropping spill directories, and returns
//!   [`Error::Cancelled`].
//! * [`rethrow`] / [`catch_pull`] / [`lock_recover`] — the recovery
//!   policy. Pull-time cursors are infallible by signature, so
//!   mid-pull I/O errors unwind carrying an [`Error`] payload
//!   ([`rethrow`]) and are converted back to `Err` at the pull drivers
//!   and pool workers ([`catch_pull`]). Engine critical sections keep
//!   shared state valid at every panic point, so a poisoned lock's
//!   data is safe to reuse: [`lock_recover`] recovers the guard
//!   instead of propagating the poison, which would otherwise wedge
//!   every later query once a worker panic is converted to an error.

use crate::error::{Error, Result};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Fault configuration
// ---------------------------------------------------------------------------

/// The I/O edge classes faults can target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Reading bytes back: disk-store page reads, spill-run records.
    Read,
    /// Writing bytes out: spill-run records, run flushes, page writes.
    Write,
    /// Opening/creating files and directories (incl. manifest open).
    Open,
    /// Acquiring a buffer-pool or segment-cache lease.
    Lease,
}

impl FaultKind {
    fn bit(self) -> u8 {
        match self {
            FaultKind::Read => 1,
            FaultKind::Write => 2,
            FaultKind::Open => 4,
            FaultKind::Lease => 8,
        }
    }

    fn label(self) -> &'static str {
        match self {
            FaultKind::Read => "read",
            FaultKind::Write => "write",
            FaultKind::Open => "open",
            FaultKind::Lease => "lease",
        }
    }
}

/// A set of [`FaultKind`]s (bit set; default = all kinds).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultKinds(u8);

impl FaultKinds {
    /// Every kind.
    pub const ALL: FaultKinds = FaultKinds(0x0f);
    /// No kind (an injector with empty kinds never fires).
    pub const NONE: FaultKinds = FaultKinds(0);

    /// The set containing exactly `kinds`.
    pub fn of(kinds: &[FaultKind]) -> FaultKinds {
        FaultKinds(kinds.iter().fold(0, |acc, k| acc | k.bit()))
    }

    /// Is `kind` in the set?
    pub fn contains(self, kind: FaultKind) -> bool {
        self.0 & kind.bit() != 0
    }
}

impl Default for FaultKinds {
    fn default() -> Self {
        FaultKinds::ALL
    }
}

/// Static fault-injection configuration: a seed naming the schedule, a
/// failure rate, and the edge kinds it applies to. `Copy`/`Eq` so it
/// embeds in [`crate::EngineConfig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultConfig {
    /// Schedule seed: same seed + same operation sequence = same faults.
    pub seed: u64,
    /// Failure probability per I/O edge, in parts per million.
    pub rate_ppm: u32,
    /// Edge kinds the schedule targets.
    pub kinds: FaultKinds,
}

impl FaultConfig {
    /// A schedule failing each targeted edge with probability `rate`
    /// (clamped to `[0, 1]`), across all kinds.
    pub fn new(seed: u64, rate: f64) -> FaultConfig {
        FaultConfig {
            seed,
            rate_ppm: (rate.clamp(0.0, 1.0) * 1_000_000.0) as u32,
            kinds: FaultKinds::ALL,
        }
    }

    /// Parse `"<seed>:<rate>[:<kinds>]"` (the `RELALG_FAULTS` format):
    /// `seed` a u64, `rate` a probability in `[0, 1]`, `kinds` a
    /// comma-separated subset of `read,write,open,lease` (default all).
    /// `None` on malformed specs.
    pub fn parse(spec: &str) -> Option<FaultConfig> {
        let mut parts = spec.splitn(3, ':');
        let seed: u64 = parts.next()?.trim().parse().ok()?;
        let rate: f64 = parts.next()?.trim().parse().ok()?;
        if !(0.0..=1.0).contains(&rate) {
            return None;
        }
        let kinds = match parts.next() {
            None | Some("") => FaultKinds::ALL,
            Some(list) => {
                let mut kinds = Vec::new();
                for k in list.split(',') {
                    kinds.push(match k.trim() {
                        "read" => FaultKind::Read,
                        "write" => FaultKind::Write,
                        "open" => FaultKind::Open,
                        "lease" => FaultKind::Lease,
                        _ => return None,
                    });
                }
                FaultKinds::of(&kinds)
            }
        };
        Some(FaultConfig {
            seed,
            rate_ppm: (rate * 1_000_000.0) as u32,
            kinds,
        })
    }
}

// ---------------------------------------------------------------------------
// Runtime injector
// ---------------------------------------------------------------------------

/// splitmix64 finalizer: uniform, cheap, and stateless per tick.
fn mix(seed: u64, tick: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(tick.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-execution deterministic fault source plus the fault counters
/// [`crate::ExecStats`] reports. One injector per prepared execution,
/// ticks from zero — the schedule depends only on `(config, operation
/// sequence)`, never on process history.
#[derive(Debug)]
pub struct FaultInjector {
    cfg: FaultConfig,
    ticks: AtomicU64,
    injected: AtomicU64,
    retries: AtomicU64,
}

impl FaultInjector {
    /// An injector running `cfg`'s schedule from tick 0.
    pub fn new(cfg: FaultConfig) -> FaultInjector {
        FaultInjector {
            cfg,
            ticks: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            retries: AtomicU64::new(0),
        }
    }

    /// Faults injected so far.
    pub fn injected(&self) -> usize {
        self.injected.load(Ordering::Relaxed) as usize
    }

    /// Transient-error retries taken so far (injected or real).
    pub fn retries(&self) -> usize {
        self.retries.load(Ordering::Relaxed) as usize
    }

    /// Count one transient-error retry.
    pub fn note_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Draw the next tick for an edge of `kind`: `Ok(())` to proceed,
    /// or the injected failure. Roughly half the injected failures are
    /// transient ([`is_transient`]) — eligible for retry — and half
    /// fatal.
    pub fn check(&self, kind: FaultKind, what: &str) -> io::Result<()> {
        if self.cfg.rate_ppm == 0 || !self.cfg.kinds.contains(kind) {
            return Ok(());
        }
        let tick = self.ticks.fetch_add(1, Ordering::Relaxed);
        let h = mix(self.cfg.seed, tick);
        if (h % 1_000_000) as u32 >= self.cfg.rate_ppm {
            return Ok(());
        }
        self.injected.fetch_add(1, Ordering::Relaxed);
        let (ekind, class) = if (h >> 32) & 1 == 0 {
            (io::ErrorKind::Interrupted, "transient")
        } else {
            (io::ErrorKind::Other, "fatal")
        };
        Err(io::Error::new(
            ekind,
            format!("injected {class} {} fault: {what}", kind.label()),
        ))
    }
}

/// Check an optional injector (the disabled path is one `None` test).
#[inline]
pub fn inject(faults: Option<&FaultInjector>, kind: FaultKind, what: &str) -> io::Result<()> {
    match faults {
        Some(f) => f.check(kind, what),
        None => Ok(()),
    }
}

// ---------------------------------------------------------------------------
// Retry policy and error mapping
// ---------------------------------------------------------------------------

/// Maximum retries of one transient-failing operation before the error
/// propagates as fatal.
pub const MAX_IO_RETRIES: usize = 3;

/// Is this error transient (worth a bounded retry)? `EINTR`-class
/// conditions only; everything else — including injected fatal faults —
/// propagates immediately.
pub fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Run `op`, retrying transient failures up to [`MAX_IO_RETRIES`] times
/// with a short exponential backoff. `op` must be restartable from the
/// top (whole-object reads, opens, injection checks); mid-stream writes
/// are *not* — their callers map errors without retry.
pub fn retry_io<T>(
    faults: Option<&FaultInjector>,
    mut op: impl FnMut() -> io::Result<T>,
) -> io::Result<T> {
    let mut attempt = 0;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if is_transient(&e) && attempt < MAX_IO_RETRIES => {
                attempt += 1;
                if let Some(f) = faults {
                    f.note_retry();
                }
                std::thread::sleep(Duration::from_micros(20 << attempt));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Map an I/O failure at `what` into the engine error.
pub fn io_error(what: &str, e: &io::Error) -> Error {
    Error::Io(format!("{what}: {e}"))
}

// ---------------------------------------------------------------------------
// Cooperative cancellation
// ---------------------------------------------------------------------------

/// Cooperative cancellation handle: trips explicitly or by deadline.
/// Checked at batch/morsel boundaries, so a cancelled query stops
/// within one batch of work and unwinds through its breakers (spill
/// dirs and pool leases release on the way out).
#[derive(Debug)]
pub struct CancelToken {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that trips when `deadline` elapses (measured from now),
    /// or only on explicit [`CancelToken::cancel`] when `None`.
    pub fn new(deadline: Option<Duration>) -> CancelToken {
        CancelToken {
            cancelled: AtomicBool::new(false),
            deadline: deadline.map(|d| Instant::now() + d),
        }
    }

    /// A token without a deadline.
    pub fn unlimited() -> CancelToken {
        CancelToken::new(None)
    }

    /// Trip the token; every later [`CancelToken::check`] fails.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Has the token tripped (explicitly or by deadline)?
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed) || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Has a pull *observed* the trip? Unlike [`CancelToken::is_cancelled`]
    /// this reads only the latched flag — a deadline that elapsed after
    /// the query already finished does not count.
    pub fn tripped(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// `Err(Error::Cancelled)` once tripped. The deadline branch
    /// latches the flag so the cheap atomic path answers from then on.
    pub fn check(&self) -> Result<()> {
        if self.cancelled.load(Ordering::Relaxed) {
            return Err(Error::Cancelled("query cancelled".into()));
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                self.cancelled.store(true, Ordering::Relaxed);
                return Err(Error::Cancelled("deadline exceeded".into()));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Unwind plumbing and lock-poison recovery
// ---------------------------------------------------------------------------

/// Resume an error as an unwind through infallible cursor interfaces.
/// The payload is the [`Error`] itself; [`catch_pull`] (at the pull
/// drivers and pool workers) converts it back to `Err`. Breaker state
/// on the unwind path cleans up via `Drop` (spill dirs, pool-lease
/// guards), so rethrowing never leaks.
pub fn rethrow<T>(r: Result<T>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => std::panic::panic_any(e),
    }
}

/// Convert a caught unwind payload into an engine error: [`rethrow`]n
/// errors pass through; genuine panics become `Error::Invalid` with
/// the panic message.
pub fn unwind_to_error(payload: Box<dyn std::any::Any + Send>) -> Error {
    match payload.downcast::<Error>() {
        Ok(e) => *e,
        Err(p) => {
            let msg = p
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| p.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic payload".into());
            Error::Invalid(format!("worker panicked: {msg}"))
        }
    }
}

/// Run a pull (or worker body) catching unwinds and mapping them back
/// to engine errors. The closure is `AssertUnwindSafe`: everything it
/// touches either cleans up on `Drop` or is re-validated by
/// [`lock_recover`] on next acquisition.
pub fn catch_pull<T>(f: impl FnOnce() -> T) -> Result<T> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).map_err(unwind_to_error)
}

/// The engine's single lock-poison policy: recover the guard. Engine
/// critical sections leave shared state valid at every panic point
/// (caches hold immutable `Arc`s; counters are monotone), so a poisoned
/// mutex's data is safe to reuse — and with worker panics converted to
/// errors at the pool boundary, propagating poison would wedge every
/// subsequent query for no protection in return.
pub fn lock_recover<T>(lock: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    lock.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Leak check used by the fault suite: after an execution ends —
/// success, clean error, or cancellation — its spill directory must be
/// gone and the shared buffer pool must hold no in-flight leases.
pub fn assert_no_leaks(spill_dir: Option<&std::path::Path>, pool_in_flight: usize) {
    if let Some(dir) = spill_dir {
        assert!(!dir.exists(), "leaked spill directory: {}", dir.display());
    }
    assert_eq!(pool_in_flight, 0, "buffer pool leaked in-flight leases");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_full_and_minimal_specs() {
        let c = FaultConfig::parse("42:0.01").unwrap();
        assert_eq!(c.seed, 42);
        assert_eq!(c.rate_ppm, 10_000);
        assert_eq!(c.kinds, FaultKinds::ALL);
        let c = FaultConfig::parse("7:0.5:read,lease").unwrap();
        assert!(c.kinds.contains(FaultKind::Read));
        assert!(c.kinds.contains(FaultKind::Lease));
        assert!(!c.kinds.contains(FaultKind::Write));
        assert!(FaultConfig::parse("x:0.1").is_none());
        assert!(FaultConfig::parse("1:2.0").is_none());
        assert!(FaultConfig::parse("1:0.1:bogus").is_none());
        assert!(FaultConfig::parse("1").is_none());
    }

    #[test]
    fn schedules_are_deterministic_and_rate_bounded() {
        let run = |seed| {
            let inj = FaultInjector::new(FaultConfig::new(seed, 0.05));
            (0..10_000)
                .map(|i| inj.check(FaultKind::Read, &format!("op{i}")).is_err())
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(1), run(1), "same seed, same schedule");
        assert_ne!(run(1), run(2), "different seeds diverge");
        let hits = run(1).iter().filter(|&&b| b).count();
        // 5% nominal over 10k draws: comfortably within [1%, 10%].
        assert!((100..1000).contains(&hits), "rate off: {hits}");
    }

    #[test]
    fn disabled_kinds_and_zero_rate_never_fire() {
        let inj = FaultInjector::new(FaultConfig {
            seed: 3,
            rate_ppm: 1_000_000,
            kinds: FaultKinds::of(&[FaultKind::Write]),
        });
        for _ in 0..100 {
            assert!(inj.check(FaultKind::Read, "r").is_ok());
            assert!(inj.check(FaultKind::Lease, "l").is_ok());
        }
        assert!(inj.check(FaultKind::Write, "w").is_err());
        let off = FaultInjector::new(FaultConfig::new(9, 0.0));
        assert!((0..100).all(|_| off.check(FaultKind::Open, "o").is_ok()));
        assert_eq!(off.injected(), 0);
    }

    #[test]
    fn retry_io_retries_transient_and_propagates_fatal() {
        let mut left = 2;
        let v = retry_io(None, || {
            if left > 0 {
                left -= 1;
                Err(io::Error::new(io::ErrorKind::Interrupted, "eintr"))
            } else {
                Ok(7)
            }
        })
        .unwrap();
        assert_eq!(v, 7);
        let e = retry_io(None, || Err::<(), _>(io::Error::other("disk on fire"))).unwrap_err();
        assert!(!is_transient(&e));
        // Transient forever: bounded, then the transient error surfaces.
        let mut calls = 0;
        let e = retry_io(None, || {
            calls += 1;
            Err::<(), _>(io::Error::new(io::ErrorKind::Interrupted, "eintr"))
        })
        .unwrap_err();
        assert!(is_transient(&e));
        assert_eq!(calls, 1 + MAX_IO_RETRIES);
    }

    #[test]
    fn cancel_token_trips_on_deadline_and_explicitly() {
        let t = CancelToken::unlimited();
        assert!(t.check().is_ok());
        t.cancel();
        assert!(matches!(t.check(), Err(Error::Cancelled(_))));
        let t = CancelToken::new(Some(Duration::from_millis(0)));
        std::thread::sleep(Duration::from_millis(1));
        assert!(t.is_cancelled());
        assert!(matches!(t.check(), Err(Error::Cancelled(_))));
    }

    #[test]
    fn unwind_payloads_round_trip_errors() {
        let r = catch_pull(|| rethrow::<i32>(Err(Error::Io("boom".into()))));
        assert_eq!(r, Err(Error::Io("boom".into())));
        let r = catch_pull(|| -> i32 { panic!("raw panic {}", 1) });
        match r {
            Err(Error::Invalid(msg)) => assert!(msg.contains("raw panic 1")),
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(catch_pull(|| 5), Ok(5));
    }

    #[test]
    fn lock_recover_survives_poison() {
        let m = std::sync::Mutex::new(1);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.lock().unwrap();
            panic!("poison it");
        }));
        assert!(m.is_poisoned());
        assert_eq!(*lock_recover(&m), 1);
    }
}
