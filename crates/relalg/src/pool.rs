//! A scoped work-stealing task pool for morsel-driven execution.
//!
//! The parallel executor splits work into *tasks* (morsels: fixed-size
//! runs of rows of a columnar image, see [`crate::exec`]) and runs them
//! on a small pool of scoped OS threads. Scheduling is a single shared
//! atomic counter: every worker *steals* the next unclaimed task id, so
//! fast workers drain the queue while slow ones finish their morsel —
//! the classic morsel-driven balance without per-worker deques. Because
//! claims are `fetch_add`, the task ids one worker processes are always
//! increasing, which the executor's deterministic merges rely on.
//!
//! Two drivers cover the executor's needs:
//!
//! * [`TaskPool::scatter_gather`] — run every task, then hand back the
//!   results **in task order** (the Exchange→Gather shape: workers emit
//!   `(task id, result)` and the gather re-sorts, so parallel output is
//!   byte-identical to a serial run).
//! * [`TaskPool::fold_tasks`] — each worker folds the tasks it claims
//!   into its own partial state (hash-join build partitions, partial
//!   aggregation states); the caller merges the per-worker states.
//!
//! Threads are `std::thread::scope` workers, so tasks may borrow the
//! prepared operator tree (and the catalog's shared relations) without
//! any `'static` bounds — and the pool needs no dependencies beyond std.
//!
//! Both drivers are **panic-safe**: each worker body runs under
//! `catch_unwind`, the first failure — a genuine panic or an engine
//! error unwound via [`crate::fault::rethrow`] — trips a shared abort
//! flag that stops sibling workers at their next claim, and the
//! payload comes back to the caller as a clean `Err` (see
//! [`crate::fault::unwind_to_error`]). No worker panic ever crosses
//! the pool boundary as a panic.

use crate::error::Result;
use crate::fault::{self, unwind_to_error};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// A bounded pool of scoped workers. `threads == 1` (or a single task)
/// degenerates to inline serial execution with zero thread overhead.
#[derive(Clone, Copy, Debug)]
pub struct TaskPool {
    threads: usize,
}

impl TaskPool {
    /// A pool running at most `threads` workers (floored at 1).
    pub fn new(threads: usize) -> TaskPool {
        TaskPool {
            threads: threads.max(1),
        }
    }

    /// The worker cap.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// How many workers a run over `tasks` tasks will actually use.
    pub fn workers_for(&self, tasks: usize) -> usize {
        self.threads.min(tasks).max(1)
    }

    /// Split a resource budget (memory bytes) evenly over this pool's
    /// workers: each worker-local breaker buffer gets `total / threads`
    /// before it must spill, floored at one unit so a tiny budget still
    /// degrades to spilling instead of to zero capacity. `usize::MAX`
    /// (unbounded) passes through untouched. This is *the* share
    /// computation — [`crate::spill::MemBudget`] stores its result
    /// rather than re-deriving it.
    pub fn share_of(&self, total: usize) -> usize {
        if total == usize::MAX {
            usize::MAX
        } else {
            (total / self.threads).max(1)
        }
    }

    /// Run `tasks` independent tasks and return their results in task
    /// order (the Exchange→Gather driver). `task` must be safe to call
    /// concurrently for distinct ids; each id runs exactly once. A
    /// failing task (panic or [`crate::fault::rethrow`]n error) cancels
    /// the remaining tasks and surfaces as `Err`.
    pub fn scatter_gather<T, F>(&self, tasks: usize, task: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let per_worker = self.fold_tasks(tasks, Vec::new, |acc: &mut Vec<(usize, T)>, id| {
            acc.push((id, task(id)))
        })?;
        // Gather: restore task order. Each id occurs exactly once, so
        // placing into an indexed buffer is a stable O(n) re-sort.
        let mut slots: Vec<Option<T>> = (0..tasks).map(|_| None).collect();
        for (id, t) in per_worker.into_iter().flatten() {
            debug_assert!(slots[id].is_none(), "task {id} ran twice");
            slots[id] = Some(t);
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every task ran"))
            .collect())
    }

    /// Run `tasks` tasks, folding each into the claiming worker's own
    /// state; returns the per-worker states (in worker-index order).
    /// Within one worker, task ids arrive strictly increasing — the
    /// deterministic-merge invariant the executor's partial seen-sets
    /// and partial aggregation states depend on.
    ///
    /// Panic-safe: each worker runs under `catch_unwind`; the first
    /// failure trips a shared abort flag (sibling workers stop at their
    /// next claim, their partial states drop and release what they
    /// held) and is returned as the fold's error.
    pub fn fold_tasks<T, I, F>(&self, tasks: usize, init: I, fold: F) -> Result<Vec<T>>
    where
        T: Send,
        I: Fn() -> T + Sync,
        F: Fn(&mut T, usize) + Sync,
    {
        let workers = self.workers_for(tasks);
        if workers <= 1 {
            return fault::catch_pull(|| {
                let mut state = init();
                for id in 0..tasks {
                    fold(&mut state, id);
                }
                vec![state]
            });
        }
        let next = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let failure: Mutex<Option<crate::error::Error>> = Mutex::new(None);
        let mut states: Vec<T> = Vec::with_capacity(workers);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut state = init();
                        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            loop {
                                // The Exchange: claim the next unstolen
                                // task — unless a sibling already failed.
                                if abort.load(Ordering::Relaxed) {
                                    break;
                                }
                                let id = next.fetch_add(1, Ordering::Relaxed);
                                if id >= tasks {
                                    break;
                                }
                                fold(&mut state, id);
                            }
                        }));
                        if let Err(payload) = run {
                            abort.store(true, Ordering::Relaxed);
                            let mut slot = fault::lock_recover(&failure);
                            if slot.is_none() {
                                *slot = Some(unwind_to_error(payload));
                            }
                        }
                        state
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(state) => states.push(state),
                    // The worker body caught its own unwinds; a join
                    // error means the catch_unwind machinery itself
                    // failed — record it like any other worker failure.
                    Err(payload) => {
                        let mut slot = fault::lock_recover(&failure);
                        if slot.is_none() {
                            *slot = Some(unwind_to_error(payload));
                        }
                    }
                }
            }
        });
        match failure.into_inner().unwrap_or_else(|p| p.into_inner()) {
            Some(e) => Err(e),
            None => Ok(states),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn scatter_gather_preserves_task_order() {
        for threads in [1, 2, 4, 9] {
            let pool = TaskPool::new(threads);
            let out = pool.scatter_gather(23, |i| i * i).unwrap();
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        TaskPool::new(4)
            .scatter_gather(100, |i| {
                counters[i].fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        for c in &counters {
            assert_eq!(c.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn fold_tasks_partitions_all_tasks() {
        let pool = TaskPool::new(3);
        let states = pool
            .fold_tasks(50, Vec::new, |acc: &mut Vec<usize>, id| acc.push(id))
            .unwrap();
        assert!(states.len() <= 3 && !states.is_empty());
        // Within each worker, ids are strictly increasing (atomic claim
        // order) — the invariant partial merges rely on.
        for s in &states {
            assert!(s.windows(2).all(|w| w[0] < w[1]), "{s:?}");
        }
        let mut all: Vec<usize> = states.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn share_of_splits_budgets_per_worker() {
        assert_eq!(TaskPool::new(4).share_of(1000), 250);
        assert_eq!(TaskPool::new(1).share_of(1000), 1000);
        // Tiny budgets floor at one unit; unbounded passes through.
        assert_eq!(TaskPool::new(8).share_of(2), 1);
        assert_eq!(TaskPool::new(8).share_of(usize::MAX), usize::MAX);
    }

    #[test]
    fn zero_and_one_task_edge_cases() {
        let pool = TaskPool::new(4);
        assert!(pool.scatter_gather(0, |_| 0).unwrap().is_empty());
        assert_eq!(pool.scatter_gather(1, |i| i + 7).unwrap(), vec![7]);
        assert_eq!(pool.workers_for(0), 1);
        assert_eq!(pool.workers_for(3), 3);
        assert_eq!(pool.workers_for(100), 4);
        assert_eq!(TaskPool::new(0).threads(), 1);
    }

    #[test]
    fn worker_panic_becomes_error_and_cancels_siblings() {
        use crate::error::Error;
        for threads in [1, 4] {
            let pool = TaskPool::new(threads);
            let ran = AtomicUsize::new(0);
            let err = pool
                .fold_tasks(
                    1000,
                    || (),
                    |(), id| {
                        ran.fetch_add(1, Ordering::Relaxed);
                        if id == 3 {
                            crate::fault::rethrow::<()>(Err(Error::Io("edge died".into())));
                        }
                        // Give siblings a moment to observe the abort.
                        std::thread::sleep(std::time::Duration::from_micros(50));
                    },
                )
                .unwrap_err();
            assert_eq!(err, Error::Io("edge died".into()));
            assert!(
                ran.load(Ordering::Relaxed) < 1000,
                "abort flag should stop sibling claims"
            );
        }
    }

    #[test]
    fn raw_panic_payloads_become_invalid_errors() {
        let err = TaskPool::new(2)
            .fold_tasks(
                8,
                || (),
                |(), id| {
                    if id == 0 {
                        panic!("boom {id}");
                    }
                },
            )
            .unwrap_err();
        match err {
            crate::error::Error::Invalid(msg) => assert!(msg.contains("boom 0"), "{msg}"),
            other => panic!("unexpected error: {other:?}"),
        }
    }
}
