//! Operator-at-a-time plan execution.
//!
//! Joins automatically extract equi-key conjuncts (`l.col = r.col`) and run
//! as hash joins with residual predicates; non-equi joins fall back to
//! nested loops. Semijoins/antijoins hash the right side. This mirrors the
//! physical operators PostgreSQL chose for the paper's translated queries
//! (Figure 13 shows merge/hash joins keyed on tuple ids with the
//! ψ-conditions as join filters).

use crate::catalog::Catalog;
use crate::error::{Error, Result};
use crate::expr::{CmpOp, CompiledExpr, Expr};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::plan::Plan;
use crate::relation::{Relation, Row};
use crate::schema::Schema;
use crate::value::Value;

/// Execute a plan against a catalog, materializing the result.
pub fn execute(plan: &Plan, catalog: &Catalog) -> Result<Relation> {
    match plan {
        Plan::Scan(name) => Ok(catalog.get(name)?.as_ref().clone()),
        Plan::Values(rel) => Ok(rel.as_ref().clone()),
        Plan::Select { input, pred } => {
            let rel = execute(input, catalog)?;
            let compiled = pred.compile(rel.schema())?;
            let rows = rel
                .rows()
                .iter()
                .filter(|r| compiled.eval_bool(r))
                .cloned()
                .collect();
            Relation::new(rel.schema().clone(), rows)
        }
        Plan::Project { input, cols } => {
            let rel = execute(input, catalog)?;
            let compiled: Vec<CompiledExpr> = cols
                .iter()
                .map(|(e, _)| e.compile(rel.schema()))
                .collect::<Result<_>>()?;
            let schema = Schema::new(cols.iter().map(|(_, n)| n.clone()).collect());
            let rows = rel
                .rows()
                .iter()
                .map(|r| {
                    compiled
                        .iter()
                        .map(|c| c.eval(r))
                        .collect::<Vec<_>>()
                        .into_boxed_slice()
                })
                .collect();
            Relation::new(schema, rows)
        }
        Plan::Join { left, right, pred } => {
            let l = execute(left, catalog)?;
            let r = execute(right, catalog)?;
            join(&l, &r, pred)
        }
        Plan::SemiJoin { left, right, pred } => {
            let l = execute(left, catalog)?;
            let r = execute(right, catalog)?;
            semi_anti(&l, &r, pred, true)
        }
        Plan::AntiJoin { left, right, pred } => {
            let l = execute(left, catalog)?;
            let r = execute(right, catalog)?;
            semi_anti(&l, &r, pred, false)
        }
        Plan::Union { left, right } => {
            let l = execute(left, catalog)?;
            let r = execute(right, catalog)?;
            if !l.schema().compatible(r.schema()) {
                return Err(Error::SchemaMismatch {
                    left: l.schema().to_string(),
                    right: r.schema().to_string(),
                });
            }
            let mut rows = l.into_rows();
            rows.extend(r.into_rows());
            Relation::new(plan.schema(catalog)?, rows)
        }
        Plan::Difference { left, right } => {
            let l = execute(left, catalog)?;
            let r = execute(right, catalog)?;
            if !l.schema().compatible(r.schema()) {
                return Err(Error::SchemaMismatch {
                    left: l.schema().to_string(),
                    right: r.schema().to_string(),
                });
            }
            let right_set: FxHashSet<&Row> = r.rows().iter().collect();
            let mut seen: FxHashSet<&Row> = FxHashSet::default();
            let mut rows = Vec::new();
            for row in l.rows() {
                if !right_set.contains(row) && seen.insert(row) {
                    rows.push(row.clone());
                }
            }
            Relation::new(l.schema().clone(), rows)
        }
        Plan::Distinct(input) => {
            let rel = execute(input, catalog)?;
            let mut seen: FxHashSet<&Row> = FxHashSet::default();
            let mut rows = Vec::new();
            for row in rel.rows() {
                if seen.insert(row) {
                    rows.push(row.clone());
                }
            }
            Relation::new(rel.schema().clone(), rows)
        }
        Plan::Rename { input, alias } => {
            let rel = execute(input, catalog)?;
            let schema = rel.schema().qualify(alias);
            rel.with_schema(schema)
        }
    }
}

/// The join-predicate decomposition used by both the executor and the
/// EXPLAIN output: equi-key pairs and everything else as a residual filter.
pub struct JoinCondition {
    /// Pairs of (left column index, right column index) joined by equality.
    pub equi: Vec<(usize, usize)>,
    /// Conjuncts evaluated against the concatenated row.
    pub residual: Vec<Expr>,
}

impl JoinCondition {
    /// Split `pred` into hash-joinable equalities and residual conjuncts.
    pub fn analyze(pred: &Expr, left: &Schema, right: &Schema) -> JoinCondition {
        let mut equi = Vec::new();
        let mut residual = Vec::new();
        for conjunct in pred.clone().conjuncts() {
            if let Expr::Cmp(CmpOp::Eq, a, b) = &conjunct {
                if let (Expr::Col(ca), Expr::Col(cb)) = (a.as_ref(), b.as_ref()) {
                    // A column belongs to a side iff it resolves there
                    // uniquely and not on the other side.
                    let a_left = left.resolve(ca).ok();
                    let a_right = right.resolve(ca).ok();
                    let b_left = left.resolve(cb).ok();
                    let b_right = right.resolve(cb).ok();
                    match (a_left, a_right, b_left, b_right) {
                        (Some(al), None, None, Some(br)) => {
                            equi.push((al, br));
                            continue;
                        }
                        (None, Some(ar), Some(bl), None) => {
                            equi.push((bl, ar));
                            continue;
                        }
                        _ => {}
                    }
                }
            }
            residual.push(conjunct);
        }
        JoinCondition { equi, residual }
    }
}

fn join(l: &Relation, r: &Relation, pred: &Expr) -> Result<Relation> {
    let out_schema = l.schema().concat(r.schema());
    let cond = JoinCondition::analyze(pred, l.schema(), r.schema());
    let residual = Expr::and(cond.residual.clone());
    let compiled = if residual.is_true() {
        None
    } else {
        Some(residual.compile(&out_schema)?)
    };

    let mut rows: Vec<Row> = Vec::new();
    if cond.equi.is_empty() {
        // Nested loop (cross product + filter).
        for lr in l.rows() {
            for rr in r.rows() {
                if compiled
                    .as_ref()
                    .is_none_or(|c| c.eval_bool_pair(lr, rr))
                {
                    rows.push(concat_rows(lr, rr));
                }
            }
        }
    } else {
        // Hash join: build on the smaller input.
        let build_left = l.len() <= r.len();
        let (build, probe) = if build_left { (l, r) } else { (r, l) };
        let (build_keys, probe_keys): (Vec<usize>, Vec<usize>) = if build_left {
            cond.equi.iter().cloned().unzip()
        } else {
            let (lk, rk): (Vec<usize>, Vec<usize>) = cond.equi.iter().cloned().unzip();
            (rk, lk)
        };
        let mut table: FxHashMap<Vec<Value>, Vec<usize>> = FxHashMap::default();
        for (i, row) in build.rows().iter().enumerate() {
            let key: Vec<Value> = build_keys.iter().map(|&k| row[k].clone()).collect();
            table.entry(key).or_default().push(i);
        }
        let mut probe_key = Vec::with_capacity(probe_keys.len());
        for prow in probe.rows() {
            probe_key.clear();
            probe_key.extend(probe_keys.iter().map(|&k| prow[k].clone()));
            if let Some(matches) = table.get(probe_key.as_slice()) {
                for &bi in matches {
                    let brow = &build.rows()[bi];
                    let (lr, rr) = if build_left { (brow, prow) } else { (prow, brow) };
                    if compiled
                        .as_ref()
                        .is_none_or(|c| c.eval_bool_pair(lr, rr))
                    {
                        rows.push(concat_rows(lr, rr));
                    }
                }
            }
        }
    }
    Relation::new(out_schema, rows)
}

fn semi_anti(l: &Relation, r: &Relation, pred: &Expr, keep_matched: bool) -> Result<Relation> {
    let joint = l.schema().concat(r.schema());
    let cond = JoinCondition::analyze(pred, l.schema(), r.schema());
    let residual = Expr::and(cond.residual.clone());
    let compiled = if residual.is_true() {
        None
    } else {
        Some(residual.compile(&joint)?)
    };

    let mut rows = Vec::new();
    if cond.equi.is_empty() {
        for lr in l.rows() {
            let matched = r.rows().iter().any(|rr| {
                compiled
                    .as_ref()
                    .is_none_or(|c| c.eval_bool_pair(lr, rr))
            });
            if matched == keep_matched {
                rows.push(lr.clone());
            }
        }
    } else {
        let (lk, rk): (Vec<usize>, Vec<usize>) = cond.equi.iter().cloned().unzip();
        let mut table: FxHashMap<Vec<Value>, Vec<usize>> = FxHashMap::default();
        for (i, row) in r.rows().iter().enumerate() {
            let key: Vec<Value> = rk.iter().map(|&k| row[k].clone()).collect();
            table.entry(key).or_default().push(i);
        }
        let mut key = Vec::with_capacity(lk.len());
        for lr in l.rows() {
            key.clear();
            key.extend(lk.iter().map(|&k| lr[k].clone()));
            let matched = table.get(key.as_slice()).is_some_and(|matches| {
                matches.iter().any(|&ri| {
                    compiled
                        .as_ref()
                        .is_none_or(|c| c.eval_bool_pair(lr, &r.rows()[ri]))
                })
            });
            if matched == keep_matched {
                rows.push(lr.clone());
            }
        }
    }
    Relation::new(l.schema().clone(), rows)
}

fn concat_rows(l: &Row, r: &Row) -> Row {
    let mut out = Vec::with_capacity(l.len() + r.len());
    out.extend(l.iter().cloned());
    out.extend(r.iter().cloned());
    out.into_boxed_slice()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit_i64, lit_str};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.insert(
            "emp",
            Relation::from_rows(
                ["eid", "dept", "name"],
                vec![
                    vec![Value::Int(1), Value::Int(10), Value::str("ann")],
                    vec![Value::Int(2), Value::Int(20), Value::str("bob")],
                    vec![Value::Int(3), Value::Int(10), Value::str("cee")],
                ],
            )
            .unwrap(),
        );
        c.insert(
            "dept",
            Relation::from_rows(
                ["did", "dname"],
                vec![
                    vec![Value::Int(10), Value::str("eng")],
                    vec![Value::Int(30), Value::str("hr")],
                ],
            )
            .unwrap(),
        );
        c
    }

    #[test]
    fn select_project() {
        let c = catalog();
        let p = Plan::scan("emp")
            .select(col("dept").eq(lit_i64(10)))
            .project_names(["name"]);
        let out = execute(&p, &c).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.rows()[0][0], Value::str("ann"));
    }

    #[test]
    fn hash_join_equals_nested_loop() {
        let c = catalog();
        let equi = Plan::scan("emp").join(Plan::scan("dept"), col("dept").eq(col("did")));
        let hash_out = execute(&equi, &c).unwrap();
        // Same join expressed so equi-extraction fails (Le + Ge).
        let theta = Plan::scan("emp").join(
            Plan::scan("dept"),
            Expr::and([col("dept").le(col("did")), col("dept").ge(col("did"))]),
        );
        let nl_out = execute(&theta, &c).unwrap();
        assert!(hash_out.set_eq(&nl_out));
        assert_eq!(hash_out.len(), 2);
    }

    #[test]
    fn join_with_residual() {
        let c = catalog();
        let p = Plan::scan("emp").join(
            Plan::scan("dept"),
            Expr::and([col("dept").eq(col("did")), col("eid").gt(lit_i64(1))]),
        );
        let out = execute(&p, &c).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][2], Value::str("cee"));
    }

    #[test]
    fn cross_product() {
        let c = catalog();
        let p = Plan::scan("emp").join(Plan::scan("dept"), Expr::and([]));
        assert_eq!(execute(&p, &c).unwrap().len(), 6);
    }

    #[test]
    fn semijoin_antijoin() {
        let c = catalog();
        let semi = Plan::scan("emp").semijoin(Plan::scan("dept"), col("dept").eq(col("did")));
        assert_eq!(execute(&semi, &c).unwrap().len(), 2);
        let anti = Plan::scan("emp").antijoin(Plan::scan("dept"), col("dept").eq(col("did")));
        let out = execute(&anti, &c).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::Int(2));
    }

    #[test]
    fn union_difference_distinct() {
        let c = catalog();
        let ids = Plan::scan("emp").project_names(["eid"]);
        let dup = ids.clone().union(ids.clone());
        assert_eq!(execute(&dup, &c).unwrap().len(), 6);
        assert_eq!(execute(&dup.clone().distinct(), &c).unwrap().len(), 3);
        let minus = ids
            .clone()
            .difference(Plan::scan("emp").select(col("eid").gt(lit_i64(1))).project_names(["eid"]));
        let out = execute(&minus, &c).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::Int(1));
    }

    #[test]
    fn rename_enables_self_join() {
        let c = catalog();
        let p = Plan::scan("emp").rename("a").join(
            Plan::scan("emp").rename("b"),
            Expr::and([
                col("a.dept").eq(col("b.dept")),
                col("a.eid").lt(col("b.eid")),
            ]),
        );
        let out = execute(&p, &c).unwrap();
        // Only (1,3) share dept 10 with eid ordered.
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn projection_with_literals() {
        let c = catalog();
        let p = Plan::scan("dept").project(vec![
            (col("did"), "k".into()),
            (lit_str("pad"), "tag".into()),
        ]);
        let out = execute(&p, &c).unwrap();
        assert_eq!(out.schema().to_string(), "k, tag");
        assert_eq!(out.rows()[0][1], Value::str("pad"));
    }

    #[test]
    fn difference_is_set_semantics() {
        let mut c = Catalog::new();
        c.insert(
            "l",
            Relation::from_rows(
                ["a"],
                vec![vec![Value::Int(1)], vec![Value::Int(1)], vec![Value::Int(2)]],
            )
            .unwrap(),
        );
        c.insert(
            "r",
            Relation::from_rows(["a"], vec![vec![Value::Int(2)]]).unwrap(),
        );
        let out = execute(&Plan::scan("l").difference(Plan::scan("r")), &c).unwrap();
        assert_eq!(out.len(), 1); // deduplicated EXCEPT semantics
    }
}
