//! Plan execution over shared relations.
//!
//! The executor is zero-copy where the algebra allows it:
//!
//! * `Scan` / `Values` hand back the catalog's own `Arc<Relation>` —
//!   executing a scan never duplicates base data;
//! * `Rename` re-qualifies the schema while aliasing the input's row
//!   storage ([`Relation::shared_with_schema`]);
//! * runs of σ (optionally capped by one π) are fused into a single pass:
//!   every predicate and projection expression is compiled once against
//!   the source schema and evaluated per borrowed row, with no
//!   intermediate `Vec<Row>` per operator — and when the input is an
//!   unshared intermediate, selection filters it in place;
//! * joins automatically extract equi-key conjuncts (`l.col = r.col`) and
//!   run as hash joins whose build table is keyed by row index under an
//!   [`FxHasher`] digest of the borrowed key slice — probe keys are never
//!   cloned into the table. Non-equi joins fall back to nested loops;
//!   semijoins/antijoins hash the right side the same way. This mirrors
//!   the physical operators PostgreSQL chose for the paper's translated
//!   queries (Figure 13 shows merge/hash joins keyed on tuple ids with
//!   the ψ-conditions as join filters).

use crate::catalog::Catalog;
use crate::error::{Error, Result};
use crate::expr::{CmpOp, CompiledExpr, Expr};
use crate::fxhash::{FxHashMap, FxHashSet, FxHasher};
use crate::plan::Plan;
use crate::relation::{Relation, Row};
use crate::schema::Schema;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Execute a plan against a catalog.
///
/// The result is shared: scanning a base relation returns the catalog's
/// own entry (pointer-equal, no copy), and every computed relation is
/// wrapped once so callers can keep or clone it at Arc cost.
pub fn execute(plan: &Plan, catalog: &Catalog) -> Result<Arc<Relation>> {
    match plan {
        Plan::Scan(name) => Ok(Arc::clone(catalog.get(name)?)),
        Plan::Values(rel) => Ok(Arc::clone(rel)),
        Plan::Select { .. } | Plan::Project { .. } => pipeline(plan, catalog),
        Plan::Join { left, right, pred } => {
            let l = execute(left, catalog)?;
            let r = execute(right, catalog)?;
            join(&l, &r, pred).map(Arc::new)
        }
        Plan::SemiJoin { left, right, pred } => {
            let l = execute(left, catalog)?;
            let r = execute(right, catalog)?;
            semi_anti(&l, &r, pred, true).map(Arc::new)
        }
        Plan::AntiJoin { left, right, pred } => {
            let l = execute(left, catalog)?;
            let r = execute(right, catalog)?;
            semi_anti(&l, &r, pred, false).map(Arc::new)
        }
        Plan::Union { left, right } => {
            let l = execute(left, catalog)?;
            let r = execute(right, catalog)?;
            if !l.schema().compatible(r.schema()) {
                return Err(Error::SchemaMismatch {
                    left: l.schema().to_string(),
                    right: r.schema().to_string(),
                });
            }
            // Union output keeps the left schema (see Plan::schema); the
            // executed child already carries it, no plan re-walk needed.
            let schema = l.schema().clone();
            let mut rows = Arc::unwrap_or_clone(l).into_rows();
            rows.extend(Arc::unwrap_or_clone(r).into_rows());
            Relation::new(schema, rows).map(Arc::new)
        }
        Plan::Difference { left, right } => {
            let l = execute(left, catalog)?;
            let r = execute(right, catalog)?;
            if !l.schema().compatible(r.schema()) {
                return Err(Error::SchemaMismatch {
                    left: l.schema().to_string(),
                    right: r.schema().to_string(),
                });
            }
            let right_set: FxHashSet<&Row> = r.rows().iter().collect();
            let mut seen: FxHashSet<&Row> = FxHashSet::default();
            let mut rows = Vec::new();
            for row in l.rows() {
                if !right_set.contains(row) && seen.insert(row) {
                    rows.push(row.clone());
                }
            }
            Relation::new(l.schema().clone(), rows).map(Arc::new)
        }
        Plan::Distinct(input) => {
            let rel = execute(input, catalog)?;
            let mut seen: FxHashSet<&Row> = FxHashSet::default();
            let mut rows = Vec::new();
            for row in rel.rows() {
                if seen.insert(row) {
                    rows.push(row.clone());
                }
            }
            Relation::new(rel.schema().clone(), rows).map(Arc::new)
        }
        Plan::Rename { input, alias } => {
            let rel = execute(input, catalog)?;
            let schema = rel.schema().qualify(alias);
            rel.shared_with_schema(schema).map(Arc::new)
        }
    }
}

/// Fused evaluation of a run of `Select`s optionally capped by one
/// `Project`. All predicates of the run and the projection expressions
/// are compiled once against the *source* schema (runs of σ never change
/// it), then applied in a single pass over borrowed source rows.
fn pipeline(plan: &Plan, catalog: &Catalog) -> Result<Arc<Relation>> {
    let (proj, mut cur) = match plan {
        Plan::Project { input, cols } => (Some(cols), input.as_ref()),
        other => (None, other),
    };
    let mut preds: Vec<&Expr> = Vec::new();
    while let Plan::Select { input, pred } = cur {
        preds.push(pred);
        cur = input.as_ref();
    }
    let src = execute(cur, catalog)?;
    // Innermost select first, matching operator-at-a-time order.
    let compiled: Vec<CompiledExpr> = preds
        .iter()
        .rev()
        .map(|p| p.compile(src.schema()))
        .collect::<Result<_>>()?;

    let Some(cols) = proj else {
        if compiled.is_empty() {
            return Ok(src);
        }
        return filter(src, &compiled).map(Arc::new);
    };

    let exprs: Vec<CompiledExpr> = cols
        .iter()
        .map(|(e, _)| e.compile(src.schema()))
        .collect::<Result<_>>()?;
    let schema = Schema::new(cols.iter().map(|(_, n)| n.clone()).collect());
    let rows = src
        .rows()
        .iter()
        .filter(|r| compiled.iter().all(|p| p.eval_bool(r)))
        .map(|r| {
            exprs
                .iter()
                .map(|c| c.eval(r))
                .collect::<Vec<_>>()
                .into_boxed_slice()
        })
        .collect();
    Relation::new(schema, rows).map(Arc::new)
}

/// Apply compiled predicates: in place when `src` is an unshared
/// intermediate, copying only the surviving rows otherwise. Both the
/// outer `Arc` and the row storage must be unique for the in-place path —
/// a rename yields a unique `Relation` whose *rows* still alias the
/// catalog, and consuming it would deep-copy every tuple before the
/// retain discards most of them.
fn filter(src: Arc<Relation>, preds: &[CompiledExpr]) -> Result<Relation> {
    match Arc::try_unwrap(src) {
        Ok(rel) if rel.owns_rows() => {
            let (schema, mut rows) = rel.into_parts();
            rows.retain(|r| preds.iter().all(|p| p.eval_bool(r)));
            Relation::new(schema, rows)
        }
        Ok(rel) => filter_shared(&rel, preds),
        Err(shared) => filter_shared(&shared, preds),
    }
}

fn filter_shared(src: &Relation, preds: &[CompiledExpr]) -> Result<Relation> {
    let rows = src
        .rows()
        .iter()
        .filter(|r| preds.iter().all(|p| p.eval_bool(r)))
        .cloned()
        .collect();
    Relation::new(src.schema().clone(), rows)
}

/// The join-predicate decomposition used by both the executor and the
/// EXPLAIN output: equi-key pairs and everything else as a residual filter.
pub struct JoinCondition {
    /// Pairs of (left column index, right column index) joined by equality.
    pub equi: Vec<(usize, usize)>,
    /// Conjuncts evaluated against the concatenated row.
    pub residual: Vec<Expr>,
}

impl JoinCondition {
    /// Split `pred` into hash-joinable equalities and residual conjuncts.
    pub fn analyze(pred: &Expr, left: &Schema, right: &Schema) -> JoinCondition {
        let mut equi = Vec::new();
        let mut residual = Vec::new();
        for conjunct in pred.clone().conjuncts() {
            if let Expr::Cmp(CmpOp::Eq, a, b) = &conjunct {
                if let (Expr::Col(ca), Expr::Col(cb)) = (a.as_ref(), b.as_ref()) {
                    // A column belongs to a side iff it resolves there
                    // uniquely and not on the other side.
                    let a_left = left.resolve(ca).ok();
                    let a_right = right.resolve(ca).ok();
                    let b_left = left.resolve(cb).ok();
                    let b_right = right.resolve(cb).ok();
                    match (a_left, a_right, b_left, b_right) {
                        (Some(al), None, None, Some(br)) => {
                            equi.push((al, br));
                            continue;
                        }
                        (None, Some(ar), Some(bl), None) => {
                            equi.push((bl, ar));
                            continue;
                        }
                        _ => {}
                    }
                }
            }
            residual.push(conjunct);
        }
        JoinCondition { equi, residual }
    }
}

/// FxHash digest of the key columns of a borrowed row — the hash-table
/// key, so no `Vec<Value>` is materialized per build or probe row.
#[inline]
fn key_hash(row: &Row, keys: &[usize]) -> u64 {
    let mut h = FxHasher::default();
    for &k in keys {
        row[k].hash(&mut h);
    }
    h.finish()
}

/// Exact key equality backing the hash digest (collision guard).
#[inline]
fn keys_eq(a: &Row, a_keys: &[usize], b: &Row, b_keys: &[usize]) -> bool {
    a_keys.iter().zip(b_keys).all(|(&i, &j)| a[i] == b[j])
}

fn join(l: &Relation, r: &Relation, pred: &Expr) -> Result<Relation> {
    let out_schema = l.schema().concat(r.schema());
    let cond = JoinCondition::analyze(pred, l.schema(), r.schema());
    let residual = Expr::and(cond.residual.clone());
    let compiled = if residual.is_true() {
        None
    } else {
        Some(residual.compile(&out_schema)?)
    };

    let mut rows: Vec<Row> = Vec::new();
    if cond.equi.is_empty() {
        // Nested loop (cross product + filter).
        for lr in l.rows() {
            for rr in r.rows() {
                if compiled.as_ref().is_none_or(|c| c.eval_bool_pair(lr, rr)) {
                    rows.push(concat_rows(lr, rr));
                }
            }
        }
    } else {
        // Hash join: build on the smaller input, keyed by row index under
        // the FxHash digest of the borrowed key slice.
        let build_left = l.len() <= r.len();
        let (build, probe) = if build_left { (l, r) } else { (r, l) };
        let (build_keys, probe_keys): (Vec<usize>, Vec<usize>) = if build_left {
            cond.equi.iter().cloned().unzip()
        } else {
            let (lk, rk): (Vec<usize>, Vec<usize>) = cond.equi.iter().cloned().unzip();
            (rk, lk)
        };
        let mut table: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
        for (i, row) in build.rows().iter().enumerate() {
            table.entry(key_hash(row, &build_keys)).or_default().push(i);
        }
        for prow in probe.rows() {
            if let Some(matches) = table.get(&key_hash(prow, &probe_keys)) {
                for &bi in matches {
                    let brow = &build.rows()[bi];
                    if !keys_eq(brow, &build_keys, prow, &probe_keys) {
                        continue;
                    }
                    let (lr, rr) = if build_left {
                        (brow, prow)
                    } else {
                        (prow, brow)
                    };
                    if compiled.as_ref().is_none_or(|c| c.eval_bool_pair(lr, rr)) {
                        rows.push(concat_rows(lr, rr));
                    }
                }
            }
        }
    }
    Relation::new(out_schema, rows)
}

fn semi_anti(l: &Relation, r: &Relation, pred: &Expr, keep_matched: bool) -> Result<Relation> {
    let joint = l.schema().concat(r.schema());
    let cond = JoinCondition::analyze(pred, l.schema(), r.schema());
    let residual = Expr::and(cond.residual.clone());
    let compiled = if residual.is_true() {
        None
    } else {
        Some(residual.compile(&joint)?)
    };

    let mut rows = Vec::new();
    if cond.equi.is_empty() {
        for lr in l.rows() {
            let matched = r
                .rows()
                .iter()
                .any(|rr| compiled.as_ref().is_none_or(|c| c.eval_bool_pair(lr, rr)));
            if matched == keep_matched {
                rows.push(lr.clone());
            }
        }
    } else {
        let (lk, rk): (Vec<usize>, Vec<usize>) = cond.equi.iter().cloned().unzip();
        let mut table: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
        for (i, row) in r.rows().iter().enumerate() {
            table.entry(key_hash(row, &rk)).or_default().push(i);
        }
        for lr in l.rows() {
            let matched = table.get(&key_hash(lr, &lk)).is_some_and(|matches| {
                matches.iter().any(|&ri| {
                    let rrow = &r.rows()[ri];
                    keys_eq(lr, &lk, rrow, &rk)
                        && compiled.as_ref().is_none_or(|c| c.eval_bool_pair(lr, rrow))
                })
            });
            if matched == keep_matched {
                rows.push(lr.clone());
            }
        }
    }
    Relation::new(l.schema().clone(), rows)
}

fn concat_rows(l: &Row, r: &Row) -> Row {
    let mut out = Vec::with_capacity(l.len() + r.len());
    out.extend(l.iter().cloned());
    out.extend(r.iter().cloned());
    out.into_boxed_slice()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit_i64, lit_str};
    use crate::value::Value;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.insert(
            "emp",
            Relation::from_rows(
                ["eid", "dept", "name"],
                vec![
                    vec![Value::Int(1), Value::Int(10), Value::str("ann")],
                    vec![Value::Int(2), Value::Int(20), Value::str("bob")],
                    vec![Value::Int(3), Value::Int(10), Value::str("cee")],
                ],
            )
            .unwrap(),
        );
        c.insert(
            "dept",
            Relation::from_rows(
                ["did", "dname"],
                vec![
                    vec![Value::Int(10), Value::str("eng")],
                    vec![Value::Int(30), Value::str("hr")],
                ],
            )
            .unwrap(),
        );
        c
    }

    #[test]
    fn scan_shares_catalog_storage() {
        let c = catalog();
        let out = execute(&Plan::scan("emp"), &c).unwrap();
        assert!(Arc::ptr_eq(&out, c.get("emp").unwrap()));
    }

    #[test]
    fn rename_shares_rows_with_catalog() {
        let c = catalog();
        let out = execute(&Plan::scan("emp").rename("e"), &c).unwrap();
        assert!(out.shares_rows_with(c.get("emp").unwrap()));
        assert_eq!(out.schema().to_string(), "e.eid, e.dept, e.name");
    }

    #[test]
    fn select_project() {
        let c = catalog();
        let p = Plan::scan("emp")
            .select(col("dept").eq(lit_i64(10)))
            .project_names(["name"]);
        let out = execute(&p, &c).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.rows()[0][0], Value::str("ann"));
    }

    #[test]
    fn fused_select_chain_matches_stepwise() {
        let c = catalog();
        // σ over σ over σ — one pass, same answer as nesting implies.
        let p = Plan::scan("emp")
            .select(col("dept").eq(lit_i64(10)))
            .select(col("eid").gt(lit_i64(1)))
            .select(col("name").ne(lit_str("zzz")));
        let out = execute(&p, &c).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::Int(3));
        // Predicate validation still fails cleanly mid-chain.
        let bad = Plan::scan("emp")
            .select(col("dept").eq(lit_i64(10)))
            .select(col("nope").eq(lit_i64(1)));
        assert!(execute(&bad, &c).is_err());
    }

    #[test]
    fn select_over_rename_copies_only_survivors() {
        let c = catalog();
        // Rename wraps catalog-shared rows in a fresh Relation; the
        // selection must take the copy-survivors path, not consume (and
        // deep-copy) the shared storage.
        let p = Plan::scan("emp")
            .rename("e")
            .select(col("e.dept").eq(lit_i64(10)));
        let out = execute(&p, &c).unwrap();
        assert_eq!(out.len(), 2);
        // The catalog entry is untouched and still fully shared.
        assert_eq!(c.get("emp").unwrap().len(), 3);
    }

    #[test]
    fn select_above_project_sees_projected_schema() {
        let c = catalog();
        let p = Plan::scan("emp")
            .project_names(["name"])
            .select(col("name").eq(lit_str("bob")));
        let out = execute(&p, &c).unwrap();
        assert_eq!(out.len(), 1);
        // And a select on a projected-away column fails.
        let bad = Plan::scan("emp")
            .project_names(["name"])
            .select(col("eid").eq(lit_i64(1)));
        assert!(execute(&bad, &c).is_err());
    }

    #[test]
    fn hash_join_equals_nested_loop() {
        let c = catalog();
        let equi = Plan::scan("emp").join(Plan::scan("dept"), col("dept").eq(col("did")));
        let hash_out = execute(&equi, &c).unwrap();
        // Same join expressed so equi-extraction fails (Le + Ge).
        let theta = Plan::scan("emp").join(
            Plan::scan("dept"),
            Expr::and([col("dept").le(col("did")), col("dept").ge(col("did"))]),
        );
        let nl_out = execute(&theta, &c).unwrap();
        assert!(hash_out.set_eq(&nl_out));
        assert_eq!(hash_out.len(), 2);
    }

    #[test]
    fn join_with_residual() {
        let c = catalog();
        let p = Plan::scan("emp").join(
            Plan::scan("dept"),
            Expr::and([col("dept").eq(col("did")), col("eid").gt(lit_i64(1))]),
        );
        let out = execute(&p, &c).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][2], Value::str("cee"));
    }

    #[test]
    fn cross_product() {
        let c = catalog();
        let p = Plan::scan("emp").join(Plan::scan("dept"), Expr::and([]));
        assert_eq!(execute(&p, &c).unwrap().len(), 6);
    }

    #[test]
    fn semijoin_antijoin() {
        let c = catalog();
        let semi = Plan::scan("emp").semijoin(Plan::scan("dept"), col("dept").eq(col("did")));
        assert_eq!(execute(&semi, &c).unwrap().len(), 2);
        let anti = Plan::scan("emp").antijoin(Plan::scan("dept"), col("dept").eq(col("did")));
        let out = execute(&anti, &c).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::Int(2));
    }

    #[test]
    fn union_difference_distinct() {
        let c = catalog();
        let ids = Plan::scan("emp").project_names(["eid"]);
        let dup = ids.clone().union(ids.clone());
        assert_eq!(execute(&dup, &c).unwrap().len(), 6);
        assert_eq!(execute(&dup.clone().distinct(), &c).unwrap().len(), 3);
        let minus = ids.clone().difference(
            Plan::scan("emp")
                .select(col("eid").gt(lit_i64(1)))
                .project_names(["eid"]),
        );
        let out = execute(&minus, &c).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::Int(1));
    }

    #[test]
    fn rename_enables_self_join() {
        let c = catalog();
        let p = Plan::scan("emp").rename("a").join(
            Plan::scan("emp").rename("b"),
            Expr::and([
                col("a.dept").eq(col("b.dept")),
                col("a.eid").lt(col("b.eid")),
            ]),
        );
        let out = execute(&p, &c).unwrap();
        // Only (1,3) share dept 10 with eid ordered.
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn projection_with_literals() {
        let c = catalog();
        let p = Plan::scan("dept").project(vec![
            (col("did"), "k".into()),
            (lit_str("pad"), "tag".into()),
        ]);
        let out = execute(&p, &c).unwrap();
        assert_eq!(out.schema().to_string(), "k, tag");
        assert_eq!(out.rows()[0][1], Value::str("pad"));
    }

    #[test]
    fn difference_is_set_semantics() {
        let mut c = Catalog::new();
        c.insert(
            "l",
            Relation::from_rows(
                ["a"],
                vec![
                    vec![Value::Int(1)],
                    vec![Value::Int(1)],
                    vec![Value::Int(2)],
                ],
            )
            .unwrap(),
        );
        c.insert(
            "r",
            Relation::from_rows(["a"], vec![vec![Value::Int(2)]]).unwrap(),
        );
        let out = execute(&Plan::scan("l").difference(Plan::scan("r")), &c).unwrap();
        assert_eq!(out.len(), 1); // deduplicated EXCEPT semantics
    }
}
