//! Pull-based streaming plan execution over shared relations.
//!
//! Executing a plan has two phases:
//!
//! 1. **Prepare** ([`stream`]): the logical plan compiles bottom-up into a
//!    tree of physical operators. All name resolution, predicate
//!    compilation and schema checks happen here, so pulling rows later is
//!    infallible. Pipeline *breakers* do their buffering work now: a hash
//!    join materializes its build side (unless that side is an
//!    already-materialized scan, in which case the hash table indexes the
//!    shared storage directly) and set-difference materializes its right
//!    side.
//! 2. **Pull** ([`Streamed`]): the prepared tree executes on one of two
//!    engines.
//!
//!    *Batched (default)*: when every streaming operator supports it
//!    ([`batched_pipeline`]), execution is **vectorized** — scans read
//!    [`BATCH_SIZE`]-row [`ColumnBatch`]es off each relation's cached
//!    column-major image ([`crate::relation::ColumnarImage`]),
//!    predicates evaluate column-at-a-time in typed tight loops
//!    (`&[i64]` comparisons, pointer-first interned-string equality)
//!    producing selection vectors, projections shuffle column pointers,
//!    and hash-join probes hash the key columns of a whole batch before
//!    emitting matches as zero-copy views of both the probe batch and
//!    the build image. Breakers (build sides, distinct/difference
//!    seen-sets, sort, aggregation) consume and emit batches too.
//!
//!    Cross-side predicates that used to force row fallbacks —
//!    nested-loop theta joins, residual and non-equi semijoins — run
//!    the *pair-batch evaluator*: candidate (probe, buffered-side)
//!    pairs are assembled as zero-copy batches and masked by the same
//!    vectorized kernels, so every operator is `[batched]`. The row
//!    cursors survive for limited pulls ([`Streamed::collect_rows`]
//!    with a cap, which must not overshoot) and
//!    [`Streamed::for_each_row`]; [`Streamed::for_each_batch`] bridges
//!    them into owned batches when needed.
//!
//!    *Morsel-driven parallel*: when the catalog's
//!    [`EngineConfig`] allows more than one worker and the optimizer
//!    estimates enough rows, a full pull fans the batched pipeline out:
//!    the probe spine's columnar image splits into fixed-size morsels,
//!    a [`TaskPool`] of scoped workers steals morsel ids off a shared
//!    atomic exchange, and the gather re-assembles per-morsel outputs
//!    in morsel order — replaying deferred distinct/difference seen-set
//!    semantics — so parallel output is **byte-identical** to serial.
//!    Hash-table builds fan out too (parallel digests into
//!    digest-routed [`RowTable`] partitions), and
//!    [`Streamed::fold_batches_parallel`] hands aggregation per-worker
//!    partial states to merge. `EXPLAIN` tags parallel roots
//!    `[parallel xN]`; [`ExecStats::workers`] reports the fan-out used.
//!
//! Zero-copy guarantees carry over from the shared-relation engine:
//! `Scan`/`Values` still hand back the catalog's own `Arc<Relation>`
//! pointer-equal, and `Rename` re-qualifies the schema while aliasing the
//! input's row storage (and its cached columnar image). Only the final
//! consumer materializes — and consumers that do not need a full result
//! ([`crate::sort::limit_plan`], aggregation) can pull exactly as much
//! as they want.
//!
//! Under a **memory budget** ([`EngineConfig::mem_budget`] /
//! `RELALG_MEM_BUDGET`), breaker buffers charge their bytes against a
//! shared [`SpillCtx`] tracker and spill to sorted runs in a scoped
//! temp directory when they cross the budget's per-worker share:
//! hash-join builds become on-disk digest partitions probed by a
//! recursive hybrid-hash protocol, and distinct/difference seen-sets
//! flush with first-occurrence candidates resolved at end of input
//! (sort and aggregation spill on their own consumers' side). Spilled
//! execution is byte-identical to unbounded execution; only the
//! batched pulls spill — the row cursors serve limited pulls, whose
//! early exit a spill would defeat. A plan whose join build spilled
//! runs serial.
//!
//! [`ExecStats`] counts the intermediate buffers actually allocated plus
//! the batches emitted (and their mean fill) and the spill counters
//! (peak tracked bytes, spill events, spilled bytes), so tests (and
//! `EXPLAIN`) can assert that a streaming chain copied nothing and
//! actually ran vectorized. The old operator-at-a-time engine survives
//! as [`execute_reference`], the differential baseline the property
//! suites compare against.

use crate::batch::{BatchCol, ColumnBatch, BATCH_SIZE};
use crate::catalog::{Catalog, EngineConfig, StorageMode};
use crate::error::{Error, Result};
use crate::expr::{CmpOp, CompiledExpr, Expr};
use crate::fault::{self, CancelToken, FaultInjector};
use crate::fxhash::{FxHashMap, FxHashSet, FxHasher};
use crate::optimizer::{est_rows, est_rows_cached, EstCache};
use crate::plan::Plan;
use crate::pool::TaskPool;
use crate::provider::{provider_for, ImageProvider, IoCounters};
use crate::relation::{row_footprint, Column, ColumnarImage, Relation, Row};
use crate::schema::Schema;
use crate::segment::DecodedSegment;
use crate::spill::{merge_runs, MergeRuns, Record, Run, SpillCtx};
use crate::value::Value;
use std::cell::{Cell, RefCell};
use std::cmp::Ordering;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Arc;

/// Execute a plan against a catalog.
///
/// The result is shared: scanning a base relation returns the catalog's
/// own entry (pointer-equal, no copy), and every computed relation is
/// wrapped once so callers can keep or clone it at Arc cost.
pub fn execute(plan: &Plan, catalog: &Catalog) -> Result<Arc<Relation>> {
    stream(plan, catalog)?.into_relation().map(|(rel, _)| rel)
}

/// Execute and report how much intermediate buffering the streaming
/// engine did (see [`ExecStats`]).
pub fn execute_with_stats(plan: &Plan, catalog: &Catalog) -> Result<(Arc<Relation>, ExecStats)> {
    stream(plan, catalog)?.into_relation()
}

/// Buffering done by one streamed execution.
///
/// `buffers` counts the pipeline-breaker buffers that held intermediate
/// rows: materialized hash-join build sides, nested-loop inner sides,
/// semi/antijoin right sides (when not already-materialized sources),
/// and the seen-sets of `Distinct`/`Difference`. The final output
/// materialization is *not* counted — it belongs to the consumer.
/// `buffered_rows` is the number of rows copied into those buffers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Number of intermediate row buffers allocated.
    pub buffers: usize,
    /// Total rows copied into intermediate buffers.
    pub buffered_rows: usize,
    /// Column batches emitted by batched pipelines (0 when every
    /// pipeline ran on the row fallback path).
    pub batches: usize,
    /// Logical rows carried by those batches.
    pub batch_rows: usize,
    /// Parallel workers the most recent pull ran on (1 = serial; N > 1
    /// means the morsel-driven engine fanned the root pipeline out over
    /// N threads — with output still byte-identical to serial).
    pub workers: usize,
    /// High-water mark of breaker-buffer bytes tracked against the
    /// memory budget (0 when the engine runs unbounded — tracking is
    /// off the hot path entirely).
    pub peak_tracked_bytes: usize,
    /// Spill events: one per run flushed to the execution's scoped
    /// spill directory (0 = everything stayed in memory). Like
    /// `peak_tracked_bytes`, this is **cumulative over the prepared
    /// execution's lifetime** — re-pulling the same [`Streamed`]
    /// re-spills its pull-time breakers and keeps counting (unlike
    /// `buffered_rows`, which resets per pull).
    pub spill_events: usize,
    /// Estimated bytes of buffered data written to spill runs
    /// (cumulative, like `spill_events`).
    pub spilled_bytes: usize,
    /// Storage segments decoded and scanned by segmented base-table
    /// cursors (0 under plain storage; cumulative over the prepared
    /// execution's lifetime, counted per cursor visit — a segment read
    /// by two morsels counts twice).
    pub segments_scanned: usize,
    /// Storage segments skipped outright because a zone map refuted a
    /// sargable scan predicate (cumulative, like `segments_scanned`).
    pub segments_skipped: usize,
    /// Approximate bytes materialized by fresh segment decodes
    /// (provider cache hits add nothing, so under the paged provider
    /// this measures decode traffic, i.e. cache misses).
    pub decoded_bytes: usize,
    /// Pages read from on-disk segment stores, in [`crate::store::PAGE`]
    /// units (0 unless a scan ran under `StorageMode::Disk`; cumulative
    /// like the segment counters).
    pub pages_read: usize,
    /// Buffer-pool hits: segment fetches served from the shared pool
    /// without touching disk (cumulative).
    pub pool_hits: usize,
    /// Buffer-pool misses: segment fetches that had to read and decode
    /// from disk before installing into the pool (cumulative).
    pub pool_misses: usize,
    /// Transient-I/O retries taken by the retry layer (injected or
    /// real; cumulative over the execution's lifetime).
    pub retries: usize,
    /// Faults injected by the configured deterministic schedule
    /// (`RELALG_FAULTS` / [`crate::Catalog::set_faults`]; always 0 when
    /// injection is disabled).
    pub faults_injected: usize,
    /// `true` once this execution's cancel token tripped (explicit
    /// cancellation or deadline) — the pull that observed it returned
    /// [`Error::Cancelled`].
    pub cancelled: bool,
}

impl ExecStats {
    /// Mean rows per emitted batch (the fill factor `EXPLAIN` reports;
    /// the target is [`BATCH_SIZE`]). `None` when nothing ran batched.
    pub fn mean_batch_fill(&self) -> Option<f64> {
        (self.batches > 0).then(|| self.batch_rows as f64 / self.batches as f64)
    }
}

/// Buffer accounting. `prepare_rows` holds rows copied while building
/// the operator tree (breaker materializations); `pull_rows` holds
/// seen-set rows of the *current* pull and is reset whenever a fresh
/// top-level cursor starts, so pulling the same [`Streamed`] twice does
/// not double-count its `Distinct`/`Difference` buffers.
struct Counters {
    buffers: Cell<usize>,
    prepare_rows: Cell<usize>,
    pull_rows: Cell<usize>,
    prepare_batches: Cell<(usize, usize)>,
    pull_batches: Cell<(usize, usize)>,
    /// Workers used by the current pull (0 before any pull → reported
    /// as 1, the serial baseline).
    workers: Cell<usize>,
    /// Memory budget, spill directory, and spill counters — shared
    /// across the worker-local counter sets of one execution.
    spill: Arc<SpillCtx>,
    /// Segmented-storage counters, likewise shared across worker-local
    /// counter sets (scan cursors on any worker bump one tally).
    seg: Arc<SegCounters>,
    /// Per-execution deterministic fault injector (`None` = fault layer
    /// disabled: every edge short-circuits on one `None` test).
    faults: Option<Arc<FaultInjector>>,
    /// Cooperative cancellation token, checked at batch and morsel
    /// boundaries by the pull drivers and parallel workers.
    cancel: Arc<CancelToken>,
}

/// Segment traffic of one execution: scans, zone-map skips, and the
/// provider-side I/O tallies (bytes decoded, pages read, buffer-pool
/// hits/misses). Atomics because parallel workers' cursors share them;
/// cumulative over the execution's lifetime (like spill counters).
#[derive(Default)]
struct SegCounters {
    scanned: AtomicUsize,
    skipped: AtomicUsize,
    io: IoCounters,
}

impl SegCounters {
    /// Segment counters whose I/O edges (pool leases, page reads) draw
    /// from `faults`.
    fn with_faults(faults: Option<Arc<FaultInjector>>) -> SegCounters {
        SegCounters {
            io: IoCounters::with_faults(faults),
            ..SegCounters::default()
        }
    }
}

impl Default for Counters {
    fn default() -> Self {
        Counters::with_spill(Arc::new(SpillCtx::unbounded()))
    }
}

impl Counters {
    fn with_spill(spill: Arc<SpillCtx>) -> Counters {
        Counters {
            buffers: Cell::new(0),
            prepare_rows: Cell::new(0),
            pull_rows: Cell::new(0),
            prepare_batches: Cell::new((0, 0)),
            pull_batches: Cell::new((0, 0)),
            workers: Cell::new(0),
            spill,
            seg: Arc::new(SegCounters::default()),
            faults: None,
            cancel: Arc::new(CancelToken::unlimited()),
        }
    }

    /// The counter set of one prepared execution: the spill context,
    /// fault injector, and cancel token all come from the catalog's
    /// [`EngineConfig`], and the segment counters' I/O edges share the
    /// injector.
    fn for_exec(
        spill: Arc<SpillCtx>,
        faults: Option<Arc<FaultInjector>>,
        cancel: Arc<CancelToken>,
    ) -> Counters {
        Counters {
            seg: Arc::new(SegCounters::with_faults(faults.clone())),
            faults,
            cancel,
            ..Counters::with_spill(spill)
        }
    }

    /// A fresh worker-local counter set sharing the execution-wide
    /// spill and segment tallies plus the fault injector and cancel
    /// token (the `Cell` counters stay per-worker; the shared parts are
    /// the atomics).
    fn with_shared(
        spill: Arc<SpillCtx>,
        seg: Arc<SegCounters>,
        faults: Option<Arc<FaultInjector>>,
        cancel: Arc<CancelToken>,
    ) -> Counters {
        Counters {
            seg,
            faults,
            cancel,
            ..Counters::with_spill(spill)
        }
    }

    /// Record a buffer that copied `rows` rows at prepare time.
    fn buffer(&self, rows: usize) {
        self.buffers.set(self.buffers.get() + 1);
        self.prepare_rows.set(self.prepare_rows.get() + rows);
    }

    /// Record a buffering operator whose rows accrue at pull time.
    fn breaker(&self) {
        self.buffers.set(self.buffers.get() + 1);
    }

    /// Record rows copied into an already-registered breaker buffer.
    fn rows(&self, n: usize) {
        self.pull_rows.set(self.pull_rows.get() + n);
    }

    /// Record a column batch of `rows` logical rows emitted by a
    /// batched pipeline.
    fn batch(&self, rows: usize) {
        let (b, r) = self.pull_batches.get();
        self.pull_batches.set((b + 1, r + rows));
    }

    /// Fold the counts of a finished prepare-time pull (a breaker
    /// materialization) into the permanent counters.
    fn commit_pull(&self) {
        let n = self.pull_rows.take();
        self.prepare_rows.set(self.prepare_rows.get() + n);
        let (b, r) = self.pull_batches.take();
        let (pb, pr) = self.prepare_batches.get();
        self.prepare_batches.set((pb + b, pr + r));
    }

    /// Start a fresh top-level pull: discard the previous pull's
    /// seen-set row and batch counts, and reset to serial until a
    /// parallel driver says otherwise.
    fn reset_pull(&self) {
        self.pull_rows.set(0);
        self.pull_batches.set((0, 0));
        self.workers.set(1);
    }

    fn snapshot(&self) -> ExecStats {
        let (pb, pr) = self.prepare_batches.get();
        let (b, r) = self.pull_batches.get();
        ExecStats {
            buffers: self.buffers.get(),
            buffered_rows: self.prepare_rows.get() + self.pull_rows.get(),
            batches: pb + b,
            batch_rows: pr + r,
            workers: self.workers.get().max(1),
            peak_tracked_bytes: self.spill.budget().peak(),
            spill_events: self.spill.events(),
            spilled_bytes: self.spill.spilled_bytes(),
            segments_scanned: self.seg.scanned.load(AtomicOrdering::Relaxed),
            segments_skipped: self.seg.skipped.load(AtomicOrdering::Relaxed),
            decoded_bytes: self.seg.io.decoded_bytes.load(AtomicOrdering::Relaxed),
            pages_read: self.seg.io.pages_read.load(AtomicOrdering::Relaxed),
            pool_hits: self.seg.io.pool_hits.load(AtomicOrdering::Relaxed),
            pool_misses: self.seg.io.pool_misses.load(AtomicOrdering::Relaxed),
            retries: self.faults.as_ref().map_or(0, |f| f.retries()),
            faults_injected: self.faults.as_ref().map_or(0, |f| f.injected()),
            cancelled: self.cancel.tripped(),
        }
    }
}

/// A row flowing through a stream: borrowed straight from shared base
/// storage when no operator had to touch it, owned once an operator
/// constructed a new tuple (projection, join concatenation).
pub enum StreamRow<'a> {
    /// A row aliasing the storage of a materialized relation.
    Borrowed(&'a Row),
    /// A freshly built row.
    Owned(Row),
}

impl StreamRow<'_> {
    /// View as a row regardless of ownership.
    #[inline]
    pub fn as_row(&self) -> &Row {
        match self {
            StreamRow::Borrowed(r) => r,
            StreamRow::Owned(r) => r,
        }
    }

    /// Take ownership (clones only if still borrowed).
    #[inline]
    pub fn into_owned(self) -> Row {
        match self {
            StreamRow::Borrowed(r) => r.clone(),
            StreamRow::Owned(r) => r,
        }
    }
}

/// How a prepared pipeline will run morsel-parallel.
struct ParallelSpec {
    /// Number of morsels the root pipeline's source spine splits into.
    morsels: usize,
    /// `true` when the gather must replay deferred distinct/difference
    /// seen-set semantics on the morsel-ordered output.
    dedup: bool,
}

/// A prepared, pullable execution: physical operators with all owned
/// state (compiled expressions, materialized breaker inputs, hash
/// tables). Every pull method re-streams from the top.
pub struct Streamed {
    root: Node,
    schema: Schema,
    counters: Counters,
    /// Morsel-parallel execution plan (`None` → every pull is serial).
    parallel: Option<ParallelSpec>,
    pool: TaskPool,
    morsel_rows: usize,
    /// `true` when a hash-join build spilled at prepare time (which is
    /// what forces serial pulls).
    spilled_build: bool,
    /// `(batches, batch rows)` per worker of the last parallel pull —
    /// the per-worker counters `explain_executed` reports.
    worker_batches: RefCell<Vec<(usize, usize)>>,
}

/// Prepare-time context: the catalog plus the buffer counters, the
/// shared estimate cache, and the parallel-execution knobs (hash-table
/// builds already fan out at prepare time).
struct PrepCtx<'a> {
    catalog: &'a Catalog,
    counters: &'a Counters,
    est: &'a EstCache,
    pool: TaskPool,
    cfg: EngineConfig,
}

/// Prepare a plan for streaming execution: resolve, compile, and build
/// all breaker-side buffers. Errors (unknown columns, schema mismatches)
/// surface here; pulling rows afterwards cannot fail.
pub fn stream(plan: &Plan, catalog: &Catalog) -> Result<Streamed> {
    let cfg = *catalog.config();
    // One fault injector and one cancel token per prepared execution:
    // the injector's tick sequence (and thus the fault schedule) depends
    // only on the config and the operation sequence, and the deadline
    // clock starts here, at prepare.
    let faults = cfg.faults.map(|fc| Arc::new(FaultInjector::new(fc)));
    let cancel = Arc::new(CancelToken::new(cfg.deadline));
    let spill = Arc::new(SpillCtx::new(cfg.mem_budget, cfg.threads).with_faults(faults.clone()));
    let counters = Counters::for_exec(spill, faults, cancel);
    // One estimate cache per prepare: build-side choices re-estimate the
    // same subtrees, and the plan is borrowed for the whole prepare so
    // node addresses are stable cache keys.
    let est = EstCache::default();
    let ctx = PrepCtx {
        catalog,
        counters: &counters,
        est: &est,
        pool: TaskPool::new(cfg.threads),
        cfg,
    };
    // Prepare-time breaker materializations pull through the same
    // infallible cursor interfaces as query pulls, so mid-pull I/O
    // errors unwind (`fault::rethrow`) and convert back to `Err` here.
    let (root, schema) = fault::catch_pull(|| prepare(plan, &ctx))??;
    // The parallel decision: enough configured workers, more than one
    // morsel to fan out, a gather-safe operator tree, and an optimizer
    // estimate (reusing the prepare's EstCache) above the threshold —
    // below it the exchange overhead outweighs the parallel win. A
    // hash-join build that spilled at prepare time forces serial pulls:
    // every morsel cursor would otherwise re-probe the on-disk build
    // partitions, multiplying the spill I/O by the morsel count.
    let spilled_build = root.any_spilled_build();
    let parallel = (cfg.threads > 1 && !spilled_build)
        .then(|| {
            let morsels = root.morsel_count(cfg.morsel_rows);
            let dedup = root.parallel_dedup(false)?;
            (morsels > 1 && est_rows_cached(plan, catalog, &est) >= cfg.parallel_min_rows as f64)
                .then_some(ParallelSpec { morsels, dedup })
        })
        .flatten();
    Ok(Streamed {
        root,
        schema,
        counters,
        parallel,
        pool: TaskPool::new(cfg.threads),
        morsel_rows: cfg.morsel_rows,
        spilled_build,
        worker_batches: RefCell::new(Vec::new()),
    })
}

impl Streamed {
    /// The output schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Buffering done so far (breaker builds happen at prepare time,
    /// seen-set growth at pull time).
    pub fn stats(&self) -> ExecStats {
        self.counters.snapshot()
    }

    /// This execution's spill context (budget tracker + scoped spill
    /// directory), for consumers that buffer on the engine's behalf
    /// (sort, aggregation).
    pub(crate) fn spill_ctx(&self) -> &Arc<SpillCtx> {
        &self.counters.spill
    }

    /// Path of the scoped spill directory, if this execution has
    /// spilled (`None` otherwise). The directory — and every run file
    /// in it — is removed when the `Streamed` is dropped, including on
    /// the panic path.
    pub fn spill_dir(&self) -> Option<std::path::PathBuf> {
        self.counters.spill.dir_path().map(Into::into)
    }

    /// `true` when a hash-join build side spilled at prepare time —
    /// the one spill kind that forces pulls serial (every other spill
    /// composes with morsel parallelism). Lets tests and callers tell
    /// a spill-forced serial plan from a genuinely serial one.
    pub fn spilled_build(&self) -> bool {
        self.spilled_build
    }

    /// `true` iff the root pipeline runs vectorized: every streaming
    /// operator from the leaves up has a batched implementation. Row
    /// consumers still work either way — this only selects the engine.
    pub fn batched(&self) -> bool {
        self.root.batchable()
    }

    /// Workers a full (unlimited) pull will fan out over: `1` means the
    /// plan runs serial (configured serial, too few estimated rows, a
    /// single morsel, or a gather-unsafe operator tree). Matches
    /// [`ExecStats::workers`] after such a pull and the static
    /// [`predicted_workers`] mirror EXPLAIN prints.
    pub fn planned_workers(&self) -> usize {
        self.parallel
            .as_ref()
            .map(|p| self.pool.workers_for(p.morsels))
            .unwrap_or(1)
    }

    /// `(batches, batch rows)` emitted by each worker of the last
    /// parallel pull (empty after serial pulls) — the per-worker
    /// counters behind `explain_executed`'s parallel report.
    pub fn worker_batch_stats(&self) -> Vec<(usize, usize)> {
        self.worker_batches.borrow().clone()
    }

    /// Pull every row through `f` without materializing the output.
    /// Always uses the row cursors: rows borrowed from base storage are
    /// handed out without any per-row construction.
    pub fn for_each_row(&self, mut f: impl FnMut(&Row) -> Result<()>) -> Result<()> {
        self.counters.reset_pull();
        fault::catch_pull(|| {
            let mut cur = self.root.cursor(&self.counters);
            while let Some(r) = cur.next() {
                self.counters.cancel.check()?;
                f(r.as_row())?;
            }
            Ok(())
        })?
    }

    /// Pull every column batch through `f`. Batched pipelines hand out
    /// their batches as-is (zero-copy views of shared columns); a plan
    /// on the row fallback path is bridged by packing pulled rows into
    /// owned batches of up to [`BATCH_SIZE`] rows, so batch consumers
    /// (aggregation) run on every plan.
    pub fn for_each_batch(&self, mut f: impl FnMut(&ColumnBatch<'_>) -> Result<()>) -> Result<()> {
        self.counters.reset_pull();
        if self.root.batchable() {
            return fault::catch_pull(|| {
                let mut cur = self.root.batch_cursor(&self.counters);
                while let Some(b) = cur.next_batch() {
                    self.counters.cancel.check()?;
                    self.counters.batch(b.len());
                    f(&b)?;
                }
                Ok(())
            })?;
        }
        // Row bridge: the fallback path made visible by ExecStats (these
        // batches copy values) and EXPLAIN's `[row]` annotations.
        let arity = self.schema.arity();
        fault::catch_pull(|| {
            let mut cur = self.root.cursor(&self.counters);
            loop {
                self.counters.cancel.check()?;
                let mut cols: Vec<Vec<crate::value::Value>> = vec![Vec::new(); arity];
                let mut n = 0;
                while n < BATCH_SIZE {
                    match cur.next() {
                        Some(r) => {
                            for (c, v) in cols.iter_mut().zip(r.as_row().iter()) {
                                c.push(v.clone());
                            }
                            n += 1;
                        }
                        None => break,
                    }
                }
                if n == 0 {
                    break;
                }
                let batch = ColumnBatch {
                    cols: cols
                        .into_iter()
                        .map(|v| BatchCol::Owned(Arc::new(Column::from_values(v))))
                        .collect(),
                    len: n,
                };
                self.counters.batch(n);
                f(&batch)?;
                if n < BATCH_SIZE {
                    break;
                }
            }
            Ok(())
        })?
    }

    /// Pull up to `limit` rows (all when `None`) into an owned buffer.
    ///
    /// Unlimited pulls over a batched pipeline run vectorized — and
    /// morsel-parallel when the prepare decided so, with the gather
    /// keeping the output byte-identical to serial — and materialize
    /// rows once at the end. Limited pulls keep the row cursors so
    /// pulling stops exactly at the limit — upstream work for rows past
    /// it is never done (batching would overshoot by up to a batch).
    pub fn collect_rows(&self, limit: Option<usize>) -> Result<Vec<Row>> {
        if limit.is_none() {
            if let Some(rows) = self.parallel_rows() {
                return rows;
            }
        }
        self.counters.reset_pull();
        if limit.is_none() && self.root.batchable() {
            return fault::catch_pull(|| {
                let mut rows = Vec::new();
                let mut cur = self.root.batch_cursor(&self.counters);
                while let Some(b) = cur.next_batch() {
                    self.counters.cancel.check()?;
                    self.counters.batch(b.len());
                    for pos in 0..b.len() {
                        rows.push(b.row(pos));
                    }
                }
                Ok(rows)
            })?;
        }
        let cap = limit.unwrap_or(usize::MAX);
        fault::catch_pull(|| {
            let mut rows = Vec::new();
            let mut cur = self.root.cursor(&self.counters);
            while rows.len() < cap {
                self.counters.cancel.check()?;
                match cur.next() {
                    Some(r) => rows.push(r.into_owned()),
                    None => break,
                }
            }
            Ok(rows)
        })?
    }

    /// Morsel-parallel materialization of the root pipeline: workers
    /// steal morsels off the shared exchange, run the batched cursor
    /// tree over each (stateful operators keep morsel-local partial
    /// seen-sets), and the gather re-assembles the per-morsel outputs in
    /// morsel order — replaying deferred distinct/difference seen-set
    /// semantics on the ordered stream — so the result is byte-identical
    /// to a serial pull. `None` when the prepare decided to run serial.
    fn parallel_rows(&self) -> Option<Result<Vec<Row>>> {
        let spec = self.parallel.as_ref()?;
        self.counters.reset_pull();
        #[derive(Default)]
        struct WorkerOut {
            per_morsel: Vec<(usize, Vec<Row>)>,
            batches: usize,
            batch_rows: usize,
        }
        let (root, morsel_rows) = (&self.root, self.morsel_rows);
        let spill = Arc::clone(&self.counters.spill);
        let seg = Arc::clone(&self.counters.seg);
        let faults = self.counters.faults.clone();
        let cancel = Arc::clone(&self.counters.cancel);
        let workers_out = self
            .pool
            .fold_tasks(spec.morsels, WorkerOut::default, |w, idx| {
                // Morsel boundary: a tripped token cancels the claim and
                // (via the pool's abort flag) the sibling workers.
                fault::rethrow(cancel.check());
                let local = Counters::with_shared(
                    Arc::clone(&spill),
                    Arc::clone(&seg),
                    faults.clone(),
                    Arc::clone(&cancel),
                );
                let mut cur = root.morsel_cursor(idx, morsel_rows, &local);
                let mut rows = Vec::new();
                while let Some(b) = cur.next_batch() {
                    fault::rethrow(cancel.check());
                    local.batch(b.len());
                    for pos in 0..b.len() {
                        rows.push(b.row(pos));
                    }
                }
                let (b, r) = local.pull_batches.get();
                w.batches += b;
                w.batch_rows += r;
                w.per_morsel.push((idx, rows));
            });
        let workers_out = match workers_out {
            Ok(w) => w,
            Err(e) => return Some(Err(e)),
        };
        // Gather: merge worker counters, then emit morsel outputs in
        // morsel order.
        self.counters.workers.set(workers_out.len());
        let mut per_worker = self.worker_batches.borrow_mut();
        per_worker.clear();
        let (mut tb, mut tr) = (0, 0);
        let mut slots: Vec<Option<Vec<Row>>> = (0..spec.morsels).map(|_| None).collect();
        for w in workers_out {
            per_worker.push((w.batches, w.batch_rows));
            tb += w.batches;
            tr += w.batch_rows;
            for (idx, rows) in w.per_morsel {
                slots[idx] = Some(rows);
            }
        }
        self.counters.pull_batches.set((tb, tr));
        let gathered = slots.into_iter().map(|s| s.expect("every morsel ran"));
        let mut out = Vec::new();
        if spec.dedup {
            // Replay the deferred seen-set: first occurrence in morsel
            // order wins, exactly as the serial seen-set would decide.
            // The replay set holds (a copy of) the distinct output and
            // has no spill path of its own — it is *charged* so
            // `peak_tracked_bytes` reports it honestly (see ROADMAP:
            // spilling the gather replay is an open follow-on).
            let budget = self.counters.spill.budget();
            let mut replay_bytes = 0usize;
            let mut seen: FxHashMap<u64, Vec<Row>> = FxHashMap::default();
            for rows in gathered {
                for row in rows {
                    let bucket = seen.entry(row_hash(&row)).or_default();
                    if bucket.contains(&row) {
                        continue;
                    }
                    if budget.enabled() {
                        let fp = row_footprint(&row);
                        budget.charge(fp);
                        replay_bytes += fp;
                    }
                    bucket.push(row.clone());
                    self.counters.rows(1);
                    out.push(row);
                }
            }
            budget.release(replay_bytes);
        } else {
            for rows in gathered {
                out.extend(rows);
            }
        }
        Some(Ok(out))
    }

    /// Morsel-parallel fold over the root pipeline's batches: each
    /// worker folds the morsels it steals (ids strictly increasing per
    /// worker) into its own partial state via `fold(state, morsel id,
    /// batch)`, and the per-worker states come back for the caller to
    /// merge (aggregation's partial-state merge rides on this). `None`
    /// when the plan runs serial or the gather would have to replay
    /// dedup semantics — batch consumers then use
    /// [`Streamed::for_each_batch`].
    pub fn fold_batches_parallel<T, I, F>(&self, init: I, fold: F) -> Option<Result<Vec<T>>>
    where
        T: Send,
        I: Fn() -> T + Sync,
        F: Fn(&mut T, usize, &ColumnBatch<'_>) -> Result<()> + Sync,
    {
        let spec = self.parallel.as_ref()?;
        if spec.dedup {
            return None;
        }
        self.counters.reset_pull();
        let (root, morsel_rows) = (&self.root, self.morsel_rows);
        let spill = Arc::clone(&self.counters.spill);
        let seg = Arc::clone(&self.counters.seg);
        let faults = self.counters.faults.clone();
        let cancel = Arc::clone(&self.counters.cancel);
        struct WorkerFold<T> {
            state: T,
            err: Option<Error>,
            batches: usize,
            batch_rows: usize,
        }
        let workers_out = self.pool.fold_tasks(
            spec.morsels,
            || WorkerFold {
                state: init(),
                err: None,
                batches: 0,
                batch_rows: 0,
            },
            |w, idx| {
                if w.err.is_some() {
                    return;
                }
                if let Err(e) = cancel.check() {
                    w.err = Some(e);
                    return;
                }
                let local = Counters::with_shared(
                    Arc::clone(&spill),
                    Arc::clone(&seg),
                    faults.clone(),
                    Arc::clone(&cancel),
                );
                let mut cur = root.morsel_cursor(idx, morsel_rows, &local);
                while let Some(b) = cur.next_batch() {
                    w.batches += 1;
                    w.batch_rows += b.len();
                    if let Err(e) = cancel.check().and_then(|()| fold(&mut w.state, idx, &b)) {
                        w.err = Some(e);
                        return;
                    }
                }
            },
        );
        let workers_out = match workers_out {
            Ok(w) => w,
            Err(e) => return Some(Err(e)),
        };
        self.counters.workers.set(workers_out.len());
        let mut per_worker = self.worker_batches.borrow_mut();
        per_worker.clear();
        let (mut tb, mut tr) = (0, 0);
        let mut states = Vec::with_capacity(workers_out.len());
        for w in workers_out {
            per_worker.push((w.batches, w.batch_rows));
            tb += w.batches;
            tr += w.batch_rows;
            if let Some(e) = w.err {
                return Some(Err(e));
            }
            states.push(w.state);
        }
        self.counters.pull_batches.set((tb, tr));
        Some(Ok(states))
    }

    /// Materialize the full result. When the plan bottoms out in an
    /// already-materialized source (scan / values / rename chains), the
    /// shared relation is returned as-is — pointer-equal for scans.
    pub fn into_relation(self) -> Result<(Arc<Relation>, ExecStats)> {
        if let Node::Source(src) = &self.root {
            return Ok((Arc::clone(&src.rel), self.counters.snapshot()));
        }
        let rows = self.collect_rows(None)?;
        let rel = Relation::new(self.schema, rows)?;
        Ok((Arc::new(rel), self.counters.snapshot()))
    }

    /// This execution's cancellation token. `cancel()` it from any
    /// thread (or configure a deadline via
    /// [`crate::Catalog::set_deadline`] / `RELALG_DEADLINE_MS`) and
    /// in-flight pulls stop at their next batch or morsel boundary with
    /// [`Error::Cancelled`], unwinding through breakers so buffer-pool
    /// leases and spill files release on the way out.
    pub fn cancel_token(&self) -> Arc<CancelToken> {
        Arc::clone(&self.counters.cancel)
    }
}

// ---------------------------------------------------------------------------
// Physical operators
// ---------------------------------------------------------------------------

/// A materialized scan input plus, under segmented storage, the scan's
/// storage seam: the provider serving decoded segments and the sargable
/// conjuncts (pushed down from the fusing `Filter` above) whose zone-map
/// refutation lets whole segments be skipped.
struct SourceNode {
    rel: Arc<Relation>,
    scan: Option<SegScan>,
}

/// One scan's view of segmented storage.
struct SegScan {
    provider: Arc<dyn ImageProvider>,
    /// `(column, op, literal)` conjuncts of the filter directly above
    /// the scan; *copies* — the filter still evaluates them per row, so
    /// zone pruning only ever has to be conservative, never exact.
    zone_preds: Vec<(usize, CmpOp, Value)>,
}

impl SourceNode {
    /// Wrap a materialized relation, attaching a segment provider when
    /// the engine runs segmented storage (plain mode bypasses the whole
    /// seam; breaker outputs and empty relations stay plain too). Under
    /// [`StorageMode::Disk`] the provider fetches from the relation's
    /// on-disk segment store — the native one for disk-loaded tables, a
    /// scratch spill otherwise — through the buffer pool shared across
    /// all relations at this capacity.
    fn of_scan(rel: Arc<Relation>, config: &EngineConfig) -> Result<SourceNode> {
        let scan = if config.storage == StorageMode::Plain || rel.is_empty() {
            None
        } else if config.storage == StorageMode::Disk {
            let image = rel.disk_image(config.segment_rows)?;
            let pool = crate::store::pool_for(config.buffer_pool);
            Some(SegScan {
                provider: Arc::new(crate::store::DiskImageProvider::new(image, pool)),
                zone_preds: Vec::new(),
            })
        } else {
            Some(SegScan {
                provider: provider_for(
                    rel.segments(config.segment_rows),
                    config.storage,
                    config.segment_cache,
                ),
                zone_preds: Vec::new(),
            })
        };
        Ok(SourceNode { rel, scan })
    }

    /// Wrap a computed relation (breaker output, inline values): always
    /// served from its plain columnar image.
    fn plain(rel: Arc<Relation>) -> SourceNode {
        SourceNode { rel, scan: None }
    }

    /// The batched scan cursor over rows `[start, end)` — plain image
    /// slices, or provider-served segments under segmented storage.
    fn batch_cursor<'a>(&'a self, start: usize, end: usize, counters: &'a Counters) -> BCursor<'a> {
        match &self.scan {
            Some(scan) => BCursor::SegSource {
                scan,
                pos: start,
                end,
                cur: None,
                counters,
            },
            None => BCursor::Source {
                image: self.rel.columns(),
                pos: start,
                end,
            },
        }
    }
}

/// Hand a filter's sargable conjuncts to a directly-scanned segmented
/// source as zone predicates. They are *copies*: the filter still
/// applies them row-by-row, the scan merely gains a license to skip
/// segments whose zone maps prove no row can match. Re-run after each
/// σ-fusion, so the scan always holds the full fused conjunction's
/// sargable subset.
fn attach_zone_preds(node: Node) -> Node {
    match node {
        Node::Filter { mut input, preds } => {
            if let Node::Source(src) = input.as_mut() {
                if let Some(scan) = src.scan.as_mut() {
                    let mut zone = Vec::new();
                    for p in &preds {
                        p.collect_sargable(&mut zone);
                    }
                    scan.zone_preds = zone;
                }
            }
            Node::Filter { input, preds }
        }
        other => other,
    }
}

enum Node {
    /// Materialized input: a catalog scan, inline values, renamed
    /// aliases of either, or a buffered breaker output.
    Source(SourceNode),
    /// Fused conjunctive filter (σ-chains collapse into one node).
    Filter {
        input: Box<Node>,
        preds: Vec<CompiledExpr>,
    },
    /// Generalized projection.
    Project {
        input: Box<Node>,
        exprs: Vec<CompiledExpr>,
    },
    /// Equi hash join: streams the probe side, buffers the build side.
    HashJoin(HashJoinNode),
    /// Theta join without equi keys: streams the left, buffers the right.
    NestedLoop(NestedLoopNode),
    /// Semi/antijoin: streams the left, buffers the right.
    Semi(SemiNode),
    /// Bag union: streams left then right (no buffering).
    Concat { left: Box<Node>, right: Box<Node> },
    /// Duplicate elimination: streams first occurrences, buffers a
    /// seen-set.
    Distinct { input: Box<Node> },
    /// Set difference (EXCEPT): buffers the right side + a seen-set,
    /// streams surviving left rows.
    Difference(DifferenceNode),
}

/// A hash table from key digest to row indices, split into digest-routed
/// partitions so a parallel build fills disjoint partitions without
/// locks. Serial builds use a single partition. Bucket contents are in
/// ascending row order either way (each partition worker scans the
/// digests in row order), so probe results are identical to a serial
/// build's — the parallel build is invisible to consumers.
struct RowTable {
    parts: Vec<FxHashMap<u64, Vec<usize>>>,
}

impl RowTable {
    /// Build from per-row digests, fanning the insert out over digest
    /// partitions when the pool and input size justify it.
    fn build(digests: &[u64], pool: &TaskPool, min_rows: usize) -> Result<RowTable> {
        let nparts = if pool.threads() > 1 && digests.len() >= min_rows {
            pool.threads()
        } else {
            1
        };
        if nparts == 1 {
            let mut m: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
            for (i, &h) in digests.iter().enumerate() {
                m.entry(h).or_default().push(i);
            }
            return Ok(RowTable { parts: vec![m] });
        }
        let parts = pool.scatter_gather(nparts, |p| {
            let mut m: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
            for (i, &h) in digests.iter().enumerate() {
                if (h as usize) % nparts == p {
                    m.entry(h).or_default().push(i);
                }
            }
            m
        })?;
        Ok(RowTable { parts })
    }

    /// Row indices whose key hashed to `h` (ascending; hash collisions
    /// included — callers re-check exact equality).
    #[inline]
    fn get(&self, h: u64) -> Option<&[usize]> {
        let part = if self.parts.len() == 1 {
            &self.parts[0]
        } else {
            &self.parts[(h as usize) % self.parts.len()]
        };
        part.get(&h).map(Vec::as_slice)
    }
}

struct DifferenceNode {
    input: Box<Node>,
    right: Arc<Relation>,
    /// Full-row digest → right-side row indices (membership table).
    table: RowTable,
}

struct HashJoinNode {
    probe: Box<Node>,
    build: JoinBuild,
    build_keys: Vec<usize>,
    probe_keys: Vec<usize>,
    /// `true` when the streamed probe side is the plan's left input.
    probe_is_left: bool,
    residual: Option<CompiledExpr>,
}

/// The buffered side of a hash join: resident (the default) or spilled
/// to digest-routed partitions when materializing it blew the memory
/// budget's per-worker share.
enum JoinBuild {
    /// In-memory build: the materialized relation plus its digest table.
    Mem { rel: Arc<Relation>, table: RowTable },
    /// On-disk build: partition run files of `(build row index, key
    /// digest, row)` records, routed by [`spill_part`] at depth 0 and
    /// each in ascending row-index order. Probing runs the hybrid-hash
    /// protocol (see [`SpillJoin`]).
    Spilled(SpilledBuild),
}

struct SpilledBuild {
    /// One run per digest partition (empty partitions keep a zero-record
    /// run so partition indices line up with [`spill_part`]).
    parts: Vec<Run>,
}

/// Fan-out of one digest-partitioning pass of the hybrid-hash spill
/// protocol. Small: partitions multiply per recursion level.
const SPILL_JOIN_PARTS: usize = 8;

/// Maximum recursive re-partitioning depth for an over-budget build
/// partition. Past it the partition is built in memory regardless — a
/// partition that refuses to shrink is dominated by one key's
/// duplicates, which no amount of re-hashing can split.
const MAX_SPILL_DEPTH: usize = 4;

/// The digest partition a key digest routes to at recursion `depth`.
/// Each depth re-mixes the digest so a partition that collided at one
/// level spreads at the next.
fn spill_part(digest: u64, depth: usize) -> usize {
    let mut h = FxHasher::default();
    h.write_u64(digest);
    h.write_usize(depth);
    (h.finish() as usize) % SPILL_JOIN_PARTS
}

struct NestedLoopNode {
    outer: Box<Node>,
    inner: Arc<Relation>,
    pred: Option<CompiledExpr>,
}

/// Hash table over right-side rows with the equi-key column indices:
/// `(digest → row indices, left keys, right keys)`.
type KeyedTable = (RowTable, Vec<usize>, Vec<usize>);

struct SemiNode {
    probe: Box<Node>,
    right: Arc<Relation>,
    /// `None` falls back to scanning the buffered right side per probe
    /// row (non-equi predicates).
    table: Option<KeyedTable>,
    residual: Option<CompiledExpr>,
    keep_matched: bool,
}

/// Per-row key digests of a materialized relation, computed in parallel
/// chunks when large enough (`keys` empty → full-row digests). The
/// digests feed [`RowTable::build`]; both stages are the "parallel
/// partial build" half of a partitioned hash-join build.
fn table_digests(
    rel: &Relation,
    keys: &[usize],
    pool: &TaskPool,
    min_rows: usize,
) -> Result<Vec<u64>> {
    let rows = rel.rows();
    let digest = |row: &Row| {
        if keys.is_empty() {
            row_hash(row)
        } else {
            key_hash(row, keys)
        }
    };
    if pool.threads() <= 1 || rows.len() < min_rows.max(pool.threads()) {
        return Ok(rows.iter().map(digest).collect());
    }
    let chunk = rows.len().div_ceil(pool.threads());
    let chunks: Vec<&[Row]> = rows.chunks(chunk).collect();
    Ok(pool
        .scatter_gather(chunks.len(), |i| {
            chunks[i].iter().map(digest).collect::<Vec<u64>>()
        })?
        .into_iter()
        .flatten()
        .collect())
}

/// Build the digest-keyed row table of a breaker side (parallel partial
/// build + partitioned insert when worthwhile).
fn build_table(rel: &Relation, keys: &[usize], ctx: &PrepCtx<'_>) -> Result<RowTable> {
    let digests = table_digests(rel, keys, &ctx.pool, ctx.cfg.parallel_min_rows)?;
    RowTable::build(&digests, &ctx.pool, ctx.cfg.parallel_min_rows)
}

fn prepare(plan: &Plan, ctx: &PrepCtx<'_>) -> Result<(Node, Schema)> {
    let catalog = ctx.catalog;
    let counters = ctx.counters;
    let est = ctx.est;
    match plan {
        Plan::Scan(name) => {
            let rel = Arc::clone(catalog.get(name)?);
            let schema = rel.schema().clone();
            Ok((
                Node::Source(SourceNode::of_scan(rel, catalog.config())?),
                schema,
            ))
        }
        Plan::Values(rel) => Ok((
            Node::Source(SourceNode::plain(Arc::clone(rel))),
            rel.schema().clone(),
        )),
        Plan::Rename { input, alias } => {
            let (node, schema) = prepare(input, ctx)?;
            let schema = schema.qualify(alias);
            // A renamed source stays a source: re-qualify the schema
            // while aliasing the row storage (zero-copy rename). The
            // segment seam carries over — renaming changes no values.
            let node = match node {
                Node::Source(src) => Node::Source(SourceNode {
                    rel: Arc::new(src.rel.shared_with_schema(schema.clone())?),
                    scan: src.scan,
                }),
                other => other,
            };
            Ok((node, schema))
        }
        Plan::Select { input, pred } => {
            let (node, schema) = prepare(input, ctx)?;
            let compiled = pred.compile(&schema)?;
            // σ over σ fuses; predicates keep innermost-first order.
            let node = match node {
                Node::Filter { input, mut preds } => {
                    preds.push(compiled);
                    Node::Filter { input, preds }
                }
                other => Node::Filter {
                    input: Box::new(other),
                    preds: vec![compiled],
                },
            };
            Ok((attach_zone_preds(node), schema))
        }
        Plan::Project { input, cols } => {
            let (node, schema) = prepare(input, ctx)?;
            let exprs: Vec<CompiledExpr> = cols
                .iter()
                .map(|(e, _)| e.compile(&schema))
                .collect::<Result<_>>()?;
            let out = Schema::new(cols.iter().map(|(_, n)| n.clone()).collect());
            Ok((
                Node::Project {
                    input: Box::new(node),
                    exprs,
                },
                out,
            ))
        }
        Plan::Join { left, right, pred } => {
            let (lnode, ls) = prepare(left, ctx)?;
            let (rnode, rs) = prepare(right, ctx)?;
            let out = ls.concat(&rs);
            // The full predicate must compile against the joint schema
            // (ambiguous columns are rejected here even when equi-key
            // extraction would side-step them), matching Plan::schema.
            pred.compile(&out)?;
            let cond = JoinCondition::analyze(pred, &ls, &rs);
            let residual = Expr::and(cond.residual.clone());
            let residual = if residual.is_true() {
                None
            } else {
                Some(residual.compile(&out)?)
            };
            if cond.equi.is_empty() {
                // Nested loop: buffer the right side, stream the left.
                let inner = materialize(rnode, &rs, counters)?;
                return Ok((
                    Node::NestedLoop(NestedLoopNode {
                        outer: Box::new(lnode),
                        inner,
                        pred: residual,
                    }),
                    out,
                ));
            }
            // Build on the side the optimizer estimates smaller (the
            // build side is the one that must buffer; the probe streams).
            let build_left = join_build_left_with(left, right, catalog, est);
            let (build_node, build_schema, probe_node) = if build_left {
                (lnode, &ls, rnode)
            } else {
                (rnode, &rs, lnode)
            };
            let (build_keys, probe_keys): (Vec<usize>, Vec<usize>) = if build_left {
                cond.equi.iter().cloned().unzip()
            } else {
                let (lk, rk): (Vec<usize>, Vec<usize>) = cond.equi.iter().cloned().unzip();
                (rk, lk)
            };
            let build = prepare_join_build(build_node, build_schema, &build_keys, ctx)?;
            Ok((
                Node::HashJoin(HashJoinNode {
                    probe: Box::new(probe_node),
                    build,
                    build_keys,
                    probe_keys,
                    probe_is_left: !build_left,
                    residual,
                }),
                out,
            ))
        }
        Plan::SemiJoin { left, right, pred } | Plan::AntiJoin { left, right, pred } => {
            let keep_matched = matches!(plan, Plan::SemiJoin { .. });
            let (lnode, ls) = prepare(left, ctx)?;
            let (rnode, rs) = prepare(right, ctx)?;
            let joint = ls.concat(&rs);
            pred.compile(&joint)?;
            let cond = JoinCondition::analyze(pred, &ls, &rs);
            let residual = Expr::and(cond.residual.clone());
            let residual = if residual.is_true() {
                None
            } else {
                Some(residual.compile(&joint)?)
            };
            let right_rel = materialize(rnode, &rs, counters)?;
            let table = if cond.equi.is_empty() {
                None
            } else {
                let (lk, rk): (Vec<usize>, Vec<usize>) = cond.equi.iter().cloned().unzip();
                let table = build_table(&right_rel, &rk, ctx)?;
                Some((table, lk, rk))
            };
            Ok((
                Node::Semi(SemiNode {
                    probe: Box::new(lnode),
                    right: right_rel,
                    table,
                    residual,
                    keep_matched,
                }),
                ls,
            ))
        }
        Plan::Union { left, right } => {
            let (lnode, ls) = prepare(left, ctx)?;
            let (rnode, rs) = prepare(right, ctx)?;
            if !ls.compatible(&rs) {
                return Err(Error::SchemaMismatch {
                    left: ls.to_string(),
                    right: rs.to_string(),
                });
            }
            // Union output keeps the left schema (see Plan::schema).
            Ok((
                Node::Concat {
                    left: Box::new(lnode),
                    right: Box::new(rnode),
                },
                ls,
            ))
        }
        Plan::Difference { left, right } => {
            let (lnode, ls) = prepare(left, ctx)?;
            let (rnode, rs) = prepare(right, ctx)?;
            if !ls.compatible(&rs) {
                return Err(Error::SchemaMismatch {
                    left: ls.to_string(),
                    right: rs.to_string(),
                });
            }
            let right_rel = materialize(rnode, &rs, counters)?;
            let table = build_table(&right_rel, &[], ctx)?;
            counters.breaker(); // the seen-set filled at pull time
            Ok((
                Node::Difference(DifferenceNode {
                    input: Box::new(lnode),
                    right: right_rel,
                    table,
                }),
                ls,
            ))
        }
        Plan::Distinct(input) => {
            let (node, schema) = prepare(input, ctx)?;
            counters.breaker(); // the seen-set filled at pull time
            Ok((
                Node::Distinct {
                    input: Box::new(node),
                },
                schema,
            ))
        }
    }
}

/// Run a breaker-side node to completion. An already-materialized source
/// is reused as-is — no rows are copied and no buffer is counted.
/// Batchable subtrees run vectorized into the buffer. Under a memory
/// budget the copied rows are *charged* (so `ExecStats` tracks them and
/// sibling breakers spill earlier), but non-join breaker inputs do not
/// themselves spill — only hash-join builds, sort, aggregation and the
/// dedup seen-sets have spill paths.
fn materialize(node: Node, schema: &Schema, counters: &Counters) -> Result<Arc<Relation>> {
    if let Node::Source(src) = node {
        return Ok(src.rel);
    }
    let mut rows = Vec::new();
    if node.batchable() {
        let mut cur = node.batch_cursor(counters);
        while let Some(b) = cur.next_batch() {
            counters.batch(b.len());
            for pos in 0..b.len() {
                rows.push(b.row(pos));
            }
        }
    } else {
        let mut cur = node.cursor(counters);
        while let Some(r) = cur.next() {
            rows.push(r.into_owned());
        }
    }
    if counters.spill.budget().enabled() {
        counters
            .spill
            .budget()
            .charge(rows.iter().map(row_footprint).sum());
    }
    counters.buffer(rows.len());
    // Seen-set rows of nested breakers pulled during this prepare-time
    // materialization are permanent, not part of a re-runnable pull.
    counters.commit_pull();
    Relation::new(schema.clone(), rows).map(Arc::new)
}

/// Materialize a hash-join build side under the memory budget.
///
/// An already-materialized source stays zero-copy (the hash table
/// indexes the shared storage; nothing is charged — the budget governs
/// intermediate buffers, not the catalog's resident data), and with no
/// budget configured this is exactly [`materialize`] + [`build_table`].
/// Under a budget, a *computed* build side streams into an in-memory
/// buffer; the moment the buffer exceeds the per-worker share it is
/// flushed into [`SPILL_JOIN_PARTS`] digest-routed partition run files
/// and every remaining row streams straight to disk, so the resident
/// footprint stays near the share. Partition files hold `(build row
/// index, key digest, row)` records in ascending index order — the
/// order the hybrid-hash probe needs to reproduce in-memory output
/// byte-for-byte.
fn prepare_join_build(
    node: Node,
    schema: &Schema,
    keys: &[usize],
    ctx: &PrepCtx<'_>,
) -> Result<JoinBuild> {
    let counters = ctx.counters;
    if !counters.spill.budget().enabled() || matches!(node, Node::Source(_)) {
        let rel = materialize(node, schema, counters)?;
        let table = build_table(&rel, keys, ctx)?;
        return Ok(JoinBuild::Mem { rel, table });
    }
    let spill = &counters.spill;
    let share = spill.budget().share();
    let mut rows: Vec<Row> = Vec::new();
    let mut resident_bytes = 0usize;
    let mut tail_bytes = 0usize;
    let mut total_rows = 0usize;
    let mut writers: Option<Vec<crate::spill::RunWriter>> = None;
    let mut push = |row: Row,
                    rows: &mut Vec<Row>,
                    writers: &mut Option<Vec<crate::spill::RunWriter>>|
     -> Result<()> {
        let bytes = row_footprint(&row);
        let idx = total_rows as u64;
        total_rows += 1;
        if let Some(ws) = writers {
            let digest = key_hash(&row, keys);
            ws[spill_part(digest, 0)].push(&[idx, digest], &row)?;
            tail_bytes += bytes;
            return Ok(());
        }
        spill.budget().charge(bytes);
        resident_bytes += bytes;
        rows.push(row);
        if resident_bytes > share {
            // Over the share: divert to disk. Buffered rows flush into
            // digest partitions (their indices are their positions).
            let mut ws: Vec<crate::spill::RunWriter> = (0..SPILL_JOIN_PARTS)
                .map(|_| spill.writer("join-build"))
                .collect::<Result<_>>()?;
            for (i, r) in rows.drain(..).enumerate() {
                let digest = key_hash(&r, keys);
                ws[spill_part(digest, 0)].push(&[i as u64, digest], &r)?;
            }
            spill.record_spill(resident_bytes);
            spill.budget().release(resident_bytes);
            resident_bytes = 0;
            *writers = Some(ws);
        }
        Ok(())
    };
    if node.batchable() {
        let mut cur = node.batch_cursor(counters);
        while let Some(b) = cur.next_batch() {
            counters.batch(b.len());
            for pos in 0..b.len() {
                push(b.row(pos), &mut rows, &mut writers)?;
            }
        }
    } else {
        let mut cur = node.cursor(counters);
        while let Some(r) = cur.next() {
            push(r.into_owned(), &mut rows, &mut writers)?;
        }
    }
    counters.buffer(total_rows);
    counters.commit_pull();
    match writers {
        None => {
            let rel = Arc::new(Relation::new(schema.clone(), rows)?);
            let table = build_table(&rel, keys, ctx)?;
            Ok(JoinBuild::Mem { rel, table })
        }
        Some(ws) => {
            if tail_bytes > 0 {
                spill.record_spill(tail_bytes);
            }
            Ok(JoinBuild::Spilled(SpilledBuild {
                parts: ws
                    .into_iter()
                    .map(crate::spill::RunWriter::finish)
                    .collect::<Result<_>>()?,
            }))
        }
    }
}

/// Does the streaming executor build (buffer) the *left* input of this
/// hash join? Shared with `EXPLAIN` so the reported build side matches
/// execution.
///
/// Building on an already-materialized source (a scan / values /
/// rename chain) costs no row copies — the hash table indexes the shared
/// storage directly — so a source side is preferred as the build side
/// even when the streamed side estimates smaller, up to a 16× size
/// ratio. Past that, the smaller hash table wins. When both or neither
/// side is a source, the smaller estimate builds.
pub fn join_build_left(left: &Plan, right: &Plan, catalog: &Catalog) -> bool {
    join_build_left_with(left, right, catalog, &EstCache::default())
}

fn join_build_left_with(left: &Plan, right: &Plan, catalog: &Catalog, est: &EstCache) -> bool {
    const SOURCE_BUILD_BIAS: f64 = 16.0;
    let (le, re) = (
        est_rows_cached(left, catalog, est),
        est_rows_cached(right, catalog, est),
    );
    match (left.materialized_source(), right.materialized_source()) {
        (true, false) => le <= SOURCE_BUILD_BIAS * re,
        (false, true) => re > SOURCE_BUILD_BIAS * le,
        _ => le <= re,
    }
}

/// Statically predicted [`ExecStats::buffers`] for a streamed execution
/// of `plan` — the counter `EXPLAIN` prints. Matches the runtime count:
/// breaker inputs that are already-materialized sources cost nothing.
pub fn predicted_buffers(plan: &Plan, catalog: &Catalog) -> usize {
    let breaker_input = |side: &Plan| -> usize {
        predicted_buffers(side, catalog) + usize::from(!side.materialized_source())
    };
    match plan {
        Plan::Scan(_) | Plan::Values(_) => 0,
        Plan::Select { input, .. } | Plan::Project { input, .. } | Plan::Rename { input, .. } => {
            predicted_buffers(input, catalog)
        }
        Plan::Union { left, right } => {
            predicted_buffers(left, catalog) + predicted_buffers(right, catalog)
        }
        Plan::Distinct(input) => 1 + predicted_buffers(input, catalog),
        Plan::Difference { left, right } => {
            1 + predicted_buffers(left, catalog) + breaker_input(right)
        }
        Plan::SemiJoin { left, right, .. } | Plan::AntiJoin { left, right, .. } => {
            predicted_buffers(left, catalog) + breaker_input(right)
        }
        Plan::Join { left, right, pred } => {
            // Non-equi joins always buffer the right (inner) side; hash
            // joins buffer whichever side `join_build_left` picks.
            let equi = match (left.schema(catalog), right.schema(catalog)) {
                (Ok(ls), Ok(rs)) => !JoinCondition::analyze(pred, &ls, &rs).equi.is_empty(),
                _ => false,
            };
            if equi && join_build_left(left, right, catalog) {
                breaker_input(left) + predicted_buffers(right, catalog)
            } else {
                predicted_buffers(left, catalog) + breaker_input(right)
            }
        }
    }
}

/// Will the streaming pipeline rooted at `plan` run vectorized? Mirrors
/// [`Node::batchable`] on the physical tree the executor will build, so
/// `EXPLAIN` can annotate each node `[batched]` vs `[row]`.
///
/// Since the pair-batch evaluator covers nested-loop theta joins and
/// residual semijoins, every operator has a batched implementation —
/// only plans that fail to prepare (schema errors) report `false`. The
/// row cursors still exist, but only limited pulls and `for_each_row`
/// choose them.
pub fn batched_pipeline(plan: &Plan, catalog: &Catalog) -> bool {
    plan.schema(catalog).is_ok()
}

/// The worker count the morsel-driven executor will fan `plan` out over
/// (1 = serial) — the number EXPLAIN prints as `[parallel xN]` and
/// [`ExecStats::workers`] reports after a full pull. Mirrors the
/// prepare-time decision: the catalog's [`EngineConfig`] thread cap, the
/// morsel count of the probe spine's source, the optimizer row estimate
/// against the parallel threshold, and gather-safety of stateful
/// operators.
pub fn predicted_workers(plan: &Plan, catalog: &Catalog) -> usize {
    let cfg = catalog.config();
    if cfg.threads <= 1
        || plan.schema(catalog).is_err()
        || est_rows(plan, catalog) < cfg.parallel_min_rows as f64
        || plan_parallel_dedup(plan, catalog, false).is_none()
    {
        return 1;
    }
    let morsels = plan_morsel_count(plan, catalog, cfg.morsel_rows);
    if morsels > 1 {
        cfg.threads.min(morsels)
    } else {
        1
    }
}

/// Static mirror of [`Node::morsel_count`] on the logical plan: the
/// morsel count of the source at the bottom of the probe spine.
fn plan_morsel_count(plan: &Plan, catalog: &Catalog, morsel_rows: usize) -> usize {
    match plan {
        // Arithmetic on the row count (not via the columnar image) so
        // counting morsels never forces the plain image under segmented
        // storage; matches `ColumnarImage::morsel_count`.
        Plan::Scan(name) => catalog
            .get(name)
            .map(|r| r.len().div_ceil(morsel_rows.max(1)))
            .unwrap_or(0),
        Plan::Values(rel) => rel.len().div_ceil(morsel_rows.max(1)),
        Plan::Select { input, .. }
        | Plan::Project { input, .. }
        | Plan::Rename { input, .. }
        | Plan::Distinct(input) => plan_morsel_count(input, catalog, morsel_rows),
        Plan::Union { left, right } => {
            plan_morsel_count(left, catalog, morsel_rows)
                + plan_morsel_count(right, catalog, morsel_rows)
        }
        Plan::Difference { left, .. }
        | Plan::SemiJoin { left, .. }
        | Plan::AntiJoin { left, .. } => plan_morsel_count(left, catalog, morsel_rows),
        Plan::Join { left, right, pred } => {
            let (Ok(ls), Ok(rs)) = (left.schema(catalog), right.schema(catalog)) else {
                return 0;
            };
            let cond = JoinCondition::analyze(pred, &ls, &rs);
            // Theta joins stream the left as the outer; hash joins stream
            // whichever side `join_build_left` does not buffer.
            let probe = if cond.equi.is_empty() {
                left
            } else if join_build_left(left, right, catalog) {
                right
            } else {
                left
            };
            plan_morsel_count(probe, catalog, morsel_rows)
        }
    }
}

/// Static mirror of [`Node::parallel_dedup`] on the logical plan.
fn plan_parallel_dedup(plan: &Plan, catalog: &Catalog, transformed: bool) -> Option<bool> {
    match plan {
        Plan::Scan(_) | Plan::Values(_) => Some(false),
        // σ and ρ neither transform nor duplicate row values; semijoins
        // only drop left rows. All pass the flag through unchanged.
        Plan::Select { input, .. } | Plan::Rename { input, .. } => {
            plan_parallel_dedup(input, catalog, transformed)
        }
        Plan::SemiJoin { left, .. } | Plan::AntiJoin { left, .. } => {
            plan_parallel_dedup(left, catalog, transformed)
        }
        Plan::Project { input, .. } => plan_parallel_dedup(input, catalog, true),
        Plan::Join { left, right, pred } => {
            let (Ok(ls), Ok(rs)) = (left.schema(catalog), right.schema(catalog)) else {
                return None;
            };
            let cond = JoinCondition::analyze(pred, &ls, &rs);
            let probe = if cond.equi.is_empty() || !join_build_left(left, right, catalog) {
                left
            } else {
                right
            };
            plan_parallel_dedup(probe, catalog, true)
        }
        Plan::Union { left, right } => {
            plan_parallel_dedup(left, catalog, true)?;
            plan_parallel_dedup(right, catalog, true)?;
            Some(false)
        }
        Plan::Distinct(input) => {
            if transformed {
                return None;
            }
            plan_parallel_dedup(input, catalog, false)?;
            Some(true)
        }
        Plan::Difference { left, .. } => {
            if transformed {
                return None;
            }
            plan_parallel_dedup(left, catalog, false)?;
            Some(true)
        }
    }
}

// ---------------------------------------------------------------------------
// Cursors
// ---------------------------------------------------------------------------

enum Cursor<'a> {
    Source(std::slice::Iter<'a, Row>),
    Filter {
        input: Box<Cursor<'a>>,
        preds: &'a [CompiledExpr],
    },
    Project {
        input: Box<Cursor<'a>>,
        exprs: &'a [CompiledExpr],
    },
    HashJoin {
        node: &'a HashJoinNode,
        rel: &'a Arc<Relation>,
        table: &'a RowTable,
        probe: Box<Cursor<'a>>,
        /// Current probe row with its pending build matches.
        pending: Option<(StreamRow<'a>, &'a [usize], usize)>,
    },
    /// Row-at-a-time view over an operator that only exists batched (a
    /// spilled hash join): pulls batches and hands their rows out one
    /// by one.
    Bridge {
        bcur: Box<BCursor<'a>>,
        batch: Option<ColumnBatch<'a>>,
        pos: usize,
    },
    NestedLoop {
        node: &'a NestedLoopNode,
        outer: Box<Cursor<'a>>,
        current: Option<(StreamRow<'a>, usize)>,
    },
    Semi {
        node: &'a SemiNode,
        probe: Box<Cursor<'a>>,
    },
    Concat {
        left: Box<Cursor<'a>>,
        right: Box<Cursor<'a>>,
        on_right: bool,
    },
    Distinct {
        input: Box<Cursor<'a>>,
        seen: FxHashSet<Row>,
        counters: &'a Counters,
    },
    Difference {
        node: &'a DifferenceNode,
        input: Box<Cursor<'a>>,
        seen: FxHashSet<Row>,
        counters: &'a Counters,
    },
}

impl Node {
    fn cursor<'a>(&'a self, counters: &'a Counters) -> Cursor<'a> {
        match self {
            Node::Source(src) => Cursor::Source(src.rel.rows().iter()),
            Node::Filter { input, preds } => Cursor::Filter {
                input: Box::new(input.cursor(counters)),
                preds,
            },
            Node::Project { input, exprs } => Cursor::Project {
                input: Box::new(input.cursor(counters)),
                exprs,
            },
            Node::HashJoin(node) => match &node.build {
                JoinBuild::Mem { rel, table } => Cursor::HashJoin {
                    node,
                    rel,
                    table,
                    probe: Box::new(node.probe.cursor(counters)),
                    pending: None,
                },
                // A spilled build only has the hybrid-hash batched
                // implementation; bridge it row-at-a-time.
                JoinBuild::Spilled(_) => Cursor::Bridge {
                    bcur: Box::new(self.batch_cursor(counters)),
                    batch: None,
                    pos: 0,
                },
            },
            Node::NestedLoop(node) => Cursor::NestedLoop {
                node,
                outer: Box::new(node.outer.cursor(counters)),
                current: None,
            },
            Node::Semi(node) => Cursor::Semi {
                node,
                probe: Box::new(node.probe.cursor(counters)),
            },
            Node::Concat { left, right } => Cursor::Concat {
                left: Box::new(left.cursor(counters)),
                right: Box::new(right.cursor(counters)),
                on_right: false,
            },
            Node::Distinct { input } => Cursor::Distinct {
                input: Box::new(input.cursor(counters)),
                seen: FxHashSet::default(),
                counters,
            },
            Node::Difference(node) => Cursor::Difference {
                node,
                input: Box::new(node.input.cursor(counters)),
                seen: FxHashSet::default(),
                counters,
            },
        }
    }
}

impl<'a> Cursor<'a> {
    fn next(&mut self) -> Option<StreamRow<'a>> {
        match self {
            Cursor::Source(iter) => iter.next().map(StreamRow::Borrowed),
            Cursor::Filter { input, preds } => loop {
                let r = input.next()?;
                if preds.iter().all(|p| p.eval_bool(r.as_row())) {
                    return Some(r);
                }
            },
            Cursor::Project { input, exprs } => {
                let r = input.next()?;
                let row = r.as_row();
                Some(StreamRow::Owned(
                    exprs
                        .iter()
                        .map(|e| e.eval(row))
                        .collect::<Vec<_>>()
                        .into_boxed_slice(),
                ))
            }
            Cursor::HashJoin {
                node,
                rel,
                table,
                probe,
                pending,
            } => loop {
                if let Some((probe_row, matches, pos)) = pending.as_mut() {
                    let prow = probe_row.as_row();
                    while *pos < matches.len() {
                        let brow = &rel.rows()[matches[*pos]];
                        *pos += 1;
                        if !keys_eq(brow, &node.build_keys, prow, &node.probe_keys) {
                            continue;
                        }
                        let (lr, rr) = if node.probe_is_left {
                            (prow, brow)
                        } else {
                            (brow, prow)
                        };
                        if node
                            .residual
                            .as_ref()
                            .is_none_or(|c| c.eval_bool_pair(lr, rr))
                        {
                            return Some(StreamRow::Owned(concat_rows(lr, rr)));
                        }
                    }
                    *pending = None;
                }
                let prow = probe.next()?;
                if let Some(matches) = table.get(key_hash(prow.as_row(), &node.probe_keys)) {
                    *pending = Some((prow, matches, 0));
                }
            },
            Cursor::Bridge { bcur, batch, pos } => loop {
                if let Some(b) = batch {
                    if *pos < b.len() {
                        let row = b.row(*pos);
                        *pos += 1;
                        return Some(StreamRow::Owned(row));
                    }
                }
                *batch = Some(bcur.next_batch()?);
                *pos = 0;
            },
            Cursor::NestedLoop {
                node,
                outer,
                current,
            } => loop {
                if let Some((orow, idx)) = current.as_mut() {
                    let lrow = orow.as_row();
                    while *idx < node.inner.len() {
                        let irow = &node.inner.rows()[*idx];
                        *idx += 1;
                        if node
                            .pred
                            .as_ref()
                            .is_none_or(|c| c.eval_bool_pair(lrow, irow))
                        {
                            return Some(StreamRow::Owned(concat_rows(lrow, irow)));
                        }
                    }
                    *current = None;
                }
                let o = outer.next()?;
                *current = Some((o, 0));
            },
            Cursor::Semi { node, probe } => loop {
                let l = probe.next()?;
                let lrow = l.as_row();
                let matched = match &node.table {
                    Some((table, lk, rk)) => table.get(key_hash(lrow, lk)).is_some_and(|matches| {
                        matches.iter().any(|&ri| {
                            let rrow = &node.right.rows()[ri];
                            keys_eq(lrow, lk, rrow, rk)
                                && node
                                    .residual
                                    .as_ref()
                                    .is_none_or(|c| c.eval_bool_pair(lrow, rrow))
                        })
                    }),
                    None => node.right.rows().iter().any(|rrow| {
                        node.residual
                            .as_ref()
                            .is_none_or(|c| c.eval_bool_pair(lrow, rrow))
                    }),
                };
                if matched == node.keep_matched {
                    return Some(l);
                }
            },
            Cursor::Concat {
                left,
                right,
                on_right,
            } => {
                if !*on_right {
                    if let Some(r) = left.next() {
                        return Some(r);
                    }
                    *on_right = true;
                }
                right.next()
            }
            Cursor::Distinct {
                input,
                seen,
                counters,
            } => loop {
                let r = input.next()?;
                if !seen.contains(r.as_row()) {
                    seen.insert(r.as_row().clone());
                    counters.rows(1);
                    return Some(r);
                }
            },
            Cursor::Difference {
                node,
                input,
                seen,
                counters,
            } => loop {
                let r = input.next()?;
                let row = r.as_row();
                let in_right = node
                    .table
                    .get(row_hash(row))
                    .is_some_and(|is| is.iter().any(|&i| node.right.rows()[i] == *row));
                if in_right || seen.contains(row) {
                    continue;
                }
                seen.insert(row.clone());
                counters.rows(1);
                return Some(r);
            },
        }
    }
}

// ---------------------------------------------------------------------------
// Batched cursors: the vectorized pipeline
// ---------------------------------------------------------------------------

/// The batched physical pipeline: each variant pulls [`ColumnBatch`]es
/// from its input and transforms them column-wise. Constructed only for
/// [`Node::batchable`] trees; everything else runs the row [`Cursor`]s
/// (the fallback bridge that keeps every plan runnable).
enum BCursor<'a> {
    /// Chunked scan over `[pos, end)` of a relation's cached columnar
    /// image — the whole image for serial pulls, one morsel for a
    /// parallel worker.
    Source {
        image: &'a ColumnarImage,
        pos: usize,
        end: usize,
    },
    /// Chunked scan over `[pos, end)` of a relation's segmented image:
    /// batches come from provider-decoded segments ([`BatchCol::Shared`]
    /// columns, so eviction can't invalidate an in-flight batch), and
    /// segments whose zone maps refute one of the scan's sargable
    /// predicates are skipped without decoding.
    SegSource {
        scan: &'a SegScan,
        pos: usize,
        end: usize,
        /// The decoded segment `pos` currently reads from.
        cur: Option<Arc<DecodedSegment>>,
        counters: &'a Counters,
    },
    /// Theta join / cross product over pair batches: cross pairs of the
    /// outer batch and the buffered inner image, filtered by the
    /// vectorized pair-batch evaluator.
    NestedLoop {
        node: &'a NestedLoopNode,
        outer: Box<BCursor<'a>>,
        /// Current outer batch and the next (outer position, inner row)
        /// pair to enumerate.
        pending: Option<(ColumnBatch<'a>, usize, usize)>,
    },
    /// Vectorized conjunctive filter: masks then compacts.
    Filter {
        input: Box<BCursor<'a>>,
        preds: &'a [CompiledExpr],
    },
    /// Projection: column pointer shuffles for plain references,
    /// vectorized evaluation for computed expressions.
    Project {
        input: Box<BCursor<'a>>,
        exprs: &'a [CompiledExpr],
    },
    /// Hash-join probe: hashes the probe key columns per batch, emits
    /// matches as re-selected probe views + build-image views.
    HashJoin {
        node: &'a HashJoinNode,
        rel: &'a Arc<Relation>,
        table: &'a RowTable,
        probe: Box<BCursor<'a>>,
    },
    /// Hybrid-hash probe over a spilled build (see [`SpillJoinState`]):
    /// drains the probe into digest partitions, joins each partition
    /// pair — recursively re-partitioning oversized build partitions —
    /// and merges the per-partition output runs back into `(probe
    /// sequence, build index)` order, which is exactly the in-memory
    /// emission order.
    HashJoinSpilled {
        node: &'a HashJoinNode,
        spilled: &'a SpilledBuild,
        probe: Box<BCursor<'a>>,
        state: SpillJoinState,
        counters: &'a Counters,
    },
    /// Keyed semi/antijoin: membership-filters each probe batch.
    Semi {
        node: &'a SemiNode,
        probe: Box<BCursor<'a>>,
    },
    /// Bag union: left batches then right batches.
    Concat {
        left: Box<BCursor<'a>>,
        right: Box<BCursor<'a>>,
        on_right: bool,
    },
    /// Duplicate elimination: digest seen-set, batch compacted to first
    /// occurrences. Under a memory budget the seen-set can spill
    /// (see [`DedupSpill`]).
    Distinct {
        input: Box<BCursor<'a>>,
        seen: FxHashMap<u64, Vec<Row>>,
        counters: &'a Counters,
        spill: Option<Box<DedupSpill>>,
    },
    /// Set difference: membership test against the buffered right side
    /// plus a digest seen-set (spillable like Distinct's).
    Difference {
        node: &'a DifferenceNode,
        input: Box<BCursor<'a>>,
        seen: FxHashMap<u64, Vec<Row>>,
        counters: &'a Counters,
        spill: Option<Box<DedupSpill>>,
    },
}

/// Phases of the hybrid-hash probe over a spilled build.
enum SpillJoinState {
    /// Drain the probe stream into digest-partition run files.
    Drain,
    /// Merge the per-partition output runs by `(probe seq, build idx)`.
    Emit(MergeRuns<RecCmp>),
}

/// Record comparator used by spilled-join output merges: order by the
/// first two record keys (probe sequence, then build row index).
type RecCmp = fn(&Record, &Record) -> Ordering;

fn cmp_seq_idx(a: &Record, b: &Record) -> Ordering {
    (a.0[0], a.0[1]).cmp(&(b.0[0], b.0[1]))
}

/// Seen-set spill state of one distinct/difference cursor.
///
/// While in memory, the cursor dedups through its digest seen-set and
/// streams first occurrences online, charging retained rows against the
/// budget. The first overflow flushes the seen-set — rows *already
/// emitted downstream* — as a digest-sorted `emitted` run and ends
/// online emission: every later locally-new row becomes a *candidate*
/// `(row, sequence)`, buffered in a fresh map that itself flushes as
/// digest-sorted candidate runs. At end of input [`DedupSpill::resolve`]
/// merges all runs by digest: candidates equal to an emitted row are
/// suppressed, equal candidates keep the smallest sequence, and the
/// winners emit in sequence order — exactly the rows, in exactly the
/// order, the unbounded seen-set would have produced after the switch
/// point (everything before it was already emitted online, and the
/// whole online prefix precedes every candidate in the input).
struct DedupSpill {
    share: usize,
    bytes: usize,
    seq: u64,
    /// `true` once the first flush ended online emission.
    spilling: bool,
    emitted_runs: Vec<Run>,
    cand_runs: Vec<Run>,
    cand: FxHashMap<u64, Vec<(Row, u64)>>,
    winners: Option<std::vec::IntoIter<Row>>,
    /// Bytes charged for the resolved winner set (released once the
    /// winners have all been emitted).
    winner_bytes: usize,
}

impl DedupSpill {
    /// Spill state for one dedup cursor — `None` when the engine runs
    /// unbounded, so the online path stays untouched.
    fn maybe(counters: &Counters) -> Option<Box<DedupSpill>> {
        counters.spill.budget().enabled().then(|| {
            Box::new(DedupSpill {
                share: counters.spill.budget().share(),
                bytes: 0,
                seq: 0,
                spilling: false,
                emitted_runs: Vec::new(),
                cand_runs: Vec::new(),
                cand: FxHashMap::default(),
                winners: None,
                winner_bytes: 0,
            })
        })
    }

    /// Charge one retained row; `true` when the buffer just crossed the
    /// share and the caller must flush.
    fn charge(&mut self, ctx: &SpillCtx, row: &Row) -> bool {
        let bytes = row_footprint(row);
        ctx.budget().charge(bytes);
        self.bytes += bytes;
        self.bytes > self.share
    }

    /// Flush the online seen-set (already-emitted rows) as a
    /// digest-sorted run and switch to candidate buffering.
    fn flush_seen(&mut self, ctx: &SpillCtx, seen: &mut FxHashMap<u64, Vec<Row>>) {
        let mut entries: Vec<(u64, Row)> = seen
            .drain()
            .flat_map(|(d, rows)| rows.into_iter().map(move |r| (d, r)))
            .collect();
        entries.sort_by_key(|(d, _)| *d);
        let mut w = fault::rethrow(ctx.writer("dedup-seen"));
        for (d, r) in &entries {
            fault::rethrow(w.push(&[*d], r));
        }
        self.emitted_runs.push(fault::rethrow(w.finish()));
        ctx.record_spill(self.bytes);
        ctx.budget().release(self.bytes);
        self.bytes = 0;
        self.spilling = true;
    }

    /// Record a locally-new candidate row; flushes the candidate map
    /// when it crosses the share.
    fn push_candidate(&mut self, ctx: &SpillCtx, digest: u64, row: Row) {
        if self
            .cand
            .get(&digest)
            .is_some_and(|bucket| bucket.iter().any(|(r, _)| *r == row))
        {
            return;
        }
        let over = self.charge(ctx, &row);
        let seq = self.seq;
        self.seq += 1;
        self.cand.entry(digest).or_default().push((row, seq));
        if over {
            self.flush_cand(ctx);
        }
    }

    /// Flush the candidate map as a digest-sorted run.
    fn flush_cand(&mut self, ctx: &SpillCtx) {
        let mut entries: Vec<(u64, Row, u64)> = self
            .cand
            .drain()
            .flat_map(|(d, rows)| rows.into_iter().map(move |(r, s)| (d, r, s)))
            .collect();
        entries.sort_by_key(|(d, _, _)| *d);
        let mut w = fault::rethrow(ctx.writer("dedup-cand"));
        for (d, r, s) in &entries {
            fault::rethrow(w.push(&[*d, *s], r));
        }
        self.cand_runs.push(fault::rethrow(w.finish()));
        ctx.record_spill(self.bytes);
        ctx.budget().release(self.bytes);
        self.bytes = 0;
    }

    /// End of input: merge emitted + candidate runs by digest and
    /// compute the winners, in input-sequence order.
    fn resolve(&mut self, ctx: &SpillCtx, counters: &Counters) {
        if !self.cand.is_empty() {
            self.flush_cand(ctx);
        }
        let mut runs = std::mem::take(&mut self.emitted_runs);
        runs.append(&mut self.cand_runs);
        let mut winners: Vec<(u64, Row)> = Vec::new();
        // Per-digest group state: the merge delivers all records of one
        // digest together, emitted-run records first (earlier runs win
        // ties), so suppressors are complete before candidates arrive.
        let mut cur_digest: Option<u64> = None;
        let mut emitted: Vec<Row> = Vec::new();
        let mut group: Vec<(u64, Row)> = Vec::new();
        let merge = fault::rethrow(merge_runs(&runs, ctx, |a, b| a.0[0].cmp(&b.0[0])));
        for item in merge {
            let (_, (keys, row)) = fault::rethrow(item);
            if cur_digest != Some(keys[0]) {
                winners.append(&mut group);
                emitted.clear();
                cur_digest = Some(keys[0]);
            }
            // Emitted-run records carry one key (the digest); candidate
            // records carry two (digest, seq). The arity — not the run
            // index, which merge compaction may rewrite — tells them
            // apart.
            if keys.len() == 1 {
                emitted.push(row);
            } else if !emitted.contains(&row) {
                match group.iter_mut().find(|(_, r)| *r == row) {
                    Some((s, _)) => *s = (*s).min(keys[1]),
                    None => group.push((keys[1], row)),
                }
            }
        }
        winners.append(&mut group);
        winners.sort_by_key(|(s, _)| *s);
        counters.rows(winners.len());
        // The winner set is this operator's output suffix — held until
        // emission and charged so peak_tracked_bytes reflects it.
        self.winner_bytes = winners.iter().map(|(_, r)| row_footprint(r)).sum();
        ctx.budget().charge(self.winner_bytes);
        self.winners = Some(
            winners
                .into_iter()
                .map(|(_, r)| r)
                .collect::<Vec<_>>()
                .into_iter(),
        );
    }
}

impl Node {
    /// Does this streaming pipeline have a fully batched implementation?
    /// (Breaker *inputs* were already materialized at prepare time and
    /// made their own choice.) Since the pair-batch evaluator covers
    /// nested loops and residual semijoins, every operator answers yes —
    /// kept as a method so future operators can opt out again.
    fn batchable(&self) -> bool {
        match self {
            Node::Source(_) => true,
            Node::Filter { input, .. } | Node::Project { input, .. } | Node::Distinct { input } => {
                input.batchable()
            }
            Node::HashJoin(n) => n.probe.batchable(),
            Node::Semi(n) => n.probe.batchable(),
            Node::NestedLoop(n) => n.outer.batchable(),
            Node::Concat { left, right } => left.batchable() && right.batchable(),
            Node::Difference(n) => n.input.batchable(),
        }
    }

    /// Does any hash join in this tree hold a spilled build side? Such
    /// trees run serial: every morsel cursor would re-drain and
    /// re-probe the on-disk partitions (see `stream`).
    fn any_spilled_build(&self) -> bool {
        match self {
            Node::Source(_) => false,
            Node::Filter { input, .. } | Node::Project { input, .. } | Node::Distinct { input } => {
                input.any_spilled_build()
            }
            Node::HashJoin(n) => {
                matches!(n.build, JoinBuild::Spilled(_)) || n.probe.any_spilled_build()
            }
            Node::Semi(n) => n.probe.any_spilled_build(),
            Node::NestedLoop(n) => n.outer.any_spilled_build(),
            Node::Concat { left, right } => left.any_spilled_build() || right.any_spilled_build(),
            Node::Difference(n) => n.input.any_spilled_build(),
        }
    }

    /// Build the batched cursor tree (caller must have checked
    /// [`Node::batchable`]).
    fn batch_cursor<'a>(&'a self, counters: &'a Counters) -> BCursor<'a> {
        match self {
            Node::Source(src) => src.batch_cursor(0, src.rel.len(), counters),
            Node::Filter { input, preds } => BCursor::Filter {
                input: Box::new(input.batch_cursor(counters)),
                preds,
            },
            Node::Project { input, exprs } => BCursor::Project {
                input: Box::new(input.batch_cursor(counters)),
                exprs,
            },
            Node::HashJoin(node) => match &node.build {
                JoinBuild::Mem { rel, table } => BCursor::HashJoin {
                    node,
                    rel,
                    table,
                    probe: Box::new(node.probe.batch_cursor(counters)),
                },
                JoinBuild::Spilled(spilled) => BCursor::HashJoinSpilled {
                    node,
                    spilled,
                    probe: Box::new(node.probe.batch_cursor(counters)),
                    state: SpillJoinState::Drain,
                    counters,
                },
            },
            Node::Semi(node) => BCursor::Semi {
                node,
                probe: Box::new(node.probe.batch_cursor(counters)),
            },
            Node::NestedLoop(node) => BCursor::NestedLoop {
                node,
                outer: Box::new(node.outer.batch_cursor(counters)),
                pending: None,
            },
            Node::Concat { left, right } => BCursor::Concat {
                left: Box::new(left.batch_cursor(counters)),
                right: Box::new(right.batch_cursor(counters)),
                on_right: false,
            },
            Node::Distinct { input } => BCursor::Distinct {
                input: Box::new(input.batch_cursor(counters)),
                seen: FxHashMap::default(),
                counters,
                spill: DedupSpill::maybe(counters),
            },
            Node::Difference(node) => BCursor::Difference {
                node,
                input: Box::new(node.input.batch_cursor(counters)),
                seen: FxHashMap::default(),
                counters,
                spill: DedupSpill::maybe(counters),
            },
        }
    }

    /// How many morsels the source at the bottom of this pipeline's
    /// probe spine splits into (a union pipeline owns the morsels of
    /// both children, left first).
    fn morsel_count(&self, morsel_rows: usize) -> usize {
        match self {
            // Arithmetic (not via the columnar image) so segmented
            // execution never forces the plain image into existence;
            // the formula matches `ColumnarImage::morsel_count`.
            Node::Source(src) => src.rel.len().div_ceil(morsel_rows.max(1)),
            Node::Filter { input, .. } | Node::Project { input, .. } | Node::Distinct { input } => {
                input.morsel_count(morsel_rows)
            }
            Node::HashJoin(n) => n.probe.morsel_count(morsel_rows),
            Node::Semi(n) => n.probe.morsel_count(morsel_rows),
            Node::NestedLoop(n) => n.outer.morsel_count(morsel_rows),
            Node::Concat { left, right } => {
                left.morsel_count(morsel_rows) + right.morsel_count(morsel_rows)
            }
            Node::Difference(n) => n.input.morsel_count(morsel_rows),
        }
    }

    /// Build the batched cursor tree restricted to morsel `idx`: the
    /// spine's source scans only that morsel's row range, and stateful
    /// operators (distinct / difference seen-sets) keep *morsel-local*
    /// partial seen-sets — the gather replays their global semantics on
    /// the morsel-ordered output (see [`Streamed::parallel_rows`]).
    fn morsel_cursor<'a>(
        &'a self,
        idx: usize,
        morsel_rows: usize,
        counters: &'a Counters,
    ) -> BCursor<'a> {
        match self {
            Node::Source(src) => {
                // Same bounds arithmetic as `ColumnarImage::morsel_bounds`.
                let morsel_rows = morsel_rows.max(1);
                let start = (idx * morsel_rows).min(src.rel.len());
                let end = (start + morsel_rows).min(src.rel.len());
                src.batch_cursor(start, end, counters)
            }
            Node::Filter { input, preds } => BCursor::Filter {
                input: Box::new(input.morsel_cursor(idx, morsel_rows, counters)),
                preds,
            },
            Node::Project { input, exprs } => BCursor::Project {
                input: Box::new(input.morsel_cursor(idx, morsel_rows, counters)),
                exprs,
            },
            Node::HashJoin(node) => match &node.build {
                JoinBuild::Mem { rel, table } => BCursor::HashJoin {
                    node,
                    rel,
                    table,
                    probe: Box::new(node.probe.morsel_cursor(idx, morsel_rows, counters)),
                },
                // Reachable only defensively: a spilled build forces
                // serial pulls at prepare time (see `stream`). Each
                // morsel would drain and probe its own partitions —
                // correct, but the build-partition I/O multiplies by
                // the morsel count.
                JoinBuild::Spilled(spilled) => BCursor::HashJoinSpilled {
                    node,
                    spilled,
                    probe: Box::new(node.probe.morsel_cursor(idx, morsel_rows, counters)),
                    state: SpillJoinState::Drain,
                    counters,
                },
            },
            Node::Semi(node) => BCursor::Semi {
                node,
                probe: Box::new(node.probe.morsel_cursor(idx, morsel_rows, counters)),
            },
            Node::NestedLoop(node) => BCursor::NestedLoop {
                node,
                outer: Box::new(node.outer.morsel_cursor(idx, morsel_rows, counters)),
                pending: None,
            },
            // A morsel lies entirely within one union child: the Concat
            // node disappears and the morsel id routes (left ids first —
            // gather order equals serial left-then-right order).
            Node::Concat { left, right } => {
                let ln = left.morsel_count(morsel_rows);
                if idx < ln {
                    left.morsel_cursor(idx, morsel_rows, counters)
                } else {
                    right.morsel_cursor(idx - ln, morsel_rows, counters)
                }
            }
            Node::Distinct { input } => BCursor::Distinct {
                input: Box::new(input.morsel_cursor(idx, morsel_rows, counters)),
                seen: FxHashMap::default(),
                counters,
                spill: DedupSpill::maybe(counters),
            },
            Node::Difference(node) => BCursor::Difference {
                node,
                input: Box::new(node.input.morsel_cursor(idx, morsel_rows, counters)),
                seen: FxHashMap::default(),
                counters,
                spill: DedupSpill::maybe(counters),
            },
        }
    }

    /// Can this pipeline run morsel-parallel with a deterministic
    /// gather? Returns the gather's dedup requirement — `true` when
    /// distinct/difference seen-set semantics must be replayed on the
    /// gathered output — or `None` when a stateful operator sits below a
    /// transforming one (its deferred dedup would see rewritten or
    /// legitimately duplicated rows) and the pipeline must stay serial.
    ///
    /// `transformed` tracks whether an operator *above* the current node
    /// rewrites or duplicates row values: projections and both join
    /// kinds do; filters and semijoins only drop rows, which commutes
    /// with value-based dedup.
    fn parallel_dedup(&self, transformed: bool) -> Option<bool> {
        match self {
            Node::Source(_) => Some(false),
            Node::Filter { input, .. } => input.parallel_dedup(transformed),
            Node::Semi(n) => n.probe.parallel_dedup(transformed),
            Node::Project { input, .. } => input.parallel_dedup(true),
            Node::HashJoin(n) => n.probe.parallel_dedup(true),
            Node::NestedLoop(n) => n.outer.parallel_dedup(true),
            // Children own disjoint morsel ranges; a deferred dedup
            // would leak across them, so children must be dedup-free
            // (the `true` flag already rejects nested stateful nodes).
            Node::Concat { left, right } => {
                left.parallel_dedup(true)?;
                right.parallel_dedup(true)?;
                Some(false)
            }
            Node::Distinct { input } => {
                if transformed {
                    return None;
                }
                input.parallel_dedup(false)?;
                Some(true)
            }
            Node::Difference(n) => {
                // The right-membership test is a stateless per-row
                // filter; only the left-side seen-set defers.
                if transformed {
                    return None;
                }
                n.input.parallel_dedup(false)?;
                Some(true)
            }
        }
    }
}

impl<'a> BCursor<'a> {
    /// Pull the next non-empty batch (`None` at end of stream).
    fn next_batch(&mut self) -> Option<ColumnBatch<'a>> {
        match self {
            BCursor::Source { image, pos, end } => {
                if *pos >= *end {
                    return None;
                }
                let len = (*end - *pos).min(BATCH_SIZE);
                let b = ColumnBatch::slice_of(image, *pos, len);
                *pos += len;
                Some(b)
            }
            BCursor::SegSource {
                scan,
                pos,
                end,
                cur,
                counters,
            } => loop {
                if *pos >= *end {
                    return None;
                }
                let provider = &scan.provider;
                let seg = *pos / provider.seg_rows();
                let seg_end = ((seg + 1) * provider.seg_rows()).min(*end);
                let have = cur
                    .as_ref()
                    .is_some_and(|d| d.start <= *pos && *pos < d.start + d.len);
                if !have {
                    // Fresh segment: consult the zone maps before paying
                    // for a decode (or, under disk storage, a read).
                    let refuted = scan
                        .zone_preds
                        .iter()
                        .any(|(c, op, lit)| !provider.zone(*c, seg).may_match(*op, lit));
                    if refuted {
                        counters.seg.skipped.fetch_add(1, AtomicOrdering::Relaxed);
                        *pos = seg_end;
                        *cur = None;
                        continue;
                    }
                    *cur = Some(fault::rethrow(provider.segment(seg, &counters.seg.io)));
                    counters.seg.scanned.fetch_add(1, AtomicOrdering::Relaxed);
                }
                let d = cur.as_ref().expect("current decoded segment");
                let take = (seg_end - *pos).min(BATCH_SIZE);
                let cols = d
                    .cols
                    .iter()
                    .map(|c| BatchCol::Shared {
                        col: Arc::clone(c),
                        start: *pos - d.start,
                    })
                    .collect();
                *pos += take;
                return Some(ColumnBatch { cols, len: take });
            },
            BCursor::NestedLoop {
                node,
                outer,
                pending,
            } => loop {
                if let Some((ob, opos, ipos)) = pending.as_mut() {
                    let inner = node.inner.columns();
                    if !inner.is_empty() && *opos < ob.len() {
                        // Enumerate up to BATCH_SIZE cross pairs in
                        // (outer position, inner row) order — the same
                        // order the row cursors emit.
                        let mut lpos: Vec<u32> = Vec::with_capacity(BATCH_SIZE);
                        let mut rsel: Vec<u32> = Vec::with_capacity(BATCH_SIZE);
                        while lpos.len() < BATCH_SIZE && *opos < ob.len() {
                            lpos.push(*opos as u32);
                            rsel.push(*ipos as u32);
                            *ipos += 1;
                            if *ipos == inner.len() {
                                *ipos = 0;
                                *opos += 1;
                            }
                        }
                        let mut out = pair_batch(ob, &lpos, inner, rsel.into());
                        if let Some(pred) = &node.pred {
                            let mut mask = vec![true; out.len()];
                            pred.and_mask(&out, &mut mask);
                            if !mask.iter().any(|&m| m) {
                                continue;
                            }
                            out.compact(&mask);
                        }
                        return Some(out);
                    }
                    *pending = None;
                }
                let ob = outer.next_batch()?;
                *pending = Some((ob, 0, 0));
            },
            BCursor::Filter { input, preds } => loop {
                let mut b = input.next_batch()?;
                let mut mask = vec![true; b.len()];
                for p in preds.iter() {
                    p.and_mask(&b, &mut mask);
                }
                if mask.iter().any(|&m| m) {
                    b.compact(&mask);
                    return Some(b);
                }
            },
            BCursor::Project { input, exprs } => {
                let b = input.next_batch()?;
                let cols = exprs
                    .iter()
                    .map(|e| match e {
                        // Plain reference: a pointer shuffle (views clone
                        // a reference + Arc bump, owned columns an Arc).
                        CompiledExpr::Col(i) => b.cols[*i].clone(),
                        computed => computed.eval_column(&b),
                    })
                    .collect();
                Some(ColumnBatch { cols, len: b.len() })
            }
            BCursor::HashJoin {
                node,
                rel,
                table,
                probe,
            } => loop {
                let b = probe.next_batch()?;
                let build_image = rel.columns();
                let hashes = batch_key_hashes(&b, &node.probe_keys);
                let mut probe_pos: Vec<u32> = Vec::new();
                let mut build_idx: Vec<u32> = Vec::new();
                for (pos, h) in hashes.iter().enumerate() {
                    if let Some(matches) = table.get(*h) {
                        for &bi in matches {
                            if batch_keys_eq(
                                &b,
                                &node.probe_keys,
                                pos,
                                build_image,
                                &node.build_keys,
                                bi,
                            ) {
                                probe_pos.push(pos as u32);
                                build_idx.push(bi as u32);
                            }
                        }
                    }
                }
                if probe_pos.is_empty() {
                    continue;
                }
                // Assemble the output in left-right plan order: the probe
                // side re-selected by match position, the build side as
                // zero-copy views of the build image.
                let mut out = b;
                out.gather(&probe_pos);
                let build_sel: Arc<[u32]> = build_idx.into();
                let build_cols = build_image.cols().iter().map(|col| BatchCol::View {
                    col,
                    sel: Arc::clone(&build_sel),
                });
                if node.probe_is_left {
                    out.cols.extend(build_cols);
                } else {
                    out.cols.splice(0..0, build_cols);
                }
                if let Some(res) = &node.residual {
                    let mut mask = vec![true; out.len()];
                    res.and_mask(&out, &mut mask);
                    if !mask.iter().any(|&m| m) {
                        continue;
                    }
                    out.compact(&mask);
                }
                return Some(out);
            },
            BCursor::HashJoinSpilled {
                node,
                spilled,
                probe,
                state,
                counters,
            } => loop {
                match state {
                    SpillJoinState::Drain => {
                        let ctx = &counters.spill;
                        // Drain the probe stream into digest partitions
                        // aligned with the build's. Probe rows routed to
                        // an empty build partition can never match and
                        // are dropped at the door.
                        let active: Vec<bool> =
                            spilled.parts.iter().map(|r| r.records() > 0).collect();
                        let mut writers: Vec<crate::spill::RunWriter> = fault::rethrow(
                            (0..SPILL_JOIN_PARTS)
                                .map(|_| ctx.writer("join-probe"))
                                .collect::<Result<Vec<_>>>(),
                        );
                        let mut seq = 0u64;
                        let mut drained = 0usize;
                        while let Some(b) = probe.next_batch() {
                            let hashes = batch_key_hashes(&b, &node.probe_keys);
                            for (pos, &digest) in hashes.iter().enumerate() {
                                let part = spill_part(digest, 0);
                                if active[part] {
                                    let row = b.row(pos);
                                    drained += row_footprint(&row);
                                    fault::rethrow(writers[part].push(&[seq, digest], &row));
                                }
                                seq += 1;
                            }
                        }
                        if drained > 0 {
                            ctx.record_spill(drained);
                        }
                        let probe_parts: Vec<Run> = fault::rethrow(
                            writers
                                .into_iter()
                                .map(crate::spill::RunWriter::finish)
                                .collect::<Result<_>>(),
                        );
                        // Join each partition pair into sorted output
                        // runs, then merge the runs back into global
                        // (probe seq, build idx) order.
                        let mut out_runs: Vec<Run> = Vec::new();
                        for (bp, pp) in spilled.parts.iter().zip(&probe_parts) {
                            fault::rethrow(join_spilled_partition(
                                node,
                                bp,
                                pp,
                                0,
                                ctx,
                                &mut out_runs,
                            ));
                        }
                        *state = SpillJoinState::Emit(fault::rethrow(merge_runs(
                            &out_runs,
                            ctx,
                            cmp_seq_idx,
                        )));
                    }
                    SpillJoinState::Emit(merge) => {
                        let mut rows: Vec<Row> = Vec::with_capacity(BATCH_SIZE);
                        while rows.len() < BATCH_SIZE {
                            match merge.next() {
                                Some(item) => {
                                    let (_, (_, row)) = fault::rethrow(item);
                                    rows.push(row);
                                }
                                None => break,
                            }
                        }
                        if rows.is_empty() {
                            return None;
                        }
                        let arity = rows[0].len();
                        return Some(ColumnBatch::from_rows(&rows, arity));
                    }
                }
            },
            BCursor::Semi { node, probe } => loop {
                let mut b = probe.next_batch()?;
                let matched = semi_matched_mask(node, &b);
                let mut keep = vec![false; b.len()];
                let mut any = false;
                for (pos, k) in keep.iter_mut().enumerate() {
                    if matched[pos] == node.keep_matched {
                        *k = true;
                        any = true;
                    }
                }
                if any {
                    b.compact(&keep);
                    return Some(b);
                }
            },
            BCursor::Concat {
                left,
                right,
                on_right,
            } => {
                if !*on_right {
                    if let Some(b) = left.next_batch() {
                        return Some(b);
                    }
                    *on_right = true;
                }
                right.next_batch()
            }
            BCursor::Distinct {
                input,
                seen,
                counters,
                spill,
            } => loop {
                if let Some(batch) = dedup_emit_winners(spill, counters) {
                    return batch;
                }
                let Some(mut b) = input.next_batch() else {
                    let sp = spill.as_deref_mut()?;
                    if !sp.spilling {
                        return None;
                    }
                    sp.resolve(&counters.spill, counters);
                    continue; // loop back into the winner emission
                };
                let mut keep = vec![false; b.len()];
                let mut any = false;
                for (pos, k) in keep.iter_mut().enumerate() {
                    let digest = batch_row_hash(&b, pos);
                    if let Some(sp) = spill.as_deref_mut() {
                        if sp.spilling {
                            // Candidate phase: nothing emits online (the
                            // seen-set was flushed and stays empty).
                            sp.push_candidate(&counters.spill, digest, b.row(pos));
                            continue;
                        }
                    }
                    let bucket = seen.entry(digest).or_default();
                    if bucket.iter().any(|row| batch_row_eq(&b, pos, row)) {
                        continue;
                    }
                    let row = b.row(pos);
                    let over = spill
                        .as_deref_mut()
                        .is_some_and(|sp| sp.charge(&counters.spill, &row));
                    bucket.push(row);
                    counters.rows(1);
                    *k = true;
                    any = true;
                    if over {
                        // The seen-set crossed its share: flush it (its
                        // rows are already emitted) and stop emitting
                        // online from the next row on.
                        spill
                            .as_deref_mut()
                            .expect("over implies spill state")
                            .flush_seen(&counters.spill, seen);
                    }
                }
                if any {
                    b.compact(&keep);
                    return Some(b);
                }
            },
            BCursor::Difference {
                node,
                input,
                seen,
                counters,
                spill,
            } => loop {
                if let Some(batch) = dedup_emit_winners(spill, counters) {
                    return batch;
                }
                let Some(mut b) = input.next_batch() else {
                    let sp = spill.as_deref_mut()?;
                    if !sp.spilling {
                        return None;
                    }
                    sp.resolve(&counters.spill, counters);
                    continue;
                };
                let mut keep = vec![false; b.len()];
                let mut any = false;
                for (pos, k) in keep.iter_mut().enumerate() {
                    let digest = batch_row_hash(&b, pos);
                    // The right-membership test is stateless and runs in
                    // both phases.
                    let in_right = node.table.get(digest).is_some_and(|is| {
                        is.iter()
                            .any(|&i| batch_row_eq(&b, pos, &node.right.rows()[i]))
                    });
                    if in_right {
                        continue;
                    }
                    if let Some(sp) = spill.as_deref_mut() {
                        if sp.spilling {
                            sp.push_candidate(&counters.spill, digest, b.row(pos));
                            continue;
                        }
                    }
                    let bucket = seen.entry(digest).or_default();
                    if bucket.iter().any(|row| batch_row_eq(&b, pos, row)) {
                        continue;
                    }
                    let row = b.row(pos);
                    let over = spill
                        .as_deref_mut()
                        .is_some_and(|sp| sp.charge(&counters.spill, &row));
                    bucket.push(row);
                    counters.rows(1);
                    *k = true;
                    any = true;
                    if over {
                        spill
                            .as_deref_mut()
                            .expect("over implies spill state")
                            .flush_seen(&counters.spill, seen);
                    }
                }
                if any {
                    b.compact(&keep);
                    return Some(b);
                }
            },
        }
    }
}

/// Winner emission of a spilled dedup cursor: `None` while the cursor
/// is not in the winner phase; `Some(None)` at end of winners (end of
/// stream, winner bytes released); `Some(Some(batch))` with up to
/// [`BATCH_SIZE`] winner rows.
fn dedup_emit_winners<'a>(
    spill: &mut Option<Box<DedupSpill>>,
    counters: &Counters,
) -> Option<Option<ColumnBatch<'a>>> {
    let sp = spill.as_deref_mut()?;
    let w = sp.winners.as_mut()?;
    let rows: Vec<Row> = w.by_ref().take(BATCH_SIZE).collect();
    if rows.is_empty() {
        counters.spill.budget().release(sp.winner_bytes);
        sp.winner_bytes = 0;
        return Some(None);
    }
    let arity = rows[0].len();
    Some(Some(ColumnBatch::from_rows(&rows, arity)))
}

/// Join one (build partition, probe partition) pair of a spilled hash
/// join, appending output runs of `(probe seq, build idx, joined row)`
/// records — each run internally sorted by that key pair, since the
/// probe file is in sequence order and bucket matches ascend by build
/// index.
///
/// A build partition whose resident footprint still exceeds the budget
/// share is *recursively* re-partitioned (both sides, with the
/// next-depth digest mix) up to [`MAX_SPILL_DEPTH`]; past that it is
/// built in memory regardless — a partition that refuses to split is
/// dominated by duplicates of one key, which re-hashing cannot spread.
fn join_spilled_partition(
    node: &HashJoinNode,
    build_run: &Run,
    probe_run: &Run,
    depth: usize,
    ctx: &SpillCtx,
    out: &mut Vec<Run>,
) -> Result<()> {
    if build_run.records() == 0 || probe_run.records() == 0 {
        return Ok(());
    }
    // The run's own metadata decides *before* anything loads: an
    // over-share partition streams record-by-record into sub-partition
    // files, so no more than one share's worth of build rows is ever
    // resident on this path.
    if build_run.bytes() > ctx.budget().share()
        && depth < MAX_SPILL_DEPTH
        && build_run.records() > 1
    {
        let mut bws: Vec<crate::spill::RunWriter> = (0..SPILL_JOIN_PARTS)
            .map(|_| ctx.writer("join-build"))
            .collect::<Result<_>>()?;
        let mut rd = build_run.reader()?;
        while let Some((keys, row)) = rd.next_record()? {
            bws[spill_part(keys[1], depth + 1)].push(&keys, &row)?;
        }
        let mut pws: Vec<crate::spill::RunWriter> = (0..SPILL_JOIN_PARTS)
            .map(|_| ctx.writer("join-probe"))
            .collect::<Result<_>>()?;
        let mut rd = probe_run.reader()?;
        while let Some((keys, row)) = rd.next_record()? {
            pws[spill_part(keys[1], depth + 1)].push(&keys, &row)?;
        }
        ctx.record_spill(build_run.bytes());
        let bruns: Vec<Run> = bws
            .into_iter()
            .map(crate::spill::RunWriter::finish)
            .collect::<Result<_>>()?;
        let pruns: Vec<Run> = pws
            .into_iter()
            .map(crate::spill::RunWriter::finish)
            .collect::<Result<_>>()?;
        for (b, p) in bruns.iter().zip(&pruns) {
            join_spilled_partition(node, b, p, depth + 1, ctx, out)?;
        }
        return Ok(());
    }
    // Partition fits (or cannot split further): classic build + probe.
    // (row index, key digest, row), in ascending index order — file
    // order, which re-partitioning preserves.
    let mut build: Vec<(u64, u64, Row)> = Vec::with_capacity(build_run.records());
    let mut rd = build_run.reader()?;
    while let Some((keys, row)) = rd.next_record()? {
        build.push((keys[0], keys[1], row));
    }
    let bytes = build_run.bytes();
    ctx.budget().charge(bytes);
    let mut table: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
    for (i, (_, digest, _)) in build.iter().enumerate() {
        table.entry(*digest).or_default().push(i);
    }
    let mut w = ctx.writer("join-out")?;
    let mut rd = probe_run.reader()?;
    while let Some((keys, prow)) = rd.next_record()? {
        let (seq, digest) = (keys[0], keys[1]);
        if let Some(matches) = table.get(&digest) {
            for &bi in matches {
                let (idx, _, brow) = &build[bi];
                if !keys_eq(brow, &node.build_keys, &prow, &node.probe_keys) {
                    continue;
                }
                let (lr, rr) = if node.probe_is_left {
                    (&prow, brow)
                } else {
                    (brow, &prow)
                };
                if node
                    .residual
                    .as_ref()
                    .is_none_or(|c| c.eval_bool_pair(lr, rr))
                {
                    w.push(&[seq, *idx], &concat_rows(lr, rr))?;
                }
            }
        }
    }
    ctx.budget().release(bytes);
    if w.records() > 0 {
        out.push(w.finish()?);
    }
    Ok(())
}

/// Assemble a zero-copy *pair batch*: the left side re-selected from a
/// probe batch by `lpos`, the right side as views of a buffered
/// relation's columnar image selected by `rsel` — one logical row per
/// (left, right) candidate pair, in plan column order. This is the
/// pair-batch evaluator's input: cross-side residual predicates then run
/// the ordinary vectorized mask kernels over it, which is what lets
/// nested-loop theta joins and residual semijoins stay on the batched
/// engine instead of falling back to row cursors.
fn pair_batch<'a>(
    left: &ColumnBatch<'a>,
    lpos: &[u32],
    image: &'a ColumnarImage,
    rsel: Arc<[u32]>,
) -> ColumnBatch<'a> {
    let mut out = ColumnBatch {
        cols: left.cols.clone(),
        len: left.len,
    };
    out.gather(lpos);
    out.cols
        .extend(image.cols().iter().map(|col| BatchCol::View {
            col,
            sel: Arc::clone(&rsel),
        }));
    out
}

/// Evaluate a cross-side residual over candidate `(probe position,
/// right row)` pairs in [`BATCH_SIZE`] pair-batch chunks, marking probe
/// positions with at least one satisfying pair in `matched`.
fn mark_residual_matches(
    res: &CompiledExpr,
    b: &ColumnBatch<'_>,
    lpos: &[u32],
    rsel: &[u32],
    image: &ColumnarImage,
    matched: &mut [bool],
) {
    for (lchunk, rchunk) in lpos.chunks(BATCH_SIZE).zip(rsel.chunks(BATCH_SIZE)) {
        let out = pair_batch(b, lchunk, image, rchunk.into());
        let mut mask = vec![true; out.len()];
        res.and_mask(&out, &mut mask);
        for (i, &m) in mask.iter().enumerate() {
            if m {
                matched[lchunk[i] as usize] = true;
            }
        }
    }
}

/// Which probe positions of `b` have a matching right-side row? Covers
/// all three physical semijoin shapes: keyed (digest probe), keyed with
/// a residual (digest probe + pair-batch evaluation of the residual),
/// and non-equi (pair-batch evaluation over all candidate pairs).
fn semi_matched_mask(node: &SemiNode, b: &ColumnBatch<'_>) -> Vec<bool> {
    let right_image = node.right.columns();
    let mut matched = vec![false; b.len()];
    match &node.table {
        Some((table, lk, rk)) => {
            let hashes = batch_key_hashes(b, lk);
            match &node.residual {
                None => {
                    for (pos, h) in hashes.iter().enumerate() {
                        matched[pos] = table.get(*h).is_some_and(|matches| {
                            matches
                                .iter()
                                .any(|&ri| batch_keys_eq(b, lk, pos, right_image, rk, ri))
                        });
                    }
                }
                Some(res) => {
                    // Key-qualified candidate pairs, residual-checked by
                    // the pair-batch evaluator. Pairs whose probe
                    // position already matched are skipped between
                    // chunks — the row path's per-row early exit, at
                    // chunk granularity (matters under key skew).
                    let mut cands: Vec<(u32, u32)> = Vec::new();
                    for (pos, h) in hashes.iter().enumerate() {
                        if let Some(matches) = table.get(*h) {
                            for &ri in matches {
                                if batch_keys_eq(b, lk, pos, right_image, rk, ri) {
                                    cands.push((pos as u32, ri as u32));
                                }
                            }
                        }
                    }
                    let mut idx = 0;
                    let mut lpos: Vec<u32> = Vec::with_capacity(BATCH_SIZE);
                    let mut rsel: Vec<u32> = Vec::with_capacity(BATCH_SIZE);
                    while idx < cands.len() {
                        lpos.clear();
                        rsel.clear();
                        while lpos.len() < BATCH_SIZE && idx < cands.len() {
                            let (p, r) = cands[idx];
                            idx += 1;
                            if matched[p as usize] {
                                continue;
                            }
                            lpos.push(p);
                            rsel.push(r);
                        }
                        if !lpos.is_empty() {
                            mark_residual_matches(res, b, &lpos, &rsel, right_image, &mut matched);
                        }
                    }
                }
            }
        }
        None if right_image.is_empty() => {}
        None => match &node.residual {
            None => matched.fill(true), // cross semijoin, right non-empty
            Some(res) => {
                // All (probe, right) pairs are candidates; chunks are
                // re-enumerated between evaluations so positions already
                // matched skip their remaining pairs (the row path's
                // early exit, batched).
                let (mut pos, mut ri) = (0usize, 0usize);
                let mut lpos: Vec<u32> = Vec::with_capacity(BATCH_SIZE);
                let mut rsel: Vec<u32> = Vec::with_capacity(BATCH_SIZE);
                while pos < b.len() {
                    lpos.clear();
                    rsel.clear();
                    while lpos.len() < BATCH_SIZE && pos < b.len() {
                        if matched[pos] {
                            pos += 1;
                            ri = 0;
                            continue;
                        }
                        lpos.push(pos as u32);
                        rsel.push(ri as u32);
                        ri += 1;
                        if ri == right_image.len() {
                            ri = 0;
                            pos += 1;
                        }
                    }
                    if lpos.is_empty() {
                        break;
                    }
                    mark_residual_matches(res, b, &lpos, &rsel, right_image, &mut matched);
                }
            }
        },
    }
    matched
}

/// Per-row FxHash digests of the key columns of a batch, column-at-a-time
/// and byte-compatible with [`key_hash`] over rows (the probe digests
/// must hit the row-built hash tables).
fn batch_key_hashes(b: &ColumnBatch<'_>, keys: &[usize]) -> Vec<u64> {
    let mut hashers = vec![FxHasher::default(); b.len()];
    for &k in keys {
        hash_col_into(&b.cols[k], b.len(), &mut hashers);
    }
    hashers.into_iter().map(|h| h.finish()).collect()
}

/// Full-row digest of one batch position (compatible with [`row_hash`]).
fn batch_row_hash(b: &ColumnBatch<'_>, pos: usize) -> u64 {
    let mut h = FxHasher::default();
    for c in &b.cols {
        match c.shared_at(pos) {
            Some((col, idx)) => col.hash_value_into(idx, &mut h),
            None => c.value(pos).hash(&mut h),
        }
    }
    h.finish()
}

fn hash_col_into(c: &BatchCol<'_>, len: usize, hashers: &mut [FxHasher]) {
    match c {
        BatchCol::Slice { col, start } => {
            for (pos, h) in hashers.iter_mut().enumerate().take(len) {
                col.hash_value_into(start + pos, h);
            }
        }
        BatchCol::View { col, sel } => {
            for (pos, h) in hashers.iter_mut().enumerate().take(len) {
                col.hash_value_into(sel[pos] as usize, h);
            }
        }
        BatchCol::Owned(col) => {
            for (pos, h) in hashers.iter_mut().enumerate().take(len) {
                col.hash_value_into(pos, h);
            }
        }
        BatchCol::Const(v) => {
            for h in hashers.iter_mut().take(len) {
                v.hash(h);
            }
        }
        BatchCol::Shared { col, start } => {
            for (pos, h) in hashers.iter_mut().enumerate().take(len) {
                col.hash_value_into(start + pos, h);
            }
        }
        BatchCol::SharedView { col, sel } => {
            for (pos, h) in hashers.iter_mut().enumerate().take(len) {
                col.hash_value_into(sel[pos] as usize, h);
            }
        }
    }
}

/// Exact key equality between a batch position and an image row (the
/// collision guard behind [`batch_key_hashes`]); no `Value` clones on
/// the shared-column paths.
fn batch_keys_eq(
    b: &ColumnBatch<'_>,
    b_keys: &[usize],
    pos: usize,
    image: &ColumnarImage,
    i_keys: &[usize],
    row: usize,
) -> bool {
    b_keys.iter().zip(i_keys).all(|(&bk, &ik)| {
        let icol = &image.cols()[ik];
        match b.cols[bk].shared_at(pos) {
            Some((col, idx)) => col.cross_eq(idx, icol, row),
            None => icol.value_eq(row, &b.cols[bk].value(pos)),
        }
    })
}

/// Exact full-row equality between a batch position and an owned row.
fn batch_row_eq(b: &ColumnBatch<'_>, pos: usize, row: &Row) -> bool {
    b.cols
        .iter()
        .zip(row.iter())
        .all(|(c, v)| match c.shared_at(pos) {
            Some((col, idx)) => col.value_eq(idx, v),
            None => c.value(pos) == *v,
        })
}

// ---------------------------------------------------------------------------
// Join-condition analysis (shared with EXPLAIN and the reference engine)
// ---------------------------------------------------------------------------

/// The join-predicate decomposition used by both the executor and the
/// EXPLAIN output: equi-key pairs and everything else as a residual filter.
pub struct JoinCondition {
    /// Pairs of (left column index, right column index) joined by equality.
    pub equi: Vec<(usize, usize)>,
    /// Conjuncts evaluated against the concatenated row.
    pub residual: Vec<Expr>,
}

impl JoinCondition {
    /// Split `pred` into hash-joinable equalities and residual conjuncts.
    pub fn analyze(pred: &Expr, left: &Schema, right: &Schema) -> JoinCondition {
        let mut equi = Vec::new();
        let mut residual = Vec::new();
        for conjunct in pred.clone().conjuncts() {
            if let Expr::Cmp(CmpOp::Eq, a, b) = &conjunct {
                if let (Expr::Col(ca), Expr::Col(cb)) = (a.as_ref(), b.as_ref()) {
                    // A column belongs to a side iff it resolves there
                    // uniquely and not on the other side.
                    let a_left = left.resolve(ca).ok();
                    let a_right = right.resolve(ca).ok();
                    let b_left = left.resolve(cb).ok();
                    let b_right = right.resolve(cb).ok();
                    match (a_left, a_right, b_left, b_right) {
                        (Some(al), None, None, Some(br)) => {
                            equi.push((al, br));
                            continue;
                        }
                        (None, Some(ar), Some(bl), None) => {
                            equi.push((bl, ar));
                            continue;
                        }
                        _ => {}
                    }
                }
            }
            residual.push(conjunct);
        }
        JoinCondition { equi, residual }
    }
}

/// FxHash digest of the key columns of a borrowed row — the hash-table
/// key, so no `Vec<Value>` is materialized per build or probe row.
#[inline]
fn key_hash(row: &Row, keys: &[usize]) -> u64 {
    let mut h = FxHasher::default();
    for &k in keys {
        row[k].hash(&mut h);
    }
    h.finish()
}

/// FxHash digest of a whole row (set-membership tables).
#[inline]
fn row_hash(row: &Row) -> u64 {
    let mut h = FxHasher::default();
    for v in row.iter() {
        v.hash(&mut h);
    }
    h.finish()
}

/// Exact key equality backing the hash digest (collision guard).
#[inline]
fn keys_eq(a: &Row, a_keys: &[usize], b: &Row, b_keys: &[usize]) -> bool {
    a_keys.iter().zip(b_keys).all(|(&i, &j)| a[i] == b[j])
}

fn concat_rows(l: &Row, r: &Row) -> Row {
    let mut out = Vec::with_capacity(l.len() + r.len());
    out.extend(l.iter().cloned());
    out.extend(r.iter().cloned());
    out.into_boxed_slice()
}

// ---------------------------------------------------------------------------
// Reference engine: operator-at-a-time, fully materializing
// ---------------------------------------------------------------------------

/// The retained operator-at-a-time engine: every operator materializes
/// its complete output before the parent runs. Kept as the differential
/// baseline the streaming executor is property-tested against — the two
/// must produce identical multisets of rows for every well-formed plan.
pub fn execute_reference(plan: &Plan, catalog: &Catalog) -> Result<Arc<Relation>> {
    ref_exec(plan, catalog).map(Arc::new)
}

fn ref_exec(plan: &Plan, catalog: &Catalog) -> Result<Relation> {
    match plan {
        Plan::Scan(name) => Ok(catalog.get(name)?.as_ref().clone()),
        Plan::Values(rel) => Ok(rel.as_ref().clone()),
        Plan::Select { input, pred } => {
            let rel = ref_exec(input, catalog)?;
            let compiled = pred.compile(rel.schema())?;
            let rows = rel
                .rows()
                .iter()
                .filter(|r| compiled.eval_bool(r))
                .cloned()
                .collect();
            Relation::new(rel.schema().clone(), rows)
        }
        Plan::Project { input, cols } => {
            let rel = ref_exec(input, catalog)?;
            let exprs: Vec<CompiledExpr> = cols
                .iter()
                .map(|(e, _)| e.compile(rel.schema()))
                .collect::<Result<_>>()?;
            let schema = Schema::new(cols.iter().map(|(_, n)| n.clone()).collect());
            let rows = rel
                .rows()
                .iter()
                .map(|r| {
                    exprs
                        .iter()
                        .map(|c| c.eval(r))
                        .collect::<Vec<_>>()
                        .into_boxed_slice()
                })
                .collect();
            Relation::new(schema, rows)
        }
        Plan::Join { left, right, pred } => {
            let l = ref_exec(left, catalog)?;
            let r = ref_exec(right, catalog)?;
            ref_join(&l, &r, pred)
        }
        Plan::SemiJoin { left, right, pred } => {
            let l = ref_exec(left, catalog)?;
            let r = ref_exec(right, catalog)?;
            ref_semi_anti(&l, &r, pred, true)
        }
        Plan::AntiJoin { left, right, pred } => {
            let l = ref_exec(left, catalog)?;
            let r = ref_exec(right, catalog)?;
            ref_semi_anti(&l, &r, pred, false)
        }
        Plan::Union { left, right } => {
            let l = ref_exec(left, catalog)?;
            let r = ref_exec(right, catalog)?;
            if !l.schema().compatible(r.schema()) {
                return Err(Error::SchemaMismatch {
                    left: l.schema().to_string(),
                    right: r.schema().to_string(),
                });
            }
            let schema = l.schema().clone();
            let mut rows = l.into_rows();
            rows.extend(r.into_rows());
            Relation::new(schema, rows)
        }
        Plan::Difference { left, right } => {
            let l = ref_exec(left, catalog)?;
            let r = ref_exec(right, catalog)?;
            if !l.schema().compatible(r.schema()) {
                return Err(Error::SchemaMismatch {
                    left: l.schema().to_string(),
                    right: r.schema().to_string(),
                });
            }
            let right_set: FxHashSet<&Row> = r.rows().iter().collect();
            let mut seen: FxHashSet<&Row> = FxHashSet::default();
            let mut rows = Vec::new();
            for row in l.rows() {
                if !right_set.contains(row) && seen.insert(row) {
                    rows.push(row.clone());
                }
            }
            Relation::new(l.schema().clone(), rows)
        }
        Plan::Distinct(input) => {
            let rel = ref_exec(input, catalog)?;
            let mut seen: FxHashSet<&Row> = FxHashSet::default();
            let mut rows = Vec::new();
            for row in rel.rows() {
                if seen.insert(row) {
                    rows.push(row.clone());
                }
            }
            Relation::new(rel.schema().clone(), rows)
        }
        Plan::Rename { input, alias } => {
            let rel = ref_exec(input, catalog)?;
            let schema = rel.schema().qualify(alias);
            rel.shared_with_schema(schema)
        }
    }
}

fn ref_join(l: &Relation, r: &Relation, pred: &Expr) -> Result<Relation> {
    let out_schema = l.schema().concat(r.schema());
    pred.compile(&out_schema)?; // reject ambiguity like Plan::schema does
    let cond = JoinCondition::analyze(pred, l.schema(), r.schema());
    let residual = Expr::and(cond.residual.clone());
    let compiled = if residual.is_true() {
        None
    } else {
        Some(residual.compile(&out_schema)?)
    };

    let mut rows: Vec<Row> = Vec::new();
    if cond.equi.is_empty() {
        // Nested loop (cross product + filter).
        for lr in l.rows() {
            for rr in r.rows() {
                if compiled.as_ref().is_none_or(|c| c.eval_bool_pair(lr, rr)) {
                    rows.push(concat_rows(lr, rr));
                }
            }
        }
    } else {
        // Hash join: build on the smaller input, keyed by row index under
        // the FxHash digest of the borrowed key slice.
        let build_left = l.len() <= r.len();
        let (build, probe) = if build_left { (l, r) } else { (r, l) };
        let (build_keys, probe_keys): (Vec<usize>, Vec<usize>) = if build_left {
            cond.equi.iter().cloned().unzip()
        } else {
            let (lk, rk): (Vec<usize>, Vec<usize>) = cond.equi.iter().cloned().unzip();
            (rk, lk)
        };
        let mut table: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
        for (i, row) in build.rows().iter().enumerate() {
            table.entry(key_hash(row, &build_keys)).or_default().push(i);
        }
        for prow in probe.rows() {
            if let Some(matches) = table.get(&key_hash(prow, &probe_keys)) {
                for &bi in matches {
                    let brow = &build.rows()[bi];
                    if !keys_eq(brow, &build_keys, prow, &probe_keys) {
                        continue;
                    }
                    let (lr, rr) = if build_left {
                        (brow, prow)
                    } else {
                        (prow, brow)
                    };
                    if compiled.as_ref().is_none_or(|c| c.eval_bool_pair(lr, rr)) {
                        rows.push(concat_rows(lr, rr));
                    }
                }
            }
        }
    }
    Relation::new(out_schema, rows)
}

fn ref_semi_anti(l: &Relation, r: &Relation, pred: &Expr, keep_matched: bool) -> Result<Relation> {
    let joint = l.schema().concat(r.schema());
    pred.compile(&joint)?; // reject ambiguity like Plan::schema does
    let cond = JoinCondition::analyze(pred, l.schema(), r.schema());
    let residual = Expr::and(cond.residual.clone());
    let compiled = if residual.is_true() {
        None
    } else {
        Some(residual.compile(&joint)?)
    };

    let mut rows = Vec::new();
    if cond.equi.is_empty() {
        for lr in l.rows() {
            let matched = r
                .rows()
                .iter()
                .any(|rr| compiled.as_ref().is_none_or(|c| c.eval_bool_pair(lr, rr)));
            if matched == keep_matched {
                rows.push(lr.clone());
            }
        }
    } else {
        let (lk, rk): (Vec<usize>, Vec<usize>) = cond.equi.iter().cloned().unzip();
        let mut table: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
        for (i, row) in r.rows().iter().enumerate() {
            table.entry(key_hash(row, &rk)).or_default().push(i);
        }
        for lr in l.rows() {
            let matched = table.get(&key_hash(lr, &lk)).is_some_and(|matches| {
                matches.iter().any(|&ri| {
                    let rrow = &r.rows()[ri];
                    keys_eq(lr, &lk, rrow, &rk)
                        && compiled.as_ref().is_none_or(|c| c.eval_bool_pair(lr, rrow))
                })
            });
            if matched == keep_matched {
                rows.push(lr.clone());
            }
        }
    }
    Relation::new(l.schema().clone(), rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit_i64, lit_str};
    use crate::value::Value;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.insert(
            "emp",
            Relation::from_rows(
                ["eid", "dept", "name"],
                vec![
                    vec![Value::Int(1), Value::Int(10), Value::str("ann")],
                    vec![Value::Int(2), Value::Int(20), Value::str("bob")],
                    vec![Value::Int(3), Value::Int(10), Value::str("cee")],
                ],
            )
            .unwrap(),
        );
        c.insert(
            "dept",
            Relation::from_rows(
                ["did", "dname"],
                vec![
                    vec![Value::Int(10), Value::str("eng")],
                    vec![Value::Int(30), Value::str("hr")],
                ],
            )
            .unwrap(),
        );
        c
    }

    /// Both engines agree up to multiset (row order may differ when the
    /// hash-join build side differs).
    fn assert_engines_agree(p: &Plan, c: &Catalog) {
        let streamed = execute(p, c).unwrap();
        let reference = execute_reference(p, c).unwrap();
        let mut a: Vec<Row> = streamed.rows().to_vec();
        let mut b: Vec<Row> = reference.rows().to_vec();
        a.sort();
        b.sort();
        assert_eq!(a, b, "streaming vs reference disagree on {p:?}");
    }

    #[test]
    fn scan_shares_catalog_storage() {
        let c = catalog();
        let out = execute(&Plan::scan("emp"), &c).unwrap();
        assert!(Arc::ptr_eq(&out, c.get("emp").unwrap()));
    }

    #[test]
    fn rename_shares_rows_with_catalog() {
        let c = catalog();
        let out = execute(&Plan::scan("emp").rename("e"), &c).unwrap();
        assert!(out.shares_rows_with(c.get("emp").unwrap()));
        assert_eq!(out.schema().to_string(), "e.eid, e.dept, e.name");
    }

    #[test]
    fn select_project() {
        let c = catalog();
        let p = Plan::scan("emp")
            .select(col("dept").eq(lit_i64(10)))
            .project_names(["name"]);
        let out = execute(&p, &c).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.rows()[0][0], Value::str("ann"));
        assert_engines_agree(&p, &c);
    }

    #[test]
    fn fused_select_chain_matches_stepwise() {
        let c = catalog();
        // σ over σ over σ — one streamed pass, same answer as nesting
        // implies, with zero intermediate buffers.
        let p = Plan::scan("emp")
            .select(col("dept").eq(lit_i64(10)))
            .select(col("eid").gt(lit_i64(1)))
            .select(col("name").ne(lit_str("zzz")));
        let (out, stats) = execute_with_stats(&p, &c).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::Int(3));
        assert_eq!(stats.buffers, 0, "σ-chain must not buffer");
        // Predicate validation still fails cleanly mid-chain.
        let bad = Plan::scan("emp")
            .select(col("dept").eq(lit_i64(10)))
            .select(col("nope").eq(lit_i64(1)));
        assert!(execute(&bad, &c).is_err());
    }

    #[test]
    fn select_over_rename_copies_only_survivors() {
        let c = catalog();
        // Rename aliases catalog-shared rows; the selection streams over
        // them and only the survivors are materialized at the top.
        let p = Plan::scan("emp")
            .rename("e")
            .select(col("e.dept").eq(lit_i64(10)));
        let (out, stats) = execute_with_stats(&p, &c).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(stats.buffers, 0);
        // The catalog entry is untouched and still fully shared.
        assert_eq!(c.get("emp").unwrap().len(), 3);
    }

    #[test]
    fn select_above_project_sees_projected_schema() {
        let c = catalog();
        let p = Plan::scan("emp")
            .project_names(["name"])
            .select(col("name").eq(lit_str("bob")));
        let out = execute(&p, &c).unwrap();
        assert_eq!(out.len(), 1);
        // And a select on a projected-away column fails.
        let bad = Plan::scan("emp")
            .project_names(["name"])
            .select(col("eid").eq(lit_i64(1)));
        assert!(execute(&bad, &c).is_err());
    }

    #[test]
    fn hash_join_equals_nested_loop() {
        let c = catalog();
        let equi = Plan::scan("emp").join(Plan::scan("dept"), col("dept").eq(col("did")));
        let hash_out = execute(&equi, &c).unwrap();
        // Same join expressed so equi-extraction fails (Le + Ge).
        let theta = Plan::scan("emp").join(
            Plan::scan("dept"),
            Expr::and([col("dept").le(col("did")), col("dept").ge(col("did"))]),
        );
        let nl_out = execute(&theta, &c).unwrap();
        assert!(hash_out.set_eq(&nl_out));
        assert_eq!(hash_out.len(), 2);
        assert_engines_agree(&equi, &c);
        assert_engines_agree(&theta, &c);
    }

    #[test]
    fn join_with_residual() {
        let c = catalog();
        let p = Plan::scan("emp").join(
            Plan::scan("dept"),
            Expr::and([col("dept").eq(col("did")), col("eid").gt(lit_i64(1))]),
        );
        let out = execute(&p, &c).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][2], Value::str("cee"));
        assert_engines_agree(&p, &c);
    }

    #[test]
    fn cross_product() {
        let c = catalog();
        let p = Plan::scan("emp").join(Plan::scan("dept"), Expr::and([]));
        assert_eq!(execute(&p, &c).unwrap().len(), 6);
        assert_engines_agree(&p, &c);
    }

    #[test]
    fn semijoin_antijoin() {
        let c = catalog();
        let semi = Plan::scan("emp").semijoin(Plan::scan("dept"), col("dept").eq(col("did")));
        assert_eq!(execute(&semi, &c).unwrap().len(), 2);
        let anti = Plan::scan("emp").antijoin(Plan::scan("dept"), col("dept").eq(col("did")));
        let out = execute(&anti, &c).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::Int(2));
        assert_engines_agree(&semi, &c);
        assert_engines_agree(&anti, &c);
    }

    #[test]
    fn union_difference_distinct() {
        let c = catalog();
        let ids = Plan::scan("emp").project_names(["eid"]);
        let dup = ids.clone().union(ids.clone());
        assert_eq!(execute(&dup, &c).unwrap().len(), 6);
        assert_eq!(execute(&dup.clone().distinct(), &c).unwrap().len(), 3);
        let minus = ids.clone().difference(
            Plan::scan("emp")
                .select(col("eid").gt(lit_i64(1)))
                .project_names(["eid"]),
        );
        let out = execute(&minus, &c).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::Int(1));
        assert_engines_agree(&minus, &c);
        assert_engines_agree(&dup.distinct(), &c);
    }

    #[test]
    fn rename_enables_self_join() {
        let c = catalog();
        let p = Plan::scan("emp").rename("a").join(
            Plan::scan("emp").rename("b"),
            Expr::and([
                col("a.dept").eq(col("b.dept")),
                col("a.eid").lt(col("b.eid")),
            ]),
        );
        let out = execute(&p, &c).unwrap();
        // Only (1,3) share dept 10 with eid ordered.
        assert_eq!(out.len(), 1);
        assert_engines_agree(&p, &c);
    }

    #[test]
    fn projection_with_literals() {
        let c = catalog();
        let p = Plan::scan("dept").project(vec![
            (col("did"), "k".into()),
            (lit_str("pad"), "tag".into()),
        ]);
        let out = execute(&p, &c).unwrap();
        assert_eq!(out.schema().to_string(), "k, tag");
        assert_eq!(out.rows()[0][1], Value::str("pad"));
    }

    #[test]
    fn difference_is_set_semantics() {
        let mut c = Catalog::new();
        c.insert(
            "l",
            Relation::from_rows(
                ["a"],
                vec![
                    vec![Value::Int(1)],
                    vec![Value::Int(1)],
                    vec![Value::Int(2)],
                ],
            )
            .unwrap(),
        );
        c.insert(
            "r",
            Relation::from_rows(["a"], vec![vec![Value::Int(2)]]).unwrap(),
        );
        let out = execute(&Plan::scan("l").difference(Plan::scan("r")), &c).unwrap();
        assert_eq!(out.len(), 1); // deduplicated EXCEPT semantics
    }

    #[test]
    fn probe_chain_streams_without_buffers() {
        let c = catalog();
        // σ/π/ρ below and above a hash-join probe: both join inputs are
        // scans (zero-copy build), so the whole chain allocates no
        // intermediate Vec<Row>.
        let p = Plan::scan("emp")
            .rename("e")
            .select(col("e.dept").eq(lit_i64(10)))
            .join(Plan::scan("dept"), col("e.dept").eq(col("did")))
            .select(col("e.eid").gt(lit_i64(0)))
            .project_names(["e.name", "dname"]);
        let (out, stats) = execute_with_stats(&p, &c).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(
            stats.buffers, 0,
            "σ/π/ρ/join-probe chain must not materialize intermediates: {stats:?}"
        );
        assert_eq!(predicted_buffers(&p, &c), 0);
        assert_engines_agree(&p, &c);
    }

    #[test]
    fn buffers_counted_for_breakers() {
        let c = catalog();
        // With a source on one side, the source is the zero-copy build
        // and the filtered side streams as the probe: no buffers.
        let one_source = Plan::scan("emp").join(
            Plan::scan("dept").select(col("did").gt(lit_i64(0))),
            col("dept").eq(col("did")),
        );
        let (_, stats) = execute_with_stats(&one_source, &c).unwrap();
        assert_eq!(stats.buffers, 0);
        // With both sides filtered, one side must be buffered as build.
        let p = Plan::scan("emp").select(col("eid").gt(lit_i64(0))).join(
            Plan::scan("dept").select(col("did").gt(lit_i64(0))),
            col("dept").eq(col("did")),
        );
        let (_, stats) = execute_with_stats(&p, &c).unwrap();
        assert_eq!(stats.buffers, 1);
        assert_eq!(predicted_buffers(&p, &c), 1);
        // …and distinct always buffers its seen-set.
        let d = Plan::scan("emp").project_names(["dept"]).distinct();
        let (_, stats) = execute_with_stats(&d, &c).unwrap();
        assert_eq!(stats.buffers, 1);
        assert_eq!(stats.buffered_rows, 2); // two distinct depts
        assert_eq!(predicted_buffers(&d, &c), 1);
    }

    #[test]
    fn repeated_pulls_do_not_double_count_seen_sets() {
        let c = catalog();
        let s = stream(&Plan::scan("emp").project_names(["dept"]).distinct(), &c).unwrap();
        assert_eq!(s.collect_rows(None).unwrap().len(), 2);
        assert_eq!(s.collect_rows(None).unwrap().len(), 2);
        let stats = s.stats();
        assert_eq!(stats.buffers, 1);
        assert_eq!(
            stats.buffered_rows, 2,
            "re-pulling must not inflate the seen-set count"
        );
    }

    #[test]
    fn collect_rows_stops_early() {
        let c = catalog();
        let s = stream(&Plan::scan("emp").select(col("eid").gt(lit_i64(0))), &c).unwrap();
        assert_eq!(s.collect_rows(Some(2)).unwrap().len(), 2);
        assert_eq!(s.collect_rows(None).unwrap().len(), 3);
    }

    #[test]
    fn for_each_row_streams_borrowed_rows() {
        let c = catalog();
        let s = stream(&Plan::scan("emp"), &c).unwrap();
        let mut n = 0;
        s.for_each_row(|r| {
            assert_eq!(r.len(), 3);
            n += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(n, 3);
    }

    #[test]
    fn reference_engine_zero_copy_leaves() {
        let c = catalog();
        let out = execute_reference(&Plan::scan("emp"), &c).unwrap();
        assert!(out.shares_rows_with(c.get("emp").unwrap()));
    }

    /// A bigger catalog so batched runs cross one batch boundary.
    fn big_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.insert(
            "fact",
            Relation::from_rows(
                ["k", "g", "tag"],
                (0..(2 * BATCH_SIZE as i64 + 100))
                    .map(|i| {
                        vec![
                            Value::Int(i),
                            Value::Int(i % 7),
                            Value::interned(if i % 2 == 0 { "even" } else { "odd" }),
                        ]
                    })
                    .collect::<Vec<_>>(),
            )
            .unwrap(),
        );
        c.insert(
            "dim",
            Relation::from_rows(
                ["d", "name"],
                (0..7)
                    .map(|i| vec![Value::Int(i), Value::interned(format!("g{i}"))])
                    .collect::<Vec<_>>(),
            )
            .unwrap(),
        );
        c
    }

    #[test]
    fn batched_pipeline_matches_row_path_and_counts_batches() {
        let c = big_catalog();
        let p = Plan::scan("fact")
            .select(col("tag").eq(lit_str("even")))
            .join(Plan::scan("dim"), col("g").eq(col("d")))
            .select(col("k").lt(lit_i64(1500)))
            .project_names(["k", "name"]);
        assert!(batched_pipeline(&p, &c));
        let s = stream(&p, &c).unwrap();
        assert!(s.batched());
        // Batched collect: the σ/π/probe chain buffers no intermediate
        // rows but reports its batches and fill.
        let batched = s.collect_rows(None).unwrap();
        assert_eq!(batched.len(), 750);
        let stats = s.stats();
        assert_eq!(stats.buffers, 0, "{stats:?}");
        assert!(stats.batches > 1, "scan spans batches: {stats:?}");
        assert_eq!(stats.batch_rows, 750);
        assert!(stats.mean_batch_fill().unwrap() > 0.0);
        // The row cursor path yields identical rows in identical order
        // (and, being a fresh pull, resets the batch counters).
        let mut via_rows = Vec::new();
        s.for_each_row(|r| {
            via_rows.push(r.clone());
            Ok(())
        })
        .unwrap();
        assert_eq!(batched, via_rows);
        assert_eq!(s.stats().batches, 0);
        assert_engines_agree(&p, &c);
    }

    #[test]
    fn batched_set_ops_and_union_match_reference() {
        let c = big_catalog();
        let gs = Plan::scan("fact").project_names(["g"]);
        let p = gs.clone().union(gs.clone()).distinct().difference(
            Plan::scan("dim")
                .project_names(["d"])
                .select(col("d").gt(lit_i64(4))),
        );
        assert!(batched_pipeline(&p, &c));
        assert_engines_agree(&p, &c);
        let (out, stats) = execute_with_stats(&p, &c).unwrap();
        assert_eq!(out.len(), 5); // g ∈ 0..7 minus {5, 6}
        assert!(stats.batches > 0);
    }

    #[test]
    fn batched_semijoin_matches_reference() {
        let c = big_catalog();
        let semi = Plan::scan("fact").semijoin(
            Plan::scan("dim").select(col("d").lt(lit_i64(3))),
            col("g").eq(col("d")),
        );
        let anti = Plan::scan("fact").antijoin(
            Plan::scan("dim").select(col("d").lt(lit_i64(3))),
            col("g").eq(col("d")),
        );
        assert!(batched_pipeline(&semi, &c));
        assert_engines_agree(&semi, &c);
        assert_engines_agree(&anti, &c);
        // A residual semijoin runs the pair-batch evaluator — still
        // batched, still agreeing with the reference engine.
        let residual = Plan::scan("fact").semijoin(
            Plan::scan("dim"),
            Expr::and([col("g").eq(col("d")), col("k").gt(col("d"))]),
        );
        assert!(batched_pipeline(&residual, &c));
        assert_engines_agree(&residual, &c);
        // Non-equi semijoins and antijoins (pure pair-batch paths) too.
        let theta_semi = Plan::scan("fact").semijoin(Plan::scan("dim"), col("g").lt(col("d")));
        let theta_anti = Plan::scan("fact").antijoin(Plan::scan("dim"), col("g").lt(col("d")));
        assert_engines_agree(&theta_semi, &c);
        assert_engines_agree(&theta_anti, &c);
        // Cross semijoin against an empty right side keeps nothing.
        let mut c2 = catalog();
        c2.insert("none", Relation::empty(Schema::named(["z"])));
        let cross = Plan::scan("emp").semijoin(Plan::scan("none"), Expr::and([]));
        assert_eq!(execute(&cross, &c2).unwrap().len(), 0);
        let anti_cross = Plan::scan("emp").antijoin(Plan::scan("none"), Expr::and([]));
        assert_eq!(execute(&anti_cross, &c2).unwrap().len(), 3);
    }

    #[test]
    fn nested_loop_runs_on_pair_batches() {
        let c = catalog();
        let theta = Plan::scan("emp")
            .join(Plan::scan("dept"), col("dept").lt(col("did")))
            .select(col("eid").gt(lit_i64(0)));
        // Theta joins now vectorize through the pair-batch evaluator.
        assert!(batched_pipeline(&theta, &c));
        let s = stream(&theta, &c).unwrap();
        assert!(s.batched());
        let rows = s.collect_rows(None).unwrap();
        assert!(s.stats().batches > 0);
        assert!(!rows.is_empty());
        // The row cursors still exist (limited pulls) and agree exactly.
        let mut via_rows = Vec::new();
        s.for_each_row(|r| {
            via_rows.push(r.clone());
            Ok(())
        })
        .unwrap();
        assert_eq!(via_rows, rows, "pair-batch order must match row order");
        assert_engines_agree(&theta, &c);
        // Cross products (empty predicate) take the same path.
        let cross = Plan::scan("emp").join(Plan::scan("dept"), Expr::and([]));
        let s = stream(&cross, &c).unwrap();
        assert_eq!(s.collect_rows(None).unwrap().len(), 6);
        assert!(s.stats().batches > 0);
    }

    #[test]
    fn pair_batches_cross_batch_boundaries() {
        // An outer wider than one batch against a non-trivial inner: the
        // pair enumeration must chunk across batch boundaries and still
        // match the row cursors pair-for-pair.
        let c = big_catalog();
        let theta = Plan::scan("fact")
            .select(col("k").lt(lit_i64(2000)))
            .join(Plan::scan("dim"), col("g").lt(col("d")));
        let s = stream(&theta, &c).unwrap();
        let batched = s.collect_rows(None).unwrap();
        let mut via_rows = Vec::new();
        s.for_each_row(|r| {
            via_rows.push(r.clone());
            Ok(())
        })
        .unwrap();
        assert_eq!(batched, via_rows);
        assert_engines_agree(&theta, &c);
    }

    #[test]
    fn join_residual_vectorized_on_batches() {
        let c = big_catalog();
        // ψ-shaped residual: equi key + an Or of column comparisons.
        let p = Plan::scan("fact").join(
            Plan::scan("dim"),
            Expr::and([
                col("g").eq(col("d")),
                Expr::or([col("k").lt(col("d")), col("tag").eq(lit_str("even"))]),
            ]),
        );
        assert!(batched_pipeline(&p, &c));
        assert_engines_agree(&p, &c);
    }

    #[test]
    fn limited_pull_stays_on_the_row_path() {
        let c = big_catalog();
        let s = stream(&Plan::scan("fact").select(col("k").ge(lit_i64(0))), &c).unwrap();
        let two = s.collect_rows(Some(2)).unwrap();
        assert_eq!(two.len(), 2);
        assert_eq!(s.stats().batches, 0, "a limited pull must not batch");
    }

    /// The big catalog reconfigured for parallel execution: N workers,
    /// one-batch morsels, no row threshold.
    fn parallel_catalog(threads: usize) -> Catalog {
        let mut c = big_catalog();
        c.set_threads(threads);
        c.set_parallel_granularity(BATCH_SIZE, 0);
        c
    }

    /// Plans covering every morsel-parallelizable shape: scan, σ/π
    /// chains, hash-join probes with residuals, semi/antijoins (keyed,
    /// residual, and theta), nested loops, unions, distinct and
    /// difference at the root.
    fn parallel_plans() -> Vec<Plan> {
        vec![
            Plan::scan("fact"),
            Plan::scan("fact")
                .select(col("tag").eq(lit_str("even")))
                .project_names(["k", "g"]),
            Plan::scan("fact")
                .select(col("tag").eq(lit_str("even")))
                .join(Plan::scan("dim"), col("g").eq(col("d")))
                .select(col("k").lt(lit_i64(1500)))
                .project_names(["k", "name"]),
            Plan::scan("fact").join(
                Plan::scan("dim"),
                Expr::and([col("g").eq(col("d")), col("k").gt(col("d"))]),
            ),
            Plan::scan("fact")
                .select(col("k").lt(lit_i64(40)))
                .join(Plan::scan("dim"), col("g").lt(col("d"))),
            Plan::scan("fact").semijoin(
                Plan::scan("dim").select(col("d").lt(lit_i64(3))),
                col("g").eq(col("d")),
            ),
            Plan::scan("fact").antijoin(
                Plan::scan("dim"),
                Expr::and([col("g").eq(col("d")), col("k").gt(col("d"))]),
            ),
            Plan::scan("fact").union(Plan::scan("fact").select(col("g").eq(lit_i64(1)))),
            Plan::scan("fact").project_names(["g", "tag"]).distinct(),
            Plan::scan("fact")
                .project_names(["g"])
                .difference(
                    Plan::scan("dim")
                        .project_names(["d"])
                        .select(col("d").gt(lit_i64(4))),
                )
                .select(col("g").ge(lit_i64(0))),
        ]
    }

    #[test]
    fn parallel_pull_is_byte_identical_to_serial() {
        let serial = big_catalog(); // env default on test boxes may be 1 anyway
        for threads in [2, 4] {
            let par = parallel_catalog(threads);
            for p in parallel_plans() {
                let s_serial = stream(&p, &serial).unwrap();
                let s_par = stream(&p, &par).unwrap();
                let prepare_batches = s_par.stats().batches;
                let a = s_serial.collect_rows(None).unwrap();
                let b = s_par.collect_rows(None).unwrap();
                assert_eq!(a, b, "parallel output differs for {p:?}");
                // The parallel run reports its worker fan-out, matching
                // both the prepared plan and the static mirror.
                let workers = s_par.planned_workers();
                assert_eq!(s_par.stats().workers, workers, "{p:?}");
                assert_eq!(predicted_workers(&p, &par), workers, "{p:?}");
                assert!(workers > 1, "plan unexpectedly serial: {p:?}");
                assert!(workers <= threads);
                // Per-worker batch counters sum to the pull's totals
                // (prepare-time breaker materializations aside).
                let per_worker = s_par.worker_batch_stats();
                assert_eq!(per_worker.len(), workers);
                let stats = s_par.stats();
                assert_eq!(
                    per_worker.iter().map(|w| w.0).sum::<usize>(),
                    stats.batches - prepare_batches
                );
            }
        }
    }

    #[test]
    fn parallel_decision_respects_threshold_and_morsels() {
        // Below the row threshold: serial despite threads.
        let mut c = big_catalog();
        c.set_threads(4);
        c.set_parallel_granularity(BATCH_SIZE, 1_000_000);
        let s = stream(&Plan::scan("fact"), &c).unwrap();
        assert_eq!(s.planned_workers(), 1);
        assert_eq!(predicted_workers(&Plan::scan("fact"), &c), 1);
        // A single morsel: serial.
        let mut c = big_catalog();
        c.set_threads(4);
        c.set_parallel_granularity(1 << 20, 0);
        assert_eq!(
            stream(&Plan::scan("fact"), &c).unwrap().planned_workers(),
            1
        );
        // Distinct below a projection defers no dedup — stays serial.
        let mut c = big_catalog();
        c.set_threads(4);
        c.set_parallel_granularity(BATCH_SIZE, 0);
        let p = Plan::scan("fact").distinct().project_names(["k"]);
        let s = stream(&p, &c).unwrap();
        assert_eq!(s.planned_workers(), 1);
        assert_eq!(predicted_workers(&p, &c), 1);
        // ...but executes correctly all the same.
        assert_eq!(s.collect_rows(None).unwrap().len(), 2 * BATCH_SIZE + 100);
    }

    #[test]
    fn parallel_gather_replays_seen_set_counters() {
        // Distinct at the root of a parallel pipeline: the gather's
        // replayed seen-set reports the same buffered-row count as the
        // serial seen-set would.
        let p = Plan::scan("fact").project_names(["g"]).distinct();
        let serial = big_catalog();
        let s = stream(&p, &serial).unwrap();
        s.collect_rows(None).unwrap();
        let serial_stats = s.stats();
        let par = parallel_catalog(4);
        let s = stream(&p, &par).unwrap();
        s.collect_rows(None).unwrap();
        let par_stats = s.stats();
        assert_eq!(par_stats.buffers, serial_stats.buffers);
        assert_eq!(par_stats.buffered_rows, serial_stats.buffered_rows);
        // fact splits into 3 one-batch morsels: 3 of the 4 configured
        // workers get one each.
        assert_eq!(par_stats.workers, 3);
    }

    #[test]
    fn scan_images_are_cached_across_executions() {
        // Pinned to plain storage: under a segmented default the plain
        // image is (correctly) never built — segments are the cache.
        let mut c = big_catalog();
        c.set_storage(StorageMode::Plain);
        let p = Plan::scan("fact").select(col("g").eq(lit_i64(1)));
        execute(&p, &c).unwrap();
        // The first execution (or registration, under a plain default)
        // built the image; executing again did not build a second one —
        // the relation still reports a cached image, shared later.
        assert!(c.get("fact").unwrap().columns_cached());
        let before = c.get("fact").unwrap().columns() as *const _;
        execute(&p, &c).unwrap();
        let after = c.get("fact").unwrap().columns() as *const _;
        assert_eq!(before, after);
    }
}
