//! Logical query plans.
//!
//! Plans are trees of the classical operators. Schema inference
//! ([`Plan::schema`]) walks the tree against a [`Catalog`]; execution and
//! optimization live in [`crate::exec`] and [`crate::optimizer`].

use crate::catalog::Catalog;
use crate::error::{Error, Result};
use crate::expr::Expr;
use crate::relation::Relation;
use crate::schema::{ColRef, Schema};
use std::sync::Arc;

/// A logical plan node.
#[derive(Clone, Debug, PartialEq)]
pub enum Plan {
    /// Scan a catalog relation by name.
    Scan(String),
    /// Inline relation (used for `W` in certain-answer queries and tests).
    Values(Arc<Relation>),
    /// σ — filter by a predicate.
    Select { input: Box<Plan>, pred: Expr },
    /// π — generalized projection: each output column is an expression
    /// with an output name. Plain column lists are the common case;
    /// literal expressions implement the union translation's padding.
    Project {
        input: Box<Plan>,
        cols: Vec<(Expr, ColRef)>,
    },
    /// ⋈ — inner theta-join (cross product when `pred` is `true`).
    Join {
        left: Box<Plan>,
        right: Box<Plan>,
        pred: Expr,
    },
    /// ⋉ — left semijoin (rows of `left` with a `pred`-partner in `right`).
    SemiJoin {
        left: Box<Plan>,
        right: Box<Plan>,
        pred: Expr,
    },
    /// ▷ — left antijoin (rows of `left` with no partner).
    AntiJoin {
        left: Box<Plan>,
        right: Box<Plan>,
        pred: Expr,
    },
    /// ∪ — positional union (bag); output keeps the left schema.
    Union { left: Box<Plan>, right: Box<Plan> },
    /// − — positional set difference (dedups, SQL `EXCEPT` semantics).
    Difference { left: Box<Plan>, right: Box<Plan> },
    /// δ — duplicate elimination.
    Distinct(Box<Plan>),
    /// ρ — re-qualify every column with an alias (self-join support).
    Rename { input: Box<Plan>, alias: String },
}

impl Plan {
    /// Scan node.
    pub fn scan(name: impl Into<String>) -> Plan {
        Plan::Scan(name.into())
    }

    /// Inline relation node.
    pub fn values(rel: Relation) -> Plan {
        Plan::Values(Arc::new(rel))
    }

    /// σ builder.
    pub fn select(self, pred: Expr) -> Plan {
        Plan::Select {
            input: Box::new(self),
            pred,
        }
    }

    /// π builder over plain column names (output keeps each name's
    /// unqualified form).
    pub fn project_names<S: AsRef<str>>(self, names: impl IntoIterator<Item = S>) -> Plan {
        let cols = names
            .into_iter()
            .map(|n| {
                let r = ColRef::parse(n.as_ref());
                (Expr::Col(r.clone()), r.unqualified())
            })
            .collect();
        Plan::Project {
            input: Box::new(self),
            cols,
        }
    }

    /// π builder with explicit (expression, output-name) pairs.
    pub fn project(self, cols: Vec<(Expr, ColRef)>) -> Plan {
        Plan::Project {
            input: Box::new(self),
            cols,
        }
    }

    /// ⋈ builder.
    pub fn join(self, right: Plan, pred: Expr) -> Plan {
        Plan::Join {
            left: Box::new(self),
            right: Box::new(right),
            pred,
        }
    }

    /// ⋉ builder.
    pub fn semijoin(self, right: Plan, pred: Expr) -> Plan {
        Plan::SemiJoin {
            left: Box::new(self),
            right: Box::new(right),
            pred,
        }
    }

    /// ▷ builder.
    pub fn antijoin(self, right: Plan, pred: Expr) -> Plan {
        Plan::AntiJoin {
            left: Box::new(self),
            right: Box::new(right),
            pred,
        }
    }

    /// ∪ builder.
    pub fn union(self, right: Plan) -> Plan {
        Plan::Union {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// − builder.
    pub fn difference(self, right: Plan) -> Plan {
        Plan::Difference {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// δ builder.
    pub fn distinct(self) -> Plan {
        Plan::Distinct(Box::new(self))
    }

    /// ρ builder.
    pub fn rename(self, alias: impl Into<String>) -> Plan {
        Plan::Rename {
            input: Box::new(self),
            alias: alias.into(),
        }
    }

    /// `true` iff this plan is already materialized — a scan, inline
    /// values, or a rename chain over either. The streaming executor
    /// consumes such inputs zero-copy: using one as a hash-join build
    /// side or set-operation table costs no row copies, and executing
    /// one returns the shared storage itself.
    pub fn materialized_source(&self) -> bool {
        match self {
            Plan::Scan(_) | Plan::Values(_) => true,
            Plan::Rename { input, .. } => input.materialized_source(),
            _ => false,
        }
    }

    /// Infer the output schema against a catalog.
    pub fn schema(&self, catalog: &Catalog) -> Result<Schema> {
        match self {
            Plan::Scan(name) => Ok(catalog.get(name)?.schema().clone()),
            Plan::Values(rel) => Ok(rel.schema().clone()),
            Plan::Select { input, pred } => {
                let s = input.schema(catalog)?;
                // Validate the predicate compiles (fail at plan time).
                pred.compile(&s)?;
                Ok(s)
            }
            Plan::Project { input, cols } => {
                let s = input.schema(catalog)?;
                for (e, _) in cols {
                    e.compile(&s)?;
                }
                Ok(Schema::new(cols.iter().map(|(_, n)| n.clone()).collect()))
            }
            Plan::Join { left, right, pred } => {
                let s = left.schema(catalog)?.concat(&right.schema(catalog)?);
                pred.compile(&s)?;
                Ok(s)
            }
            Plan::SemiJoin { left, right, pred } | Plan::AntiJoin { left, right, pred } => {
                let joint = left.schema(catalog)?.concat(&right.schema(catalog)?);
                pred.compile(&joint)?;
                left.schema(catalog)
            }
            Plan::Union { left, right } => {
                let l = left.schema(catalog)?;
                let r = right.schema(catalog)?;
                if !l.compatible(&r) {
                    return Err(Error::SchemaMismatch {
                        left: l.to_string(),
                        right: r.to_string(),
                    });
                }
                Ok(l)
            }
            Plan::Difference { left, right } => {
                let l = left.schema(catalog)?;
                let r = right.schema(catalog)?;
                if !l.compatible(&r) {
                    return Err(Error::SchemaMismatch {
                        left: l.to_string(),
                        right: r.to_string(),
                    });
                }
                Ok(l)
            }
            Plan::Distinct(input) => input.schema(catalog),
            Plan::Rename { input, alias } => Ok(input.schema(catalog)?.qualify(alias)),
        }
    }

    /// Output schema *shape* without predicate validation.
    ///
    /// [`Plan::schema`] re-compiles every predicate on every call, which
    /// is the right contract for validation but far too expensive for
    /// the optimizer's inner loops (cardinality estimation and pushdown
    /// consult schemas thousands of times per optimization, on plans
    /// already validated once at entry). Batch-aware costing leans on
    /// this: `est_rows` and the join reorderer stay cheap enough to run
    /// per prepare, where the executor re-uses them to pick build sides.
    pub(crate) fn schema_shape(&self, catalog: &Catalog) -> Result<Schema> {
        match self {
            Plan::Scan(name) => Ok(catalog.get(name)?.schema().clone()),
            Plan::Values(rel) => Ok(rel.schema().clone()),
            Plan::Select { input, .. } | Plan::Distinct(input) => input.schema_shape(catalog),
            Plan::Project { cols, .. } => {
                Ok(Schema::new(cols.iter().map(|(_, n)| n.clone()).collect()))
            }
            Plan::Join { left, right, .. } => Ok(left
                .schema_shape(catalog)?
                .concat(&right.schema_shape(catalog)?)),
            Plan::SemiJoin { left, .. }
            | Plan::AntiJoin { left, .. }
            | Plan::Union { left, .. }
            | Plan::Difference { left, .. } => left.schema_shape(catalog),
            Plan::Rename { input, alias } => Ok(input.schema_shape(catalog)?.qualify(alias)),
        }
    }

    /// Number of operator nodes — the paper's "parsimonious translation"
    /// is checked by counting these.
    pub fn node_count(&self) -> usize {
        1 + match self {
            Plan::Scan(_) | Plan::Values(_) => 0,
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::Distinct(input)
            | Plan::Rename { input, .. } => input.node_count(),
            Plan::Join { left, right, .. }
            | Plan::SemiJoin { left, right, .. }
            | Plan::AntiJoin { left, right, .. }
            | Plan::Union { left, right }
            | Plan::Difference { left, right } => left.node_count() + right.node_count(),
        }
    }

    /// Number of join-family nodes (⋈, ⋉, ▷). The translation scheme maps
    /// one logical join to one physical join; this counter verifies it.
    pub fn join_count(&self) -> usize {
        match self {
            Plan::Scan(_) | Plan::Values(_) => 0,
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::Distinct(input)
            | Plan::Rename { input, .. } => input.join_count(),
            Plan::Join { left, right, .. }
            | Plan::SemiJoin { left, right, .. }
            | Plan::AntiJoin { left, right, .. } => 1 + left.join_count() + right.join_count(),
            Plan::Union { left, right } | Plan::Difference { left, right } => {
                left.join_count() + right.join_count()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit_i64};
    use crate::value::Value;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.insert(
            "r",
            Relation::from_rows(["a", "b"], vec![vec![Value::Int(1), Value::Int(2)]]).unwrap(),
        );
        c.insert(
            "s",
            Relation::from_rows(["c"], vec![vec![Value::Int(1)]]).unwrap(),
        );
        c
    }

    #[test]
    fn schema_inference() {
        let c = catalog();
        let p = Plan::scan("r").join(Plan::scan("s"), col("a").eq(col("c")));
        assert_eq!(p.schema(&c).unwrap().to_string(), "a, b, c");
        let p = p.project_names(["b"]);
        assert_eq!(p.schema(&c).unwrap().to_string(), "b");
    }

    #[test]
    fn rename_qualifies() {
        let c = catalog();
        let p = Plan::scan("r").rename("x");
        assert_eq!(p.schema(&c).unwrap().to_string(), "x.a, x.b");
        // Self-join via two renames resolves unambiguously.
        let sj = Plan::scan("r")
            .rename("x")
            .join(Plan::scan("r").rename("y"), col("x.a").eq(col("y.a")));
        assert_eq!(sj.schema(&c).unwrap().arity(), 4);
    }

    #[test]
    fn select_validates_predicate() {
        let c = catalog();
        let bad = Plan::scan("r").select(col("zzz").eq(lit_i64(1)));
        assert!(bad.schema(&c).is_err());
    }

    #[test]
    fn union_checks_arity() {
        let c = catalog();
        let bad = Plan::scan("r").union(Plan::scan("s"));
        assert!(bad.schema(&c).is_err());
    }

    #[test]
    fn materialized_source_detection() {
        assert!(Plan::scan("r").materialized_source());
        assert!(Plan::scan("r")
            .rename("x")
            .rename("y")
            .materialized_source());
        assert!(!Plan::scan("r")
            .select(col("a").eq(lit_i64(1)))
            .materialized_source());
        assert!(!Plan::scan("r").distinct().materialized_source());
    }

    #[test]
    fn counters() {
        let c = catalog();
        let p = Plan::scan("r")
            .join(Plan::scan("s"), col("a").eq(col("c")))
            .select(col("b").gt(lit_i64(0)))
            .project_names(["b"]);
        assert_eq!(p.join_count(), 1);
        assert_eq!(p.node_count(), 5);
        let _ = c;
    }
}
