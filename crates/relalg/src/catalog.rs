//! The named-relation store with per-relation statistics and the
//! engine's execution configuration (parallelism knobs).

use crate::batch::BATCH_SIZE;
use crate::error::{Error, Result};
use crate::fault::FaultConfig;
use crate::relation::Relation;
use crate::stats::TableStats;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Engine execution configuration, carried by the [`Catalog`] so every
/// caller that can run a query can also tune how it runs.
///
/// The defaults come from the environment once per process:
/// `RELALG_THREADS` caps the morsel-driven executor's worker count
/// (unset → one worker per available core; `1` forces serial). Parallel
/// and serial execution produce byte-identical results — the knobs only
/// trade scheduling overhead against parallel speedup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Maximum parallel workers per pipeline (1 = serial).
    pub threads: usize,
    /// Rows per morsel — the unit of work a worker claims. A multiple of
    /// [`BATCH_SIZE`] keeps worker-emitted batches full.
    pub morsel_rows: usize,
    /// Minimum *estimated* output rows before a pipeline goes parallel;
    /// below it, scheduling overhead outweighs the win and the plan runs
    /// serial (the threshold reuses the optimizer's `EstCache` estimate).
    pub parallel_min_rows: usize,
    /// Memory budget in bytes for pipeline-breaker buffers
    /// (`usize::MAX` = unbounded, the default; `RELALG_MEM_BUDGET` sets
    /// it from the environment). Each breaker charges its buffered bytes
    /// against the budget and spills to sorted runs in a scoped temp
    /// directory when its per-worker share is exceeded — with output
    /// guaranteed byte-identical to the unbounded engine.
    pub mem_budget: usize,
    /// How base-table scans source their batches (`RELALG_STORAGE`):
    /// the plain columnar image, compressed column segments decoded
    /// up front, or segments paged through a small eviction cache.
    /// Every mode produces byte-identical query output.
    pub storage: StorageMode,
    /// Rows per column segment under [`StorageMode::Segmented`] /
    /// [`StorageMode::Paged`] / [`StorageMode::Disk`]
    /// (`RELALG_SEGMENT_ROWS`, default 64Ki).
    pub segment_rows: usize,
    /// Decoded segments the paged provider keeps resident per relation
    /// (`RELALG_SEGMENT_CACHE`, default 8, floored at 1).
    pub segment_cache: usize,
    /// Decoded segments the shared buffer pool keeps resident *across
    /// all relations* under [`StorageMode::Disk`]
    /// (`RELALG_BUFFER_POOL`, default 64, floored at 1). Per-scan
    /// fetches become leases on this pool, so concurrent scans of
    /// different relations compete for — and share — the same slots.
    pub buffer_pool: usize,
    /// Deterministic fault-injection schedule for the execution's I/O
    /// edges (`RELALG_FAULTS=<seed>:<rate>[:<kinds>]`), `None` (the
    /// default) compiles every edge down to a no-op check. Each
    /// execution runs the schedule from tick 0, so a `(seed, rate)`
    /// pair names a reproducible fault sequence.
    pub faults: Option<FaultConfig>,
    /// Per-query deadline (`RELALG_DEADLINE_MS`): executions past it
    /// stop at the next batch/morsel boundary, release every resource
    /// they hold, and return [`Error::Cancelled`]. `None` = no limit.
    pub deadline: Option<Duration>,
}

/// Storage backend for base-table scans. The mode changes *where*
/// batch columns come from, never *what* they contain — all three
/// execute byte-identically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorageMode {
    /// The monolithic in-memory columnar image (the default).
    Plain,
    /// Compressed column segments ([`crate::segment::SegmentedImage`]),
    /// each decoded at most once per query and then kept resident.
    Segmented,
    /// Compressed segments decoded lazily behind a clock-eviction cache
    /// of [`EngineConfig::segment_cache`] decoded segments, so the
    /// decoded working set — not the table — is what occupies memory.
    Paged,
    /// Encoded segments live in page files on disk
    /// ([`crate::store::DiskImage`]); scans read them through a
    /// checksum-verified buffer pool of [`EngineConfig::buffer_pool`]
    /// decoded segments shared across all relations. Neither the row
    /// store nor the full encoded image needs to fit in memory.
    Disk,
}

/// Default morsel size: 8 batches per claim amortizes the atomic
/// exchange without starving the work-stealing balance.
pub const DEFAULT_MORSEL_ROWS: usize = 8 * BATCH_SIZE;

/// Default estimated-row threshold below which plans stay serial.
pub const DEFAULT_PARALLEL_MIN_ROWS: usize = 4 * BATCH_SIZE;

/// Default rows per column segment (64Ki).
pub const DEFAULT_SEGMENT_ROWS: usize = 64 * 1024;

/// Default decoded-segment cache capacity for the paged provider.
pub const DEFAULT_SEGMENT_CACHE: usize = 8;

/// Default shared buffer-pool capacity (decoded segments, all relations).
pub const DEFAULT_BUFFER_POOL: usize = 64;

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: default_threads(),
            morsel_rows: DEFAULT_MORSEL_ROWS,
            parallel_min_rows: DEFAULT_PARALLEL_MIN_ROWS,
            mem_budget: default_mem_budget(),
            storage: default_storage(),
            segment_rows: default_segment_rows(),
            segment_cache: default_segment_cache(),
            buffer_pool: default_buffer_pool(),
            faults: default_faults(),
            deadline: default_deadline(),
        }
    }
}

/// `RELALG_FAULTS=<seed>:<rate>[:<kinds>]`, read once per process;
/// unset or malformed means no injection.
fn default_faults() -> Option<FaultConfig> {
    static FAULTS: std::sync::OnceLock<Option<FaultConfig>> = std::sync::OnceLock::new();
    *FAULTS.get_or_init(|| {
        std::env::var("RELALG_FAULTS")
            .ok()
            .and_then(|v| FaultConfig::parse(&v))
    })
}

/// `RELALG_DEADLINE_MS`, read once per process; unset, unparseable or
/// zero means no deadline.
fn default_deadline() -> Option<Duration> {
    static DEADLINE: std::sync::OnceLock<Option<Duration>> = std::sync::OnceLock::new();
    *DEADLINE.get_or_init(|| {
        std::env::var("RELALG_DEADLINE_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&ms| ms > 0)
            .map(Duration::from_millis)
    })
}

/// `RELALG_STORAGE` (`plain` | `segmented` | `paged` | `disk`), read
/// once per process; unset or unrecognized means plain.
fn default_storage() -> StorageMode {
    static STORAGE: std::sync::OnceLock<StorageMode> = std::sync::OnceLock::new();
    *STORAGE.get_or_init(|| match std::env::var("RELALG_STORAGE").as_deref() {
        Ok("segmented") => StorageMode::Segmented,
        Ok("paged") => StorageMode::Paged,
        Ok("disk") => StorageMode::Disk,
        _ => StorageMode::Plain,
    })
}

/// `RELALG_BUFFER_POOL`, read once per process; unset, unparseable or
/// zero means [`DEFAULT_BUFFER_POOL`].
fn default_buffer_pool() -> usize {
    static POOL: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *POOL.get_or_init(|| {
        std::env::var("RELALG_BUFFER_POOL")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_BUFFER_POOL)
    })
}

/// `RELALG_SEGMENT_ROWS`, read once per process; unset, unparseable or
/// zero means [`DEFAULT_SEGMENT_ROWS`].
fn default_segment_rows() -> usize {
    static ROWS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *ROWS.get_or_init(|| {
        std::env::var("RELALG_SEGMENT_ROWS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_SEGMENT_ROWS)
    })
}

/// `RELALG_SEGMENT_CACHE`, read once per process; unset, unparseable or
/// zero means [`DEFAULT_SEGMENT_CACHE`].
fn default_segment_cache() -> usize {
    static CACHE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("RELALG_SEGMENT_CACHE")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_SEGMENT_CACHE)
    })
}

/// `RELALG_MEM_BUDGET` in bytes, read once per process; unset (or
/// unparseable, or zero) means unbounded.
fn default_mem_budget() -> usize {
    static BUDGET: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *BUDGET.get_or_init(|| {
        std::env::var("RELALG_MEM_BUDGET")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(usize::MAX)
    })
}

/// `RELALG_THREADS`, else available parallelism, read once per process.
fn default_threads() -> usize {
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("RELALG_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            })
    })
}

impl EngineConfig {
    /// Serial configuration (one worker), independent of the environment.
    pub fn serial() -> Self {
        EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        }
    }
}

/// A catalog maps relation names to materialized relations and caches
/// per-column statistics used by the optimizer's cardinality estimates.
/// It also carries the [`EngineConfig`] the executor reads at prepare
/// time.
#[derive(Default, Clone, Debug)]
pub struct Catalog {
    rels: BTreeMap<String, Arc<Relation>>,
    stats: BTreeMap<String, Arc<TableStats>>,
    config: EngineConfig,
}

impl Catalog {
    /// Empty catalog with the environment-default [`EngineConfig`].
    pub fn new() -> Self {
        Catalog::default()
    }

    /// The execution configuration queries against this catalog use.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Replace the execution configuration (builder style).
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Set the parallel worker cap (1 = serial).
    pub fn set_threads(&mut self, threads: usize) {
        self.config.threads = threads.max(1);
    }

    /// Set the morsel size and parallel threshold (test / tuning hook;
    /// small values let small inputs exercise the parallel engine).
    pub fn set_parallel_granularity(&mut self, morsel_rows: usize, parallel_min_rows: usize) {
        self.config.morsel_rows = morsel_rows.max(1);
        self.config.parallel_min_rows = parallel_min_rows;
    }

    /// Set the breaker memory budget in bytes (`usize::MAX` — or `0`,
    /// for symmetry with the `RELALG_MEM_BUDGET` convention — disables
    /// it). Budgeted and unbounded execution produce byte-identical
    /// results; the budget only bounds breaker buffers by spilling them
    /// to sorted runs on disk.
    pub fn set_mem_budget(&mut self, bytes: usize) {
        self.config.mem_budget = if bytes == 0 { usize::MAX } else { bytes };
    }

    /// Set the base-table storage mode. Affects only relations
    /// registered (or queried) afterwards; output is byte-identical
    /// across modes.
    pub fn set_storage(&mut self, mode: StorageMode) {
        self.config.storage = mode;
    }

    /// Set the segment geometry: rows per segment and the paged
    /// provider's decoded-segment cache capacity (both floored at 1).
    pub fn set_segment_layout(&mut self, segment_rows: usize, segment_cache: usize) {
        self.config.segment_rows = segment_rows.max(1);
        self.config.segment_cache = segment_cache.max(1);
    }

    /// Set the shared buffer pool's capacity in decoded segments
    /// (floored at 1). Scans under [`StorageMode::Disk`] lease slots
    /// from the process-wide pool of this capacity.
    pub fn set_buffer_pool(&mut self, segments: usize) {
        self.config.buffer_pool = segments.max(1);
    }

    /// Set (or clear) the deterministic fault-injection schedule for
    /// executions against this catalog. Injected faults either retry
    /// transparently (transient reads/opens/leases) or surface as clean
    /// [`Error::Io`]s — never a panic, leak, or wrong answer.
    pub fn set_faults(&mut self, faults: Option<FaultConfig>) {
        self.config.faults = faults;
    }

    /// Set (or clear) the per-query deadline. A query past its deadline
    /// stops at the next batch/morsel boundary and returns
    /// [`Error::Cancelled`] with all its resources released.
    pub fn set_deadline(&mut self, deadline: Option<Duration>) {
        self.config.deadline = deadline;
    }

    /// Register (or replace) a relation. Statistics are computed eagerly —
    /// the workloads in this repo scan every registered relation at least
    /// once, so the one-time pass pays for itself. Computing them runs
    /// over the columnar image, which builds and caches it: batched scans
    /// of catalog relations never pay row-to-column conversion.
    pub fn insert(&mut self, name: impl Into<String>, rel: Relation) {
        self.insert_shared(name, Arc::new(rel));
    }

    /// Register (or replace) a relation that is already shared — e.g. a
    /// query result or another catalog's entry. The storage is aliased,
    /// not copied; only statistics (and the relation's cached columnar
    /// image, as a side effect) are (re)computed.
    pub fn insert_shared(&mut self, name: impl Into<String>, rel: Arc<Relation>) {
        let name = name.into();
        // Under segmented storage the statistics fall out of the segment
        // build itself (zone-map folds), so the plain columnar image is
        // never forced into existence; disk-native relations carry the
        // statistics their writer accumulated in the manifest, so
        // registering them decodes nothing at all.
        let stats = if let Some(img) = rel.native_disk_image() {
            img.stats().clone()
        } else if self.config.storage == StorageMode::Plain {
            TableStats::compute(&rel)
        } else {
            rel.segments(self.config.segment_rows).stats().clone()
        };
        self.rels.insert(name.clone(), rel);
        self.stats.insert(name, Arc::new(stats));
    }

    /// Look up a relation.
    pub fn get(&self, name: &str) -> Result<&Arc<Relation>> {
        self.rels
            .get(name)
            .ok_or_else(|| Error::UnknownRelation(name.to_string()))
    }

    /// Look up statistics.
    pub fn stats(&self, name: &str) -> Option<&Arc<TableStats>> {
        self.stats.get(name)
    }

    /// Iterate (name, relation) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Arc<Relation>)> {
        self.rels.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Registered relation names.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.rels.keys().map(String::as_str)
    }

    /// Total payload bytes across all relations (database-size accounting).
    pub fn size_bytes(&self) -> usize {
        self.rels.values().map(|r| r.size_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn engine_config_is_carried_and_tunable() {
        let mut c = Catalog::new().with_config(EngineConfig::serial());
        assert_eq!(c.config().threads, 1);
        c.set_threads(4);
        assert_eq!(c.config().threads, 4);
        c.set_threads(0); // floored at 1
        assert_eq!(c.config().threads, 1);
        c.set_parallel_granularity(16, 0);
        assert_eq!(c.config().morsel_rows, 16);
        assert_eq!(c.config().parallel_min_rows, 0);
        c.set_mem_budget(1 << 20);
        assert_eq!(c.config().mem_budget, 1 << 20);
        c.set_mem_budget(0); // 0 = unbounded, like the env convention
        assert_eq!(c.config().mem_budget, usize::MAX);
        c.set_storage(StorageMode::Paged);
        c.set_segment_layout(256, 2);
        assert_eq!(c.config().storage, StorageMode::Paged);
        assert_eq!(c.config().segment_rows, 256);
        assert_eq!(c.config().segment_cache, 2);
        c.set_segment_layout(0, 0); // floored at 1
        assert_eq!(c.config().segment_rows, 1);
        assert_eq!(c.config().segment_cache, 1);
        c.set_storage(StorageMode::Disk);
        c.set_buffer_pool(3);
        assert_eq!(c.config().storage, StorageMode::Disk);
        assert_eq!(c.config().buffer_pool, 3);
        c.set_buffer_pool(0); // floored at 1
        assert_eq!(c.config().buffer_pool, 1);
        c.set_faults(Some(FaultConfig::new(42, 0.01)));
        assert_eq!(c.config().faults.unwrap().seed, 42);
        c.set_faults(None);
        assert_eq!(c.config().faults, None);
        c.set_deadline(Some(Duration::from_millis(250)));
        assert_eq!(c.config().deadline, Some(Duration::from_millis(250)));
        c.set_deadline(None);
        assert_eq!(c.config().deadline, None);
        // Clones carry the configuration.
        assert_eq!(c.clone().config(), c.config());
    }

    #[test]
    fn segmented_catalog_derives_stats_from_segments() {
        let mut c = Catalog::new();
        c.set_storage(StorageMode::Segmented);
        c.set_segment_layout(2, 1);
        let rel = Arc::new(
            Relation::from_rows(
                ["a"],
                vec![
                    vec![Value::Int(5)],
                    vec![Value::Int(1)],
                    vec![Value::Int(5)],
                ],
            )
            .unwrap(),
        );
        c.insert_shared("t", Arc::clone(&rel));
        let st = c.stats("t").unwrap();
        assert_eq!(st.rows, 3);
        assert_eq!(st.ndv, vec![2]);
        assert_eq!(st.minmax(0), Some(&(Value::Int(1), Value::Int(5))));
        // The segment image was built and cached; the plain image wasn't.
        assert!(rel.segments_cached());
    }

    #[test]
    fn insert_get() {
        let mut c = Catalog::new();
        c.insert(
            "t",
            Relation::from_rows(["a"], vec![vec![Value::Int(1)]]).unwrap(),
        );
        assert_eq!(c.get("t").unwrap().len(), 1);
        assert!(c.get("missing").is_err());
        assert!(c.stats("t").is_some());
        assert_eq!(c.names().count(), 1);
    }

    #[test]
    fn insert_shared_aliases_storage() {
        let mut c = Catalog::new();
        let rel = Arc::new(Relation::from_rows(["a"], vec![vec![Value::Int(1)]]).unwrap());
        c.insert_shared("t", Arc::clone(&rel));
        assert!(Arc::ptr_eq(c.get("t").unwrap(), &rel));
        assert_eq!(c.stats("t").unwrap().rows, 1);
    }

    #[test]
    fn replace_updates_stats() {
        let mut c = Catalog::new();
        c.insert(
            "t",
            Relation::from_rows(["a"], vec![vec![Value::Int(1)]]).unwrap(),
        );
        c.insert(
            "t",
            Relation::from_rows(["a"], vec![vec![Value::Int(1)], vec![Value::Int(2)]]).unwrap(),
        );
        assert_eq!(c.stats("t").unwrap().rows, 2);
    }
}
