//! The named-relation store with per-relation statistics.

use crate::error::{Error, Result};
use crate::relation::Relation;
use crate::stats::TableStats;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A catalog maps relation names to materialized relations and caches
/// per-column statistics used by the optimizer's cardinality estimates.
#[derive(Default, Clone, Debug)]
pub struct Catalog {
    rels: BTreeMap<String, Arc<Relation>>,
    stats: BTreeMap<String, Arc<TableStats>>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register (or replace) a relation. Statistics are computed eagerly —
    /// the workloads in this repo scan every registered relation at least
    /// once, so the one-time pass pays for itself. Computing them runs
    /// over the columnar image, which builds and caches it: batched scans
    /// of catalog relations never pay row-to-column conversion.
    pub fn insert(&mut self, name: impl Into<String>, rel: Relation) {
        self.insert_shared(name, Arc::new(rel));
    }

    /// Register (or replace) a relation that is already shared — e.g. a
    /// query result or another catalog's entry. The storage is aliased,
    /// not copied; only statistics (and the relation's cached columnar
    /// image, as a side effect) are (re)computed.
    pub fn insert_shared(&mut self, name: impl Into<String>, rel: Arc<Relation>) {
        let name = name.into();
        let stats = TableStats::compute(&rel);
        self.rels.insert(name.clone(), rel);
        self.stats.insert(name, Arc::new(stats));
    }

    /// Look up a relation.
    pub fn get(&self, name: &str) -> Result<&Arc<Relation>> {
        self.rels
            .get(name)
            .ok_or_else(|| Error::UnknownRelation(name.to_string()))
    }

    /// Look up statistics.
    pub fn stats(&self, name: &str) -> Option<&Arc<TableStats>> {
        self.stats.get(name)
    }

    /// Iterate (name, relation) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Arc<Relation>)> {
        self.rels.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Registered relation names.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.rels.keys().map(String::as_str)
    }

    /// Total payload bytes across all relations (database-size accounting).
    pub fn size_bytes(&self) -> usize {
        self.rels.values().map(|r| r.size_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn insert_get() {
        let mut c = Catalog::new();
        c.insert(
            "t",
            Relation::from_rows(["a"], vec![vec![Value::Int(1)]]).unwrap(),
        );
        assert_eq!(c.get("t").unwrap().len(), 1);
        assert!(c.get("missing").is_err());
        assert!(c.stats("t").is_some());
        assert_eq!(c.names().count(), 1);
    }

    #[test]
    fn insert_shared_aliases_storage() {
        let mut c = Catalog::new();
        let rel = Arc::new(Relation::from_rows(["a"], vec![vec![Value::Int(1)]]).unwrap());
        c.insert_shared("t", Arc::clone(&rel));
        assert!(Arc::ptr_eq(c.get("t").unwrap(), &rel));
        assert_eq!(c.stats("t").unwrap().rows, 1);
    }

    #[test]
    fn replace_updates_stats() {
        let mut c = Catalog::new();
        c.insert(
            "t",
            Relation::from_rows(["a"], vec![vec![Value::Int(1)]]).unwrap(),
        );
        c.insert(
            "t",
            Relation::from_rows(["a"], vec![vec![Value::Int(1)], vec![Value::Int(2)]]).unwrap(),
        );
        assert_eq!(c.stats("t").unwrap().rows, 2);
    }
}
