//! Grouping and aggregation.
//!
//! The paper's experiment queries drop all aggregations ("dealing with
//! aggregation is subject to future work"), but a relational substrate
//! without GROUP BY is not one a downstream user would adopt — and the
//! harness itself uses counts. Aggregation is a pipeline breaker that
//! buffers only its *group states*, never its input: [`aggregate_plan`]
//! pulls rows straight off the streaming executor, so a σ/π/join-probe
//! chain feeding a GROUP BY never materializes. [`aggregate`] remains
//! the entry point for relations already in hand. Aggregates are *not*
//! part of the uncertain-query translation surface.

use crate::catalog::Catalog;
use crate::error::{Error, Result};
use crate::exec::{self, ExecStats};
use crate::expr::CompiledExpr;
use crate::fxhash::FxHashMap;
use crate::plan::Plan;
use crate::relation::{Relation, Row};
use crate::schema::{ColRef, Schema};
use crate::spill::{merge_runs, Run, SpillCtx};
use crate::value::Value;
use crate::Expr;
use std::sync::Arc;

/// An aggregate function over a column expression.
#[derive(Clone, Debug, PartialEq)]
pub enum AggFunc {
    /// Number of input rows in the group.
    CountStar,
    /// Count of non-null evaluations.
    Count(Expr),
    /// Sum of integer evaluations.
    Sum(Expr),
    /// Minimum value.
    Min(Expr),
    /// Maximum value.
    Max(Expr),
}

/// One output aggregate: function + output column name.
#[derive(Clone, Debug, PartialEq)]
pub struct Aggregate {
    /// The function.
    pub func: AggFunc,
    /// Output column name.
    pub name: ColRef,
}

impl Aggregate {
    /// Helper constructor.
    pub fn new(func: AggFunc, name: impl AsRef<str>) -> Self {
        Aggregate {
            func,
            name: ColRef::parse(name.as_ref()),
        }
    }
}

enum State {
    Count(i64),
    Sum(i64),
    Min(Option<Value>),
    Max(Option<Value>),
}

impl State {
    fn new(f: &AggFunc) -> State {
        match f {
            AggFunc::CountStar | AggFunc::Count(_) => State::Count(0),
            AggFunc::Sum(_) => State::Sum(0),
            AggFunc::Min(_) => State::Min(None),
            AggFunc::Max(_) => State::Max(None),
        }
    }

    /// Merge another partial state for the same aggregate function into
    /// this one (the parallel partial-aggregation merge: counts and sums
    /// add, min/max fold — all order-independent).
    fn merge(&mut self, other: State) {
        match (self, other) {
            (State::Count(a), State::Count(b)) => *a += b,
            (State::Sum(a), State::Sum(b)) => *a += b,
            (State::Min(a), State::Min(b)) => {
                if let Some(v) = b {
                    if a.as_ref().is_none_or(|cur| v < *cur) {
                        *a = Some(v);
                    }
                }
            }
            (State::Max(a), State::Max(b)) => {
                if let Some(v) = b {
                    if a.as_ref().is_none_or(|cur| v > *cur) {
                        *a = Some(v);
                    }
                }
            }
            _ => unreachable!("merged states come from the same aggregate list"),
        }
    }

    /// Fold one input row's evaluated argument (`None` for `COUNT(*)`)
    /// into the accumulator. The caller evaluates — rows and column
    /// batches feed the same state machine.
    fn update(&mut self, f: &AggFunc, v: Option<Value>) -> Result<()> {
        match (self, f) {
            (State::Count(c), AggFunc::CountStar) => *c += 1,
            (State::Count(c), AggFunc::Count(_)) => {
                if !v.expect("COUNT has an argument").is_null() {
                    *c += 1;
                }
            }
            (State::Sum(s), AggFunc::Sum(_)) => match v.expect("SUM has an argument") {
                Value::Int(v) => *s += v,
                Value::Null => {}
                other => return Err(Error::TypeError(format!("SUM over non-integer {other}"))),
            },
            (State::Min(m), AggFunc::Min(_)) => {
                let v = v.expect("MIN has an argument");
                if !v.is_null() && m.as_ref().is_none_or(|cur| v < *cur) {
                    *m = Some(v);
                }
            }
            (State::Max(m), AggFunc::Max(_)) => {
                let v = v.expect("MAX has an argument");
                if !v.is_null() && m.as_ref().is_none_or(|cur| v > *cur) {
                    *m = Some(v);
                }
            }
            _ => unreachable!("state matches function"),
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            State::Count(c) => Value::Int(c),
            State::Sum(s) => Value::Int(s),
            State::Min(v) | State::Max(v) => v.unwrap_or(Value::Null),
        }
    }

    /// Encode for a spill run. Lossless given the update invariants:
    /// counts/sums are integers, and `Min`/`Max` never hold `Null`
    /// (updates skip nulls), so `Null` unambiguously encodes `None`.
    fn to_value(&self) -> Value {
        match self {
            State::Count(c) => Value::Int(*c),
            State::Sum(s) => Value::Int(*s),
            State::Min(v) | State::Max(v) => v.clone().unwrap_or(Value::Null),
        }
    }

    /// Decode a [`State::to_value`] encoding for aggregate `f`.
    fn from_value(f: &AggFunc, v: Value) -> State {
        match f {
            AggFunc::CountStar | AggFunc::Count(_) => {
                State::Count(v.as_int().expect("spilled count is an integer"))
            }
            AggFunc::Sum(_) => State::Sum(v.as_int().expect("spilled sum is an integer")),
            AggFunc::Min(_) => State::Min((!v.is_null()).then_some(v)),
            AggFunc::Max(_) => State::Max((!v.is_null()).then_some(v)),
        }
    }
}

/// Incremental hash-aggregation state: compiled key/aggregate
/// expressions plus the per-group accumulators. Only group states are
/// held — input rows are consumed one at a time and dropped.
///
/// Output groups appear in *first-occurrence order of the input*. Each
/// group remembers the position key of its first row — `(morsel id,
/// sequence within the morsel)` packed into a `u64` — so partial
/// accumulators built by parallel workers merge into exactly the order
/// a serial pass would produce: workers claim morsels in increasing id
/// order, and the merge keeps each group's minimum position.
struct Accumulator<'a> {
    group_by: &'a [(Expr, ColRef)],
    aggs: &'a [Aggregate],
    key_exprs: Vec<CompiledExpr>,
    agg_exprs: Vec<Option<CompiledExpr>>,
    groups: FxHashMap<Vec<Value>, (u64, Vec<State>)>,
    /// Position base of the current morsel (`morsel id << 32`).
    morsel_base: u64,
    /// Rows folded within the current morsel.
    seq: u64,
    /// Memory-budget spill state (`None` = unbounded, the fast path).
    spill: Option<AggSpill>,
}

/// Spill state of one accumulator: when the group map crosses the
/// budget's per-worker share it is flushed as a *key-sorted* run of
/// `(first-occurrence position, group key ++ encoded states)` records.
/// [`Accumulator::finish`] merges all runs by group key — partial
/// states of the same group combine order-independently, each group
/// keeps its earliest position — and restores first-occurrence output
/// order by position, so spilled aggregation is byte-identical to the
/// in-memory fold.
struct AggSpill {
    ctx: Arc<SpillCtx>,
    share: usize,
    bytes: usize,
    runs: Vec<Run>,
}

impl<'a> Accumulator<'a> {
    fn new(
        in_schema: &Schema,
        group_by: &'a [(Expr, ColRef)],
        aggs: &'a [Aggregate],
    ) -> Result<Self> {
        let key_exprs: Vec<CompiledExpr> = group_by
            .iter()
            .map(|(e, _)| e.compile(in_schema))
            .collect::<Result<_>>()?;
        let agg_exprs: Vec<Option<CompiledExpr>> = aggs
            .iter()
            .map(|a| match &a.func {
                AggFunc::CountStar => Ok(None),
                AggFunc::Count(e) | AggFunc::Sum(e) | AggFunc::Min(e) | AggFunc::Max(e) => {
                    e.compile(in_schema).map(Some)
                }
            })
            .collect::<Result<_>>()?;
        Ok(Accumulator {
            group_by,
            aggs,
            key_exprs,
            agg_exprs,
            groups: FxHashMap::default(),
            morsel_base: 0,
            seq: 0,
            spill: None,
        })
    }

    /// Attach memory-budget spill state (no-op context when the budget
    /// is unbounded — the accumulator then stays on the in-memory path).
    fn with_spill(mut self, ctx: &Arc<SpillCtx>) -> Self {
        if ctx.budget().enabled() {
            self.spill = Some(AggSpill {
                ctx: Arc::clone(ctx),
                share: ctx.budget().share(),
                bytes: 0,
                runs: Vec::new(),
            });
        }
        self
    }

    /// Enter morsel `id`: subsequent rows take positions under its base.
    /// Parallel workers call this per batch; the sequence only resets
    /// when the morsel actually changes (a morsel spans many batches).
    /// The serial path stays on morsel 0.
    fn set_morsel(&mut self, id: usize) {
        let base = (id as u64) << 32;
        if base != self.morsel_base {
            self.morsel_base = base;
            self.seq = 0;
        }
    }

    /// Fold one input row into the group states; `eval` supplies the
    /// value of a compiled expression for that row, so the row-cursor
    /// path and the batched path share one grouping implementation.
    fn fold(&mut self, eval: impl Fn(&CompiledExpr) -> Value) -> Result<()> {
        let key: Vec<Value> = self.key_exprs.iter().map(&eval).collect();
        let pos = self.morsel_base + self.seq;
        self.seq += 1;
        if let Some(sp) = &mut self.spill {
            if !self.groups.contains_key(&key) {
                // New group: charge its key payload plus a rough map /
                // state overhead (estimation, not bookkeeping — the
                // budget only decides when to flush).
                let bytes = 48
                    + key.iter().map(|v| 24 + v.size_bytes()).sum::<usize>()
                    + 40 * self.aggs.len();
                sp.ctx.budget().charge(bytes);
                sp.bytes += bytes;
            }
        }
        let (_, states) = self
            .groups
            .entry(key)
            .or_insert_with(|| (pos, self.aggs.iter().map(|a| State::new(&a.func)).collect()));
        for ((state, agg), compiled) in states.iter_mut().zip(self.aggs).zip(&self.agg_exprs) {
            state.update(&agg.func, compiled.as_ref().map(&eval))?;
        }
        if self.spill.as_ref().is_some_and(|sp| sp.bytes > sp.share) {
            self.flush_groups()?;
        }
        Ok(())
    }

    /// Flush the group map as one key-sorted spill run (see
    /// [`AggSpill`]).
    fn flush_groups(&mut self) -> Result<()> {
        let sp = self.spill.as_mut().expect("flush requires spill state");
        let mut entries: Vec<(Vec<Value>, u64, Vec<State>)> = self
            .groups
            .drain()
            .map(|(k, (pos, states))| (k, pos, states))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut w = sp.ctx.writer("agg-run")?;
        for (mut key, pos, states) in entries {
            key.extend(states.iter().map(State::to_value));
            w.push(&[pos], &key.into_boxed_slice())?;
        }
        sp.runs.push(w.finish()?);
        sp.ctx.record_spill(sp.bytes);
        sp.ctx.budget().release(sp.bytes);
        sp.bytes = 0;
        Ok(())
    }

    fn update(&mut self, row: &Row) -> Result<()> {
        self.fold(|c| c.eval(row))
    }

    /// Fold a whole column batch: group keys and aggregate arguments are
    /// evaluated positionally against the batch, so the input rows are
    /// never materialized — only the group states are held.
    fn update_batch(&mut self, batch: &crate::batch::ColumnBatch<'_>) -> Result<()> {
        for pos in 0..batch.len() {
            self.fold(|c| c.eval_at(batch, pos))?;
        }
        Ok(())
    }

    /// Merge another worker's partial states: group states combine
    /// order-independently, each group keeps its earliest position.
    /// Spill runs (and their byte accounting) transfer wholesale — the
    /// final merge in [`Accumulator::finish`] reads every run anyway.
    fn merge(&mut self, mut other: Accumulator<'a>) -> Result<()> {
        if let Some(osp) = other.spill.as_mut() {
            let sp = self
                .spill
                .as_mut()
                .expect("budgeted accumulators merge together");
            sp.runs.append(&mut osp.runs);
            sp.bytes += osp.bytes;
            osp.bytes = 0;
        }
        for (key, (pos, states)) in other.groups {
            match self.groups.entry(key) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert((pos, states));
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let (cur_pos, cur_states) = e.get_mut();
                    *cur_pos = (*cur_pos).min(pos);
                    for (a, b) in cur_states.iter_mut().zip(states) {
                        a.merge(b);
                    }
                }
            }
        }
        if self.spill.as_ref().is_some_and(|sp| sp.bytes > sp.share) {
            self.flush_groups()?;
        }
        Ok(())
    }

    fn finish(mut self) -> Result<Relation> {
        if self.spill.as_ref().is_some_and(|sp| !sp.runs.is_empty()) {
            return self.finish_spilled();
        }
        if self.group_by.is_empty() && self.groups.is_empty() {
            self.groups.insert(
                Vec::new(),
                (0, self.aggs.iter().map(|a| State::new(&a.func)).collect()),
            );
        }
        let mut names: Vec<ColRef> = self.group_by.iter().map(|(_, n)| n.clone()).collect();
        names.extend(self.aggs.iter().map(|a| a.name.clone()));
        let mut out = Relation::empty(Schema::new(names));
        // First-occurrence order: sort groups by their position key.
        let mut rows: Vec<(u64, Vec<Value>, Vec<State>)> = self
            .groups
            .into_iter()
            .map(|(key, (pos, states))| (pos, key, states))
            .collect();
        rows.sort_by_key(|(pos, _, _)| *pos);
        for (_, key, states) in rows {
            let mut row = key;
            row.extend(states.into_iter().map(State::finish));
            out.push(row)?;
        }
        Ok(out)
    }

    /// Finish an accumulator that spilled: flush the in-memory tail,
    /// k-way merge every run by group key (combining partial states and
    /// keeping each group's earliest position), then emit groups in
    /// first-occurrence order — byte-identical to the in-memory fold.
    fn finish_spilled(mut self) -> Result<Relation> {
        if !self.groups.is_empty() {
            self.flush_groups()?;
        }
        let sp = self.spill.take().expect("spilled finish has spill state");
        let karity = self.group_by.len();
        let mut groups: Vec<(u64, Vec<Value>, Vec<State>)> = Vec::new();
        let mut cur: Option<(Vec<Value>, u64, Vec<State>)> = None;
        let merge = merge_runs(&sp.runs, &sp.ctx, |a, b| a.1[..karity].cmp(&b.1[..karity]))?;
        for item in merge {
            let (_, (keys, row)) = item?;
            let pos = keys[0];
            let mut vals = row.into_vec();
            let state_vals = vals.split_off(karity);
            let states: Vec<State> = self
                .aggs
                .iter()
                .zip(state_vals)
                .map(|(a, v)| State::from_value(&a.func, v))
                .collect();
            match cur.as_mut() {
                Some((k, p, s)) if *k == vals => {
                    *p = (*p).min(pos);
                    for (a, b) in s.iter_mut().zip(states) {
                        a.merge(b);
                    }
                }
                _ => {
                    if let Some((k, p, s)) = cur.take() {
                        groups.push((p, k, s));
                    }
                    cur = Some((vals, pos, states));
                }
            }
        }
        if let Some((k, p, s)) = cur.take() {
            groups.push((p, k, s));
        }
        groups.sort_by_key(|(pos, _, _)| *pos);
        let mut names: Vec<ColRef> = self.group_by.iter().map(|(_, n)| n.clone()).collect();
        names.extend(self.aggs.iter().map(|a| a.name.clone()));
        let mut out = Relation::empty(Schema::new(names));
        for (_, key, states) in groups {
            let mut row = key;
            row.extend(states.into_iter().map(State::finish));
            out.push(row)?;
        }
        Ok(out)
    }
}

/// Hash aggregation: group `input` by the `group_by` expressions and
/// compute the aggregates per group. With an empty `group_by`, produces
/// exactly one row (global aggregates), even over empty input.
pub fn aggregate(
    input: &Relation,
    group_by: &[(Expr, ColRef)],
    aggs: &[Aggregate],
) -> Result<Relation> {
    let mut acc = Accumulator::new(input.schema(), group_by, aggs)?;
    for row in input.rows() {
        acc.update(row)?;
    }
    acc.finish()
}

/// Hash aggregation pulled straight off the streaming executor, one
/// column batch at a time: a batched σ/π/join-probe chain feeds GROUP BY
/// without ever materializing its input rows — only the group states
/// are buffered. Plans on the row fallback path are bridged into owned
/// batches by [`exec::Streamed::for_each_batch`].
///
/// When the executor decides to run the input morsel-parallel, each
/// worker folds its morsels into a *partial* accumulator and the partial
/// states merge afterwards — counts and sums add, min/max fold, and
/// group order is restored from first-occurrence positions, so the
/// result is byte-identical to the serial fold.
pub fn aggregate_plan(
    plan: &Plan,
    catalog: &Catalog,
    group_by: &[(Expr, ColRef)],
    aggs: &[Aggregate],
) -> Result<Relation> {
    aggregate_plan_with_stats(plan, catalog, group_by, aggs).map(|(rel, _)| rel)
}

/// [`aggregate_plan`] plus the execution's [`ExecStats`] — under a
/// memory budget this is where aggregation spills show up
/// (`spill_events` / `spilled_bytes`; see [`AggSpill`]).
pub fn aggregate_plan_with_stats(
    plan: &Plan,
    catalog: &Catalog,
    group_by: &[(Expr, ColRef)],
    aggs: &[Aggregate],
) -> Result<(Relation, ExecStats)> {
    let streamed = exec::stream(plan, catalog)?;
    let ctx = Arc::clone(streamed.spill_ctx());
    // Validate compilation up front so the parallel path reports the
    // same errors the serial one would, before any worker spawns.
    let acc = Accumulator::new(streamed.schema(), group_by, aggs)?.with_spill(&ctx);
    let schema = streamed.schema().clone();
    if let Some(partials) = streamed.fold_batches_parallel(
        || Accumulator::new(&schema, group_by, aggs).map(|a| a.with_spill(&ctx)),
        |acc, morsel, batch| {
            let acc = acc.as_mut().map_err(|e| e.clone())?;
            acc.set_morsel(morsel);
            acc.update_batch(batch)
        },
    ) {
        let mut merged = acc;
        for partial in partials? {
            merged.merge(partial?)?;
        }
        let rel = merged.finish()?;
        return Ok((rel, streamed.stats()));
    }
    let mut acc = acc;
    streamed.for_each_batch(|batch| acc.update_batch(batch))?;
    let rel = acc.finish()?;
    Ok((rel, streamed.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::col;

    fn input() -> Relation {
        Relation::from_rows(
            ["dept", "salary"],
            vec![
                vec![Value::Int(1), Value::Int(100)],
                vec![Value::Int(1), Value::Int(200)],
                vec![Value::Int(2), Value::Int(50)],
                vec![Value::Int(2), Value::Null],
            ],
        )
        .unwrap()
    }

    #[test]
    fn grouped_aggregates() {
        let out = aggregate(
            &input(),
            &[(col("dept"), "dept".into())],
            &[
                Aggregate::new(AggFunc::CountStar, "n"),
                Aggregate::new(AggFunc::Count(col("salary")), "n_sal"),
                Aggregate::new(AggFunc::Sum(col("salary")), "total"),
                Aggregate::new(AggFunc::Min(col("salary")), "lo"),
                Aggregate::new(AggFunc::Max(col("salary")), "hi"),
            ],
        )
        .unwrap();
        assert_eq!(out.schema().to_string(), "dept, n, n_sal, total, lo, hi");
        assert_eq!(out.len(), 2);
        let d1 = &out.rows()[0];
        assert_eq!(
            &d1[..],
            &[
                Value::Int(1),
                Value::Int(2),
                Value::Int(2),
                Value::Int(300),
                Value::Int(100),
                Value::Int(200)
            ]
        );
        let d2 = &out.rows()[1];
        assert_eq!(d2[1], Value::Int(2)); // count(*) counts nulls
        assert_eq!(d2[2], Value::Int(1)); // count(salary) does not
        assert_eq!(d2[3], Value::Int(50));
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let empty = Relation::empty(Schema::named(["a"]));
        let out = aggregate(&empty, &[], &[Aggregate::new(AggFunc::CountStar, "n")]).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::Int(0));
    }

    #[test]
    fn sum_rejects_strings() {
        let rel = Relation::from_rows(["a"], vec![vec![Value::str("x")]]).unwrap();
        let err = aggregate(&rel, &[], &[Aggregate::new(AggFunc::Sum(col("a")), "s")]);
        assert!(matches!(err, Err(Error::TypeError(_))));
    }

    #[test]
    fn min_max_of_all_nulls_is_null() {
        let rel = Relation::from_rows(["a"], vec![vec![Value::Null]]).unwrap();
        let out = aggregate(&rel, &[], &[Aggregate::new(AggFunc::Min(col("a")), "lo")]).unwrap();
        assert_eq!(out.rows()[0][0], Value::Null);
    }

    #[test]
    fn parallel_aggregation_merges_to_serial_result() {
        use crate::batch::BATCH_SIZE;
        use crate::expr::lit_str;
        // Enough rows for several morsels, group keys that first appear
        // in different morsels (i / 1000 is monotone), plus every
        // aggregate kind so the merge covers all states.
        let rows: Vec<Vec<Value>> = (0..(3 * BATCH_SIZE as i64 + 57))
            .map(|i| {
                vec![
                    Value::Int(i / 1000),
                    Value::Int(i % 97),
                    Value::interned(if i % 2 == 0 { "e" } else { "o" }),
                ]
            })
            .collect();
        let rel = Relation::from_rows(["grp", "v", "tag"], rows).unwrap();
        let mut serial = Catalog::new().with_config(crate::catalog::EngineConfig::serial());
        serial.insert("t", rel.clone());
        let mut par = Catalog::new().with_config(crate::catalog::EngineConfig::serial());
        par.insert("t", rel);
        par.set_threads(4);
        par.set_parallel_granularity(BATCH_SIZE, 0);
        let p = Plan::scan("t").select(col("tag").eq(lit_str("e")));
        let group = [(col("grp"), ColRef::parse("grp"))];
        let aggs = [
            Aggregate::new(AggFunc::CountStar, "n"),
            Aggregate::new(AggFunc::Count(col("v")), "nv"),
            Aggregate::new(AggFunc::Sum(col("v")), "s"),
            Aggregate::new(AggFunc::Min(col("v")), "lo"),
            Aggregate::new(AggFunc::Max(col("v")), "hi"),
        ];
        let a = aggregate_plan(&p, &serial, &group, &aggs).unwrap();
        let b = aggregate_plan(&p, &par, &group, &aggs).unwrap();
        // Byte-identical: same groups, same aggregates, same first-
        // occurrence order.
        assert_eq!(a, b);
        // Errors surface identically on the parallel path.
        let bad = [Aggregate::new(AggFunc::Sum(col("tag")), "s")];
        assert!(aggregate_plan(&p, &par, &group, &bad).is_err());
    }

    #[test]
    fn aggregate_plan_streams_without_buffering() {
        use crate::expr::lit_i64;
        let mut c = Catalog::new();
        c.insert("t", input());
        // GROUP BY over a σ chain: identical to materialize-then-aggregate,
        // with zero intermediate buffers.
        let p = Plan::scan("t")
            .select(col("salary").gt(lit_i64(0)))
            .select(col("dept").gt(lit_i64(0)));
        let via_plan = aggregate_plan(
            &p,
            &c,
            &[(col("dept"), "dept".into())],
            &[Aggregate::new(AggFunc::Sum(col("salary")), "total")],
        )
        .unwrap();
        let materialized = exec::execute(&p, &c).unwrap();
        let via_rel = aggregate(
            &materialized,
            &[(col("dept"), "dept".into())],
            &[Aggregate::new(AggFunc::Sum(col("salary")), "total")],
        )
        .unwrap();
        assert_eq!(via_plan, via_rel);
        let s = exec::stream(&p, &c).unwrap();
        s.for_each_row(|_| Ok(())).unwrap();
        assert_eq!(s.stats().buffers, 0);
        // Compile errors still surface.
        assert!(aggregate_plan(
            &p,
            &c,
            &[(col("nope"), "g".into())],
            &[Aggregate::new(AggFunc::CountStar, "n")],
        )
        .is_err());
    }
}
