//! Grouping and aggregation.
//!
//! The paper's experiment queries drop all aggregations ("dealing with
//! aggregation is subject to future work"), but a relational substrate
//! without GROUP BY is not one a downstream user would adopt — and the
//! harness itself uses counts. Aggregation is a pipeline breaker that
//! buffers only its *group states*, never its input: [`aggregate_plan`]
//! pulls rows straight off the streaming executor, so a σ/π/join-probe
//! chain feeding a GROUP BY never materializes. [`aggregate`] remains
//! the entry point for relations already in hand. Aggregates are *not*
//! part of the uncertain-query translation surface.

use crate::catalog::Catalog;
use crate::error::{Error, Result};
use crate::exec;
use crate::expr::CompiledExpr;
use crate::fxhash::FxHashMap;
use crate::plan::Plan;
use crate::relation::{Relation, Row};
use crate::schema::{ColRef, Schema};
use crate::value::Value;
use crate::Expr;

/// An aggregate function over a column expression.
#[derive(Clone, Debug, PartialEq)]
pub enum AggFunc {
    /// Number of input rows in the group.
    CountStar,
    /// Count of non-null evaluations.
    Count(Expr),
    /// Sum of integer evaluations.
    Sum(Expr),
    /// Minimum value.
    Min(Expr),
    /// Maximum value.
    Max(Expr),
}

/// One output aggregate: function + output column name.
#[derive(Clone, Debug, PartialEq)]
pub struct Aggregate {
    /// The function.
    pub func: AggFunc,
    /// Output column name.
    pub name: ColRef,
}

impl Aggregate {
    /// Helper constructor.
    pub fn new(func: AggFunc, name: impl AsRef<str>) -> Self {
        Aggregate {
            func,
            name: ColRef::parse(name.as_ref()),
        }
    }
}

enum State {
    Count(i64),
    Sum(i64),
    Min(Option<Value>),
    Max(Option<Value>),
}

impl State {
    fn new(f: &AggFunc) -> State {
        match f {
            AggFunc::CountStar | AggFunc::Count(_) => State::Count(0),
            AggFunc::Sum(_) => State::Sum(0),
            AggFunc::Min(_) => State::Min(None),
            AggFunc::Max(_) => State::Max(None),
        }
    }

    /// Fold one input row's evaluated argument (`None` for `COUNT(*)`)
    /// into the accumulator. The caller evaluates — rows and column
    /// batches feed the same state machine.
    fn update(&mut self, f: &AggFunc, v: Option<Value>) -> Result<()> {
        match (self, f) {
            (State::Count(c), AggFunc::CountStar) => *c += 1,
            (State::Count(c), AggFunc::Count(_)) => {
                if !v.expect("COUNT has an argument").is_null() {
                    *c += 1;
                }
            }
            (State::Sum(s), AggFunc::Sum(_)) => match v.expect("SUM has an argument") {
                Value::Int(v) => *s += v,
                Value::Null => {}
                other => return Err(Error::TypeError(format!("SUM over non-integer {other}"))),
            },
            (State::Min(m), AggFunc::Min(_)) => {
                let v = v.expect("MIN has an argument");
                if !v.is_null() && m.as_ref().is_none_or(|cur| v < *cur) {
                    *m = Some(v);
                }
            }
            (State::Max(m), AggFunc::Max(_)) => {
                let v = v.expect("MAX has an argument");
                if !v.is_null() && m.as_ref().is_none_or(|cur| v > *cur) {
                    *m = Some(v);
                }
            }
            _ => unreachable!("state matches function"),
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            State::Count(c) => Value::Int(c),
            State::Sum(s) => Value::Int(s),
            State::Min(v) | State::Max(v) => v.unwrap_or(Value::Null),
        }
    }
}

/// Incremental hash-aggregation state: compiled key/aggregate
/// expressions plus the per-group accumulators. Only group states are
/// held — input rows are consumed one at a time and dropped.
struct Accumulator<'a> {
    group_by: &'a [(Expr, ColRef)],
    aggs: &'a [Aggregate],
    key_exprs: Vec<CompiledExpr>,
    agg_exprs: Vec<Option<CompiledExpr>>,
    groups: FxHashMap<Vec<Value>, Vec<State>>,
    order: Vec<Vec<Value>>,
}

impl<'a> Accumulator<'a> {
    fn new(
        in_schema: &Schema,
        group_by: &'a [(Expr, ColRef)],
        aggs: &'a [Aggregate],
    ) -> Result<Self> {
        let key_exprs: Vec<CompiledExpr> = group_by
            .iter()
            .map(|(e, _)| e.compile(in_schema))
            .collect::<Result<_>>()?;
        let agg_exprs: Vec<Option<CompiledExpr>> = aggs
            .iter()
            .map(|a| match &a.func {
                AggFunc::CountStar => Ok(None),
                AggFunc::Count(e) | AggFunc::Sum(e) | AggFunc::Min(e) | AggFunc::Max(e) => {
                    e.compile(in_schema).map(Some)
                }
            })
            .collect::<Result<_>>()?;
        Ok(Accumulator {
            group_by,
            aggs,
            key_exprs,
            agg_exprs,
            groups: FxHashMap::default(),
            order: Vec::new(),
        })
    }

    /// Fold one input row into the group states; `eval` supplies the
    /// value of a compiled expression for that row, so the row-cursor
    /// path and the batched path share one grouping implementation.
    fn fold(&mut self, eval: impl Fn(&CompiledExpr) -> Value) -> Result<()> {
        let key: Vec<Value> = self.key_exprs.iter().map(&eval).collect();
        let states = self.groups.entry(key.clone()).or_insert_with(|| {
            self.order.push(key);
            self.aggs.iter().map(|a| State::new(&a.func)).collect()
        });
        for ((state, agg), compiled) in states.iter_mut().zip(self.aggs).zip(&self.agg_exprs) {
            state.update(&agg.func, compiled.as_ref().map(&eval))?;
        }
        Ok(())
    }

    fn update(&mut self, row: &Row) -> Result<()> {
        self.fold(|c| c.eval(row))
    }

    /// Fold a whole column batch: group keys and aggregate arguments are
    /// evaluated positionally against the batch, so the input rows are
    /// never materialized — only the group states are held.
    fn update_batch(&mut self, batch: &crate::batch::ColumnBatch<'_>) -> Result<()> {
        for pos in 0..batch.len() {
            self.fold(|c| c.eval_at(batch, pos))?;
        }
        Ok(())
    }

    fn finish(mut self) -> Result<Relation> {
        if self.group_by.is_empty() && self.groups.is_empty() {
            self.order.push(Vec::new());
            self.groups.insert(
                Vec::new(),
                self.aggs.iter().map(|a| State::new(&a.func)).collect(),
            );
        }
        let mut names: Vec<ColRef> = self.group_by.iter().map(|(_, n)| n.clone()).collect();
        names.extend(self.aggs.iter().map(|a| a.name.clone()));
        let mut out = Relation::empty(Schema::new(names));
        for key in self.order {
            let states = self.groups.remove(&key).expect("keys come from order");
            let mut row = key;
            row.extend(states.into_iter().map(State::finish));
            out.push(row)?;
        }
        Ok(out)
    }
}

/// Hash aggregation: group `input` by the `group_by` expressions and
/// compute the aggregates per group. With an empty `group_by`, produces
/// exactly one row (global aggregates), even over empty input.
pub fn aggregate(
    input: &Relation,
    group_by: &[(Expr, ColRef)],
    aggs: &[Aggregate],
) -> Result<Relation> {
    let mut acc = Accumulator::new(input.schema(), group_by, aggs)?;
    for row in input.rows() {
        acc.update(row)?;
    }
    acc.finish()
}

/// Hash aggregation pulled straight off the streaming executor, one
/// column batch at a time: a batched σ/π/join-probe chain feeds GROUP BY
/// without ever materializing its input rows — only the group states
/// are buffered. Plans on the row fallback path are bridged into owned
/// batches by [`exec::Streamed::for_each_batch`].
pub fn aggregate_plan(
    plan: &Plan,
    catalog: &Catalog,
    group_by: &[(Expr, ColRef)],
    aggs: &[Aggregate],
) -> Result<Relation> {
    let streamed = exec::stream(plan, catalog)?;
    let mut acc = Accumulator::new(streamed.schema(), group_by, aggs)?;
    streamed.for_each_batch(|batch| acc.update_batch(batch))?;
    acc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::col;

    fn input() -> Relation {
        Relation::from_rows(
            ["dept", "salary"],
            vec![
                vec![Value::Int(1), Value::Int(100)],
                vec![Value::Int(1), Value::Int(200)],
                vec![Value::Int(2), Value::Int(50)],
                vec![Value::Int(2), Value::Null],
            ],
        )
        .unwrap()
    }

    #[test]
    fn grouped_aggregates() {
        let out = aggregate(
            &input(),
            &[(col("dept"), "dept".into())],
            &[
                Aggregate::new(AggFunc::CountStar, "n"),
                Aggregate::new(AggFunc::Count(col("salary")), "n_sal"),
                Aggregate::new(AggFunc::Sum(col("salary")), "total"),
                Aggregate::new(AggFunc::Min(col("salary")), "lo"),
                Aggregate::new(AggFunc::Max(col("salary")), "hi"),
            ],
        )
        .unwrap();
        assert_eq!(out.schema().to_string(), "dept, n, n_sal, total, lo, hi");
        assert_eq!(out.len(), 2);
        let d1 = &out.rows()[0];
        assert_eq!(
            &d1[..],
            &[
                Value::Int(1),
                Value::Int(2),
                Value::Int(2),
                Value::Int(300),
                Value::Int(100),
                Value::Int(200)
            ]
        );
        let d2 = &out.rows()[1];
        assert_eq!(d2[1], Value::Int(2)); // count(*) counts nulls
        assert_eq!(d2[2], Value::Int(1)); // count(salary) does not
        assert_eq!(d2[3], Value::Int(50));
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let empty = Relation::empty(Schema::named(["a"]));
        let out = aggregate(&empty, &[], &[Aggregate::new(AggFunc::CountStar, "n")]).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::Int(0));
    }

    #[test]
    fn sum_rejects_strings() {
        let rel = Relation::from_rows(["a"], vec![vec![Value::str("x")]]).unwrap();
        let err = aggregate(&rel, &[], &[Aggregate::new(AggFunc::Sum(col("a")), "s")]);
        assert!(matches!(err, Err(Error::TypeError(_))));
    }

    #[test]
    fn min_max_of_all_nulls_is_null() {
        let rel = Relation::from_rows(["a"], vec![vec![Value::Null]]).unwrap();
        let out = aggregate(&rel, &[], &[Aggregate::new(AggFunc::Min(col("a")), "lo")]).unwrap();
        assert_eq!(out.rows()[0][0], Value::Null);
    }

    #[test]
    fn aggregate_plan_streams_without_buffering() {
        use crate::expr::lit_i64;
        let mut c = Catalog::new();
        c.insert("t", input());
        // GROUP BY over a σ chain: identical to materialize-then-aggregate,
        // with zero intermediate buffers.
        let p = Plan::scan("t")
            .select(col("salary").gt(lit_i64(0)))
            .select(col("dept").gt(lit_i64(0)));
        let via_plan = aggregate_plan(
            &p,
            &c,
            &[(col("dept"), "dept".into())],
            &[Aggregate::new(AggFunc::Sum(col("salary")), "total")],
        )
        .unwrap();
        let materialized = exec::execute(&p, &c).unwrap();
        let via_rel = aggregate(
            &materialized,
            &[(col("dept"), "dept".into())],
            &[Aggregate::new(AggFunc::Sum(col("salary")), "total")],
        )
        .unwrap();
        assert_eq!(via_plan, via_rel);
        let s = exec::stream(&p, &c).unwrap();
        s.for_each_row(|_| Ok(())).unwrap();
        assert_eq!(s.stats().buffers, 0);
        // Compile errors still surface.
        assert!(aggregate_plan(
            &p,
            &c,
            &[(col("nope"), "g".into())],
            &[Aggregate::new(AggFunc::CountStar, "n")],
        )
        .is_err());
    }
}
