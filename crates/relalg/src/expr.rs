//! Scalar expressions: construction, compilation, evaluation.
//!
//! Expressions are built by name ([`col`], [`lit`], comparison helpers) and
//! compiled against a [`Schema`] into index-resolved form ([`CompiledExpr`])
//! before evaluation, so the per-row hot path does no name lookups.

use crate::error::Result;
use crate::relation::Row;
use crate::schema::{ColRef, Schema};
use crate::value::Value;
use std::collections::BTreeSet;
use std::fmt;

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Apply to a concrete ordering outcome.
    fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    /// The operator with its operands swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// Integer arithmetic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArithOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Integer division; division by zero yields `Null`.
    Div,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        };
        write!(f, "{s}")
    }
}

/// A scalar expression over named columns.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Column reference (resolved at compile time).
    Col(ColRef),
    /// Literal value.
    Lit(Value),
    /// Binary comparison.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Integer arithmetic; non-integer operands evaluate to `Null`.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Conjunction (empty = true).
    And(Vec<Expr>),
    /// Disjunction (empty = false).
    Or(Vec<Expr>),
    /// Negation.
    Not(Box<Expr>),
}

/// Column reference expression; accepts `"name"` or `"alias.name"`.
pub fn col(name: &str) -> Expr {
    Expr::Col(ColRef::parse(name))
}

/// Literal expression from anything convertible to [`Value`].
pub fn lit(v: impl Into<Value>) -> Expr {
    Expr::Lit(v.into())
}

/// Integer literal.
pub fn lit_i64(v: i64) -> Expr {
    Expr::Lit(Value::Int(v))
}

/// String literal.
pub fn lit_str(s: &str) -> Expr {
    Expr::Lit(Value::str(s))
}

/// Boolean literal.
pub fn lit_bool(b: bool) -> Expr {
    Expr::Lit(Value::Bool(b))
}

// The builder methods deliberately shadow operator-trait names: they
// construct AST nodes (`col("a").add(lit_i64(1))`), they don't compute.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(self), Box::new(other))
    }

    /// `self <> other`.
    pub fn ne(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ne, Box::new(self), Box::new(other))
    }

    /// `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Lt, Box::new(self), Box::new(other))
    }

    /// `self <= other`.
    pub fn le(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Le, Box::new(self), Box::new(other))
    }

    /// `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Gt, Box::new(self), Box::new(other))
    }

    /// `self >= other`.
    pub fn ge(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ge, Box::new(self), Box::new(other))
    }

    /// `self + other` (integer).
    pub fn add(self, other: Expr) -> Expr {
        Expr::Arith(ArithOp::Add, Box::new(self), Box::new(other))
    }

    /// `self - other` (integer).
    pub fn sub(self, other: Expr) -> Expr {
        Expr::Arith(ArithOp::Sub, Box::new(self), Box::new(other))
    }

    /// `self * other` (integer).
    pub fn mul(self, other: Expr) -> Expr {
        Expr::Arith(ArithOp::Mul, Box::new(self), Box::new(other))
    }

    /// `self / other` (integer; x/0 = Null).
    pub fn div(self, other: Expr) -> Expr {
        Expr::Arith(ArithOp::Div, Box::new(self), Box::new(other))
    }

    /// Conjunction, flattening nested `And`s and dropping `true`.
    pub fn and(parts: impl IntoIterator<Item = Expr>) -> Expr {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Expr::And(inner) => out.extend(inner),
                Expr::Lit(Value::Bool(true)) => {}
                other => out.push(other),
            }
        }
        match out.len() {
            0 => lit_bool(true),
            1 => out.pop().unwrap(),
            _ => Expr::And(out),
        }
    }

    /// Disjunction, flattening nested `Or`s and dropping `false`.
    pub fn or(parts: impl IntoIterator<Item = Expr>) -> Expr {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Expr::Or(inner) => out.extend(inner),
                Expr::Lit(Value::Bool(false)) => {}
                other => out.push(other),
            }
        }
        match out.len() {
            0 => lit_bool(false),
            1 => out.pop().unwrap(),
            _ => Expr::Or(out),
        }
    }

    /// `¬self`.
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// `low <= self AND self <= high` (paper's `between`).
    pub fn between(self, low: Expr, high: Expr) -> Expr {
        Expr::and([self.clone().ge(low), self.le(high)])
    }

    /// The set of column references this expression mentions.
    pub fn columns(&self) -> BTreeSet<ColRef> {
        let mut out = BTreeSet::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut BTreeSet<ColRef>) {
        match self {
            Expr::Col(c) => {
                out.insert(c.clone());
            }
            Expr::Lit(_) => {}
            Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::And(parts) | Expr::Or(parts) => {
                for p in parts {
                    p.collect_columns(out);
                }
            }
            Expr::Not(e) => e.collect_columns(out),
        }
    }

    /// Split a conjunctive expression into its conjuncts.
    pub fn conjuncts(self) -> Vec<Expr> {
        match self {
            Expr::And(parts) => parts.into_iter().flat_map(Expr::conjuncts).collect(),
            Expr::Lit(Value::Bool(true)) => vec![],
            other => vec![other],
        }
    }

    /// `true` iff the expression is the literal `true`.
    pub fn is_true(&self) -> bool {
        matches!(self, Expr::Lit(Value::Bool(true)))
    }

    /// Rewrite every column reference with `f`.
    pub fn map_columns(&self, f: &impl Fn(&ColRef) -> ColRef) -> Expr {
        match self {
            Expr::Col(c) => Expr::Col(f(c)),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Cmp(op, a, b) => {
                Expr::Cmp(*op, Box::new(a.map_columns(f)), Box::new(b.map_columns(f)))
            }
            Expr::Arith(op, a, b) => {
                Expr::Arith(*op, Box::new(a.map_columns(f)), Box::new(b.map_columns(f)))
            }
            Expr::And(parts) => Expr::And(parts.iter().map(|p| p.map_columns(f)).collect()),
            Expr::Or(parts) => Expr::Or(parts.iter().map(|p| p.map_columns(f)).collect()),
            Expr::Not(e) => Expr::Not(Box::new(e.map_columns(f))),
        }
    }

    /// Compile against a schema: resolve all column references to indices.
    pub fn compile(&self, schema: &Schema) -> Result<CompiledExpr> {
        Ok(match self {
            Expr::Col(c) => CompiledExpr::Col(schema.resolve(c)?),
            Expr::Lit(v) => CompiledExpr::Lit(v.clone()),
            Expr::Cmp(op, a, b) => CompiledExpr::Cmp(
                *op,
                Box::new(a.compile(schema)?),
                Box::new(b.compile(schema)?),
            ),
            Expr::Arith(op, a, b) => CompiledExpr::Arith(
                *op,
                Box::new(a.compile(schema)?),
                Box::new(b.compile(schema)?),
            ),
            Expr::And(parts) => CompiledExpr::And(
                parts
                    .iter()
                    .map(|p| p.compile(schema))
                    .collect::<Result<_>>()?,
            ),
            Expr::Or(parts) => CompiledExpr::Or(
                parts
                    .iter()
                    .map(|p| p.compile(schema))
                    .collect::<Result<_>>()?,
            ),
            Expr::Not(e) => CompiledExpr::Not(Box::new(e.compile(schema)?)),
        })
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(c) => write!(f, "{c}"),
            Expr::Lit(v) => match v {
                Value::Str(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
            Expr::Cmp(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::Arith(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::And(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Expr::Or(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " OR ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Expr::Not(e) => write!(f, "NOT {e}"),
        }
    }
}

/// Index-resolved expression; evaluation does no name lookups.
#[derive(Clone, Debug)]
pub enum CompiledExpr {
    Col(usize),
    Lit(Value),
    Cmp(CmpOp, Box<CompiledExpr>, Box<CompiledExpr>),
    Arith(ArithOp, Box<CompiledExpr>, Box<CompiledExpr>),
    And(Vec<CompiledExpr>),
    Or(Vec<CompiledExpr>),
    Not(Box<CompiledExpr>),
}

fn eval_arith(op: ArithOp, a: Value, b: Value) -> Value {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => match op {
            ArithOp::Add => Value::Int(x.wrapping_add(y)),
            ArithOp::Sub => Value::Int(x.wrapping_sub(y)),
            ArithOp::Mul => Value::Int(x.wrapping_mul(y)),
            ArithOp::Div => {
                if y == 0 {
                    Value::Null
                } else {
                    Value::Int(x.wrapping_div(y))
                }
            }
        },
        _ => Value::Null,
    }
}

impl CompiledExpr {
    /// Evaluate to a value.
    pub fn eval(&self, row: &Row) -> Value {
        match self {
            CompiledExpr::Col(i) => row[*i].clone(),
            CompiledExpr::Lit(v) => v.clone(),
            CompiledExpr::Cmp(op, a, b) => Value::Bool(op.eval(a.eval(row).cmp(&b.eval(row)))),
            CompiledExpr::Arith(op, a, b) => eval_arith(*op, a.eval(row), b.eval(row)),
            CompiledExpr::And(parts) => Value::Bool(parts.iter().all(|p| p.eval_bool(row))),
            CompiledExpr::Or(parts) => Value::Bool(parts.iter().any(|p| p.eval_bool(row))),
            CompiledExpr::Not(e) => Value::Bool(!e.eval_bool(row)),
        }
    }

    /// Evaluate to a boolean; non-boolean results are false (positive
    /// algebra never produces them for well-formed predicates).
    pub fn eval_bool(&self, row: &Row) -> bool {
        matches!(self.eval(row), Value::Bool(true))
    }

    /// Evaluate over a pair of rows viewed as a concatenation without
    /// materializing it (hot path of nested-loop joins).
    pub fn eval_bool_pair(&self, left: &Row, right: &Row) -> bool {
        matches!(self.eval_pair(left, right), Value::Bool(true))
    }

    fn eval_pair(&self, left: &Row, right: &Row) -> Value {
        match self {
            CompiledExpr::Col(i) => {
                if *i < left.len() {
                    left[*i].clone()
                } else {
                    right[*i - left.len()].clone()
                }
            }
            CompiledExpr::Lit(v) => v.clone(),
            CompiledExpr::Cmp(op, a, b) => {
                Value::Bool(op.eval(a.eval_pair(left, right).cmp(&b.eval_pair(left, right))))
            }
            CompiledExpr::Arith(op, a, b) => {
                eval_arith(*op, a.eval_pair(left, right), b.eval_pair(left, right))
            }
            CompiledExpr::And(parts) => Value::Bool(
                parts
                    .iter()
                    .all(|p| matches!(p.eval_pair(left, right), Value::Bool(true))),
            ),
            CompiledExpr::Or(parts) => Value::Bool(
                parts
                    .iter()
                    .any(|p| matches!(p.eval_pair(left, right), Value::Bool(true))),
            ),
            CompiledExpr::Not(e) => {
                Value::Bool(!matches!(e.eval_pair(left, right), Value::Bool(true)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(vals: Vec<Value>) -> Row {
        vals.into_boxed_slice()
    }

    #[test]
    fn comparisons() {
        let s = Schema::named(["a", "b"]);
        let e = col("a").lt(col("b")).compile(&s).unwrap();
        assert!(e.eval_bool(&row(vec![Value::Int(1), Value::Int(2)])));
        assert!(!e.eval_bool(&row(vec![Value::Int(2), Value::Int(2)])));
        let e = col("a").ge(lit_i64(5)).compile(&s).unwrap();
        assert!(e.eval_bool(&row(vec![Value::Int(5), Value::Null])));
    }

    #[test]
    fn boolean_connectives() {
        let s = Schema::named(["a"]);
        let e = Expr::or([col("a").eq(lit_i64(1)), col("a").eq(lit_i64(2))])
            .compile(&s)
            .unwrap();
        assert!(e.eval_bool(&row(vec![Value::Int(2)])));
        assert!(!e.eval_bool(&row(vec![Value::Int(3)])));
        let e = col("a").eq(lit_i64(1)).not().compile(&s).unwrap();
        assert!(e.eval_bool(&row(vec![Value::Int(9)])));
    }

    #[test]
    fn and_or_flattening() {
        let e = Expr::and([
            Expr::and([col("a").eq(lit_i64(1)), lit_bool(true)]),
            col("b").eq(lit_i64(2)),
        ]);
        assert_eq!(e.conjuncts().len(), 2);
        assert!(Expr::and([]).is_true());
        assert_eq!(Expr::or([]), lit_bool(false));
    }

    #[test]
    fn columns_collected() {
        let e = Expr::and([col("x.a").eq(col("y.b")), col("c").gt(lit_i64(0))]);
        let cols = e.columns();
        assert_eq!(cols.len(), 3);
        assert!(cols.contains(&ColRef::parse("x.a")));
    }

    #[test]
    fn between_inclusive() {
        let s = Schema::named(["d"]);
        let e = col("d")
            .between(lit_i64(10), lit_i64(20))
            .compile(&s)
            .unwrap();
        assert!(e.eval_bool(&row(vec![Value::Int(10)])));
        assert!(e.eval_bool(&row(vec![Value::Int(20)])));
        assert!(!e.eval_bool(&row(vec![Value::Int(21)])));
    }

    #[test]
    fn pair_eval_matches_concat() {
        let s = Schema::named(["a", "b", "c"]);
        let e = Expr::and([col("a").eq(col("c")), col("b").ne(lit_i64(0))])
            .compile(&s)
            .unwrap();
        let l = row(vec![Value::Int(7), Value::Int(1)]);
        let r = row(vec![Value::Int(7)]);
        let concat = row(vec![Value::Int(7), Value::Int(1), Value::Int(7)]);
        assert_eq!(e.eval_bool_pair(&l, &r), e.eval_bool(&concat));
    }

    #[test]
    fn compile_rejects_unknown() {
        let s = Schema::named(["a"]);
        assert!(col("nope").compile(&s).is_err());
    }

    #[test]
    fn arithmetic() {
        let s = Schema::named(["a", "b"]);
        let r = row(vec![Value::Int(10), Value::Int(3)]);
        let cases = [
            (col("a").add(col("b")), Value::Int(13)),
            (col("a").sub(col("b")), Value::Int(7)),
            (col("a").mul(col("b")), Value::Int(30)),
            (col("a").div(col("b")), Value::Int(3)),
            (col("a").div(lit_i64(0)), Value::Null),
            (col("a").add(lit_str("x")), Value::Null),
        ];
        for (e, want) in cases {
            assert_eq!(e.compile(&s).unwrap().eval(&r), want, "{e}");
        }
        // Arithmetic composes with comparisons.
        let e = col("a").add(col("b")).gt(lit_i64(12)).compile(&s).unwrap();
        assert!(e.eval_bool(&r));
    }

    #[test]
    fn map_columns_requalifies() {
        let e = col("a").eq(col("b"));
        let q = e.map_columns(&|c| c.with_qualifier("t"));
        let cols = q.columns();
        assert!(cols.contains(&ColRef::parse("t.a")));
        assert!(cols.contains(&ColRef::parse("t.b")));
    }
}
